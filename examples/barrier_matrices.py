"""Barrier patterns as matrices: representation, correctness, asymptotics.

Reproduces the thesis's Figs. 5.2-5.4 (the 4-process linear, dissemination
and binary-tree stage matrices), demonstrates the knowledge-matrix
correctness test on a deliberately broken pattern (§5.5), and contrasts
the textbook asymptotic analysis with the matrix cost model (§5.4).

Run:  python examples/barrier_matrices.py
"""

import numpy as np

from repro.barriers import (
    dissemination_barrier,
    is_correct_barrier,
    knowledge_trace,
    linear_barrier,
    ring_pattern,
    tree_barrier,
    uninformed_pairs,
)
from repro.barriers.asymptotic import (
    dissemination_barrier_cost,
    linear_barrier_cost,
    tree_barrier_cost,
)


def show(pattern) -> None:
    print(f"\n{pattern.name} barrier, P={pattern.nprocs}, "
          f"{pattern.num_stages} stages, {pattern.total_messages} messages")
    for k, stage in enumerate(pattern.stages):
        print(f"S_{k} =")
        print(stage.astype(int))


def main() -> None:
    # Figs. 5.2-5.4: the three running examples at P = 4.
    for factory in (linear_barrier, dissemination_barrier, tree_barrier):
        show(factory(4))

    # §5.5: the knowledge recursion as a debugging tool.  One token pass
    # around a ring is NOT a barrier; the checker pinpoints who stays
    # uninformed.
    broken = ring_pattern(5, rounds=1)
    print(f"\n{broken.name}: correct barrier? {is_correct_barrier(broken)}")
    print("uninformed (a, b) pairs (b lacks evidence of a's arrival):")
    print(uninformed_pairs(broken))

    fixed = ring_pattern(5, rounds=2)
    print(f"{fixed.name}: correct barrier? {is_correct_barrier(fixed)}")

    # Watch knowledge accumulate for the dissemination barrier.
    pattern = dissemination_barrier(8)
    print("\nknowledge coverage per dissemination stage (P=8):")
    for k, know in enumerate(knowledge_trace(pattern)):
        coverage = np.count_nonzero(know) / know.size
        print(f"  after stage {k}: {coverage:5.1%} of (process, arrival) "
              f"pairs informed")

    # §5.4: uniform-cost asymptotics for orientation.
    c = 10e-6
    print("\ntextbook uniform-cost sums (c = 10 us):")
    for p in (8, 64):
        print(f"  P={p:3d}: linear {linear_barrier_cost(p, c) * 1e6:7.1f} us, "
              f"tree {tree_barrier_cost(p, c) * 1e6:6.1f} us, "
              f"dissemination {dissemination_barrier_cost(p, c) * 1e6:6.1f} us")


if __name__ == "__main__":
    main()
