"""On-line barrier adaptivity under platform drift (§9.2.2).

The thesis's future-work proposal, implemented: a control loop that keeps
a platform profile fresh, watches the current barrier's predicted cost,
and re-synthesizes when conditions drift.  The drift scenario here is a
node whose links degrade by an order of magnitude (a failing NIC or a
noisy neighbour job).

Run:  python examples/online_adaptation.py
"""

from repro.adapt import OnlineBarrierAdapter, degrade_profile
from repro.barriers import predict_barrier_cost
from repro.bench import benchmark_comm
from repro.cluster import presets
from repro.machine import SimMachine
from repro.util.tables import format_table


def main() -> None:
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=13
    )
    nprocs = 48
    placement = machine.placement(nprocs)
    profile = benchmark_comm(machine, placement, samples=9).params

    adapter = OnlineBarrierAdapter(profile, switch_factor=1.15, smoothing=1.0)
    print(f"initial pattern: {adapter.pattern.name} "
          f"({adapter.pattern.num_stages} stages)")

    rows = []
    # Phase 1: stable platform — the adapter must hold its choice.
    for step in range(3):
        adapter.observe(profile)
        event = adapter.events[-1]
        rows.append([event.observation, "stable", event.pattern_name,
                     event.current_cost * 1e6, event.switched])

    # Phase 2: the links of node 0's ranks degrade 12x.
    degraded_ranks = [r for r in range(nprocs) if placement.node_of(r) == 0]
    drifted = degrade_profile(profile, degraded_ranks, latency_factor=12.0)
    for step in range(3):
        adapter.observe(drifted)
        event = adapter.events[-1]
        rows.append([event.observation, "degraded", event.pattern_name,
                     event.current_cost * 1e6, event.switched])

    print(format_table(
        ["obs", "phase", "pattern before", "pred cost [us]", "switched"],
        rows,
    ))
    print(f"\nswitches: {adapter.switches}; final pattern: "
          f"{adapter.pattern.name}")

    stale_cost = predict_barrier_cost(adapter.events[0].pattern_name and
                                      OnlineBarrierAdapter(profile).pattern,
                                      drifted)
    fresh_cost = predict_barrier_cost(adapter.pattern, adapter.profile)
    print(f"stale pattern under drifted conditions: {stale_cost * 1e6:.1f} us; "
          f"re-adapted: {fresh_cost * 1e6:.1f} us")


if __name__ == "__main__":
    main()
