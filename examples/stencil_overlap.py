"""Stencil case study: scaling, prediction, and model-driven halo tuning.

The Chapter 8 workflow in one script:

1. validate the BSP stencil numerically against a serial reference,
2. compare strong scaling of all four implementations,
3. predict the BSP iteration from independent platform profiles and
   compare with measurement, and
4. let the model pick the shadow-cell (halo) depth and check it against
   the measured sweep (§8.6 / Fig. 8.18).

Run:  python examples/stencil_overlap.py
"""

import numpy as np

from repro.bench import benchmark_comm
from repro.cluster import presets
from repro.machine import SimMachine
from repro.stencil import (
    decompose,
    optimize_halo_depth,
    predict_bsp_iteration,
    run_bsp_stencil,
    run_hybrid_stencil,
    run_mpi_r_stencil,
    run_mpi_stencil,
    serial_reference,
    stencil_sec_per_cell,
)
from repro.stencil.impls import WORD
from repro.util.tables import format_table


def main() -> None:
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=3
    )

    # 1. Numerical fidelity of the BSP implementation.
    rng = np.random.default_rng(0)
    initial = rng.standard_normal((24, 24))
    reference = serial_reference(initial, 5)
    result = run_bsp_stencil(machine, 4, 24, 5, initial=initial,
                             label="verify")
    print("BSP stencil max deviation from serial reference: "
          f"{np.abs(result.field - reference).max():.2e}")

    # 2. Strong scaling comparison (charge-only, noise-free for clarity).
    n, iters = 1024, 5
    rows = []
    for nprocs in (4, 8, 16, 32, 64):
        row = [nprocs]
        for runner, kwargs in (
            (run_bsp_stencil, dict(execute_numerics=False, noisy=False,
                                   label=f"s{nprocs}")),
            (run_mpi_stencil, dict(noisy=False)),
            (run_mpi_r_stencil, dict(noisy=False)),
            (run_hybrid_stencil, dict(noisy=False)),
        ):
            row.append(runner(machine, nprocs, n, iters, **kwargs)
                       .mean_iteration * 1e3)
        rows.append(row)
    print(f"\nstrong scaling, {n}^2 grid, per-iteration time [ms]:")
    print(format_table(
        ["P", "BSP", "MPI", "MPI+R", "Hybrid"], rows
    ))

    # 3. Model prediction of the BSP iteration.
    nprocs = 32
    blocks = decompose(n, nprocs)
    placement = machine.placement(nprocs)
    report = benchmark_comm(machine, placement, samples=7)
    block = blocks[0]
    spc = stencil_sec_per_cell(
        machine, placement.core_of(0), block.interior_cells,
        2.0 * (block.height + 2) * (block.width + 2) * WORD,
    )
    prediction = predict_bsp_iteration(blocks, spc, report.params)
    measured = run_bsp_stencil(
        machine, nprocs, n, iters, execute_numerics=False, label="pred"
    ).mean_iteration
    print(f"\nBSP iteration at P={nprocs}: predicted "
          f"{prediction.per_iteration * 1e3:.3f} ms, measured "
          f"{measured * 1e3:.3f} ms "
          f"(predicted overlap saving "
          f"{prediction.predicted_overlap_saving * 1e6:.1f} us)")

    # 4. Model-driven halo-depth selection.
    chosen, points = optimize_halo_depth(
        machine, 64, 512, range(1, 11), spc, report.params, cycles=4
    )
    print("\nhalo-depth sweep at P=64, 512^2 (per-iteration, us):")
    print(format_table(
        ["depth", "predicted", "measured"],
        [[pt.depth, pt.predicted * 1e6, pt.measured * 1e6] for pt in points],
    ))
    measured_best = min(points, key=lambda p: p.measured).depth
    print(f"model chose depth {chosen}; measured optimum {measured_best}")


if __name__ == "__main__":
    main()
