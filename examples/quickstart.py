"""Quickstart: profile a simulated cluster and predict synchronization cost.

This walks the framework's core loop in ~40 lines:

1. build a simulated SMP cluster (8 nodes x 2 sockets x 4 cores, gigabit),
2. benchmark its pairwise communication parameters (the O/L/B matrices),
3. predict the cost of three barrier algorithms from the profile, and
4. measure them on the event engine and compare.

Run:  python examples/quickstart.py
"""

from repro.barriers import (
    dissemination_barrier,
    linear_barrier,
    measure_barrier,
    predict_barrier_cost,
    tree_barrier,
)
from repro.bench import benchmark_comm
from repro.cluster import presets
from repro.machine import SimMachine
from repro.util.tables import format_table


def main() -> None:
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=42
    )
    print(machine.describe())

    nprocs = 32
    placement = machine.placement(nprocs)

    # Stage 1 (thesis Fig. 1.3): profile the platform independently of any
    # application.  The benchmark only sees noisy end-to-end timings.
    report = benchmark_comm(machine, placement, samples=9)
    params = report.params
    print(f"\nprofiled {nprocs} processes: "
          f"median remote latency estimate "
          f"{params.latency.max() * 1e6:.2f} us, "
          f"same-socket {params.latency[params.latency > 0].min() * 1e6:.2f} us")

    # Stages 2-3: feed the profile to the cost model and compare with
    # measured executions.
    rows = []
    for factory in (dissemination_barrier, tree_barrier, linear_barrier):
        pattern = factory(nprocs)
        predicted = predict_barrier_cost(pattern, params)
        measured = measure_barrier(machine, pattern, placement, runs=32)
        rows.append(
            [
                pattern.name,
                predicted * 1e6,
                measured.mean_worst * 1e6,
                predicted / measured.mean_worst,
            ]
        )
    print("\nBarrier cost: model prediction vs event-engine measurement")
    print(format_table(
        ["pattern", "predicted [us]", "measured [us]", "ratio"], rows
    ))


if __name__ == "__main__":
    main()
