"""Design-space exploration over the barrier design space.

One campaign spec replaces the copy-pasted Chapter 5 sweep scripts: rank
four barrier families on the three calibrated platforms at three process
counts (36 design points), then extract the measured-cost/message-count
Pareto frontier per platform.

The run demonstrates the three campaign-engine guarantees:

1. a second invocation is served (almost) entirely from the on-disk
   result cache,
2. the multiprocessing executor returns bit-identical results to the
   serial one, and
3. expansion order — and therefore every downstream table — is
   deterministic.

Run:  python examples/explore_barrier_space.py

With ``--telemetry-out DIR`` the whole run records telemetry
(:mod:`repro.obs`) and exports a Perfetto-loadable Chrome trace plus a
metrics snapshot into ``DIR`` — the CI telemetry-smoke artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile

from repro.explore import DesignSpace, RetryPolicy, run_campaign
from repro.util.tables import format_table

SPACE = DesignSpace.from_dict({
    "axes": {
        "preset": ["xeon-8x2x4", "xeon-8x2x4-ib", "opteron-12x2x6"],
        "pattern": ["linear", "tree", "dissemination", "pairwise"],
        "nprocs": [8, 16, 32],
    },
    # Shared experiment knobs ride along as constants (and are part of
    # every point's cache key).
    "constants": {"runs": 8, "comm_samples": 3},
})


def export_telemetry(store: str, out_dir: str) -> None:
    """Export the run's recorded telemetry as CI-friendly artifacts."""
    from repro import obs

    obs.current().flush()
    events = obs.read_events(obs.telemetry_dir_for(store))
    doc = obs.chrome_trace(events)
    complete = obs.validate_chrome_trace(doc)
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "trace.json"), "w",
              encoding="utf-8") as fh:
        json.dump(doc, fh)
    with open(os.path.join(out_dir, "metrics.json"), "w",
              encoding="utf-8") as fh:
        json.dump(obs.merged_metrics(events), fh, indent=2, sort_keys=True)
    pids = {e["pid"] for e in events if e.get("type") == "span"}
    print(f"\ntelemetry: {len(events)} events from {len(pids)} processes; "
          f"wrote {complete}-span Chrome trace and metrics snapshot "
          f"to {out_dir}/")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--telemetry-out", metavar="DIR", default=None,
        help="record telemetry and export trace.json + metrics.json here",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry failed points up to N times (CI chaos smoke sets "
             "this and injects faults via REPRO_FAULTS)",
    )
    args = parser.parse_args(argv)
    policy = (
        RetryPolicy(max_attempts=args.max_retries + 1, point_timeout_s=60.0)
        if args.max_retries > 0 else None
    )
    if args.telemetry_out:
        from repro import obs

        obs.enable()
    with tempfile.TemporaryDirectory() as store:
        print(f"campaign: {len(SPACE.expand())} design points "
              f"(3 presets x 4 patterns x 3 process counts)\n")

        first = run_campaign(
            "barrier-ranking", SPACE, "barrier-cost", store_dir=store,
            policy=policy,
        )
        stats = first.stats
        print(f"first run:  {stats.evaluated} evaluated, "
              f"{stats.cached} cached ({stats.cache_hit_rate:.0%} hit rate)")

        second = run_campaign(
            "barrier-ranking", SPACE, "barrier-cost", store_dir=store,
            policy=policy,
        )
        stats = second.stats
        print(f"second run: {stats.evaluated} evaluated, "
              f"{stats.cached} cached ({stats.cache_hit_rate:.0%} hit rate)")
        assert stats.cache_hit_rate >= 0.9, "cache must serve the re-run"
        assert second.results == first.results

        parallel = run_campaign(
            "barrier-ranking-par", SPACE, "barrier-cost",
            executor="process", workers=2,
            policy=policy, degrade=policy is not None,
        )
        identical = [r.metrics for r in parallel.results] == [
            r.metrics for r in first.results
        ]
        print(f"parallel executor bit-identical to serial: {identical}")
        assert identical
        quarantined = (
            first.stats.quarantined + second.stats.quarantined
            + parallel.stats.quarantined
        )
        if policy is not None:
            print(f"resilience: max {args.max_retries} retries/point, "
                  f"{quarantined} quarantined")
        assert quarantined == 0, "no point may stay failed"

        results = second.results

        # ---- pattern ranking per platform (the Figs. 5.6-5.13 question) --
        print("\nmeasured cost [us] by platform and pattern (P=32):")
        at32 = results.filter(nprocs=32)
        patterns = ["linear", "tree", "dissemination", "pairwise"]
        rows = []
        for (preset,), sub in at32.group_by("preset").items():
            row = [preset]
            for pattern in patterns:
                (record,) = sub.filter(pattern=pattern).records
                row.append(record.metrics["measured_s"] * 1e6)
            best = sub.best("measured_s")
            row.append(best.point["pattern"])
            rows.append(row)
        print(format_table(
            ["preset"] + [f"{p} [us]" for p in patterns] + ["winner"], rows
        ))

        # ---- model quality across the whole space ------------------------
        worst = results.rank_by("rel_error", ascending=False)[0]
        print(f"\nlargest relative model error: "
              f"{worst.metrics['rel_error']:+.1%} "
              f"({worst.point['pattern']}, P={worst.point['nprocs']}, "
              f"{worst.point['preset']})")

        # ---- Pareto frontier: measured cost vs message budget ------------
        print("\nPareto frontier (minimise measured cost AND total messages):")
        front = results.pareto_front(["measured_s", "total_messages"])
        rows = [
            [
                r.point["preset"], r.point["pattern"], r.point["nprocs"],
                r.metrics["measured_s"] * 1e6, r.metrics["total_messages"],
            ]
            for r in front
        ]
        print(format_table(
            ["preset", "pattern", "P", "measured [us]", "messages"], rows
        ))

        if args.telemetry_out:
            export_telemetry(store, args.telemetry_out)


if __name__ == "__main__":
    main()
