"""Adaptive barrier synthesis: the Chapter 7 pipeline end to end.

Benchmarks a 60-process configuration of the simulated Xeon cluster,
clusters the measured latency matrix (SSS), greedily builds a hierarchical
hybrid barrier from the model's predictions, verifies it with the
knowledge-matrix test, and measures it against the flat system defaults.

Run:  python examples/adaptive_barrier.py
"""

from repro.adapt import clustering_table, flat_defaults, greedy_adapt, sss_cluster
from repro.barriers import is_correct_barrier, measure_barrier
from repro.bench import benchmark_comm
from repro.cluster import presets
from repro.machine import SimMachine
from repro.util.tables import format_table


def main() -> None:
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=7
    )
    nprocs = 60
    placement = machine.placement(nprocs)
    print(f"{machine.describe()}; P = {nprocs} (round-robin placement)")

    # Step 1: profile the platform (no topology knowledge used afterwards).
    report = benchmark_comm(machine, placement, samples=9)

    # Step 2: subset-size selection from latencies alone.
    levels = sss_cluster(report.params.latency, gap_ratio=1.25)
    print("\nSSS clustering of the benchmarked latency matrix:")
    print(format_table(
        ["level", "latency bound [s]", "subsets", "sizes"],
        clustering_table(levels),
    ))

    # Step 3: greedy, model-driven construction.
    adapted = greedy_adapt(report.params)
    print(f"\ngreedy choice: gather={adapted.local_kinds}, "
          f"top={adapted.top_kind}")
    print(f"pattern: {adapted.pattern.name}, "
          f"{adapted.pattern.num_stages} stages, "
          f"{adapted.pattern.total_messages} messages")
    print(f"knowledge-matrix correctness: "
          f"{is_correct_barrier(adapted.pattern)}")

    # Step 4: measure against the defaults.
    rows = [[
        adapted.pattern.name,
        adapted.predicted_cost * 1e6,
        measure_barrier(machine, adapted.pattern, placement,
                        runs=32).mean_worst * 1e6,
    ]]
    for name, pattern in flat_defaults(nprocs).items():
        rows.append([
            name,
            adapted.default_predictions[name] * 1e6,
            measure_barrier(machine, pattern, placement,
                            runs=32).mean_worst * 1e6,
        ])
    print("\nadapted barrier vs system defaults:")
    print(format_table(["pattern", "predicted [us]", "measured [us]"], rows))


if __name__ == "__main__":
    main()
