"""Surrogate-guided adaptive sampling over a barrier design space.

The exhaustive campaign in ``explore_barrier_space.py`` evaluates every
point; this example explores a 640-point space (4 patterns x 8 process
counts x 4 machine seeds x 5 measurement depths) with a budget of a
fraction of that, then verifies the search against the exhaustive sweep:

1. the surrogate strategy observes only ``--budget`` points (default 64,
   10% of the space), proposed batch by batch from a k-NN + linear
   surrogate ensemble refit on everything observed so far;
2. both runs share one JSONL store, so the verifying exhaustive campaign
   pays only for the points the search skipped;
3. a fixed seed makes the whole search bit-reproducible: re-running
   proposes the identical point sequence, served from cache.

Run:  python examples/adaptive_barrier_space.py [--budget N] [--verify]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.explore import AdaptivePlan, DesignSpace, run_adaptive, run_campaign

SPACE = DesignSpace.from_dict({
    "axes": {
        "pattern": ["linear", "tree", "dissemination", "sequential"],
        "nprocs": [4, 6, 8, 12, 16, 24, 32, 48],
        "seed": [2012, 2013, 2014, 2015],
        "runs": [2, 3, 4, 5, 6],
    },
    "constants": {"preset": "xeon-8x2x4", "comm_samples": 3},
})


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget", type=int, default=64,
        help="points the search may observe (default: 64 = 10%%)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="also run the exhaustive sweep and report the regret",
    )
    args = parser.parse_args()

    plan = AdaptivePlan(
        budget=args.budget,
        strategy="surrogate",
        objective="measured_s",
        batch=16,
        seed=7,
    )
    print(f"space: {len(SPACE)} design points; budget: {plan.budget} "
          f"({plan.budget / len(SPACE):.0%})\n")

    with tempfile.TemporaryDirectory() as store:
        outcome = run_adaptive(
            "barrier-adaptive", SPACE, "barrier-cost", plan, store_dir=store
        )
        stats = outcome.stats
        print(f"adaptive run: {stats.proposed} observed "
              f"({stats.coverage:.0%} of the space) in {stats.rounds} "
              f"rounds, {stats.evaluated} evaluated fresh")
        best = outcome.best()
        print(f"best found:   {best.value('measured_s') * 1e6:.2f} us at "
              f"pattern={best.point['pattern']}, "
              f"P={best.point['nprocs']}, seed={best.point['seed']}, "
              f"runs={best.point['runs']}")

        # Bit-reproducible: the same plan proposes the same sequence, now
        # served entirely from the shared store.
        again = run_adaptive(
            "barrier-adaptive", SPACE, "barrier-cost", plan, store_dir=store
        )
        identical = [r.key for r in again.results] == [
            r.key for r in outcome.results
        ]
        print(f"re-run bit-identical and cache-served: "
              f"{identical and again.stats.evaluated == 0}")
        assert identical and again.stats.evaluated == 0

        if args.verify:
            exhaustive = run_campaign(
                "barrier-adaptive", SPACE, "barrier-cost", store_dir=store
            )
            print(f"\nexhaustive verification: "
                  f"{exhaustive.stats.evaluated} points the search "
                  f"skipped, {exhaustive.stats.cached} re-used")
            regret = outcome.regret(exhaustive.results)
            truth = exhaustive.results.best("measured_s")
            ranked = exhaustive.results.ok().rank_by("measured_s")
            rank = 1 + [r.key for r in ranked].index(best.key)
            print(f"true best:    {truth.value('measured_s') * 1e6:.2f} us "
                  f"at pattern={truth.point['pattern']}, "
                  f"P={truth.point['nprocs']}")
            print(f"search found: rank {rank} of {len(ranked)} "
                  f"(regret {regret * 1e6:.3f} us)")
            # The per-(seed, runs) measurement noise on this space is
            # larger than the gap between the best patterns at P=4, so
            # landing in the top slice — not the exact noise draw — is
            # the meaningful claim at this budget.
            assert rank <= max(10, len(ranked) // 20), (
                f"search landed at rank {rank}"
            )


if __name__ == "__main__":
    main()
