"""bspinprod on the BSPlib runtime: real numerics plus virtual time.

The Chapter 3 warm-up experiment: a distributed inner product written
against the BSPlib interface (Table 6.1), executed with real NumPy data on
the threaded runtime, with per-superstep virtual-time accounting.  The
measured strong-scaling curve is compared against the classic BSP estimate
(Eq. 3.7) to reproduce the misprediction that motivates the framework.

Run:  python examples/bsplib_inner_product.py
"""

import numpy as np

from repro.bench.bspbench import run_bspbench
from repro.bsplib import bsp_run
from repro.cluster import presets
from repro.core.bsp_classic import inner_product_cost_seconds
from repro.kernels import DOT_PRODUCT
from repro.machine import SimMachine
from repro.util.tables import format_table

N_TOTAL = 1_000_000


def inner_product(ctx, n_total):
    """The bspinprod program: local dot products, a 1-relation scatter of
    the partial sums, and a global accumulation step."""
    p, pid = ctx.nprocs, ctx.pid
    local_n = n_total // p
    rng = np.random.default_rng(1000 + pid)
    x = rng.standard_normal(local_n)
    y = rng.standard_normal(local_n)

    sums = np.zeros(p)
    ctx.push_reg(sums)
    ctx.sync()

    local = ctx.run_kernel(DOT_PRODUCT, (x, y), local_n)
    for q in range(p):
        ctx.put(q, np.array([local]), sums, offset=pid)
    ctx.sync()

    ctx.charge_kernel(DOT_PRODUCT, p)  # accumulate p partial sums
    total = float(sums.sum())
    ctx.sync()
    return total


def main() -> None:
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=5
    )
    rows = []
    for nprocs in (4, 8, 16, 32):
        result = bsp_run(machine, nprocs, inner_product, N_TOTAL,
                         label=f"ip-{nprocs}")
        values = set(round(v, 6) for v in result.return_values)
        assert len(values) == 1, "all processes must agree on the total"
        classic = inner_product_cost_seconds(
            run_bspbench(machine, nprocs, samples=5).params, N_TOTAL
        )
        rows.append([
            nprocs,
            result.total_seconds * 1e3,
            classic * 1e3,
            result.superstep_count,
        ])
    print("inner product on the BSPlib runtime (N = 1e6):")
    print(format_table(
        ["P", "measured [ms]", "classic estimate [ms]", "supersteps"], rows
    ))
    print("\n(the classic 4-scalar model's estimate drifts from the measured"
          "\n runtime as P grows — the Chapter 3 motivation)")


if __name__ == "__main__":
    main()
