"""Unit tests for the matrix modeling framework (§3.3-3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matrix_model import (
    CommunicationModel,
    ComputationModel,
    SuperstepModel,
)


class TestComputationModel:
    def test_eq_3_10_homogeneous_spmd(self):
        """Two identical processes running n (=,+,*) operations."""
        n = 100.0
        req = np.array([[n, n, n], [n, n, n]])
        cost = np.full((2, 3), 2.0e-9)
        model = ComputationModel(req, cost)
        t = model.superstep_times()
        np.testing.assert_allclose(t, [3 * n * 2e-9] * 2)
        assert model.load_imbalance() == 0.0

    def test_eq_3_11_heterogeneous_requirements(self):
        """DAXPY on one process, vector subtraction on the other: the t
        vector exposes the load imbalance."""
        c = 1.0e-9
        req = np.array(
            [[100, 100, 0, 100],  # =, +, -, *
             [100, 0, 100, 0]]
        )
        cost = np.full((2, 4), c)
        model = ComputationModel(req, cost)
        t = model.superstep_times()
        assert t[0] == pytest.approx(300 * c)
        assert t[1] == pytest.approx(200 * c)
        assert model.load_imbalance() == pytest.approx(100 * c)

    def test_eq_3_12_heterogeneous_processors(self):
        """§3.3's multiply-accumulate processor halves + and * cost."""
        n = 100.0
        req = np.full((2, 3), n)
        cost = np.array(
            [[1.0, 1.0, 1.0],
             [1.0, 0.5, 0.5]]
        )
        model = ComputationModel(req, cost)
        t = model.superstep_times()
        assert t[0] == pytest.approx(3 * n)
        assert t[1] == pytest.approx(2 * n)

    def test_cross_mapping_diagonal_is_assignment(self):
        rng = np.random.default_rng(0)
        req = rng.uniform(1, 10, (3, 4))
        cost = rng.uniform(0.1, 1.0, (3, 4))
        model = ComputationModel(req, cost)
        cross = model.cross_mapping_costs()
        np.testing.assert_allclose(np.diag(cross), model.superstep_times())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ComputationModel(np.array([[-1.0]]), np.array([[1.0]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ComputationModel(np.ones((2, 3)), np.ones((3, 2)))

    def test_kernel_names_length_checked(self):
        with pytest.raises(ValueError):
            ComputationModel(np.ones((2, 2)), np.ones((2, 2)), kernel_names=("a",))


class TestCommunicationModel:
    def test_eq_3_15_row_sums(self):
        counts = np.array([[0.0, 2.0], [1.0, 0.0]])
        volumes = np.array([[0.0, 100.0], [50.0, 0.0]])
        lat = np.full((2, 2), 1e-6)
        beta = np.full((2, 2), 1e-9)
        model = CommunicationModel(counts, volumes, lat, beta)
        t = model.superstep_times()
        assert t[0] == pytest.approx(2 * 1e-6 + 100 * 1e-9)
        assert t[1] == pytest.approx(1 * 1e-6 + 50 * 1e-9)

    def test_square_required(self):
        with pytest.raises(ValueError):
            CommunicationModel(
                np.ones((2, 3)), np.ones((2, 3)), np.ones((2, 3)), np.ones((2, 3))
            )


class TestSuperstepModel:
    def _model(self, comp_t, comm_t, sync=0.0):
        p = len(comp_t)
        comp = ComputationModel(
            np.array(comp_t, dtype=float).reshape(p, 1), np.ones((p, 1))
        )
        comm = CommunicationModel(
            np.diagflat(np.zeros(p)) * 0.0
            + np.array(comm_t, dtype=float)[:, None] * np.eye(p)[:, ::-1],
            np.zeros((p, p)),
            np.ones((p, p)),
            np.zeros((p, p)),
        )
        return SuperstepModel(comp, comm, sync_cost=sync)

    def test_combined_times(self):
        model = self._model([3.0, 1.0], [0.5, 2.0])
        np.testing.assert_allclose(model.combined_times(), [3.5, 3.0])

    def test_overlap_eq_3_16(self):
        model = self._model([3.0, 1.0], [0.5, 2.0])
        overlap = model.overlap(np.array([3.2, 2.1]))
        np.testing.assert_allclose(overlap, [0.3, 0.9])

    def test_predict_total_bounds(self):
        model = self._model([3.0, 1.0], [0.5, 2.0], sync=0.1)
        full = model.predict_total(comm_maskable_fraction=1.0)
        none = model.predict_total(comm_maskable_fraction=0.0)
        assert full <= none
        assert full == pytest.approx(max(3.0, 2.0) + 0.1)
        assert none == pytest.approx(3.5 + 0.1)

    def test_fraction_validated(self):
        model = self._model([1.0], [1.0])
        with pytest.raises(ValueError):
            model.predict_total(comm_maskable_fraction=1.5)

    def test_size_mismatch(self):
        comp = ComputationModel(np.ones((2, 1)), np.ones((2, 1)))
        comm = CommunicationModel(
            np.zeros((3, 3)), np.zeros((3, 3)), np.zeros((3, 3)), np.zeros((3, 3))
        )
        with pytest.raises(ValueError):
            SuperstepModel(comp, comm)


@given(
    p=st.integers(1, 6),
    k=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_superstep_times_linear_in_requirements(p, k, seed):
    """Doubling every requirement doubles every superstep time — the
    linearity the framework is built on."""
    rng = np.random.default_rng(seed)
    req = rng.uniform(0, 10, (p, k))
    cost = rng.uniform(0, 1, (p, k))
    base = ComputationModel(req, cost).superstep_times()
    doubled = ComputationModel(2 * req, cost).superstep_times()
    np.testing.assert_allclose(doubled, 2 * base)
