"""Unit tests for the fundamental equation of modeling (Eqs. 1.1-1.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fundamental import (
    SuperstepTerms,
    derived_overlap,
    overlap_saving,
    perfect_overlap_bound,
    total_time,
)


def terms(comp, comm, comp_m, comm_m, sync=0.0):
    return SuperstepTerms(
        t_comp=np.asarray(comp, dtype=float),
        t_comm=np.asarray(comm, dtype=float),
        t_comp_maskable=np.asarray(comp_m, dtype=float),
        t_comm_maskable=np.asarray(comm_m, dtype=float),
        t_sync=np.asarray(sync, dtype=float),
    )


class TestTotalTime:
    def test_no_overlap_is_plain_sum(self):
        t = terms(10.0, 4.0, 0.0, 0.0, sync=1.0)
        assert total_time(t) == pytest.approx(15.0)

    def test_full_overlap_bounded_by_max(self):
        t = terms(10.0, 4.0, 10.0, 4.0, sync=1.0)
        assert total_time(t) == pytest.approx(10.0 + 1.0)

    def test_partial_overlap(self):
        # 6 of 10 compute can mask 4 of 4 comm: total = 4 + 0 + max(6,4) + 0
        t = terms(10.0, 4.0, 6.0, 4.0)
        assert total_time(t) == pytest.approx(4.0 + 6.0)

    def test_vectorised(self):
        t = terms([10.0, 2.0], [4.0, 8.0], [10.0, 2.0], [4.0, 8.0])
        np.testing.assert_allclose(total_time(t), [10.0, 8.0])

    def test_maskable_exceeding_total_rejected(self):
        with pytest.raises(ValueError, match="maskable"):
            terms(5.0, 4.0, 6.0, 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            terms(-1.0, 0.0, 0.0, 0.0)


class TestOverlapSaving:
    def test_eq_1_1_consistency(self):
        """T_total = T_comp + T_comm - T_overlap + T_sync must hold."""
        t = terms(10.0, 4.0, 6.0, 3.0, sync=2.0)
        lhs = total_time(t)
        rhs = t.t_comp + t.t_comm - overlap_saving(t) + t.t_sync
        np.testing.assert_allclose(lhs, rhs)

    def test_saving_is_min_of_maskables(self):
        t = terms(10.0, 4.0, 6.0, 3.0)
        assert overlap_saving(t) == pytest.approx(3.0)


class TestDerivedOverlap:
    def test_eq_3_16(self):
        assert derived_overlap(10.0, 4.0, 11.0) == pytest.approx(3.0)

    def test_no_overlap_measured(self):
        assert derived_overlap(10.0, 4.0, 14.0) == pytest.approx(0.0)

    def test_with_sync(self):
        assert derived_overlap(10.0, 4.0, 13.0, t_sync=1.0) == pytest.approx(2.0)


class TestPerfectOverlapBound:
    def test_factor_two_limit(self):
        """Bisseling's remark: perfect overlap at most halves the body."""
        comp, comm = 7.0, 7.0
        assert perfect_overlap_bound(comp, comm) == pytest.approx(7.0)
        assert (comp + comm) / perfect_overlap_bound(comp, comm) == pytest.approx(2.0)


@given(
    comp=st.floats(0.0, 1e3),
    comm=st.floats(0.0, 1e3),
    frac_comp=st.floats(0.0, 1.0),
    frac_comm=st.floats(0.0, 1.0),
    sync=st.floats(0.0, 10.0),
)
@settings(max_examples=100, deadline=None)
def test_total_time_invariants(comp, comm, frac_comp, frac_comm, sync):
    t = terms(comp, comm, comp * frac_comp, comm * frac_comm, sync)
    total = float(total_time(t))
    # Never better than perfect overlap, never worse than no overlap.
    assert total <= comp + comm + sync + 1e-9
    assert total >= float(perfect_overlap_bound(comp, comm)) + sync - 1e-9
    # Eq. 1.1 identity.
    assert total == pytest.approx(
        comp + comm - float(overlap_saving(t)) + sync, abs=1e-9
    )
