"""Unit tests for the classic BSP performance model (§3.1)."""

import pytest

from repro.core.bsp_classic import (
    ClassicBSPParams,
    comm_cost_flops,
    comp_cost_flops,
    h_relation,
    inner_product_cost_seconds,
    inner_product_sweep,
    superstep_seconds,
)


@pytest.fixture
def params():
    # Magnitudes from Table 3.1's first row (8-way run).
    return ClassicBSPParams(p=8, r=991.695e6, g=105.4, l=30575.7)


class TestCostEquations:
    def test_h_relation_max(self):
        assert h_relation(10, 4) == 10
        assert h_relation(4, 10) == 10

    def test_comm_cost(self, params):
        assert comm_cost_flops(params, 100) == pytest.approx(
            100 * 105.4 + 30575.7
        )

    def test_comp_cost(self, params):
        assert comp_cost_flops(params, 1000.0) == pytest.approx(1000.0 + 30575.7)

    def test_superstep_seconds(self, params):
        t = superstep_seconds(params, w=1e6, h=10)
        expected = (1e6 + 30575.7 + 10 * 105.4 + 30575.7) / 991.695e6
        assert t == pytest.approx(expected)

    def test_negative_h_rejected(self):
        with pytest.raises(ValueError):
            h_relation(-1, 0)


class TestInnerProduct:
    def test_eq_3_7(self, params):
        n = 10**8
        t = inner_product_cost_seconds(params, n)
        flops = (n / 8) * 2 + params.l + (params.g + params.l) + 8
        assert t == pytest.approx(flops / params.r)

    def test_sweep_ordering(self):
        params_by_p = {
            8: ClassicBSPParams(8, 1e9, 100.0, 3e4),
            64: ClassicBSPParams(64, 1e9, 1300.0, 4e6),
        }
        sweep = inner_product_sweep(params_by_p, 10**8)
        assert [p for p, _ in sweep] == [8, 64]

    def test_estimate_has_interior_minimum(self):
        """Fig. 3.2's shape: growing l with p produces a minimum in the
        estimate while real strong scaling saturates."""
        params_by_p = {
            p: ClassicBSPParams(p, 1e9, 100.0, 3e4 * (p / 8) ** 2)
            for p in (8, 16, 24, 32, 40, 48, 56, 64)
        }
        costs = [c for _, c in inner_product_sweep(params_by_p, 10**8)]
        interior_min = min(range(len(costs)), key=costs.__getitem__)
        assert 0 < interior_min < len(costs) - 1


class TestValidation:
    def test_bad_parallelism(self):
        with pytest.raises(ValueError):
            ClassicBSPParams(p=0, r=1e9, g=1.0, l=1.0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            ClassicBSPParams(p=2, r=0.0, g=1.0, l=1.0)
