"""Unit tests for multi-superstep program models."""

import numpy as np
import pytest

from repro.core.matrix_model import (
    CommunicationModel,
    ComputationModel,
    SuperstepModel,
)
from repro.core.program import ProgramModel, ProgramStep, iterate


def make_superstep(comp_times, comm_times, sync=0.0):
    p = len(comp_times)
    comp = ComputationModel(
        np.asarray(comp_times, dtype=float).reshape(p, 1), np.ones((p, 1))
    )
    counts = np.zeros((p, p))
    lat = np.zeros((p, p))
    for i, t in enumerate(comm_times):
        j = (i + 1) % p
        counts[i, j] = 1.0
        lat[i, j] = t
    comm = CommunicationModel(counts, np.zeros((p, p)), lat, np.zeros((p, p)))
    return SuperstepModel(comp, comm, sync_cost=sync)


class TestProgramModel:
    def test_total_sums_repetitions(self):
        step = make_superstep([2.0, 1.0], [0.5, 0.5], sync=0.1)
        program = iterate(step, 10)
        assert program.predict_total() == pytest.approx(
            10 * step.predict_total()
        )
        assert program.total_supersteps == 10

    def test_mixed_steps(self):
        setup = make_superstep([1.0, 1.0], [0.0, 0.0])
        body = make_superstep([3.0, 3.0], [1.0, 1.0], sync=0.2)
        program = ProgramModel(
            steps=(ProgramStep(setup, 1, "setup"), ProgramStep(body, 5, "body"))
        )
        expected = setup.predict_total() + 5 * body.predict_total()
        assert program.predict_total() == pytest.approx(expected)

    def test_overlap_saving_nonnegative(self):
        step = make_superstep([2.0, 2.0], [1.5, 1.5])
        program = iterate(step, 4)
        saving = program.predicted_overlap_saving()
        assert saving == pytest.approx(4 * 1.5)

    def test_breakdown_shares_sum_to_one(self):
        a = make_superstep([1.0, 1.0], [0.1, 0.1])
        b = make_superstep([2.0, 2.0], [0.1, 0.1])
        program = ProgramModel(
            steps=(ProgramStep(a, 2, "a"), ProgramStep(b, 3, "b"))
        )
        rows = program.step_breakdown()
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        assert rows[1]["label"] == "b"

    def test_bottleneck_step(self):
        small = make_superstep([1.0, 1.0], [0.0, 0.0])
        big = make_superstep([10.0, 10.0], [0.0, 0.0])
        program = ProgramModel(
            steps=(ProgramStep(small, 100, "small"), ProgramStep(big, 20, "big"))
        )
        assert program.bottleneck_step().label == "big"

    def test_imbalance_profile(self):
        balanced = make_superstep([2.0, 2.0], [0.0, 0.0])
        skewed = make_superstep([1.0, 4.0], [0.0, 0.0])
        program = ProgramModel(
            steps=(ProgramStep(balanced, 1), ProgramStep(skewed, 1))
        )
        np.testing.assert_allclose(program.imbalance_profile(), [0.0, 3.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProgramModel(steps=())

    def test_mixed_sizes_rejected(self):
        a = make_superstep([1.0, 1.0], [0.0, 0.0])
        b = make_superstep([1.0, 1.0, 1.0], [0.0, 0.0, 0.0])
        with pytest.raises(ValueError, match="process count"):
            ProgramModel(steps=(ProgramStep(a, 1), ProgramStep(b, 1)))

    def test_negative_repetitions_rejected(self):
        step = make_superstep([1.0], [0.0])
        with pytest.raises(ValueError):
            ProgramStep(step, -1)
