"""Unit tests for virtual clocks."""

import numpy as np
import pytest

from repro.machine.clock import BatchClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        assert VirtualClock().advance(3.0) == 3.0

    def test_advance_to_forward_only(self):
        clock = VirtualClock(5.0)
        clock.advance_to(3.0)  # no-op: monotone
        assert clock.now == 5.0
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-0.1)

    def test_repr(self):
        assert "VirtualClock" in repr(VirtualClock(1.0))


class TestBatchClock:
    def test_starts_at_zero(self):
        clock = BatchClock(4)
        assert clock.runs == 4
        np.testing.assert_array_equal(clock.now, np.zeros(4))

    def test_scalar_advance_hits_every_replication(self):
        clock = BatchClock(3)
        clock.advance(1.0)
        np.testing.assert_array_equal(clock.now, [1.0, 1.0, 1.0])

    def test_vector_advance(self):
        clock = BatchClock(3)
        clock.advance(np.array([0.5, 1.0, 1.5]))
        clock.advance(0.5)
        np.testing.assert_array_equal(clock.now, [1.0, 1.5, 2.0])

    def test_advance_to_per_replication_monotone(self):
        clock = BatchClock(2)
        clock.advance(np.array([2.0, 0.5]))
        clock.advance_to(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(clock.now, [2.0, 1.0])

    def test_returned_arrays_stable_across_later_advances(self):
        """Each advance rebinds a fresh array, so earlier return values —
        kept as commit times by the runtime — never mutate."""
        clock = BatchClock(2)
        first = clock.advance(1.0)
        clock.advance(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(first, [1.0, 1.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BatchClock(2).advance(-1.0)
        with pytest.raises(ValueError):
            BatchClock(2).advance(np.array([0.0, -0.1]))
        with pytest.raises(ValueError):
            BatchClock(0)

    def test_repr(self):
        assert "BatchClock" in repr(BatchClock(2))
