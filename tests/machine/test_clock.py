"""Unit tests for virtual clocks."""

import pytest

from repro.machine.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        assert VirtualClock().advance(3.0) == 3.0

    def test_advance_to_forward_only(self):
        clock = VirtualClock(5.0)
        clock.advance_to(3.0)  # no-op: monotone
        assert clock.now == 5.0
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-0.1)

    def test_repr(self):
        assert "VirtualClock" in repr(VirtualClock(1.0))
