"""Unit tests for the kernel execution-time model (Ch. 4 ground truth)."""

import numpy as np
import pytest

from repro.cluster.params import CacheLevel, CoreParams
from repro.kernels.numeric import DAXPY, STENCIL5, VSUB
from repro.machine.compute import (
    application_time,
    footprint_knees,
    piecewise_linear_segments,
    steady_rate_flops,
    time_per_element,
)


@pytest.fixture
def core():
    return CoreParams(
        flop_rate=2.0e9,
        cache_levels=(CacheLevel(32 * 1024, 24.0e9), CacheLevel(4 << 20, 12.0e9)),
        ram_bandwidth=5.0e9,
        invocation_overhead=2e-7,
    )


class TestTimePerElement:
    def test_in_cache_faster_than_ram(self, core):
        fast = time_per_element(DAXPY, core, 1024)
        slow = time_per_element(DAXPY, core, 64 << 20)
        assert fast < slow

    def test_kernels_differ(self, core):
        """§4.1's central claim: the same footprint costs differently per
        kernel, so one scalar rate cannot describe a processor."""
        assert time_per_element(DAXPY, core, 1024) != time_per_element(
            STENCIL5, core, 1024
        )

    def test_rate_scale_speeds_up(self, core):
        base = time_per_element(DAXPY, core, 1024)
        scaled = time_per_element(DAXPY, core, 1024, rate_scale=2.0)
        assert scaled < base

    def test_fma_halves_flop_term(self):
        fma_core = CoreParams(
            flop_rate=1.0e9,
            cache_levels=(CacheLevel(1 << 20, 1e12),),
            ram_bandwidth=1e12,
            multiply_accumulate=True,
        )
        plain_core = CoreParams(
            flop_rate=1.0e9,
            cache_levels=(CacheLevel(1 << 20, 1e12),),
            ram_bandwidth=1e12,
        )
        # DAXPY is FMA-eligible, VSUB is not.
        assert time_per_element(DAXPY, fma_core, 64) < time_per_element(
            DAXPY, plain_core, 64
        )
        assert time_per_element(VSUB, fma_core, 64) == time_per_element(
            VSUB, plain_core, 64
        )


class TestApplicationTime:
    def test_linear_in_reps(self, core):
        """Fixed footprint, growing iterations: exactly linear (§4.1)."""
        t1 = application_time(DAXPY, core, 1024, reps=10)
        t2 = application_time(DAXPY, core, 1024, reps=20)
        overhead_free = t2 - t1
        assert overhead_free == pytest.approx(t1 - application_time(DAXPY, core, 1024, reps=0))

    def test_invocation_overhead_charged_per_rep(self, core):
        t = application_time(DAXPY, core, 1, reps=4)
        assert t >= 4 * core.invocation_overhead

    def test_zero_reps_is_free(self, core):
        assert application_time(DAXPY, core, 1024, reps=0) == 0.0

    def test_footprint_override(self, core):
        small = application_time(DAXPY, core, 1024, footprint_bytes=1024)
        big = application_time(DAXPY, core, 1024, footprint_bytes=64 << 20)
        assert small < big


class TestSteadyRate:
    def test_zero_flop_kernel(self, core):
        from repro.kernels.blas import SCOPY

        assert steady_rate_flops(SCOPY, core, 1024) == 0.0

    def test_rate_drops_past_cache(self, core):
        in_cache = steady_rate_flops(DAXPY, core, 16 * 1024)
        in_ram = steady_rate_flops(DAXPY, core, 64 << 20)
        assert in_ram < in_cache


class TestPiecewiseSegments:
    def test_knees_match_cache_sizes(self, core):
        assert footprint_knees(core) == [32 * 1024, 4 << 20]

    def test_segments_cover_range(self, core):
        segs = piecewise_linear_segments(DAXPY, core, 10 << 20)
        assert segs[0][0] == 0
        assert segs[-1][1] == 10 << 20
        for (lo1, hi1, _), (lo2, _, _) in zip(segs, segs[1:]):
            assert hi1 == lo2

    def test_gradients_increase_with_footprint(self, core):
        segs = piecewise_linear_segments(DAXPY, core, 10 << 20)
        grads = [g for _, _, g in segs]
        assert grads == sorted(grads)
