"""Unit tests for the SimMachine facade."""

import numpy as np
import pytest

from repro.cluster import presets
from repro.cluster.noise import NoiseModel
from repro.cluster.topology import Relation
from repro.kernels.numeric import DAXPY
from repro.machine.simmachine import SimMachine


@pytest.fixture
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=42
    )


class TestRngStreams:
    def test_same_key_same_stream(self, machine):
        a = machine.rng("alpha", 3).random(4)
        b = machine.rng("alpha", 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self, machine):
        a = machine.rng("alpha").random(4)
        b = machine.rng("beta").random(4)
        assert not np.array_equal(a, b)

    def test_seed_changes_streams(self):
        m1 = SimMachine(presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=1)
        m2 = SimMachine(presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=2)
        assert not np.array_equal(m1.rng("s").random(4), m2.rng("s").random(4))


class TestCommTruth:
    def test_matrices_follow_relations(self, machine):
        pl = machine.placement(16)
        truth = machine.comm_truth(pl)
        rel = pl.relation_matrix()
        remote_latency = machine.params.links[Relation.REMOTE].latency
        assert (truth.latency[rel == int(Relation.REMOTE)] == remote_latency).all()
        assert (np.diag(truth.latency) == 0.0).all()

    def test_symmetric_for_symmetric_links(self, machine):
        truth = machine.comm_truth(machine.placement(12))
        np.testing.assert_array_equal(truth.latency, truth.latency.T)

    def test_two_node_parity_structure(self, machine):
        """Ranks 9..16 straddle two nodes by parity (§5.6.6)."""
        truth = machine.comm_truth(machine.placement(10))
        remote = machine.params.links[Relation.REMOTE].latency
        assert truth.latency[0, 1] == remote  # odd neighbour: other node
        assert truth.latency[0, 2] < remote  # even neighbour: same node


class TestKernelTime:
    def test_clean_matches_compute_model(self, machine):
        t = machine.kernel_time_clean(0, DAXPY, 1024, reps=8)
        assert t > 0

    def test_noisy_reproducible(self, machine):
        rng1 = machine.rng("k")
        rng2 = machine.rng("k")
        t1 = machine.kernel_time(0, DAXPY, 1024, reps=8, rng=rng1)
        t2 = machine.kernel_time(0, DAXPY, 1024, reps=8, rng=rng2)
        assert t1 == t2

    def test_no_rng_means_clean(self, machine):
        assert machine.kernel_time(0, DAXPY, 64) == machine.kernel_time_clean(
            0, DAXPY, 64
        )

    def test_heterogeneous_rate_scale(self):
        params = presets.xeon_8x2x4_params()
        hetero = SimMachine(
            presets.xeon_8x2x4_topology(),
            type(params)(
                links=params.links,
                core=params.core,
                nic_gap=params.nic_gap,
                recv_overhead=params.recv_overhead,
                invocation_overhead=params.invocation_overhead,
                socket_rate_scale={0: 2.0},
            ),
            seed=1,
        )
        fast = hetero.kernel_time_clean(0, DAXPY, 1024)  # socket 0: scaled
        slow = hetero.kernel_time_clean(8, DAXPY, 1024)  # node 1, socket 2
        assert fast < slow


class TestPlacementPolicies:
    def test_unknown_policy(self, machine):
        with pytest.raises(ValueError, match="policy"):
            machine.placement(4, policy="scatter")

    def test_block_policy(self, machine):
        pl = machine.placement(10, policy="block")
        assert pl.cores.tolist() == list(range(10))


class TestKernelTimeBatch:
    def test_clean_matches_scalar_path(self, machine):
        sizes = [256, 1024, 4096]
        cores = [0, 1, 2]
        batch = machine.kernel_time_batch(cores, DAXPY, sizes)
        for k, (core, n) in enumerate(zip(cores, sizes)):
            assert batch[k] == machine.kernel_time_clean(core, DAXPY, n)

    def test_scalar_core_broadcast(self, machine):
        batch = machine.kernel_time_batch(0, DAXPY, [128, 256])
        assert batch.shape == (2,)
        assert batch[1] > batch[0]

    def test_noisy_reproducible_and_varies(self, machine):
        a = machine.kernel_time_batch(
            0, DAXPY, [1024] * 8, rng=machine.rng("ktb")
        )
        b = machine.kernel_time_batch(
            0, DAXPY, [1024] * 8, rng=machine.rng("ktb")
        )
        np.testing.assert_array_equal(a, b)
        assert np.unique(a).size > 1

    def test_footprint_vector_validated(self, machine):
        with pytest.raises(ValueError, match="footprint"):
            machine.kernel_time_batch(
                0, DAXPY, [128, 256], footprint_bytes=[1024.0]
            )


class TestKernelTimeScalarBatchEquivalence:
    """kernel_time delegates to kernel_time_batch on a length-1 vector, so
    the scalar and batch noise paths cannot drift apart."""

    def test_scalar_equals_length_one_batch(self, machine):
        scalar = machine.kernel_time(0, DAXPY, 1024, rng=machine.rng("eq"))
        batch = machine.kernel_time_batch(
            0, DAXPY, [1024], rng=machine.rng("eq")
        )
        assert scalar == batch[0]
        assert isinstance(scalar, float)

    def test_scalar_matches_historical_stream(self, machine):
        """A shape-(1,) draw consumes the RNG exactly as the retired
        per-scalar 0-d draw did — noisy kernel streams are unchanged."""
        clean = machine.kernel_time_clean(0, DAXPY, 2048)
        new = machine.kernel_time(0, DAXPY, 2048, rng=machine.rng("hist"))
        old = float(
            machine.noise.sample(
                machine.rng("hist"), np.asarray(clean, dtype=float)
            )
        )
        assert new == old

    def test_clean_scalar_unchanged(self, machine):
        assert machine.kernel_time(0, DAXPY, 512) == machine.kernel_time_clean(
            0, DAXPY, 512
        )


class TestKernelTimeRuns:
    def test_clean_broadcasts_base(self, machine):
        out = machine.kernel_time_runs(0, DAXPY, 1024, runs=5)
        assert out.shape == (5,)
        assert np.unique(out).size == 1
        assert out[0] == machine.kernel_time_clean(0, DAXPY, 1024)

    def test_noisy_reproducible_and_varies(self, machine):
        a = machine.kernel_time_runs(0, DAXPY, 1024, 8, rng=machine.rng("kr"))
        b = machine.kernel_time_runs(0, DAXPY, 1024, 8, rng=machine.rng("kr"))
        np.testing.assert_array_equal(a, b)
        assert np.unique(a).size > 1

    def test_replication_major_contract(self, machine):
        """kernel_time_runs is one sample_matrix call on the clean base."""
        clean = machine.kernel_time_clean(0, DAXPY, 4096)
        direct = machine.noise.sample_matrix(machine.rng("km"), clean, 6)
        via = machine.kernel_time_runs(0, DAXPY, 4096, 6, rng=machine.rng("km"))
        np.testing.assert_array_equal(via, direct)
