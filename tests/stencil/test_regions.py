"""Unit tests for the 17-region block split (Fig. 8.2)."""

import numpy as np
import pytest

from repro.stencil.regions import (
    block_regions,
    border_cell_count,
    compute_regions,
    ghost_regions,
    interior_cell_count,
)


class TestBlockRegions:
    def test_exactly_seventeen(self):
        assert len(block_regions(8, 10)) == 17

    def test_kind_census(self):
        regions = block_regions(8, 10)
        kinds = {}
        for r in regions:
            kinds[r.kind] = kinds.get(r.kind, 0) + 1
        assert kinds == {"interior": 1, "border": 4, "corner": 4, "ghost": 8}

    def test_owned_regions_tile_owned_area(self):
        h, w = 7, 9
        marker = np.zeros((h + 2, w + 2), dtype=int)
        for region in block_regions(h, w):
            if region.kind != "ghost":
                marker[region.rows, region.cols] += 1
        assert (marker[1 : h + 1, 1 : w + 1] == 1).all()
        # Owned regions never touch the ghost frame.
        assert marker[0, :].sum() == 0 and marker[-1, :].sum() == 0
        assert marker[:, 0].sum() == 0 and marker[:, -1].sum() == 0

    def test_ghost_regions_tile_frame(self):
        h, w = 5, 6
        marker = np.zeros((h + 2, w + 2), dtype=int)
        for region in ghost_regions(h, w):
            marker[region.rows, region.cols] += 1
        assert marker[0, :].tolist() == [1] * (w + 2)
        assert marker[-1, :].tolist() == [1] * (w + 2)
        assert (marker[1:-1, 0] == 1).all() and (marker[1:-1, -1] == 1).all()
        assert (marker[1:-1, 1:-1] == 0).all()

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            block_regions(2, 5)


class TestComputeOrder:
    def test_borders_before_interior(self):
        order = compute_regions(6, 6)
        kinds = [r.kind for r in order]
        assert kinds[-1] == "interior"
        assert set(kinds[:-1]) == {"border", "corner"}

    def test_cell_counts_consistent(self):
        h, w = 11, 13
        assert border_cell_count(h, w) + interior_cell_count(h, w) == h * w
        assert border_cell_count(h, w) == 2 * h + 2 * w - 4

    def test_region_cell_count_matches_slice(self):
        h, w = 6, 8
        u = np.zeros((h + 2, w + 2))
        for region in block_regions(h, w):
            assert region.of(u).size == region.cell_count(h, w)
