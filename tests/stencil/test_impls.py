"""Integration tests for the stencil implementations (§8.3-8.4)."""

import numpy as np
import pytest

from repro.cluster import presets
from repro.machine import SimMachine
from repro.stencil import (
    run_bsp_stencil,
    run_hybrid_stencil,
    run_mpi_r_stencil,
    run_mpi_stencil,
    serial_reference,
)


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=33
    )


class TestBSPNumerics:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6, 8])
    def test_matches_serial_reference(self, machine, nprocs):
        """The BSP implementation must be numerically identical to the
        serial Jacobi sweep for any decomposition."""
        rng = np.random.default_rng(7)
        n, iters = 16, 5
        initial = rng.standard_normal((n, n))
        reference = serial_reference(initial, iters)
        result = run_bsp_stencil(
            machine, nprocs, n, iters, initial=initial, label=f"num-{nprocs}"
        )
        np.testing.assert_allclose(result.field, reference, atol=1e-12)

    def test_zero_iterations(self, machine):
        rng = np.random.default_rng(8)
        initial = rng.standard_normal((12, 12))
        result = run_bsp_stencil(machine, 4, 12, 0, initial=initial, label="zero")
        np.testing.assert_allclose(result.field, initial)
        assert result.iteration_seconds.size == 0

    def test_charge_only_mode_skips_field(self, machine):
        result = run_bsp_stencil(
            machine, 4, 64, 2, execute_numerics=False, label="charge"
        )
        assert result.field is None
        assert result.iteration_seconds.shape == (2,)

    def test_blocks_too_small_rejected(self, machine):
        with pytest.raises(ValueError, match="3x3"):
            run_bsp_stencil(machine, 16, 8, 1, label="small")


class TestTimingStructure:
    def test_iteration_times_positive(self, machine):
        for runner in (run_mpi_stencil, run_mpi_r_stencil, run_hybrid_stencil):
            result = runner(machine, 8, 256, 3)
            assert (result.iteration_seconds > 0).all()
            assert result.total_seconds > 0

    def test_strong_scaling_reduces_iteration_time(self, machine):
        """More processes must shorten the compute-dominated iteration."""
        small = run_mpi_stencil(machine, 4, 1024, 3, noisy=False)
        large = run_mpi_stencil(machine, 32, 1024, 3, noisy=False)
        assert large.mean_iteration < small.mean_iteration

    def test_overlap_beats_postponed_at_scale(self, machine):
        """Table 8.2's direction: MPI+R <= MPI when communication is a
        visible fraction of the iteration."""
        mpi = run_mpi_stencil(machine, 32, 1024, 4, noisy=False)
        mpir = run_mpi_r_stencil(machine, 32, 1024, 4, noisy=False)
        assert mpir.mean_iteration < mpi.mean_iteration

    def test_bsp_overhead_vs_mpi(self, machine):
        """§8.4: the BSP implementation carries a visible overhead over raw
        MPI (global payload sync vs neighbour exchange)."""
        bsp = run_bsp_stencil(
            machine, 32, 1024, 4, execute_numerics=False, noisy=False,
            label="ovh",
        )
        mpi = run_mpi_stencil(machine, 32, 1024, 4, noisy=False)
        assert bsp.mean_iteration > mpi.mean_iteration

    def test_hybrid_uses_node_ranks(self, machine):
        result = run_hybrid_stencil(machine, 32, 512, 2, noisy=False)
        assert result.nprocs == 32
        assert result.name == "Hybrid"

    def test_hybrid_undersubscribed_node(self, machine):
        result = run_hybrid_stencil(machine, 4, 256, 2, noisy=False)
        assert result.iteration_seconds.shape == (2,)

    def test_deterministic_noise_free(self, machine):
        a = run_mpi_stencil(machine, 8, 256, 3, noisy=False)
        b = run_mpi_stencil(machine, 8, 256, 3, noisy=False)
        np.testing.assert_array_equal(a.iteration_seconds, b.iteration_seconds)
