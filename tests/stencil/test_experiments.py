"""Unit tests for the Chapter 8 experiment harness."""

import pytest

from repro.cluster import presets
from repro.machine import SimMachine
from repro.stencil.experiments import (
    IMPLEMENTATIONS,
    default_configurations,
    run_strong_scaling,
    scaling_rows,
    wall_time_rows,
)


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=101
    )


class TestConfigurations:
    def test_matrix_coverage(self):
        configs = default_configurations()
        assert len(configs) == 8  # 4 implementations x 2 problem sizes
        labels = [cfg.label for cfg in configs]
        assert len(set(labels)) == len(labels)

    def test_max_procs_respected(self):
        configs = default_configurations(max_procs=16)
        for cfg in configs:
            assert max(cfg.process_counts) <= 16

    def test_describe_row(self):
        cfg = default_configurations()[0]
        row = cfg.describe()
        assert len(row) == 5
        assert "x" in row[2]


class TestStrongScalingHarness:
    def test_all_implementations_run(self, machine):
        results = run_strong_scaling(
            machine, list(IMPLEMENTATIONS), 256, (4, 8), iterations=2
        )
        assert set(results) == set(IMPLEMENTATIONS)
        for per_count in results.values():
            assert set(per_count) == {4, 8}

    def test_scaling_rows_format(self, machine):
        results = run_strong_scaling(machine, ["MPI"], 256, (4, 8), iterations=2)
        rows = scaling_rows(results)
        assert [row[0] for row in rows] == [4, 8]
        assert all(len(row) == 2 for row in rows)


class TestWallTimeRows:
    def test_table_8_2_columns(self, machine):
        rows = wall_time_rows(machine, 512, (8, 16), iterations=2, noisy=False)
        assert len(rows) == 2
        for p, t_mpi, t_mpir, ratio in rows:
            assert t_mpi > 0 and t_mpir > 0
            assert ratio == pytest.approx(t_mpi / t_mpir)
