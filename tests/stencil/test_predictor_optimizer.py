"""Tests for the application predictor (§8.5) and halo optimizer (§8.6)."""

import numpy as np
import pytest

from repro.bench import benchmark_comm
from repro.cluster import presets
from repro.machine import SimMachine
from repro.stencil import (
    build_comm_model,
    decompose,
    measure_halo_iteration,
    optimize_halo_depth,
    predict_bsp_iteration,
    predict_halo_iteration,
    predict_mpi_iteration,
    run_bsp_stencil,
    stencil_sec_per_cell,
)
from repro.stencil.impls import WORD


@pytest.fixture(scope="module")
def profiled():
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=41
    )
    nprocs, n = 16, 512
    placement = machine.placement(nprocs)
    report = benchmark_comm(
        machine, placement, samples=7, sizes=tuple(2**k for k in range(0, 17, 4))
    )
    blocks = decompose(n, nprocs)
    block = blocks[0]
    spc = stencil_sec_per_cell(
        machine,
        placement.core_of(0),
        block.interior_cells,
        2.0 * (block.height + 2) * (block.width + 2) * WORD,
    )
    return machine, nprocs, n, blocks, report.params, spc


class TestCommModel:
    def test_neighbour_counts(self, profiled):
        _, _, _, blocks, params, _ = profiled
        model = build_comm_model(blocks, params)
        for block in blocks:
            assert model.message_counts[block.rank].sum() == len(block.neighbours())

    def test_volumes_match_borders(self, profiled):
        _, _, _, blocks, params, _ = profiled
        model = build_comm_model(blocks, params)
        b = blocks[0]
        if b.east is not None:
            assert model.volumes[b.rank, b.east] == b.height * WORD + 24

    def test_size_mismatch_rejected(self, profiled):
        _, _, _, blocks, params, _ = profiled
        with pytest.raises(ValueError):
            build_comm_model(blocks[:4], params)


class TestBSPPrediction:
    def test_prediction_positive_and_structured(self, profiled):
        _, _, _, blocks, params, spc = profiled
        pred = predict_bsp_iteration(blocks, spc, params)
        assert pred.per_iteration > 0
        assert pred.t_sync > 0
        assert (pred.t_border > 0).all()
        assert pred.per_iteration <= pred.per_iteration_no_overlap

    def test_prediction_tracks_measurement(self, profiled):
        """B-series: prediction within a small factor of measurement."""
        machine, nprocs, n, blocks, params, spc = profiled
        pred = predict_bsp_iteration(blocks, spc, params)
        measured = run_bsp_stencil(
            machine, nprocs, n, 5, execute_numerics=False, label="pred-check"
        ).mean_iteration
        assert pred.per_iteration == pytest.approx(measured, rel=1.5)

    def test_overlap_saving_nonnegative(self, profiled):
        _, _, _, blocks, params, spc = profiled
        pred = predict_bsp_iteration(blocks, spc, params)
        assert pred.predicted_overlap_saving >= 0


class TestMPIPrediction:
    def test_overlap_variant_cheaper(self, profiled):
        _, _, _, blocks, params, spc = profiled
        plain = predict_mpi_iteration(blocks, spc, params, overlap=False)
        restructured = predict_mpi_iteration(blocks, spc, params, overlap=True)
        assert restructured.per_iteration < plain.per_iteration

    def test_mpi_prediction_excludes_global_sync(self, profiled):
        _, _, _, blocks, params, spc = profiled
        plain = predict_mpi_iteration(blocks, spc, params)
        assert plain.t_sync == 0.0


class TestHaloOptimizer:
    def test_swept_cells_shrink(self):
        from repro.stencil.optimizer import _swept_cells

        cells = _swept_cells(16, 16, 3)
        assert cells == [(16 + 4) ** 2, (16 + 2) ** 2, 16 * 16]

    def test_depth_one_matches_plain_structure(self, profiled):
        _, nprocs, n, _, params, spc = profiled
        pred = predict_halo_iteration(nprocs, n, 1, spc, params)
        assert pred.sync_per_iter > 0
        assert pred.compute_per_iter > 0

    def test_deeper_halo_amortises_sync(self, profiled):
        _, nprocs, n, _, params, spc = profiled
        d1 = predict_halo_iteration(nprocs, n, 1, spc, params)
        d4 = predict_halo_iteration(nprocs, n, 4, spc, params)
        assert d4.sync_per_iter < d1.sync_per_iter
        assert d4.compute_per_iter > d1.compute_per_iter

    def test_measured_halo_reduces_cost(self, profiled):
        machine, nprocs, n, _, _, _ = profiled
        t1 = measure_halo_iteration(machine, nprocs, n, 1, cycles=3, noisy=False)
        t4 = measure_halo_iteration(machine, nprocs, n, 4, cycles=3, noisy=False)
        assert t4 < t1

    def test_optimizer_choice_near_measured_optimum(self, profiled):
        """C1's claim: the model's chosen depth sits at or adjacent to the
        measured optimum."""
        machine, nprocs, n, _, params, spc = profiled
        depths = range(1, 8)
        chosen, points = optimize_halo_depth(
            machine, nprocs, n, depths, spc, params, cycles=3, noisy=False
        )
        measured_best = min(points, key=lambda p: p.measured).depth
        assert abs(chosen - measured_best) <= 2

    def test_invalid_depth(self, profiled):
        _, nprocs, n, _, params, spc = profiled
        with pytest.raises(ValueError):
            predict_halo_iteration(nprocs, n, 0, spc, params)
