"""Tests for the B-series prediction sweep harness."""

import pytest

from repro.cluster import presets
from repro.machine import SimMachine
from repro.stencil.predictor import prediction_sweep


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=161
    )


class TestPredictionSweep:
    def test_bsp_sweep(self, machine):
        preds = prediction_sweep(machine, 256, (4, 8), kind="bsp",
                                 comm_samples=5)
        assert set(preds) == {4, 8}
        for pred in preds.values():
            assert pred.per_iteration > 0
            assert pred.t_sync > 0

    def test_mpi_kinds(self, machine):
        plain = prediction_sweep(machine, 256, (8,), kind="mpi",
                                 comm_samples=5)[8]
        overlap = prediction_sweep(machine, 256, (8,), kind="mpi+r",
                                   comm_samples=5)[8]
        assert plain.name == "MPI"
        assert overlap.name == "MPI+R"
        assert overlap.per_iteration <= plain.per_iteration

    def test_unknown_kind(self, machine):
        with pytest.raises(ValueError, match="unknown prediction kind"):
            prediction_sweep(machine, 256, (4,), kind="magic")

    def test_strong_scaling_trend(self, machine):
        preds = prediction_sweep(machine, 1024, (4, 16, 64), kind="bsp",
                                 comm_samples=5)
        assert preds[64].per_iteration < preds[4].per_iteration
