"""Unit and property tests for domain decomposition (§8.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencil.grid import decompose, process_grid


class TestProcessGrid:
    @pytest.mark.parametrize(
        "p,expected",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)), (8, (2, 4)),
         (16, (4, 4)), (60, (6, 10)), (64, (8, 8))],
    )
    def test_near_square_factorisation(self, p, expected):
        assert process_grid(p) == expected

    def test_prime_degenerates_to_row(self):
        assert process_grid(7) == (1, 7)


class TestDecompose:
    def test_cells_partition_domain(self):
        blocks = decompose(100, 8)
        assert sum(b.interior_cells for b in blocks) == 100 * 100

    def test_balanced_split(self):
        blocks = decompose(100, 8)
        sizes = [b.interior_cells for b in blocks]
        assert max(sizes) - min(sizes) <= max(blocks[0].height, blocks[0].width)

    def test_neighbour_symmetry(self):
        blocks = decompose(64, 16)
        for b in blocks:
            if b.east is not None:
                assert blocks[b.east].west == b.rank
            if b.south is not None:
                assert blocks[b.south].north == b.rank

    def test_boundary_blocks_have_no_outer_neighbours(self):
        blocks = decompose(64, 16)
        rows, cols = process_grid(16)
        for b in blocks:
            assert (b.north is None) == (b.grid_row == 0)
            assert (b.south is None) == (b.grid_row == rows - 1)
            assert (b.west is None) == (b.grid_col == 0)
            assert (b.east is None) == (b.grid_col == cols - 1)

    def test_offsets_tile_domain(self):
        n = 50
        blocks = decompose(n, 6)
        covered = np.zeros((n, n), dtype=int)
        for b in blocks:
            covered[
                b.global_row0 : b.global_row0 + b.height,
                b.global_col0 : b.global_col0 + b.width,
            ] += 1
        assert (covered == 1).all()

    def test_too_small_domain_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            decompose(2, 9)

    def test_exchange_bytes(self):
        blocks = decompose(32, 4)  # 2x2 grid, 16x16 blocks
        corner = blocks[0]
        assert corner.exchange_bytes() == (16 + 16) * 8  # south + east only

    def test_border_and_interior_cells(self):
        b = decompose(32, 4)[0]
        assert b.border_cells == 2 * 16 + 2 * 16 - 4
        assert b.border_cells + b.deep_interior_cells == b.interior_cells


@given(n=st.integers(16, 128), p=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_decomposition_properties(n, p):
    rows, cols = process_grid(p)
    if n < rows or n < cols:
        return
    blocks = decompose(n, p)
    assert len(blocks) == p
    assert sum(b.interior_cells for b in blocks) == n * n
    for b in blocks:
        assert b.height >= 1 and b.width >= 1
