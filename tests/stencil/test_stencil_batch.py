"""Batched stencil runs axis vs the scalar paths: identity and distribution.

The contract under test (docs/engine.md, "Stencil draws"):

* clean path (``noisy=False``): every replication of
  ``run_bsp_stencil(..., runs=R)`` and ``measure_halo_iteration(...,
  runs=R)`` is *bit-identical* to the scalar path — same floating-point
  operations per replication across grid sizes, process counts and halo
  depths;
* noisy path: the replication-major bulk draws produce different
  individual replications but statistically equivalent ensembles (the
  batched draw order differs from looping the scalar path, so streams
  are compared distributionally, not bitwise);
* the grid numerics are noise-independent: a batched ``run_bsp_stencil``
  assembles exactly the scalar run's field.

Mirrors ``tests/bsplib/test_runtime_batch.py`` one layer up the stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import presets
from repro.machine import SimMachine
from repro.stencil import measure_halo_iteration, run_bsp_stencil
from repro.stencil.experiments import run_strong_scaling


def make_machine(seed=77):
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=seed
    )


@pytest.fixture(scope="module")
def machine():
    return make_machine()


class TestStencilCleanBitIdentity:
    @given(
        nprocs=st.sampled_from([1, 2, 4, 6]),
        n=st.sampled_from([12, 16, 24, 32]),
        iterations=st.integers(1, 3),
        runs=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_matches_scalar_bitwise(self, nprocs, n, iterations, runs):
        machine = make_machine(seed=7)
        ref = run_bsp_stencil(
            machine, nprocs, n, iterations, execute_numerics=False,
            noisy=False,
        )
        bat = run_bsp_stencil(
            machine, nprocs, n, iterations, execute_numerics=False,
            noisy=False, runs=runs,
        )
        assert bat.iteration_seconds.shape == (runs, iterations)
        for r in range(runs):
            assert (
                bat.iteration_seconds[r].tolist()
                == ref.iteration_seconds.tolist()
            )
        # total_seconds is the ensemble mean, so the mean of R identical
        # replications may differ from the scalar value by one ulp.
        assert bat.total_seconds == pytest.approx(ref.total_seconds, rel=1e-12)

    def test_numerics_match_scalar(self, machine):
        ref = run_bsp_stencil(machine, 4, 16, 2, noisy=False)
        bat = run_bsp_stencil(machine, 4, 16, 2, noisy=False, runs=3)
        assert bat.field is not None
        assert bat.field.tolist() == ref.field.tolist()

    def test_result_properties(self, machine):
        scalar = run_bsp_stencil(
            machine, 4, 16, 3, execute_numerics=False, noisy=False
        )
        assert scalar.runs is None
        assert scalar.run_mean_iterations.shape == (1,)
        batch = run_bsp_stencil(
            machine, 4, 16, 3, execute_numerics=False, noisy=False, runs=5
        )
        assert batch.runs == 5
        assert batch.run_mean_iterations.shape == (5,)
        assert batch.run_mean_iterations[0] == pytest.approx(
            batch.iteration_seconds[0].mean()
        )


class TestHaloCleanBitIdentity:
    @given(
        nprocs=st.sampled_from([1, 2, 4, 6]),
        n=st.sampled_from([24, 32, 48]),
        depth=st.integers(1, 3),
        runs=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_matches_scalar_bitwise(self, nprocs, n, depth, runs):
        machine = make_machine(seed=7)
        ref = measure_halo_iteration(
            machine, nprocs, n, depth, cycles=3, noisy=False
        )
        bat = measure_halo_iteration(
            machine, nprocs, n, depth, cycles=3, noisy=False, runs=runs
        )
        assert isinstance(ref, float)
        assert bat.shape == (runs,)
        for r in range(runs):
            assert bat[r] == ref

    def test_runs_validated(self, machine):
        with pytest.raises(ValueError, match="runs"):
            measure_halo_iteration(machine, 4, 32, 2, runs=0)


class TestNoisyDistribution:
    def test_stencil_ensemble_agrees_with_looped_scalar(self):
        """Two-sample KS between a batched ensemble and independent scalar
        runs (per-run distinct labels select independent streams of the
        same distribution)."""
        machine = make_machine(seed=5)
        runs = 200
        batch = run_bsp_stencil(
            machine, 6, 32, 2, execute_numerics=False, label="ks-batch",
            runs=runs,
        ).run_mean_iterations
        loop = np.array([
            run_bsp_stencil(
                machine, 6, 32, 2, execute_numerics=False,
                label=f"ks-loop-{r}",
            ).mean_iteration
            for r in range(runs)
        ])
        # 1% two-sample KS critical value for n = m = 200 is ~0.163.
        grid = np.sort(np.concatenate([batch, loop]))
        ks = np.abs(
            np.searchsorted(np.sort(batch), grid, side="right") / runs
            - np.searchsorted(np.sort(loop), grid, side="right") / runs
        ).max()
        assert ks < 0.163, f"KS={ks:.3f}"
        assert np.median(batch) == pytest.approx(np.median(loop), rel=0.05)

    def test_halo_ensemble_agrees_with_looped_scalar(self):
        """measure_halo_iteration derives its stream from the machine seed
        and the (nprocs, n, depth) key, so the independent scalar ensemble
        varies the machine seed instead of a label."""
        runs = 200
        batch = measure_halo_iteration(
            make_machine(seed=5), 6, 48, 2, cycles=3, runs=runs
        )
        loop = np.array([
            measure_halo_iteration(
                make_machine(seed=1000 + r), 6, 48, 2, cycles=3
            )
            for r in range(runs)
        ])
        grid = np.sort(np.concatenate([batch, loop]))
        ks = np.abs(
            np.searchsorted(np.sort(batch), grid, side="right") / runs
            - np.searchsorted(np.sort(loop), grid, side="right") / runs
        ).max()
        assert ks < 0.163, f"KS={ks:.3f}"
        assert np.median(batch) == pytest.approx(np.median(loop), rel=0.05)

    def test_batch_reproducible_and_rows_vary(self, machine):
        a = run_bsp_stencil(
            machine, 4, 24, 2, execute_numerics=False, label="rep", runs=16
        )
        b = run_bsp_stencil(
            machine, 4, 24, 2, execute_numerics=False, label="rep", runs=16
        )
        assert a.iteration_seconds.tolist() == b.iteration_seconds.tolist()
        assert np.unique(a.run_mean_iterations).size > 1
        ha = measure_halo_iteration(machine, 4, 32, 2, cycles=3, runs=16)
        hb = measure_halo_iteration(machine, 4, 32, 2, cycles=3, runs=16)
        assert ha.tolist() == hb.tolist()
        assert np.unique(ha).size > 1


class TestSuperstepValidation:
    def test_superstep_mismatch_raises(self, machine, monkeypatch):
        """If the program's superstep structure drifts from the
        registration + initial exchange + iterations shape, extraction
        must fail loudly instead of silently mis-slicing."""
        import repro.stencil.impls as impls

        real_bsp_run = impls.bsp_run

        def drop_one_superstep(*args, **kwargs):
            result = real_bsp_run(*args, **kwargs)
            return type(result)(
                nprocs=result.nprocs,
                supersteps=result.supersteps[:-1],
                return_values=result.return_values,
                final_times=result.final_times,
            )

        monkeypatch.setattr(impls, "bsp_run", drop_one_superstep)
        with pytest.raises(RuntimeError, match="supersteps"):
            run_bsp_stencil(
                machine, 4, 16, 2, execute_numerics=False, noisy=False
            )


class TestExperimentHarness:
    def test_strong_scaling_runs_axis(self, machine):
        out = run_strong_scaling(
            machine, ["BSP"], 24, (2, 4), iterations=2, noisy=True, runs=3
        )
        for nprocs in (2, 4):
            assert out["BSP"][nprocs].iteration_seconds.shape == (3, 2)

    def test_strong_scaling_rejects_non_bsp_runs(self, machine):
        with pytest.raises(ValueError, match="BSP"):
            run_strong_scaling(
                machine, ["BSP", "MPI"], 24, (2,), iterations=2, runs=3
            )

    def test_optimizer_runs_axis(self, machine):
        from repro.bench.comm_bench import benchmark_comm
        from repro.stencil import stencil_sec_per_cell
        from repro.stencil.grid import decompose
        from repro.stencil.impls import WORD
        from repro.stencil.optimizer import optimize_halo_depth

        placement = machine.placement(4)
        params = benchmark_comm(
            machine, placement, samples=3, sizes=(8, 4096)
        ).params
        block = decompose(32, 4)[0]
        spc = stencil_sec_per_cell(
            machine, placement.core_of(0), block.interior_cells,
            2.0 * (block.height + 2) * (block.width + 2) * WORD,
        )
        chosen, points = optimize_halo_depth(
            machine, 4, 32, (1, 2), spc, params, cycles=3, runs=4
        )
        assert chosen in (1, 2)
        for pt in points:
            assert isinstance(pt.measured, float)
