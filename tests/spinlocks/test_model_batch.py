"""Vectorized spinlock noise vs the preserved scalar reference.

The §5.1 handoff loop used to draw noise one deprecated ``sample_scalar``
call per acquisition; it now separates the deterministic handoff schedule
from one bulk draw (``sample`` / ``sample_matrix``).  Contract:

* clean path: bit-identical to :func:`repro.spinlocks.reference_spinlock`
  (the schedule never touched the noise stream);
* noisy path: per-acquisition draws land in a different stream order, but
  the ensembles are KS-equivalent;
* ``runs=R`` re-rolls the same schedule under ``R`` independent noise
  replications, replication-major, with row 0 of ``runs=1`` equal to the
  un-batched noisy run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import presets
from repro.machine import SimMachine
from repro.spinlocks import (
    ALGORITHMS,
    contention_sweep,
    reference_spinlock,
    simulate_spinlock,
)


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=151
    )


class TestCleanBitIdentity:
    @given(
        algorithm=st.sampled_from(ALGORITHMS),
        nthreads=st.integers(1, 12),
        acquisitions=st.integers(1, 12),
        policy=st.sampled_from(["block", "round_robin"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_bitwise(
        self, algorithm, nthreads, acquisitions, policy
    ):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=3
        )
        placement = machine.placement(nthreads, policy=policy)
        new = simulate_spinlock(
            machine, algorithm, placement,
            acquisitions_per_thread=acquisitions, noisy=False,
        )
        ref = reference_spinlock(
            machine, algorithm, placement,
            acquisitions_per_thread=acquisitions, noisy=False,
        )
        assert new.per_acquisition.tolist() == ref.per_acquisition.tolist()
        # total_seconds is a derived aggregate (bulk sum vs the reference's
        # sequential accumulation): equal to the last ulp, not bitwise.
        assert new.total_seconds == pytest.approx(ref.total_seconds, rel=1e-12)
        assert new.acquisitions == ref.acquisitions

    def test_clean_batch_rows_equal_scalar(self, machine):
        placement = machine.placement(6, policy="block")
        scalar = simulate_spinlock(machine, "ticket", placement, noisy=False)
        batch = simulate_spinlock(
            machine, "ticket", placement, noisy=False, runs=3
        )
        assert batch.per_acquisition.shape == (3, scalar.acquisitions)
        for r in range(3):
            assert (
                batch.per_acquisition[r].tolist()
                == scalar.per_acquisition.tolist()
            )


class TestNoisyDistribution:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_ensemble_agrees_with_reference(self, algorithm):
        """KS between the batched per-acquisition ensemble and repeated
        reference runs drawn from one continuing stream."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=9
        )
        placement = machine.placement(8, policy="block")
        runs = 24
        batch = simulate_spinlock(
            machine, algorithm, placement, acquisitions_per_thread=8,
            runs=runs,
        ).per_acquisition.ravel()
        rng = machine.rng("spinlock-ks", algorithm)
        loop = np.concatenate([
            reference_spinlock(
                machine, algorithm, placement, acquisitions_per_thread=8,
                rng=rng,
            ).per_acquisition
            for _ in range(runs)
        ])
        n = batch.size
        grid = np.sort(np.concatenate([batch, loop]))
        ks = np.abs(
            np.searchsorted(np.sort(batch), grid, side="right") / n
            - np.searchsorted(np.sort(loop), grid, side="right") / n
        ).max()
        # 1% critical value for n = m = 24 * 64 acquisitions is ~0.042;
        # allow slack since acquisitions within a run share a schedule.
        assert ks < 0.08, f"KS={ks:.3f} for {algorithm}"
        assert np.median(batch) == pytest.approx(np.median(loop), rel=0.05)

    def test_scalar_noisy_path_is_runs_one_row(self, machine):
        """The un-batched noisy path and runs=1 consume the stream
        identically (sample on (N,) vs sample_matrix broadcast (1, N))."""
        placement = machine.placement(5, policy="block")
        scalar = simulate_spinlock(machine, "mcs", placement)
        batch = simulate_spinlock(machine, "mcs", placement, runs=1)
        assert batch.per_acquisition.shape == (1, scalar.acquisitions)
        assert (
            batch.per_acquisition[0].tolist()
            == scalar.per_acquisition.tolist()
        )

    def test_batch_deterministic_and_rows_vary(self, machine):
        placement = machine.placement(4, policy="block")
        a = simulate_spinlock(machine, "test_and_set", placement, runs=6)
        b = simulate_spinlock(machine, "test_and_set", placement, runs=6)
        assert a.per_acquisition.tolist() == b.per_acquisition.tolist()
        assert np.unique(a.per_acquisition[:, 0]).size > 1
        assert a.run_seconds.shape == (6,)
        assert a.total_seconds == pytest.approx(a.run_seconds.mean())


class TestRunsAxis:
    def test_runs_validated(self, machine):
        with pytest.raises(ValueError, match="runs"):
            simulate_spinlock(
                machine, "mcs", machine.placement(2), runs=0
            )

    def test_contention_sweep_passthrough(self, machine):
        sweep = contention_sweep(
            machine, (2, 4), algorithms=("mcs",),
            acquisitions_per_thread=4, runs=5,
        )
        for n in (2, 4):
            result = sweep["mcs"][n]
            assert result.runs == 5
            assert result.per_acquisition.shape == (5, 4 * n)

    def test_clean_batch_shape(self, machine):
        result = simulate_spinlock(
            machine, "ticket", machine.placement(3, policy="block"),
            acquisitions_per_thread=2, noisy=False, runs=4,
        )
        assert result.per_acquisition.shape == (4, 6)
        assert np.unique(result.per_acquisition, axis=0).shape[0] == 1


def test_reference_threads_critical_section(machine):
    """reference_spinlock stores the caller's critical_section, so its
    run_seconds view agrees with its sequentially-accumulated total."""
    placement = machine.placement(4, policy="block")
    ref = reference_spinlock(
        machine, "mcs", placement, acquisitions_per_thread=4,
        critical_section=1e-6, noisy=False,
    )
    assert ref.run_seconds[0] == pytest.approx(ref.total_seconds, rel=1e-12)
    new = simulate_spinlock(
        machine, "mcs", placement, acquisitions_per_thread=4,
        critical_section=1e-6, noisy=False,
    )
    assert new.total_seconds == pytest.approx(ref.total_seconds, rel=1e-12)
