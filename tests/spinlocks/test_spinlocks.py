"""Tests for the §5.1 spinlock study."""

import numpy as np
import pytest

from repro.cluster import presets
from repro.cluster.topology import Placement
from repro.machine import SimMachine
from repro.spinlocks import (
    ALGORITHMS,
    barrier_lower_bound,
    contention_sweep,
    simulate_spinlock,
)


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=151
    )


class TestSimulation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_acquisitions_granted(self, machine, algorithm):
        placement = machine.placement(6, policy="block")
        result = simulate_spinlock(
            machine, algorithm, placement, acquisitions_per_thread=5
        )
        assert result.acquisitions == 30
        assert result.per_acquisition.shape == (30,)
        assert result.total_seconds > 0

    def test_unknown_algorithm(self, machine):
        with pytest.raises(ValueError, match="unknown algorithm"):
            simulate_spinlock(machine, "magic", machine.placement(2))

    def test_deterministic(self, machine):
        placement = machine.placement(4, policy="block")
        a = simulate_spinlock(machine, "mcs", placement)
        b = simulate_spinlock(machine, "mcs", placement)
        np.testing.assert_array_equal(a.per_acquisition, b.per_acquisition)

    def test_single_thread_cheap(self, machine):
        placement = machine.placement(1)
        result = simulate_spinlock(
            machine, "test_and_set", placement, acquisitions_per_thread=8,
            noisy=False,
        )
        # Re-acquiring a line already in the own cache is the SELF cost.
        assert result.mean_handoff < 1e-7


class TestLocalityDominates:
    def test_cross_socket_contention_costlier(self, machine):
        """§5.1 guideline 1: *which* cores contend matters.  The same
        thread count confined to one socket is cheaper than spread over
        two sockets."""
        topo = machine.topology
        same_socket = Placement(topo, [0, 1, 2, 3])
        cross_socket = Placement(topo, [0, 1, 4, 5])
        t_same = simulate_spinlock(
            machine, "mcs", same_socket, noisy=False
        ).mean_handoff
        t_cross = simulate_spinlock(
            machine, "mcs", cross_socket, noisy=False
        ).mean_handoff
        assert t_cross > t_same

    def test_simple_lock_degrades_faster(self, machine):
        """§5.1 guideline 2: contention punishes test-and-set far more than
        the queue lock — the storm grows with the waiter count."""
        sweep = contention_sweep(
            machine, (2, 8), algorithms=("test_and_set", "mcs"),
            acquisitions_per_thread=8,
        )
        tas_growth = (
            sweep["test_and_set"][8].mean_handoff
            / sweep["test_and_set"][2].mean_handoff
        )
        mcs_growth = sweep["mcs"][8].mean_handoff / sweep["mcs"][2].mean_handoff
        assert tas_growth > 2.0 * mcs_growth

    def test_mcs_handoffs_are_single_transfers(self, machine):
        """Queue-lock handoffs cost one line transfer: bounded by the most
        distant pair, regardless of contention."""
        placement = machine.placement(8, policy="block")
        result = simulate_spinlock(machine, "mcs", placement, noisy=False)
        from repro.spinlocks.model import _line_cost

        worst_pair = max(
            _line_cost(machine, placement, a, b)
            for a in range(8)
            for b in range(8)
            if a != b
        )
        assert result.per_acquisition.max() <= worst_pair + 1e-12


class TestBarrierLowerBound:
    def test_bound_below_measured_barriers(self, machine):
        """§5.1: the cheapest atomic arrival bounds any barrier's cost."""
        from repro.barriers import dissemination_barrier, measure_barrier

        placement = machine.placement(8)
        bound = barrier_lower_bound(machine, placement)
        measured = measure_barrier(
            machine, dissemination_barrier(8), placement, runs=8
        ).mean_worst
        assert 0 < bound < measured

    def test_single_process(self, machine):
        assert barrier_lower_bound(machine, machine.placement(1)) == 0.0
