"""Batched BSP runs axis vs the scalar runtime: identity and distribution.

The contract under test (docs/engine.md, "BSP runtime draws"):

* clean path (``noisy=False``): every replication of
  ``bsp_run(..., runs=R)`` is *bit-identical* to the scalar runtime — the
  vectorized clocks, transfer scheduler and batched sync apply the same
  floating-point operations per replication, across payload shapes,
  process counts, and communication mixes (puts, gets, sends);
* noisy path: the replication-major bulk draws produce different
  individual runs but statistically equivalent ensembles;
* data movement is noise-independent: a batched run returns exactly the
  scalar run's values and delivered buffers.

Mirrors ``tests/simmpi/test_engine_batch.py`` one layer up the stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsplib import bsp_run
from repro.cluster import presets
from repro.kernels import DAXPY, DOT_PRODUCT
from repro.machine import SimMachine


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=77
    )


def make_program(payload_elems: int, supersteps: int, use_gets: bool,
                 use_sends: bool, reps: int):
    """An SPMD program exercising every communication kind with
    deterministic (time-independent) control flow."""

    def program(ctx):
        p, pid = ctx.nprocs, ctx.pid
        window = np.zeros(payload_elems * p)
        scratch = np.zeros(payload_elems)
        ctx.push_reg(window)
        ctx.sync()
        src = np.arange(payload_elems, dtype=float) + pid
        for step in range(supersteps):
            ctx.charge_kernel(DAXPY, 512 + 128 * step, reps=reps)
            ctx.put((pid + 1 + step) % p, src, window,
                    offset=payload_elems * pid)
            if use_gets:
                ctx.get((pid + 2) % p, window, 0, scratch,
                        nelems=payload_elems)
            if use_sends:
                ctx.send((pid + 1) % p, b"", src[: min(4, payload_elems)])
                if ctx.qsize()[0]:
                    ctx.move()
            ctx.charge_kernel(DOT_PRODUCT, 256)
            ctx.sync()
        return float(window.sum() + scratch.sum())

    return program


RECORD_FIELDS = (
    "entry_times", "compute_seconds", "last_arrival", "sync_exit",
    "exit_times",
)


class TestCleanBitIdentity:
    @given(
        p=st.integers(2, 12),
        payload_elems=st.integers(1, 48),
        supersteps=st.integers(1, 3),
        use_gets=st.booleans(),
        use_sends=st.booleans(),
        runs=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_matches_scalar_bitwise(
        self, p, payload_elems, supersteps, use_gets, use_sends, runs
    ):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=7
        )
        program = make_program(payload_elems, supersteps, use_gets,
                               use_sends, reps=2)
        ref = bsp_run(machine, p, program, label="clean", noisy=False)
        bat = bsp_run(machine, p, program, label="clean", noisy=False,
                      runs=runs)
        assert bat.final_times.shape == (runs, p)
        for r in range(runs):
            assert bat.final_times[r].tolist() == ref.final_times.tolist()
        assert bat.return_values == ref.return_values
        assert bat.superstep_count == ref.superstep_count
        for rec_s, rec_b in zip(ref.supersteps, bat.supersteps):
            assert rec_s.messages == rec_b.messages
            assert rec_s.payload_bytes == rec_b.payload_bytes
            for name in RECORD_FIELDS:
                scalar = getattr(rec_s, name)
                batch = getattr(rec_b, name)
                assert batch.shape == (runs, p)
                for r in range(runs):
                    assert batch[r].tolist() == scalar.tolist(), name

    def test_single_process_run(self, machine):
        def program(ctx):
            ctx.charge_kernel(DAXPY, 1024)
            ctx.sync()
            return ctx.pid

        res = bsp_run(machine, 1, program, label="solo", noisy=False, runs=3)
        assert res.final_times.shape == (3, 1)
        assert res.return_values == [0]

    def test_scalar_total_seconds_unchanged_semantics(self, machine):
        program = make_program(4, 1, False, False, reps=1)
        res = bsp_run(machine, 4, program, label="scal", noisy=False)
        assert res.runs is None
        assert res.total_seconds == float(res.final_times.max())
        assert res.run_seconds.shape == (1,)


class TestNoisyDistribution:
    def test_ensemble_agrees_with_looped_scalar_runs(self):
        """Two-sample KS between a batched ensemble and independent scalar
        runs (per-run distinct labels select independent streams of the
        same distribution)."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=5
        )
        program = make_program(8, 2, True, False, reps=2)
        runs = 200
        batch = bsp_run(
            machine, 8, program, label="ks-batch", runs=runs
        ).run_seconds
        loop = np.array([
            bsp_run(machine, 8, program, label=f"ks-loop-{r}").total_seconds
            for r in range(runs)
        ])
        # 1% two-sample KS critical value for n = m = 200 is ~0.163.
        grid = np.sort(np.concatenate([batch, loop]))
        ks = np.abs(
            np.searchsorted(np.sort(batch), grid, side="right") / runs
            - np.searchsorted(np.sort(loop), grid, side="right") / runs
        ).max()
        assert ks < 0.163, f"KS={ks:.3f}"
        assert np.median(batch) == pytest.approx(np.median(loop), rel=0.05)

    def test_batch_reproducible_and_rows_vary(self, machine):
        program = make_program(6, 2, False, True, reps=1)
        a = bsp_run(machine, 6, program, label="rep", runs=16)
        b = bsp_run(machine, 6, program, label="rep", runs=16)
        assert a.final_times.tolist() == b.final_times.tolist()
        assert np.unique(a.run_seconds).size > 1

    def test_noisy_data_movement_matches_scalar(self, machine):
        """Only time is noisy: delivered data and return values are those
        of the scalar run."""
        program = make_program(5, 2, True, True, reps=1)
        scalar = bsp_run(machine, 5, program, label="data")
        batch = bsp_run(machine, 5, program, label="data", runs=4)
        assert batch.return_values == scalar.return_values

    def test_run_seconds_and_total(self, machine):
        program = make_program(4, 1, False, False, reps=1)
        res = bsp_run(machine, 4, program, label="stats", runs=8)
        assert res.runs == 8
        assert res.run_seconds.shape == (8,)
        assert res.total_seconds == pytest.approx(res.run_seconds.mean())


class TestEdgeCases:
    def test_runs_validated(self, machine):
        program = make_program(2, 1, False, False, reps=1)
        with pytest.raises(ValueError, match="runs"):
            bsp_run(machine, 2, program, label="bad", runs=0)

    def test_runs_one_shapes(self, machine):
        program = make_program(3, 1, True, False, reps=1)
        res = bsp_run(machine, 3, program, label="one", runs=1)
        assert res.final_times.shape == (1, 3)
        assert res.runs == 1
        for rec in res.supersteps:
            assert rec.exit_times.shape == (1, 3)

    def test_comm_free_superstep(self, machine):
        """A superstep with no outbound records exercises the batched
        scheduler's empty path."""

        def program(ctx):
            ctx.charge_kernel(DAXPY, 256)
            ctx.sync()

        scalar = bsp_run(machine, 4, program, label="quiet", noisy=False)
        batch = bsp_run(
            machine, 4, program, label="quiet", noisy=False, runs=2
        )
        for r in range(2):
            assert batch.final_times[r].tolist() == scalar.final_times.tolist()
        assert batch.supersteps[0].messages == 0
