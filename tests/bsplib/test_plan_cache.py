"""The per-superstep transfer-plan cache (docs/engine.md,
"Transfer-plan cache").

A BSP program's transfer schedule is deterministic — only noise varies
across supersteps and replications — so the canonical ``(pid, sequence)``
plan (endpoint arrays, clean transit bases, stable-argsort skeleton) is
built once per distinct superstep shape and replayed.  The cache must be
*invisible*: every scheduled time with the cache on is bit-identical to
the cache-off build-per-superstep path, for the scalar and batched
schedulers, clean and noisy alike.
"""

import numpy as np
import pytest

from repro.bsplib import bsp_run
from repro.bsplib.runtime import BSPRuntime
from repro.cluster import presets
from repro.kernels import DAXPY
from repro.machine import SimMachine

from .test_runtime_batch import RECORD_FIELDS, make_program


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=77
    )


def assert_identical_runs(a, b):
    assert a.final_times.tolist() == b.final_times.tolist()
    assert a.return_values == b.return_values
    assert a.superstep_count == b.superstep_count
    for rec_a, rec_b in zip(a.supersteps, b.supersteps):
        assert rec_a.messages == rec_b.messages
        assert rec_a.payload_bytes == rec_b.payload_bytes
        for name in RECORD_FIELDS:
            assert getattr(rec_a, name).tolist() == \
                getattr(rec_b, name).tolist(), name


class TestCacheInvisibility:
    @pytest.mark.parametrize("noisy", [True, False])
    def test_scalar_bit_identity(self, machine, noisy):
        program = make_program(8, 4, True, True, reps=2)
        on = bsp_run(machine, 6, program, label="pc", noisy=noisy)
        off = bsp_run(machine, 6, program, label="pc", noisy=noisy,
                      plan_cache=False)
        assert_identical_runs(on, off)

    @pytest.mark.parametrize("noisy", [True, False])
    def test_batch_bit_identity(self, machine, noisy):
        program = make_program(8, 4, True, True, reps=2)
        on = bsp_run(machine, 6, program, label="pc", noisy=noisy, runs=5)
        off = bsp_run(machine, 6, program, label="pc", noisy=noisy, runs=5,
                      plan_cache=False)
        assert_identical_runs(on, off)

    def test_mixed_shape_program(self, machine):
        """Supersteps with different communication shapes get distinct
        plans; repeating shapes replay cached ones."""

        def program(ctx):
            p, pid = ctx.nprocs, ctx.pid
            window = np.zeros(64 * p)
            ctx.push_reg(window)
            ctx.sync()
            src = np.arange(16, dtype=float)
            for step in range(6):
                ctx.charge_kernel(DAXPY, 512)
                # Alternate between two shapes: puts-only and puts+gets.
                ctx.put((pid + 1) % p, src, window, offset=16 * pid)
                if step % 2:
                    scratch = np.zeros(8)
                    ctx.get((pid + 2) % p, window, 0, scratch, nelems=8)
                ctx.sync()

        on = bsp_run(machine, 4, program, label="mixed")
        off = bsp_run(machine, 4, program, label="mixed", plan_cache=False)
        assert_identical_runs(on, off)


class TestCachePopulation:
    def test_repeated_shape_builds_one_plan(self, machine):
        def program(ctx):
            p, pid = ctx.nprocs, ctx.pid
            window = np.zeros(16 * p)
            ctx.push_reg(window)
            ctx.sync()
            src = np.arange(16, dtype=float)
            for _ in range(5):
                ctx.put((pid + 1) % p, src, window, offset=16 * pid)
                ctx.sync()

        runtime = BSPRuntime(machine, 4, label="count")
        runtime.run(program)
        # The 5 identical data supersteps must collapse onto one entry
        # (the registration superstep has no outbound records and makes
        # no entry at all).
        assert runtime._plan_cache is not None
        assert len(runtime._plan_cache) == 1

    def test_distinct_shapes_get_distinct_plans(self, machine):
        def program(ctx):
            p, pid = ctx.nprocs, ctx.pid
            window = np.zeros(64 * p)
            ctx.push_reg(window)
            ctx.sync()
            for nelems in (4, 8, 4):
                src = np.arange(nelems, dtype=float)
                ctx.put((pid + 1) % p, src, window, offset=0)
                ctx.sync()

        runtime = BSPRuntime(machine, 4, label="shapes")
        runtime.run(program)
        assert len(runtime._plan_cache) == 2

    def test_cache_disabled(self, machine):
        program = make_program(4, 2, False, False, reps=1)
        runtime = BSPRuntime(machine, 4, label="off", plan_cache=False)
        runtime.run(program)
        assert runtime._plan_cache is None
