"""Unit tests for the payload-carrying sync cost model (§6.4-6.5)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.barriers.cost_model import CommParameters
from repro.bench import benchmark_comm
from repro.bsplib.sync_model import (
    COUNT_BYTES,
    dissemination_payloads,
    measure_sync_cost,
    predict_sync_cost,
    sync_pattern,
)
from repro.cluster import presets
from repro.machine import SimMachine


class TestDisseminationPayloads:
    def test_power_of_two_doubles(self):
        payloads = dissemination_payloads(8)
        assert payloads == [1 * 8 * 4.0, 2 * 8 * 4.0, 4 * 8 * 4.0]

    def test_non_power_last_stage(self):
        """§6.5: the last stage carries P - 2^(ceil(log2 P)-1) vectors."""
        p = 12
        payloads = dissemination_payloads(p)
        stages = math.ceil(math.log2(p))
        assert len(payloads) == stages
        assert payloads[-1] == (p - 2 ** (stages - 1)) * p * COUNT_BYTES

    def test_total_volume_is_full_map(self):
        """Across all stages every process forwards P-1 count vectors; with
        its own vector that completes the full P x P map at every process."""
        for p in (2, 5, 8, 13, 64):
            payloads = dissemination_payloads(p)
            vectors = sum(pl / (p * COUNT_BYTES) for pl in payloads)
            assert vectors == pytest.approx(p - 1)

    def test_single_process_empty(self):
        assert dissemination_payloads(1) == []


class TestSyncPattern:
    def test_is_dissemination(self):
        pattern = sync_pattern(16)
        assert pattern.num_stages == 4
        assert pattern.name == "bsp-sync"


class TestPredictVsMeasure:
    @pytest.fixture(scope="class")
    def machine(self):
        return SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=13
        )

    def test_payload_raises_cost(self, machine):
        placement = machine.placement(16)
        report = benchmark_comm(
            machine, placement, samples=7,
            sizes=tuple(2**k for k in range(0, 17, 4)),
        )
        from repro.barriers.cost_model import predict_barrier_cost

        bare = predict_barrier_cost(sync_pattern(16), report.params)
        loaded = predict_sync_cost(report.params)
        assert loaded > bare

    def test_prediction_tracks_measurement(self, machine):
        """Figs. 6.3-6.4: the estimate must land within a factor of ~2.5 of
        the measured payload-carrying sync on this platform."""
        placement = machine.placement(32)
        report = benchmark_comm(
            machine, placement, samples=7,
            sizes=tuple(2**k for k in range(0, 17, 4)),
        )
        predicted = predict_sync_cost(report.params)
        measured = measure_sync_cost(machine, placement, runs=16).mean_worst
        assert predicted == pytest.approx(measured, rel=1.5)

    def test_nprocs_mismatch_rejected(self, machine):
        placement = machine.placement(4)
        report = benchmark_comm(
            machine, placement, samples=5,
            sizes=(1, 1024),
        )
        with pytest.raises(ValueError):
            predict_sync_cost(report.params, nprocs=8)


@given(p=st.integers(2, 200))
@settings(max_examples=50, deadline=None)
def test_payload_properties(p):
    payloads = dissemination_payloads(p)
    assert len(payloads) == math.ceil(math.log2(p))
    assert all(pl > 0 for pl in payloads)
    # Payloads double until the final correction stage.
    for a, b in zip(payloads[:-2], payloads[1:-1]):
        assert b == 2 * a
