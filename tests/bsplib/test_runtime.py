"""Integration tests for the BSPlib runtime (Ch. 6)."""

import numpy as np
import pytest

from repro.bsplib import BSPAbort, BSPError, bsp_run
from repro.cluster import presets
from repro.kernels import DAXPY, DOT_PRODUCT
from repro.machine import SimMachine


@pytest.fixture
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=9
    )


class TestBasicExecution:
    def test_pid_and_nprocs(self, machine):
        def program(ctx):
            return (ctx.pid, ctx.nprocs)

        res = bsp_run(machine, 4, program, label="ids")
        assert res.return_values == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_single_process(self, machine):
        def program(ctx):
            ctx.sync()
            return ctx.pid

        res = bsp_run(machine, 1, program, label="single")
        assert res.return_values == [0]
        assert res.superstep_count == 1

    def test_superstep_count(self, machine):
        def program(ctx):
            for _ in range(5):
                ctx.sync()

        res = bsp_run(machine, 4, program, label="count")
        assert res.superstep_count == 5

    def test_virtual_time_monotone(self, machine):
        def program(ctx):
            times = [ctx.time()]
            ctx.charge_kernel(DAXPY, 1024, reps=16)
            times.append(ctx.time())
            ctx.sync()
            times.append(ctx.time())
            return times

        res = bsp_run(machine, 4, program, label="time")
        for times in res.return_values:
            assert times == sorted(times)
            assert times[1] > times[0]

    def test_deterministic_given_seed(self, machine):
        def program(ctx):
            ctx.charge_kernel(DAXPY, 512, reps=8)
            ctx.sync()
            return ctx.time()

        a = bsp_run(machine, 4, program, label="det")
        b = bsp_run(machine, 4, program, label="det")
        assert a.return_values == b.return_values

    def test_begin_end_lifecycle(self, machine):
        def program(ctx):
            ctx.init()
            ctx.begin()
            ctx.sync()
            ctx.end()

        bsp_run(machine, 2, program, label="life")

    def test_double_begin_rejected(self, machine):
        def program(ctx):
            ctx.begin()
            ctx.begin()

        with pytest.raises(BSPError, match="twice"):
            bsp_run(machine, 2, program, label="dbl")

    def test_sync_after_end_rejected(self, machine):
        def program(ctx):
            ctx.end()
            ctx.sync()

        with pytest.raises(BSPError):
            bsp_run(machine, 2, program, label="after-end")


class TestPutSemantics:
    def test_put_visible_after_sync(self, machine):
        def program(ctx):
            data = np.zeros(4)
            ctx.push_reg(data)
            ctx.sync()
            right = (ctx.pid + 1) % ctx.nprocs
            ctx.put(right, np.full(1, float(ctx.pid)), data, offset=0)
            before = data[0]
            ctx.sync()
            left = (ctx.pid - 1) % ctx.nprocs
            return before, data[0], float(left)

        res = bsp_run(machine, 4, program, label="put")
        for before, after, expected in res.return_values:
            assert before == 0.0  # not visible until sync (BSP semantics)
            assert after == expected

    def test_put_is_buffered(self, machine):
        """The source buffer may be reused immediately after bsp_put."""

        def program(ctx):
            data = np.zeros(1)
            ctx.push_reg(data)
            ctx.sync()
            src = np.array([42.0])
            ctx.put((ctx.pid + 1) % ctx.nprocs, src, data)
            src[0] = -1.0  # must NOT affect the transferred value
            ctx.sync()
            return data[0]

        res = bsp_run(machine, 3, program, label="buffered")
        assert all(v == 42.0 for v in res.return_values)

    def test_hpput_is_unbuffered(self, machine):
        """hpput transfers the value at sync time (§6.2)."""

        def program(ctx):
            data = np.zeros(1)
            ctx.push_reg(data)
            ctx.sync()
            src = np.array([42.0])
            ctx.hpput((ctx.pid + 1) % ctx.nprocs, src, data)
            src[0] = 7.0  # visible: high-performance puts do not buffer
            ctx.sync()
            return data[0]

        res = bsp_run(machine, 3, program, label="hp")
        assert all(v == 7.0 for v in res.return_values)

    def test_put_with_offset(self, machine):
        def program(ctx):
            gathered = np.zeros(ctx.nprocs)
            ctx.push_reg(gathered)
            ctx.sync()
            for q in range(ctx.nprocs):
                ctx.put(q, np.array([float(ctx.pid)]), gathered, offset=ctx.pid)
            ctx.sync()
            return gathered.tolist()

        res = bsp_run(machine, 4, program, label="offset")
        for values in res.return_values:
            assert values == [0.0, 1.0, 2.0, 3.0]

    def test_put_overrun_rejected(self, machine):
        def program(ctx):
            data = np.zeros(2)
            ctx.push_reg(data)
            ctx.sync()
            ctx.put(0, np.zeros(4), data, offset=1)
            ctx.sync()

        with pytest.raises(BSPError, match="overruns"):
            bsp_run(machine, 2, program, label="overrun")

    def test_put_to_invalid_pid(self, machine):
        def program(ctx):
            data = np.zeros(2)
            ctx.push_reg(data)
            ctx.sync()
            ctx.put(99, np.zeros(1), data)

        with pytest.raises(BSPError, match="out of range"):
            bsp_run(machine, 2, program, label="badpid")


class TestGetSemantics:
    def test_get_reads_remote_value(self, machine):
        def program(ctx):
            mine = np.array([float(ctx.pid) * 10.0])
            ctx.push_reg(mine)
            ctx.sync()
            fetched = np.zeros(1)
            ctx.get((ctx.pid + 1) % ctx.nprocs, mine, 0, fetched)
            ctx.sync()
            return fetched[0]

        res = bsp_run(machine, 4, program, label="get")
        assert res.return_values == [10.0, 20.0, 30.0, 0.0]

    def test_get_reads_pre_put_value(self, machine):
        """BSPlib ordering: gets observe values from before the superstep's
        puts are applied."""

        def program(ctx):
            data = np.array([float(ctx.pid)])
            ctx.push_reg(data)
            ctx.sync()
            fetched = np.zeros(1)
            other = (ctx.pid + 1) % ctx.nprocs
            ctx.get(other, data, 0, fetched)
            ctx.put(other, np.array([99.0]), data)
            ctx.sync()
            return fetched[0], data[0]

        res = bsp_run(machine, 2, program, label="getput")
        for pid, (fetched, mine) in enumerate(res.return_values):
            assert fetched == float((pid + 1) % 2)  # pre-put value
            assert mine == 99.0  # put landed afterwards

    def test_hpget(self, machine):
        def program(ctx):
            mine = np.arange(4, dtype=float) + ctx.pid * 100
            ctx.push_reg(mine)
            ctx.sync()
            fetched = np.zeros(2)
            ctx.hpget((ctx.pid + 1) % ctx.nprocs, mine, 1, fetched)
            ctx.sync()
            return fetched.tolist()

        res = bsp_run(machine, 2, program, label="hpget")
        assert res.return_values[0] == [101.0, 102.0]
        assert res.return_values[1] == [1.0, 2.0]

    def test_get_overrun_rejected(self, machine):
        def program(ctx):
            mine = np.zeros(2)
            ctx.push_reg(mine)
            ctx.sync()
            fetched = np.zeros(1)
            ctx.get(0, mine, 0, fetched, nelems=5)

        with pytest.raises(BSPError, match="overruns"):
            bsp_run(machine, 2, program, label="getover")


class TestAbort:
    def test_abort_reaches_caller(self, machine):
        def program(ctx):
            if ctx.pid == 1:
                ctx.abort("deliberate failure")
            ctx.sync()

        with pytest.raises(BSPAbort, match="deliberate failure"):
            bsp_run(machine, 4, program, label="abort")

    def test_program_exception_propagates(self, machine):
        def program(ctx):
            if ctx.pid == 0:
                raise ValueError("boom")
            ctx.sync()

        with pytest.raises((ValueError, BSPError)):
            bsp_run(machine, 3, program, label="exc")


class TestCollectiveDiscipline:
    def test_mismatched_sync_detected(self, machine):
        def program(ctx):
            if ctx.pid == 0:
                ctx.sync()  # others exit without syncing

        with pytest.raises(BSPError, match="mismatch"):
            bsp_run(machine, 3, program, label="mismatch")

    def test_unequal_push_reg_detected(self, machine):
        def program(ctx):
            if ctx.pid == 0:
                ctx.push_reg(np.zeros(1))
            ctx.sync()

        with pytest.raises(BSPError, match="collectively"):
            bsp_run(machine, 2, program, label="push-mismatch")


class TestOverlapAccounting:
    def test_early_commit_overlaps_compute(self, machine):
        """Fig. 1.2's point: committing communication before computing masks
        the transfer; committing after exposes it."""

        def early(ctx):
            data = np.zeros(25000)
            ctx.push_reg(data)
            ctx.sync()
            ctx.put((ctx.pid + 1) % ctx.nprocs, np.ones(25000), data)
            ctx.charge_kernel(DAXPY, 4096, reps=160)  # ~1.4 ms of compute
            ctx.sync()
            return ctx.time()

        def late(ctx):
            data = np.zeros(25000)
            ctx.push_reg(data)
            ctx.sync()
            ctx.charge_kernel(DAXPY, 4096, reps=160)
            ctx.put((ctx.pid + 1) % ctx.nprocs, np.ones(25000), data)
            ctx.sync()
            return ctx.time()

        t_early = bsp_run(machine, 4, early, label="early", noisy=False).total_seconds
        t_late = bsp_run(machine, 4, late, label="late", noisy=False).total_seconds
        assert t_early < t_late

    def test_superstep_records_shape(self, machine):
        def program(ctx):
            data = np.zeros(8)
            ctx.push_reg(data)
            ctx.sync()
            ctx.put((ctx.pid + 1) % ctx.nprocs, np.ones(8), data)
            ctx.sync()

        res = bsp_run(machine, 4, program, label="records")
        assert res.superstep_count == 2
        rec = res.supersteps[1]
        assert rec.messages == 4
        assert rec.entry_times.shape == (4,)
        assert (rec.exit_times >= rec.entry_times).all()
        assert (rec.exit_times >= rec.sync_exit - 1e-15).all()


class TestInnerProductIntegration:
    def test_matches_serial_result(self, machine):
        n_total = 64_000

        def program(ctx):
            p, pid = ctx.nprocs, ctx.pid
            local_n = n_total // p
            x = np.full(local_n, 0.5)
            y = np.full(local_n, 4.0)
            sums = np.zeros(p)
            ctx.push_reg(sums)
            ctx.sync()
            local = ctx.run_kernel(DOT_PRODUCT, (x, y), local_n)
            for q in range(p):
                ctx.put(q, np.array([local]), sums, offset=pid)
            ctx.sync()
            return float(sums.sum())

        res = bsp_run(machine, 8, program, label="inner")
        assert all(v == pytest.approx(0.5 * 4.0 * n_total) for v in res.return_values)
