"""Tests for the collectives library over BSPlib."""

import numpy as np
import pytest

from repro.bsplib import bsp_run
from repro.bsplib.collectives import (
    allgather,
    allreduce,
    alltoall,
    broadcast,
    gather,
    scan,
)
from repro.cluster import presets
from repro.machine import SimMachine


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=181
    )


class TestBroadcast:
    def test_root_value_everywhere(self, machine):
        def program(ctx):
            value = np.array([1.5, 2.5]) if ctx.pid == 2 else np.zeros(2)
            return broadcast(ctx, value, root=2).tolist()

        res = bsp_run(machine, 5, program, label="bcast")
        assert all(v == [1.5, 2.5] for v in res.return_values)

    def test_scalar_payload(self, machine):
        def program(ctx):
            return float(broadcast(ctx, 7.0 if ctx.pid == 0 else 0.0)[0])

        res = bsp_run(machine, 3, program, label="bcast-scalar")
        assert res.return_values == [7.0, 7.0, 7.0]


class TestGather:
    def test_root_collects_in_rank_order(self, machine):
        def program(ctx):
            out = gather(ctx, np.array([float(ctx.pid)]), root=1)
            return None if out is None else out.tolist()

        res = bsp_run(machine, 4, program, label="gather")
        assert res.return_values[1] == [0.0, 1.0, 2.0, 3.0]
        assert res.return_values[0] is None

    def test_allgather(self, machine):
        def program(ctx):
            return allgather(ctx, np.array([float(ctx.pid)] * 2)).tolist()

        res = bsp_run(machine, 3, program, label="allgather")
        expected = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]
        assert all(v == expected for v in res.return_values)


class TestAllreduce:
    @pytest.mark.parametrize(
        "op,expected", [("sum", 6.0), ("max", 3.0), ("min", 0.0), ("prod", 0.0)]
    )
    def test_ops(self, machine, op, expected):
        def program(ctx):
            return float(allreduce(ctx, float(ctx.pid), op=op)[0])

        res = bsp_run(machine, 4, program, label=f"ar-{op}")
        assert all(v == expected for v in res.return_values)

    def test_vector_reduction(self, machine):
        def program(ctx):
            return allreduce(ctx, np.array([1.0, float(ctx.pid)])).tolist()

        res = bsp_run(machine, 4, program, label="ar-vec")
        assert all(v == [4.0, 6.0] for v in res.return_values)

    def test_unknown_op(self, machine):
        def program(ctx):
            allreduce(ctx, 1.0, op="xor")

        with pytest.raises(ValueError, match="unknown op"):
            bsp_run(machine, 2, program, label="ar-bad")


class TestScan:
    def test_inclusive_prefix_sums(self, machine):
        def program(ctx):
            return float(scan(ctx, float(ctx.pid + 1))[0])

        res = bsp_run(machine, 4, program, label="scan")
        assert res.return_values == [1.0, 3.0, 6.0, 10.0]


class TestAlltoall:
    def test_total_exchange(self, machine):
        p = 3

        def program(ctx):
            blocks = [np.array([10.0 * ctx.pid + q]) for q in range(p)]
            return alltoall(ctx, blocks).tolist()

        res = bsp_run(machine, p, program, label="a2a")
        # Process q receives blocks[q] of every source, in source order.
        for q, received in enumerate(res.return_values):
            assert received == [10.0 * src + q for src in range(p)]

    def test_block_count_checked(self, machine):
        def program(ctx):
            alltoall(ctx, [np.zeros(1)])

        with pytest.raises(Exception):
            bsp_run(machine, 3, program, label="a2a-bad")


class TestComposition:
    def test_dot_product_via_collectives(self, machine):
        """The bspinprod idiom in two lines of library calls."""
        n_total = 8000

        def program(ctx):
            local_n = n_total // ctx.nprocs
            x = np.full(local_n, 0.5)
            y = np.full(local_n, 2.0)
            local = float(x @ y)
            return float(allreduce(ctx, local)[0])

        res = bsp_run(machine, 8, program, label="dot-coll")
        assert all(v == pytest.approx(n_total) for v in res.return_values)

    def test_registration_state_clean_after_collectives(self, machine):
        """Collectives pop their registrations: repeated use in a loop must
        not leak slots (the queued pop commits at the caller's next sync,
        per BSPlib registration semantics)."""
        def program(ctx):
            for i in range(5):
                broadcast(ctx, float(i) if ctx.pid == 0 else 0.0)
            ctx.sync()  # commit the last collective's queued pop
            return ctx._state.regs.registered_count

        res = bsp_run(machine, 3, program, label="reg-clean")
        assert all(v == 0 for v in res.return_values)
