"""Unit tests for BSMP messaging, tag sizes, and registration (§6.1-6.2)."""

import numpy as np
import pytest

from repro.bsplib import BSPError, RegistrationTable, TagSizeError, bsp_run
from repro.bsplib.errors import CommunicationError, RegistrationError
from repro.bsplib.messages import HEADER_BYTES, Header, SignalType
from repro.cluster import presets
from repro.machine import SimMachine


@pytest.fixture
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=21
    )


class TestHeader:
    def test_six_integers(self):
        header = Header(SignalType.PUT, 1, 2, 3, 4, 5)
        assert header.as_tuple() == (0, 1, 2, 3, 4, 5)
        assert HEADER_BYTES == 24


class TestRegistrationTable:
    def test_push_commit_lookup(self):
        table = RegistrationTable()
        a = np.zeros(4)
        table.queue_push(a)
        table.commit([0])
        assert table.index_of(a) == 0
        assert table.array_at(0) is a

    def test_restack_semantics(self):
        """Re-registering the same buffer: latest registration wins; pop
        removes the most recent (BSPlib stack semantics)."""
        table = RegistrationTable()
        a = np.zeros(4)
        table.queue_push(a)
        table.commit([0])
        table.queue_push(a)
        table.commit([1])
        assert table.index_of(a) == 1
        table.queue_pop(a)
        table.commit([])
        assert table.index_of(a) == 0

    def test_pop_unregistered_rejected(self):
        table = RegistrationTable()
        with pytest.raises(RegistrationError):
            table.queue_pop(np.zeros(2))

    def test_lookup_unregistered_rejected(self):
        table = RegistrationTable()
        with pytest.raises(RegistrationError, match="push_reg"):
            table.index_of(np.zeros(2))

    def test_array_at_missing_slot(self):
        table = RegistrationTable()
        with pytest.raises(RegistrationError):
            table.array_at(7)

    def test_non_array_rejected(self):
        table = RegistrationTable()
        with pytest.raises(RegistrationError):
            table.queue_push([1, 2, 3])


class TestRegistrationInPrograms:
    def test_registration_effective_next_superstep(self, machine):
        def program(ctx):
            data = np.zeros(2)
            ctx.push_reg(data)
            # Using it before sync must fail: not yet committed.
            with pytest.raises(RegistrationError):
                ctx.put(0, np.zeros(1), data)
            ctx.sync()
            ctx.put(ctx.pid, np.ones(2), data)
            ctx.sync()
            return data.tolist()

        res = bsp_run(machine, 2, program, label="reg-timing")
        assert all(v == [1.0, 1.0] for v in res.return_values)

    def test_pop_reg_then_use_fails(self, machine):
        def program(ctx):
            data = np.zeros(2)
            ctx.push_reg(data)
            ctx.sync()
            ctx.pop_reg(data)
            ctx.sync()
            ctx.put(0, np.zeros(1), data)

        with pytest.raises(BSPError):
            bsp_run(machine, 2, program, label="popped")

    def test_different_local_sizes_allowed(self, machine):
        """BSPlib allows registrations of different sizes per process."""

        def program(ctx):
            data = np.zeros(4 + ctx.pid)
            ctx.push_reg(data)
            ctx.sync()
            ctx.put((ctx.pid + 1) % ctx.nprocs, np.ones(2), data)
            ctx.sync()
            return data[:2].tolist()

        res = bsp_run(machine, 2, program, label="sizes")
        assert all(v == [1.0, 1.0] for v in res.return_values)


class TestTaggedMessages:
    def test_send_move_roundtrip(self, machine):
        def program(ctx):
            ctx.set_tagsize(4)
            ctx.sync()
            dest = (ctx.pid + 1) % ctx.nprocs
            ctx.send(dest, b"tag0", np.array([1.5, 2.5]))
            ctx.sync()
            count, total = ctx.qsize()
            length, tag = ctx.get_tag()
            payload = np.frombuffer(ctx.move(), dtype=float)
            return count, total, length, tag, payload.tolist()

        res = bsp_run(machine, 3, program, label="send")
        for count, total, length, tag, payload in res.return_values:
            assert count == 1
            assert total == 16
            assert length == 16
            assert tag == b"tag0"
            assert payload == [1.5, 2.5]

    def test_queue_flushed_each_superstep(self, machine):
        def program(ctx):
            ctx.set_tagsize(1)
            ctx.sync()
            ctx.send((ctx.pid + 1) % ctx.nprocs, b"a", b"payload")
            ctx.sync()
            first = ctx.qsize()[0]
            ctx.sync()  # queue not consumed: dropped at next sync
            second = ctx.qsize()[0]
            return first, second

        res = bsp_run(machine, 2, program, label="flush")
        assert all(v == (1, 0) for v in res.return_values)

    def test_fifo_by_source_then_sequence(self, machine):
        def program(ctx):
            ctx.set_tagsize(1)
            ctx.sync()
            if ctx.pid != 0:
                ctx.send(0, b"x", bytes([ctx.pid, 1]))
                ctx.send(0, b"x", bytes([ctx.pid, 2]))
            ctx.sync()
            order = []
            while ctx.get_tag()[0] != -1:
                order.append(tuple(ctx.move()))
            return order

        res = bsp_run(machine, 3, program, label="fifo")
        assert res.return_values[0] == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_hpmove(self, machine):
        def program(ctx):
            ctx.set_tagsize(2)
            ctx.sync()
            ctx.send((ctx.pid + 1) % ctx.nprocs, b"hi", b"zero-copy")
            ctx.sync()
            tag, payload = ctx.hpmove()
            return tag, payload

        res = bsp_run(machine, 2, program, label="hpmove")
        assert all(v == (b"hi", b"zero-copy") for v in res.return_values)

    def test_move_empty_queue_rejected(self, machine):
        def program(ctx):
            ctx.sync()
            ctx.move()

        with pytest.raises(CommunicationError):
            bsp_run(machine, 2, program, label="empty-move")

    def test_get_tag_empty_queue(self, machine):
        def program(ctx):
            ctx.sync()
            return ctx.get_tag()

        res = bsp_run(machine, 2, program, label="empty-tag")
        assert all(v == (-1, None) for v in res.return_values)


class TestTagSize:
    def test_takes_effect_next_superstep(self, machine):
        def program(ctx):
            previous = ctx.set_tagsize(4)
            # Current superstep still has the old (zero) tag size.
            with pytest.raises(TagSizeError):
                ctx.send(0, b"abcd", b"x")
            ctx.sync()
            ctx.send((ctx.pid + 1) % ctx.nprocs, b"abcd", b"x")
            ctx.sync()
            return previous, ctx.get_tag()[1]

        res = bsp_run(machine, 2, program, label="tagsize")
        assert all(v == (0, b"abcd") for v in res.return_values)

    def test_disagreement_detected(self, machine):
        def program(ctx):
            ctx.set_tagsize(ctx.pid + 1)
            ctx.sync()

        with pytest.raises(TagSizeError):
            bsp_run(machine, 2, program, label="tag-mismatch")

    def test_partial_call_detected(self, machine):
        def program(ctx):
            if ctx.pid == 0:
                ctx.set_tagsize(4)
            ctx.sync()

        with pytest.raises(TagSizeError):
            bsp_run(machine, 2, program, label="tag-partial")

    def test_wrong_tag_length_rejected(self, machine):
        def program(ctx):
            ctx.set_tagsize(2)
            ctx.sync()
            ctx.send(0, b"toolong", b"x")

        with pytest.raises(TagSizeError, match="tag size"):
            bsp_run(machine, 2, program, label="tag-len")
