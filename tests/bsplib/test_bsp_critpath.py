"""Critical-path extraction from BSP runtime provenance.

Superstep version of ``tests/obs/test_critpath.py``: for scalar and
batched runs across communication mixes (puts, gets, sends) the
extracted path must be a valid, connected, time-monotone event chain
ending bit-exactly at the run's makespan, its category attribution must
sum exactly (Fraction arithmetic) to that makespan, and recording must
leave every clock bit-identical.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro import obs
from repro.bsplib import bsp_run
from repro.cluster import presets
from repro.kernels import DAXPY, DOT_PRODUCT
from repro.machine import SimMachine
from repro.obs.critpath import CATEGORIES


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=77
    )


def make_program(payload_elems: int, supersteps: int, use_gets: bool,
                 use_sends: bool):
    def program(ctx):
        p, pid = ctx.nprocs, ctx.pid
        window = np.zeros(payload_elems * p)
        scratch = np.zeros(payload_elems)
        ctx.push_reg(window)
        ctx.sync()
        src = np.arange(payload_elems, dtype=float) + pid
        for step in range(supersteps):
            # Imbalanced compute so sync wait shows up on the path.
            ctx.charge_kernel(DAXPY, 512 + 256 * pid + 128 * step)
            ctx.put((pid + 1 + step) % p, src, window,
                    offset=payload_elems * pid)
            if use_gets:
                ctx.get((pid + 2) % p, window, 0, scratch,
                        nelems=payload_elems)
            if use_sends:
                ctx.send((pid + 1) % p, b"", src[: min(4, payload_elems)])
                if ctx.qsize()[0]:
                    ctx.move()
            ctx.charge_kernel(DOT_PRODUCT, 256)
            ctx.sync()
        return float(window.sum() + scratch.sum())

    return program


def final_makespans(result) -> np.ndarray:
    return np.atleast_2d(result.provenance.final_times).max(axis=1)


class TestBSPCriticalPath:
    @pytest.mark.parametrize("p", [2, 5, 8])
    @pytest.mark.parametrize("use_gets", [False, True])
    def test_batched_paths_valid_and_exact(self, machine, p, use_gets):
        program = make_program(8, 2, use_gets, use_sends=True)
        result = bsp_run(
            machine, p, program, label="critpath-batch", noisy=True,
            runs=4, provenance=True,
        )
        prov = result.provenance
        assert prov is not None and prov.runs == 4
        paths = obs.extract_paths(prov)
        makespans = final_makespans(result)
        assert len(paths) == 4
        for r, path in enumerate(paths):
            assert obs.validate_path(path) == []
            assert path.makespan == makespans[r]
            total = sum(path.category_totals().values(), Fraction(0))
            assert total == Fraction(path.makespan)
            assert set(path.category_totals()) <= set(CATEGORIES)

    @pytest.mark.parametrize("use_sends", [False, True])
    def test_scalar_path_valid_and_exact(self, machine, use_sends):
        program = make_program(6, 2, use_gets=True, use_sends=use_sends)
        result = bsp_run(
            machine, 5, program, label="critpath-scalar", noisy=True,
            provenance=True,
        )
        (path,) = obs.extract_paths(result.provenance)
        assert obs.validate_path(path) == []
        assert path.makespan == final_makespans(result)[0]
        assert sum(path.category_totals().values(), Fraction(0)) == (
            Fraction(path.makespan)
        )

    def test_sync_wait_is_attributed(self, machine):
        # Deliberately imbalanced compute: early finishers wait in the
        # barrier, and that wait must surface as the sync_wait category.
        program = make_program(4, 3, use_gets=False, use_sends=False)
        result = bsp_run(
            machine, 6, program, label="critpath-sync", noisy=True,
            runs=2, provenance=True,
        )
        totals = {}
        for path in obs.extract_paths(result.provenance):
            for cat, val in path.category_totals().items():
                totals[cat] = totals.get(cat, Fraction(0)) + val
        assert "sync_wait" in totals and totals["sync_wait"] > 0
        assert "compute" in totals and totals["compute"] > 0

    def test_clean_run_paths_identical_across_replications(self, machine):
        program = make_program(8, 2, use_gets=True, use_sends=True)
        result = bsp_run(
            machine, 4, program, label="critpath-clean", noisy=False,
            runs=3, provenance=True,
        )
        paths = obs.extract_paths(result.provenance)
        assert len(paths) == 3
        assert paths[0].hops == paths[1].hops == paths[2].hops

    def test_single_process_run(self, machine):
        def solo(ctx):
            ctx.charge_kernel(DAXPY, 1024)
            ctx.sync()
            return 1.0

        result = bsp_run(
            machine, 1, solo, label="critpath-solo", noisy=True,
            provenance=True,
        )
        (path,) = obs.extract_paths(result.provenance)
        assert obs.validate_path(path) == []
        assert path.makespan == final_makespans(result)[0]

    def test_recording_is_bit_identical_off_and_on(self, machine):
        program = make_program(8, 2, use_gets=True, use_sends=True)
        base = bsp_run(
            machine, 6, program, label="critpath-id", noisy=True, runs=6
        )
        traced = bsp_run(
            machine, 6, program, label="critpath-id", noisy=True, runs=6,
            provenance=True,
        )
        assert base.provenance is None
        assert traced.provenance is not None
        np.testing.assert_array_equal(
            base.final_times, traced.final_times
        )
        for rec_a, rec_b in zip(base.supersteps, traced.supersteps):
            np.testing.assert_array_equal(
                rec_a.exit_times, rec_b.exit_times
            )

    def test_explain_on_bsp_detects_kind(self, machine):
        program = make_program(6, 1, use_gets=False, use_sends=False)
        result = bsp_run(
            machine, 4, program, label="critpath-explain", noisy=True,
            runs=2, provenance=True,
        )
        report = obs.explain(result.provenance, label="bsp-smoke")
        assert report.kind == "bsp"
        assert report.problems == []
        assert report.slack and all(
            value >= 0 for value in report.slack.values()
        )
