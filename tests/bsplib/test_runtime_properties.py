"""Property-based tests of BSPlib data-movement semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsplib import bsp_run
from repro.cluster import presets
from repro.machine import SimMachine


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=141
    )


@given(
    p=st.integers(2, 8),
    seed=st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_random_permutation_routing(p, seed):
    """Every rank puts a random payload to a random distinct target; after
    one sync every target holds exactly the value routed to it — BSP's
    'effects visible after synchronisation' contract under arbitrary
    communication patterns."""
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=9
    )
    rng = np.random.default_rng(seed)
    targets = rng.permutation(p)
    payload = rng.standard_normal(p)

    def program(ctx):
        inbox = np.zeros(1)
        ctx.push_reg(inbox)
        ctx.sync()
        ctx.put(int(targets[ctx.pid]), np.array([payload[ctx.pid]]), inbox)
        ctx.sync()
        return float(inbox[0])

    result = bsp_run(machine, p, program, label=f"perm-{seed}")
    for sender in range(p):
        assert result.return_values[int(targets[sender])] == pytest.approx(
            payload[sender]
        )


@given(
    p=st.integers(2, 6),
    elements=st.integers(1, 32),
    seed=st.integers(0, 500),
)
@settings(max_examples=15, deadline=None)
def test_allgather_via_puts(p, elements, seed):
    """The all-gather idiom: every rank contributes a block; afterwards
    every rank holds the identical concatenation."""
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=10
    )
    rng = np.random.default_rng(seed)
    blocks = rng.standard_normal((p, elements))

    def program(ctx):
        gathered = np.zeros(p * elements)
        ctx.push_reg(gathered)
        ctx.sync()
        mine = blocks[ctx.pid].copy()
        for q in range(p):
            ctx.put(q, mine, gathered, offset=ctx.pid * elements)
        ctx.sync()
        return gathered.copy()

    result = bsp_run(machine, p, program, label=f"ag-{seed}-{elements}")
    expected = blocks.reshape(-1)
    for value in result.return_values:
        np.testing.assert_allclose(value, expected)


@given(p=st.integers(2, 6), seed=st.integers(0, 500))
@settings(max_examples=10, deadline=None)
def test_get_put_commute_within_superstep(p, seed):
    """Gets read pre-put values regardless of the textual order of get and
    put calls inside the superstep (BSPlib's ordering semantics)."""
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=11
    )
    rng = np.random.default_rng(seed)
    initial = rng.standard_normal(p)

    def make_program(put_first: bool):
        def program(ctx):
            cell = np.array([initial[ctx.pid]])
            ctx.push_reg(cell)
            ctx.sync()
            other = (ctx.pid + 1) % ctx.nprocs
            fetched = np.zeros(1)
            if put_first:
                ctx.put(other, np.array([99.0]), cell)
                ctx.get(other, cell, 0, fetched)
            else:
                ctx.get(other, cell, 0, fetched)
                ctx.put(other, np.array([99.0]), cell)
            ctx.sync()
            return float(fetched[0])

        return program

    a = bsp_run(machine, p, make_program(True), label=f"gp-a-{seed}")
    b = bsp_run(machine, p, make_program(False), label=f"gp-b-{seed}")
    assert a.return_values == b.return_values
    for pid, fetched in enumerate(a.return_values):
        assert fetched == pytest.approx(initial[(pid + 1) % p])
