"""The self-check meta-test: every DET rule catches its canonical
violation when seeded into a realistic fixture package.

This is the linter's own regression harness — if a refactor of the rule
pack silently stops detecting a contract violation, this test fails.
The fixture deliberately mirrors the repository's layout (an engine
module on a hot path, an explore-layer campaign module, a CLI module),
and the DET001 case is exactly the regression the runtime
``DeprecationWarning`` filter cannot see: a reintroduced
``sample_scalar`` call on a hot loop in a module no test executes.
"""

import textwrap

import pytest

from repro.analysis import all_rules, lint_paths

#: module-relative path → (source, rule ids expected to fire there).
FIXTURES = {
    # DET001: scalar draws back on the event-engine hot loop.  Nothing
    # imports or runs this module, so the dynamic warning filter can
    # never fire — only static analysis sees it.
    "fixtpkg/simmpi/engine.py": (
        """
        def _charge(noise, rng, stages):
            total = 0.0
            for stage in stages:
                total += noise.sample_scalar(rng, stage.base)
            return total
        """,
        {"DET001"},
    ),
    # DET002: module-global RNG state in a sampler.
    "fixtpkg/explore/samplers.py": (
        """
        import numpy as np

        def jitter(points):
            return [p + np.random.rand() for p in points]
        """,
        {"DET002"},
    ),
    # DET003: a wall-clock timestamp written into campaign results.
    "fixtpkg/explore/campaign.py": (
        """
        import time

        def summarise(records):
            return {"count": len(records), "time": time.time()}
        """,
        {"DET003"},
    ),
    # DET004: set iteration feeding a store append.
    "fixtpkg/explore/cache_sync.py": (
        """
        def persist(cache, updates):
            for key in set(updates):
                cache.put(key, updates[key])
        """,
        {"DET004"},
    ),
    # DET005: a lambda shipped to pool workers.
    "fixtpkg/explore/executors.py": (
        """
        def fan_out(pool, tasks):
            return pool.map(lambda task: task.run(), tasks)
        """,
        {"DET005"},
    ),
    # DET006: telemetry resolved and emitted per iteration of a BSP
    # superstep loop, with no disabled-fast-path guard.
    "fixtpkg/bsplib/runtime.py": (
        """
        from repro.obs import current

        def run_supersteps(supersteps):
            for step in supersteps:
                tele = current()
                tele.emit_span("bsp.superstep", 0.0, step.duration)
        """,
        {"DET006"},
    ),
}


@pytest.fixture(scope="module")
def fixture_tree(tmp_path_factory):
    root = tmp_path_factory.mktemp("detlint-fixtures")
    for relpath, (source, _) in FIXTURES.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        for parent in target.relative_to(root).parents:
            if str(parent) != ".":
                (root / parent / "__init__.py").touch()
        target.write_text(textwrap.dedent(source))
    return root


def test_every_rule_catches_its_seeded_violation(fixture_tree):
    import os

    result = lint_paths([str(fixture_tree)])
    assert not result.errors
    by_file: dict[str, set[str]] = {}
    for finding in result.findings:
        rel = os.path.relpath(finding.path, str(fixture_tree))
        by_file.setdefault(rel.replace(os.sep, "/"), set()).add(finding.rule)
    for relpath, (_, expected) in FIXTURES.items():
        assert by_file.get(relpath, set()) == expected, relpath


def test_fixture_set_covers_every_registered_rule():
    covered = set()
    for _, expected in FIXTURES.values():
        covered |= expected
    assert covered == {rule.id for rule in all_rules()}


def test_reintroduced_scalar_draw_on_hot_path_is_caught(fixture_tree):
    # The acceptance-criteria case, pinned on its own: DET001 fires on
    # the engine fixture even though no test ever imports it.
    result = lint_paths([str(fixture_tree / "fixtpkg" / "simmpi")])
    assert [f.rule for f in result.findings] == ["DET001"]
    assert "sample_scalar" in result.findings[0].snippet
