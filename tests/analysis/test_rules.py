"""Per-rule unit tests: canonical positive and negative snippets.

Each rule gets at least one snippet that must fire and one that must
not, exercising the documented approximation boundaries (aliases,
seeded constructors, allowed modules, guards).
"""

import textwrap

from repro.analysis import lint_source


def lint(src, path="pkg/mod.py", module="pkg.mod"):
    return lint_source(textwrap.dedent(src), path=path, module=module)


def rule_ids(findings):
    return [f.rule for f in findings]


# ------------------------------------------------------------------ DET001


def test_det001_flags_sample_scalar_call():
    findings = lint("""
        def hot(noise, rng):
            return noise.sample_scalar(rng, 1.0)
    """)
    assert rule_ids(findings) == ["DET001"]
    assert "sample_matrix" in findings[0].message


def test_det001_reference_module_exempt():
    src = """
        def oracle(noise, rng):
            return noise.sample_scalar(rng, 1.0)
    """
    assert lint(src, path="pkg/reference.py", module="pkg.reference") == []


def test_det001_bulk_draws_pass():
    assert lint("""
        def hot(noise, rng):
            return noise.sample_matrix(rng, [1.0, 2.0], runs=8)
    """) == []


# ------------------------------------------------------------------ DET002


def test_det002_flags_numpy_global_state():
    findings = lint("""
        import numpy as np

        def draw():
            np.random.seed(0)
            return np.random.rand(4)
    """)
    assert rule_ids(findings) == ["DET002", "DET002"]


def test_det002_flags_unseeded_default_rng():
    findings = lint("""
        from numpy.random import default_rng

        def draw():
            return default_rng().normal()
    """)
    assert rule_ids(findings) == ["DET002"]


def test_det002_seeded_default_rng_passes():
    assert lint("""
        import numpy as np

        def draw(seed):
            rng = np.random.default_rng(seed)
            return rng.normal()
    """) == []


def test_det002_flags_stdlib_random_module():
    findings = lint("""
        import random

        def draw():
            random.shuffle([1, 2])
            return random.Random()
    """)
    assert rule_ids(findings) == ["DET002", "DET002"]


def test_det002_seeded_stdlib_random_passes():
    assert lint("""
        import random

        def draw(seed):
            return random.Random(f"stream:{seed}").random()
    """) == []


def test_det002_generator_methods_pass():
    # rng.random() is a Generator method, not the random module.
    assert lint("""
        def draw(rng):
            return rng.random(4)
    """) == []


# ------------------------------------------------------------------ DET003


def test_det003_flags_wall_clock_in_engine_module():
    findings = lint("""
        import time

        def simulate():
            return time.perf_counter()
    """, path="src/repro/simmpi/x.py", module="repro.simmpi.x")
    assert rule_ids(findings) == ["DET003"]
    assert "wallclock" in findings[0].message


def test_det003_flags_datetime_now():
    findings = lint("""
        from datetime import datetime

        def stamp():
            return datetime.now().isoformat()
    """, module="repro.explore.stamping")
    assert rule_ids(findings) == ["DET003"]


def test_det003_allowed_in_obs_bench_resilience():
    src = """
        import time

        def measure():
            return time.perf_counter()
    """
    for module in ("repro.obs.telemetry", "repro.bench.timers",
                   "repro.explore.resilience"):
        assert lint(src, module=module) == [], module


# ------------------------------------------------------------------ DET004


def test_det004_flags_set_iteration_feeding_store():
    findings = lint("""
        def persist(cache, items):
            for key in set(items):
                cache.put(key, {})
    """)
    assert rule_ids(findings) == ["DET004"]


def test_det004_flags_keys_iteration_feeding_output():
    findings = lint("""
        def emit(table):
            for name in table.keys():
                print(name)
    """)
    assert rule_ids(findings) == ["DET004"]


def test_det004_sorted_passes():
    assert lint("""
        def persist(cache, items):
            for key in sorted(set(items)):
                cache.put(key, {})
    """) == []


def test_det004_membership_building_passes():
    # No order-sensitive sink in the body: set iteration is fine.
    assert lint("""
        def widths(items):
            total = 0
            for key in set(items):
                total += len(key)
            return total
    """) == []


def test_det004_flags_comprehension_over_set():
    findings = lint("""
        def emit(rng, bases):
            return [rng.normal(b) for b in set(bases)]
    """)
    assert rule_ids(findings) == ["DET004"]


# ------------------------------------------------------------------ DET005


def test_det005_flags_lambda_submission():
    findings = lint("""
        def run(pool, tasks):
            return pool.map(lambda t: t * 2, tasks)
    """)
    assert rule_ids(findings) == ["DET005"]


def test_det005_flags_local_closure():
    findings = lint("""
        def run(executor, tasks, scale):
            def evaluate(t):
                return t * scale
            return [executor.submit(evaluate, t) for t in tasks]
    """)
    assert rule_ids(findings) == ["DET005"]


def test_det005_module_level_function_passes():
    assert lint("""
        def _evaluate(t):
            return t * 2

        def run(pool, tasks):
            return pool.map(_evaluate, tasks)
    """) == []


def test_det005_partial_over_module_function_passes():
    assert lint("""
        import functools

        def _evaluate(policy, t):
            return t

        def run(pool, tasks, policy):
            return pool.map(functools.partial(_evaluate, policy), tasks)
    """) == []


def test_det005_partial_over_lambda_flagged():
    findings = lint("""
        import functools

        def run(pool, tasks):
            return pool.map(functools.partial(lambda t: t), tasks)
    """)
    assert rule_ids(findings) == ["DET005"]


def test_det005_non_executor_receiver_passes():
    # `.map()` on non-pool receivers (e.g. pandas-style) is not a
    # submission site.
    assert lint("""
        def rename(frame):
            return frame.map(lambda v: v + 1)
    """) == []


# ------------------------------------------------------------------ DET006


HOT = dict(path="src/repro/simmpi/engine.py", module="repro.simmpi.engine")


def test_det006_flags_factory_in_loop():
    findings = lint("""
        from repro.obs import current

        def simulate(stages):
            for stage in stages:
                tele = current()
                if tele is not None:
                    tele.count("engine.stages")
    """, **HOT)
    assert rule_ids(findings) == ["DET006"]
    assert "once before the loop" in findings[0].message


def test_det006_flags_unguarded_emission_in_loop():
    findings = lint("""
        from repro.obs import current

        def simulate(stages):
            tele = current()
            for stage in stages:
                tele.emit_span("engine.stage", 0.0, 1.0)
    """, **HOT)
    assert rule_ids(findings) == ["DET006"]


def test_det006_early_return_guard_passes():
    assert lint("""
        from repro.obs import current

        def simulate(stages):
            tele = current()
            if tele is None:
                return _simulate(stages)
            for stage in stages:
                tele.emit_span("engine.stage", 0.0, 1.0)
            return _simulate(stages)
    """, **HOT) == []


def test_det006_is_not_none_guard_passes():
    assert lint("""
        from repro.obs import current

        def simulate(stages):
            tele = current()
            for stage in stages:
                if tele is not None:
                    tele.emit_span("engine.stage", 0.0, 1.0)
    """, **HOT) == []


def test_det006_only_applies_to_hot_modules():
    # The same unguarded shape outside an engine module is not flagged.
    assert lint("""
        from repro.obs import current

        def report(rows):
            tele = current()
            for row in rows:
                tele.count("rows")
    """, module="repro.explore.reporting") == []


def test_det006_unrelated_count_method_passes():
    # `.count()` on something that is not a telemetry context.
    assert lint("""
        def tally(rows):
            total = 0
            for row in rows:
                total += row.count("x")
            return total
    """, **HOT) == []
