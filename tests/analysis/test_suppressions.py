"""Inline suppressions and baseline round-trips."""

import textwrap

import pytest

from repro.analysis import (
    BaselineError,
    lint_paths,
    lint_source,
    load_baseline,
    save_baseline,
)

VIOLATION = textwrap.dedent("""
    import random

    def draw():
        return random.random()
""")


def test_allow_on_finding_line_suppresses():
    src = VIOLATION.replace(
        "return random.random()",
        "return random.random()  # repro: allow[DET002]",
    )
    assert lint_source(src, module="pkg.mod") == []


def test_allow_on_preceding_line_suppresses():
    src = VIOLATION.replace(
        "    return random.random()",
        "    # repro: allow[DET002] -- intentionally nondeterministic demo\n"
        "    return random.random()",
    )
    assert lint_source(src, module="pkg.mod") == []


def test_allow_for_other_rule_does_not_suppress():
    src = VIOLATION.replace(
        "return random.random()",
        "return random.random()  # repro: allow[DET001]",
    )
    assert [f.rule for f in lint_source(src, module="pkg.mod")] == ["DET002"]


def test_allow_multiple_rules_in_one_marker():
    src = VIOLATION.replace(
        "return random.random()",
        "return random.random()  # repro: allow[DET001, DET002]",
    )
    assert lint_source(src, module="pkg.mod") == []


def test_allow_inside_string_literal_is_inert():
    src = textwrap.dedent("""
        import random

        MARKER = "# repro: allow[DET002]"

        def draw():
            return random.random()
    """)
    assert [f.rule for f in lint_source(src, module="pkg.mod")] == ["DET002"]


# ------------------------------------------------------------------ baseline


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(VIOLATION)
    return tmp_path


def test_baseline_round_trip_suppresses_and_tracks_unused(tree):
    result = lint_paths([str(tree)])
    assert [f.rule for f in result.findings] == ["DET002"]

    path = tree / "baseline.json"
    save_baseline(str(path), result.findings, "grandfathered in PR 10")
    baseline = load_baseline(str(path))

    new, old, unused = baseline.split(result.findings)
    assert new == [] and len(old) == 1 and unused == []

    # Fix the violation: the entry goes stale and is reported unused.
    (tree / "pkg" / "mod.py").write_text("def draw(rng):\n    return rng.random()\n")
    clean = lint_paths([str(tree)])
    new, old, unused = baseline.split(clean.findings)
    assert new == [] and old == [] and len(unused) == 1
    assert unused[0].rule == "DET002"


def test_baseline_fingerprint_survives_line_shifts(tree):
    before = lint_paths([str(tree)]).findings
    path = tree / "baseline.json"
    save_baseline(str(path), before, "justified")
    baseline = load_baseline(str(path))

    # Prepend unrelated code: line numbers shift, the entry still matches.
    mod = tree / "pkg" / "mod.py"
    mod.write_text("X = 1\nY = 2\n" + mod.read_text())
    after = lint_paths([str(tree)]).findings
    assert [f.rule for f in after] == ["DET002"]
    assert after[0].line != before[0].line
    new, old, unused = baseline.split(after)
    assert new == [] and len(old) == 1 and unused == []


def test_baseline_without_justification_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        '{"version": 1, "entries": [{"rule": "DET002", "path": "x.py",'
        ' "fingerprint": "abcd", "justification": "  "}]}'
    )
    with pytest.raises(BaselineError, match="justification"):
        load_baseline(str(path))


def test_save_baseline_without_justification_rejected(tmp_path):
    with pytest.raises(BaselineError, match="justification"):
        save_baseline(str(tmp_path / "b.json"), [], "")


def test_baseline_bad_schema_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(BaselineError, match="version"):
        load_baseline(str(path))
