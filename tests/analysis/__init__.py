"""Tests for repro.analysis (detlint)."""
