"""CLI behaviour: formats, exit codes, baseline flags, self-cleanliness.

The CLI is exercised in-process through ``repro.analysis.cli.main`` —
same code path as ``python -m repro.analysis``, without per-test
interpreter startup.
"""

import json
import os
import textwrap

import pytest

from repro.analysis import load_baseline
from repro.analysis.cli import main

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


@pytest.fixture
def dirty_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(textwrap.dedent("""
        import random

        def draw():
            return random.random()
    """))
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("def f(rng):\n    return rng.normal()\n")
    assert main([str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_findings_exit_one_text_format(dirty_tree, capsys):
    assert main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out and "mod.py:5" in out
    assert "return random.random()" in out  # snippet line


def test_github_format(dirty_tree, capsys):
    assert main([str(dirty_tree), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
    assert "title=DET002" in out


def test_json_format(dirty_tree, capsys):
    assert main([str(dirty_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 2
    assert [f["rule"] for f in payload["findings"]] == ["DET002"]
    assert payload["findings"][0]["fingerprint"]


def test_write_then_check_baseline(dirty_tree, capsys):
    baseline = dirty_tree / "baseline.json"
    assert main([
        str(dirty_tree), "--write-baseline", str(baseline),
        "--justification", "grandfathered for the migration",
    ]) == 0
    entries = load_baseline(str(baseline)).entries
    assert len(entries) == 1
    assert entries[0].justification == "grandfathered for the migration"

    capsys.readouterr()
    assert main([str(dirty_tree), "--baseline", str(baseline)]) == 0
    assert capsys.readouterr().out == ""  # the finding is baselined


def test_unused_baseline_entry_fails_the_run(dirty_tree, capsys):
    baseline = dirty_tree / "baseline.json"
    main([
        str(dirty_tree), "--write-baseline", str(baseline),
        "--justification", "temporary",
    ])
    (dirty_tree / "pkg" / "mod.py").write_text("def f():\n    return 1\n")
    assert main([str(dirty_tree), "--baseline", str(baseline)]) == 1
    err = capsys.readouterr().err
    assert "unused baseline entry" in err


def test_write_baseline_requires_justification(dirty_tree, capsys):
    code = main([str(dirty_tree), "--write-baseline",
                 str(dirty_tree / "b.json")])
    assert code == 2
    assert "justification" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2


def test_unknown_rule_selection_exits_two(dirty_tree, capsys):
    assert main([str(dirty_tree), "--rules", "DET999"]) == 2


def test_rule_selection_filters(dirty_tree):
    assert main([str(dirty_tree), "--rules", "DET001"]) == 0
    assert main([str(dirty_tree), "--rules", "DET002"]) == 1


def test_list_rules_and_explain(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003",
                    "DET004", "DET005", "DET006"):
        assert rule_id in out
    assert main(["--explain", "det003"]) == 0
    assert "wall-clock" in capsys.readouterr().out.lower()
    assert main(["--explain", "DET999"]) == 2


def test_repository_tree_is_clean():
    """The acceptance criterion: ``python -m repro.analysis src/repro``
    exits 0 on the PR head with an empty baseline."""
    src = os.path.join(REPO_ROOT, "src", "repro")
    baseline = os.path.join(REPO_ROOT, "detlint-baseline.json")
    assert main([src]) == 0
    assert main([src, "--baseline", baseline]) == 0
    assert load_baseline(baseline).entries == []
