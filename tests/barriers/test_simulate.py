"""Unit tests for the measured-timing protocol (§5.6.6)."""

import numpy as np
import pytest

from repro.barriers.patterns import dissemination_barrier, linear_barrier
from repro.barriers.simulate import (
    BarrierTiming,
    measure_barrier,
    measure_barrier_sweep,
)
from repro.cluster import presets
from repro.machine import SimMachine


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=91
    )


class TestMeasureBarrier:
    def test_statistics(self, machine):
        placement = machine.placement(8)
        timing = measure_barrier(
            machine, dissemination_barrier(8), placement, runs=32
        )
        assert timing.per_run_worst.shape == (32,)
        assert timing.mean_worst > 0
        assert timing.median_worst > 0
        assert timing.runs == 32

    def test_mean_of_worst_cases(self, machine):
        placement = machine.placement(4)
        timing = measure_barrier(machine, linear_barrier(4), placement, runs=8)
        assert timing.mean_worst == pytest.approx(timing.per_run_worst.mean())

    def test_reproducible(self, machine):
        placement = machine.placement(8)
        a = measure_barrier(machine, dissemination_barrier(8), placement, runs=8)
        b = measure_barrier(machine, dissemination_barrier(8), placement, runs=8)
        np.testing.assert_array_equal(a.per_run_worst, b.per_run_worst)

    def test_size_mismatch_rejected(self, machine):
        placement = machine.placement(8)
        with pytest.raises(ValueError, match="placement"):
            measure_barrier(machine, dissemination_barrier(4), placement)

    def test_runs_validated(self, machine):
        placement = machine.placement(4)
        with pytest.raises(ValueError):
            measure_barrier(machine, linear_barrier(4), placement, runs=0)

    def test_payload_increases_cost(self, machine):
        placement = machine.placement(8)
        bare = measure_barrier(
            machine, dissemination_barrier(8), placement, runs=16
        ).mean_worst
        loaded = measure_barrier(
            machine, dissemination_barrier(8), placement, runs=16,
            payload_bytes=100_000.0,
        ).mean_worst
        assert loaded > bare


class TestSweep:
    def test_sweep_shape(self, machine):
        results = measure_barrier_sweep(
            machine, dissemination_barrier, (2, 4, 8), runs=4
        )
        assert set(results) == {2, 4, 8}
        assert all(isinstance(t, BarrierTiming) for t in results.values())

    def test_payload_fn_applied(self, machine):
        from repro.bsplib.sync_model import dissemination_payloads

        with_payload = measure_barrier_sweep(
            machine, dissemination_barrier, (8,), runs=8,
            payload_fn=dissemination_payloads,
        )[8]
        without = measure_barrier_sweep(
            machine, dissemination_barrier, (8,), runs=8
        )[8]
        assert with_payload.mean_worst > without.mean_worst

    def test_placement_policy_forwarded(self, machine):
        block = measure_barrier_sweep(
            machine, dissemination_barrier, (10,), runs=4,
            placement_policy="block",
        )[10]
        rr = measure_barrier_sweep(
            machine, dissemination_barrier, (10,), runs=4,
            placement_policy="round_robin",
        )[10]
        # Block placement keeps 10 ranks on two nodes with different pair
        # structure than round-robin parity; times should differ.
        assert block.mean_worst != rr.mean_worst
