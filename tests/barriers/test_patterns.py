"""Unit and property tests for barrier stage patterns (§5.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.barriers.patterns import (
    BarrierPattern,
    all_to_all_barrier,
    dissemination_barrier,
    from_stages,
    linear_barrier,
    ring_pattern,
    sequential_linear_barrier,
    tree_barrier,
)


class TestLinearBarrier:
    def test_fig_5_2_matrices(self):
        """The thesis's 4-process linear barrier, Fig. 5.2."""
        pattern = linear_barrier(4)
        s0 = np.zeros((4, 4), dtype=bool)
        s0[1, 0] = s0[2, 0] = s0[3, 0] = True
        np.testing.assert_array_equal(pattern.stages[0], s0)
        np.testing.assert_array_equal(pattern.stages[1], s0.T)

    def test_two_stages_always(self):
        for p in (2, 7, 64):
            assert linear_barrier(p).num_stages == 2

    def test_message_count_linear(self):
        assert linear_barrier(10).total_messages == 18  # 2 * (P - 1)

    def test_nonzero_root(self):
        pattern = linear_barrier(4, root=2)
        assert pattern.stages[0][0, 2]
        assert not pattern.stages[0][2, 0]

    def test_root_out_of_range(self):
        with pytest.raises(ValueError):
            linear_barrier(4, root=4)


class TestDisseminationBarrier:
    def test_fig_5_3_matrices(self):
        """The thesis's 4-process dissemination barrier, Fig. 5.3."""
        pattern = dissemination_barrier(4)
        s0 = np.zeros((4, 4), dtype=bool)
        s0[0, 1] = s0[1, 2] = s0[2, 3] = s0[3, 0] = True
        s1 = np.zeros((4, 4), dtype=bool)
        s1[0, 2] = s1[1, 3] = s1[2, 0] = s1[3, 1] = True
        np.testing.assert_array_equal(pattern.stages[0], s0)
        np.testing.assert_array_equal(pattern.stages[1], s1)

    def test_stage_count_log(self):
        assert dissemination_barrier(8).num_stages == 3
        assert dissemination_barrier(9).num_stages == 4
        assert dissemination_barrier(64).num_stages == 6

    def test_every_process_sends_each_stage(self):
        pattern = dissemination_barrier(12)
        for stage in pattern.stages:
            assert (stage.sum(axis=1) == 1).all()
            assert (stage.sum(axis=0) == 1).all()


class TestTreeBarrier:
    def test_fig_5_4_matrices(self):
        """The thesis's 4-process binary tree barrier, Fig. 5.4."""
        pattern = tree_barrier(4)
        s0 = np.zeros((4, 4), dtype=bool)
        s0[1, 0] = s0[3, 2] = True
        s1 = np.zeros((4, 4), dtype=bool)
        s1[2, 0] = True
        assert pattern.num_stages == 4
        np.testing.assert_array_equal(pattern.stages[0], s0)
        np.testing.assert_array_equal(pattern.stages[1], s1)
        np.testing.assert_array_equal(pattern.stages[2], s1.T)
        np.testing.assert_array_equal(pattern.stages[3], s0.T)

    def test_release_transposes_arrival(self):
        """§5.5: release stages are transposed arrival stages, reversed —
        a property of any hierarchical barrier."""
        pattern = tree_barrier(16)
        half = pattern.num_stages // 2
        for k in range(half):
            np.testing.assert_array_equal(
                pattern.stages[half + k], pattern.stages[half - 1 - k].T
            )

    def test_arity_reduces_stages(self):
        assert tree_barrier(64, arity=4).num_stages < tree_barrier(64).num_stages

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            tree_barrier(4, arity=1)


class TestExtremities:
    def test_all_to_all_single_stage(self):
        pattern = all_to_all_barrier(5)
        assert pattern.num_stages == 1
        assert pattern.total_messages == 20

    def test_sequential_linear_stage_count(self):
        assert sequential_linear_barrier(5).num_stages == 8  # 2 * (P - 1)

    def test_ring_stage_counts(self):
        assert ring_pattern(5, rounds=1).num_stages == 4
        assert ring_pattern(5, rounds=2).num_stages == 9


class TestPatternValidation:
    def test_self_signal_rejected(self):
        bad = np.eye(3, dtype=bool)
        with pytest.raises(ValueError, match="self-signal"):
            from_stages("bad", [bad])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BarrierPattern("bad", 3, (np.zeros((2, 2), dtype=bool),))

    def test_stages_immutable(self):
        pattern = linear_barrier(3)
        with pytest.raises(ValueError):
            pattern.stages[0][0, 1] = True

    def test_single_process_trivial(self):
        assert linear_barrier(1).num_stages == 0
        assert dissemination_barrier(1).num_stages == 0
        assert tree_barrier(1).num_stages == 0


class TestAccessors:
    def test_senders_receivers(self):
        pattern = linear_barrier(4)
        np.testing.assert_array_equal(pattern.senders(0), [1, 2, 3])
        np.testing.assert_array_equal(pattern.receivers(0), [0])
        np.testing.assert_array_equal(pattern.participants(0), [0, 1, 2, 3])

    def test_with_name(self):
        renamed = linear_barrier(4).with_name("custom")
        assert renamed.name == "custom"
        assert renamed.total_messages == 6


@given(p=st.integers(2, 40))
@settings(max_examples=40, deadline=None)
def test_dissemination_messages_property(p):
    pattern = dissemination_barrier(p)
    assert pattern.total_messages == p * pattern.num_stages


@given(p=st.integers(2, 40), arity=st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_tree_messages_property(p, arity):
    """A combining tree sends exactly P-1 arrival and P-1 release signals."""
    pattern = tree_barrier(p, arity=arity)
    assert pattern.total_messages == 2 * (p - 1)
