"""Unit and property tests for the knowledge-matrix correctness test (§5.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.barriers.correctness import (
    assert_correct,
    is_correct_barrier,
    knowledge_trace,
    stages_to_completion,
    uninformed_pairs,
)
from repro.barriers.patterns import (
    all_to_all_barrier,
    dissemination_barrier,
    from_stages,
    linear_barrier,
    ring_pattern,
    sequential_linear_barrier,
    tree_barrier,
)


class TestKnowledgeRecursion:
    def test_eq_5_1_first_stage(self):
        pattern = linear_barrier(3)
        k0 = knowledge_trace(pattern)[0]
        expected = np.eye(3) + pattern.stages[0].astype(float)
        np.testing.assert_array_equal(k0, expected)

    def test_eq_5_2_growth(self):
        pattern = dissemination_barrier(4)
        trace = knowledge_trace(pattern)
        k0, k1 = trace[0], trace[1]
        expected = k0 + k0 @ pattern.stages[1].astype(float)
        np.testing.assert_array_equal(k1, expected)

    def test_knowledge_monotone(self):
        pattern = tree_barrier(8)
        trace = knowledge_trace(pattern)
        for prev, curr in zip(trace, trace[1:]):
            assert (curr >= prev).all()


class TestStandardBarriersCorrect:
    @pytest.mark.parametrize("p", [2, 3, 4, 7, 8, 16, 33, 64])
    def test_linear(self, p):
        assert is_correct_barrier(linear_barrier(p))

    @pytest.mark.parametrize("p", [2, 3, 4, 7, 8, 16, 33, 64])
    def test_tree(self, p):
        assert is_correct_barrier(tree_barrier(p))

    @pytest.mark.parametrize("p", [2, 3, 4, 7, 8, 16, 33, 64])
    def test_dissemination(self, p):
        assert is_correct_barrier(dissemination_barrier(p))

    @pytest.mark.parametrize("p", [2, 5, 9])
    def test_extremities(self, p):
        assert is_correct_barrier(all_to_all_barrier(p))
        assert is_correct_barrier(sequential_linear_barrier(p))


class TestIncorrectPatterns:
    def test_single_ring_round_fails(self):
        """One token pass leaves everyone but the last hop uninformed."""
        pattern = ring_pattern(5, rounds=1)
        assert not is_correct_barrier(pattern)
        missing = uninformed_pairs(pattern)
        assert missing  # concrete failure trace

    def test_two_ring_rounds_pass(self):
        assert is_correct_barrier(ring_pattern(5, rounds=2))

    def test_truncated_tree_fails(self):
        pattern = tree_barrier(8)
        truncated = from_stages("broken", pattern.stages[:-1])
        assert not is_correct_barrier(truncated)

    def test_empty_multiprocess_pattern_unconstructible(self):
        from repro.barriers.patterns import BarrierPattern

        with pytest.raises(ValueError, match="at least one stage"):
            BarrierPattern("none", 3, ())

    def test_assert_correct_raises_with_trace(self):
        with pytest.raises(ValueError, match="lacking arrival evidence"):
            assert_correct(ring_pattern(4, rounds=1))

    def test_assert_correct_passes(self):
        assert_correct(tree_barrier(8))


class TestStagesToCompletion:
    def test_dissemination_exact(self):
        """Dissemination completes exactly at its last stage."""
        pattern = dissemination_barrier(8)
        assert stages_to_completion(pattern) == pattern.num_stages - 1

    def test_never_completes(self):
        assert stages_to_completion(ring_pattern(4, rounds=1)) is None

    def test_single_process(self):
        assert stages_to_completion(linear_barrier(1)) == 0

    def test_extra_stage_detected(self):
        base = tree_barrier(4)
        padded = from_stages(
            "padded", list(base.stages) + [np.zeros((4, 4), dtype=bool)]
        )
        done = stages_to_completion(padded)
        assert done is not None and done < padded.num_stages - 1


@given(p=st.integers(2, 24))
@settings(max_examples=30, deadline=None)
def test_delayed_process_blocks_everyone(p):
    """Barrier semantics, expressed through knowledge: every process's
    arrival is required — remove all of one process's outbound signals and
    the barrier must break."""
    pattern = dissemination_barrier(p)
    victim = p // 2
    stripped = []
    for stage in pattern.stages:
        s = stage.copy()
        s[victim, :] = False
        stripped.append(s)
    assert not is_correct_barrier(from_stages("stripped", stripped))
