"""Unit tests for the analytic barrier cost model (§5.6.5, Fig. 6.2)."""

import numpy as np
import pytest

from repro.barriers.cost_model import (
    CommParameters,
    critical_path_recursive,
    posted_receive_pairs,
    predict_barrier_cost,
    predict_barrier_timeline,
    stage_costs,
)
from repro.barriers.patterns import (
    dissemination_barrier,
    linear_barrier,
    tree_barrier,
)


def uniform_params(p, latency=1.0, overhead=0.1, self_overhead=0.01, beta=None):
    lat = np.full((p, p), latency)
    np.fill_diagonal(lat, 0.0)
    ov = np.full((p, p), overhead)
    np.fill_diagonal(ov, self_overhead)
    inv_bw = None
    if beta is not None:
        inv_bw = np.full((p, p), beta)
        np.fill_diagonal(inv_bw, 0.0)
    return CommParameters(overhead=ov, latency=lat, inv_bandwidth=inv_bw)


class TestStageCosts:
    def test_eq_5_4_single_destination(self):
        """cost = 2 * L + O for a one-signal stage."""
        params = uniform_params(2)
        pattern = linear_barrier(2)
        costs = stage_costs(pattern, params)
        assert costs[0][1] == pytest.approx(2.0 * 1.0 + 0.1)

    def test_eq_5_4_fan_out_sums_latencies(self):
        """The master's release sums 2L over all destinations but takes the
        max of the overheads."""
        params = uniform_params(5)
        pattern = linear_barrier(5)
        release = stage_costs(pattern, params)[1]
        assert release[0] == pytest.approx(2.0 * 4 * 1.0 + 0.1)

    def test_invocation_floor_for_receivers(self):
        params = uniform_params(3)
        pattern = linear_barrier(3)
        arrive = stage_costs(pattern, params)[0]
        assert arrive[0] == pytest.approx(0.01)  # master only receives

    def test_nonparticipant_costs_nothing(self):
        params = uniform_params(4)
        pattern = tree_barrier(4)
        stage1 = stage_costs(pattern, params)[1]  # only 2 -> 0 active
        assert stage1[1] == 0.0 and stage1[3] == 0.0

    def test_payload_term(self):
        params = uniform_params(2, beta=0.5)
        pattern = linear_barrier(2)
        with_payload = stage_costs(pattern, params, payload_bytes=10.0)
        without = stage_costs(pattern, params)
        assert with_payload[0][1] - without[0][1] == pytest.approx(5.0)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stage_costs(linear_barrier(3), uniform_params(4))


class TestPostedReceives:
    def test_tree_release_is_posted(self):
        """A tree child signals its parent, idles through the remaining
        arrival stages, then awaits the parent's release: posted."""
        pattern = tree_barrier(8)
        posted = posted_receive_pairs(pattern)
        # Stage 0: leaves 1,3,5,7 signal 0,2,4,6. Release stage for the
        # leaves is the last stage; e.g. 0 -> 1 should be posted (1 idle
        # since stage 0).
        last = pattern.num_stages - 1
        assert (0, 1) in posted[last]

    def test_dissemination_never_posted(self):
        """Every process acts every stage: no idle gap, nothing posted."""
        pattern = dissemination_barrier(16)
        posted = posted_receive_pairs(pattern)
        assert all(len(s) == 0 for s in posted)

    def test_posted_lowers_cost(self):
        p = 8
        pattern = tree_barrier(p)
        params = uniform_params(p, overhead=0.5, self_overhead=0.001)
        costs = stage_costs(pattern, params)
        # In the final release stage parents contact posted leaves: the max
        # O-term uses O_jj = 0.001 instead of 0.5.
        last = pattern.num_stages - 1
        sender_cost = costs[last][0]
        assert sender_cost == pytest.approx(2.0 * 1.0 + 0.001)


class TestCriticalPath:
    @pytest.mark.parametrize("factory", [linear_barrier, tree_barrier, dissemination_barrier])
    @pytest.mark.parametrize("p", [2, 3, 4, 6, 8])
    def test_dp_equals_recursive(self, factory, p):
        """The stage-wise DP must agree with Fig. 6.2's recursive search."""
        rng = np.random.default_rng(p)
        lat = rng.uniform(0.5, 2.0, (p, p))
        np.fill_diagonal(lat, 0.0)
        ov = rng.uniform(0.05, 0.2, (p, p))
        params = CommParameters(overhead=ov, latency=lat)
        pattern = factory(p)
        dp = predict_barrier_cost(pattern, params)
        rec = critical_path_recursive(pattern, params)
        assert dp == pytest.approx(rec)

    def test_single_process_is_free(self):
        params = uniform_params(1)
        assert predict_barrier_cost(linear_barrier(1), params) == 0.0

    def test_linear_grows_linearly(self):
        """O(P) behaviour of the linear barrier under uniform costs."""
        costs = [
            predict_barrier_cost(linear_barrier(p), uniform_params(p))
            for p in (4, 8, 16)
        ]
        assert costs[1] / costs[0] == pytest.approx(2.0, rel=0.2)
        assert costs[2] / costs[1] == pytest.approx(2.0, rel=0.2)

    def test_dissemination_grows_logarithmically(self):
        c8 = predict_barrier_cost(dissemination_barrier(8), uniform_params(8))
        c64 = predict_barrier_cost(dissemination_barrier(64), uniform_params(64))
        assert c64 / c8 == pytest.approx(2.0, rel=0.2)  # log2(64)/log2(8)

    def test_timeline_monotone_nonnegative(self):
        params = uniform_params(8)
        timeline = predict_barrier_timeline(tree_barrier(8), params)
        assert (timeline >= 0).all()

    def test_heterogeneous_latency_dominates(self):
        """Locality in the cost matrices steers the prediction: making one
        process far away must raise the barrier cost."""
        p = 8
        params_near = uniform_params(p, latency=1.0)
        lat = np.full((p, p), 1.0)
        lat[7, :] = lat[:, 7] = 50.0
        np.fill_diagonal(lat, 0.0)
        params_far = CommParameters(overhead=params_near.overhead, latency=lat)
        pattern = tree_barrier(p)
        assert predict_barrier_cost(pattern, params_far) > predict_barrier_cost(
            pattern, params_near
        )
