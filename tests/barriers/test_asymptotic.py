"""Unit tests for the textbook asymptotic analysis (§5.4)."""

import math

import pytest

from repro.barriers.asymptotic import (
    dissemination_barrier_cost,
    dominant_term,
    linear_barrier_cost,
    local_remote_split,
    stage_wise_cost,
    tree_barrier_cost,
)
from repro.barriers.patterns import (
    dissemination_barrier,
    linear_barrier,
    tree_barrier,
)
from repro.cluster.presets import xeon_8x2x4_topology
from repro.cluster.topology import Placement


class TestClosedForms:
    def test_linear_2cp(self):
        assert linear_barrier_cost(16, 2.0) == 64.0

    def test_tree_2clog(self):
        assert tree_barrier_cost(16, 2.0) == pytest.approx(2 * 2.0 * 4)

    def test_dissemination_clog(self):
        assert dissemination_barrier_cost(16, 2.0) == pytest.approx(2.0 * 4)

    def test_single_process_free(self):
        assert tree_barrier_cost(1, 5.0) == 0.0
        assert dissemination_barrier_cost(1, 5.0) == 0.0

    def test_tree_is_twice_dissemination(self):
        for p in (4, 32, 128):
            assert tree_barrier_cost(p, 1.0) == pytest.approx(
                2 * dissemination_barrier_cost(p, 1.0)
            )


class TestStageWiseCost:
    def test_matches_stage_count(self):
        assert stage_wise_cost(dissemination_barrier(16), 3.0) == pytest.approx(
            3.0 * math.ceil(math.log2(16))
        )

    def test_linear_two_stages(self):
        assert stage_wise_cost(linear_barrier(50), 1.0) == 2.0


class TestLocalRemoteSplit:
    @pytest.fixture
    def placement(self):
        return Placement.round_robin(xeon_8x2x4_topology(), 16)

    def test_counts_sum_to_messages(self, placement):
        pattern = dissemination_barrier(16)
        split = local_remote_split(pattern, placement)
        total = sum(c["local"] + c["remote"] for c in split)
        assert total == pattern.total_messages

    def test_dissemination_remote_heavy_stage(self, placement):
        """§5.4: the odd-offset stages of D are all-remote on two nodes."""
        split = local_remote_split(dissemination_barrier(16), placement)
        # Stage 0 (offset 1) crosses the node parity for every process.
        assert split[0]["remote"] == 16
        assert split[0]["local"] == 0
        # Stage 1 (offset 2) stays on-node.
        assert split[1]["remote"] == 0

    def test_dominant_term_orders_patterns(self, placement):
        c_local, c_remote = 1e-6, 10e-6
        t_lin = dominant_term(linear_barrier(16), placement, c_local, c_remote)
        t_diss = dominant_term(
            dissemination_barrier(16), placement, c_local, c_remote
        )
        assert t_lin < t_diss or t_lin > 0  # both defined and positive
        t_tree = dominant_term(tree_barrier(16), placement, c_local, c_remote)
        assert t_tree > 0
