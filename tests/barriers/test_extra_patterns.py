"""Tests for the extended pattern family (pairwise exchange, radix-k)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.barriers import (
    dissemination_barrier,
    is_correct_barrier,
    kary_dissemination_barrier,
    pairwise_exchange_barrier,
    predict_barrier_cost,
)
from repro.barriers.cost_model import CommParameters


def uniform_params(p, latency=1.0, overhead=0.1):
    lat = np.full((p, p), latency)
    np.fill_diagonal(lat, 0.0)
    ov = np.full((p, p), overhead)
    np.fill_diagonal(ov, 0.01)
    return CommParameters(overhead=ov, latency=lat)


class TestPairwiseExchange:
    @pytest.mark.parametrize("p", [2, 4, 8, 16, 64])
    def test_correct_for_powers_of_two(self, p):
        assert is_correct_barrier(pairwise_exchange_barrier(p))

    def test_log2_stages(self):
        assert pairwise_exchange_barrier(16).num_stages == 4

    def test_symmetric_stages(self):
        for stage in pairwise_exchange_barrier(8).stages:
            np.testing.assert_array_equal(stage, stage.T)

    def test_non_power_rejected(self):
        with pytest.raises(ValueError, match="power-of-two"):
            pairwise_exchange_barrier(6)

    def test_single_process(self):
        assert pairwise_exchange_barrier(1).num_stages == 0

    def test_same_message_count_as_dissemination(self):
        """One signal per process per stage, like dissemination — the
        difference is purely the partner structure (XOR vs cyclic shift)."""
        p = 16
        assert (
            pairwise_exchange_barrier(p).total_messages
            == dissemination_barrier(p).total_messages
        )


class TestKaryDissemination:
    @pytest.mark.parametrize("p", [2, 5, 9, 16, 27, 40])
    @pytest.mark.parametrize("radix", [2, 3, 4])
    def test_correct(self, p, radix):
        assert is_correct_barrier(kary_dissemination_barrier(p, radix))

    def test_radix_2_equals_dissemination(self):
        a = kary_dissemination_barrier(16, 2)
        b = dissemination_barrier(16)
        assert a.num_stages == b.num_stages
        for sa, sb in zip(a.stages, b.stages):
            np.testing.assert_array_equal(sa, sb)

    def test_higher_radix_fewer_stages(self):
        assert (
            kary_dissemination_barrier(81, 3).num_stages
            < dissemination_barrier(81).num_stages
        )

    def test_invalid_radix(self):
        with pytest.raises(ValueError):
            kary_dissemination_barrier(8, 1)

    def test_latency_vs_injection_tradeoff(self):
        """Under uniform per-signal cost the Eq. 5.4 model shows the knob:
        radix-4 shortens the critical path's stage count but each stage
        sums more per-process latency terms."""
        p = 64
        params = uniform_params(p)
        c2 = predict_barrier_cost(kary_dissemination_barrier(p, 2), params)
        c4 = predict_barrier_cost(kary_dissemination_barrier(p, 4), params)
        # 6 stages of 1 signal vs 3 stages of 3 signals: 6*2L vs 3*6L.
        assert c4 > c2


@given(p=st.integers(2, 64), radix=st.integers(2, 5))
@settings(max_examples=40, deadline=None)
def test_kary_property_messages(p, radix):
    pattern = kary_dissemination_barrier(p, radix)
    assert is_correct_barrier(pattern)
    # Per stage, each process sends at most radix-1 signals.
    for stage in pattern.stages:
        assert stage.sum(axis=1).max() <= radix - 1
