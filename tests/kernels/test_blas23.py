"""Tests for the Level-2/3 BLAS extension kernels."""

import numpy as np
import pytest

from repro.cluster.presets import xeon_8x2x4_params
from repro.kernels import DGEMV, DGER, dgemm_panel
from repro.machine.compute import steady_rate_flops, time_per_element


class TestDgemv:
    def test_apply_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, x, y = DGEMV.operands(64, rng)
        expected = y + a @ x
        result = DGEMV.run((a, x, y.copy()))
        np.testing.assert_allclose(result, expected)

    def test_square_requirement(self):
        with pytest.raises(ValueError, match="square"):
            DGEMV.operands(60)

    def test_flops_per_a_element(self):
        assert DGEMV.flops(100) == 200.0


class TestDger:
    def test_apply_matches_numpy(self):
        rng = np.random.default_rng(1)
        a, x, y = DGER.operands(64, rng)
        expected = a + np.outer(x, y)
        result = DGER.run((a.copy(), x, y))
        np.testing.assert_allclose(result, expected)

    def test_write_traffic_modelled(self):
        assert DGER.write_bytes_per_element == 8.0
        assert DGEMV.write_bytes_per_element == 0.0


class TestDgemmPanel:
    def test_apply_matches_numpy(self):
        kernel = dgemm_panel(4)
        rng = np.random.default_rng(2)
        a, b, c = kernel.operands(64, rng)
        expected = c + a @ b
        result = kernel.run((a, b, c.copy()))
        np.testing.assert_allclose(result, expected)

    def test_intensity_scales_with_panel(self):
        assert dgemm_panel(8).flops_per_element == 4 * dgemm_panel(2).flops_per_element

    def test_invalid_panel(self):
        with pytest.raises(ValueError):
            dgemm_panel(0)

    def test_name_encodes_panel(self):
        assert dgemm_panel(16).name == "dgemm-p16"


class TestIntensityBehaviour:
    def test_wide_panels_become_compute_bound(self):
        """§4.2's point, carried to Level 3: once intensity is high enough
        the rate stops depending on the memory level — the footprint knee
        vanishes."""
        core = xeon_8x2x4_params().core
        in_cache = 16 * 1024
        in_ram = 64 << 20
        # dgemv (intensity 2 flops / 8 bytes): big footprint penalty.
        slow_ratio = time_per_element(DGEMV, core, in_ram) / time_per_element(
            DGEMV, core, in_cache
        )
        # dgemm with a wide panel: penalty nearly gone.
        wide = dgemm_panel(64)
        flat_ratio = time_per_element(wide, core, in_ram) / time_per_element(
            wide, core, in_cache
        )
        assert slow_ratio > 1.5
        assert flat_ratio < 1.1

    def test_rate_approaches_peak_with_intensity(self):
        core = xeon_8x2x4_params().core
        rate = steady_rate_flops(dgemm_panel(64), core, 64 << 20)
        assert rate > 0.8 * core.flop_rate

    def test_registry_contains_l2(self):
        from repro.kernels import DEFAULT_REGISTRY

        assert "dgemv" in DEFAULT_REGISTRY
        assert "dger" in DEFAULT_REGISTRY
