"""Tests for the 9-point stencil extension kernel (§9.2.3)."""

import numpy as np
import pytest

from repro.cluster.presets import xeon_8x2x4_params
from repro.kernels import STENCIL5, STENCIL9
from repro.machine.compute import steady_rate_flops


class TestStencil9:
    def test_weights_sum_to_one(self):
        """A constant field is a fixed point of the averaging sweep."""
        u = np.full((6, 6), 3.0)
        out = np.zeros_like(u)
        STENCIL9.run((u, out))
        np.testing.assert_allclose(out[1:-1, 1:-1], 3.0)

    def test_corners_contribute(self):
        """Unlike the 5-point kernel, diagonal neighbours matter."""
        u = np.zeros((4, 4))
        u[0, 0] = 16.0  # diagonal neighbour of interior cell (1, 1)
        out5 = np.zeros_like(u)
        out9 = np.zeros_like(u)
        STENCIL5.run((u, out5))
        STENCIL9.run((u, out9))
        assert out5[1, 1] == 0.0
        assert out9[1, 1] == pytest.approx(1.0)  # 16 * 0.0625

    def test_higher_flop_density_than_5_point(self):
        assert STENCIL9.flops_per_element > 2 * STENCIL5.flops_per_element
        assert STENCIL9.bytes_per_element == STENCIL5.bytes_per_element

    def test_sustained_rate_higher(self):
        """Same traffic, more flops: the 9-point kernel sustains a higher
        flop rate at any footprint — another datapoint against scalar
        processor ratings."""
        core = xeon_8x2x4_params().core
        for footprint in (16 * 1024, 64 << 20):
            assert steady_rate_flops(STENCIL9, core, footprint) > steady_rate_flops(
                STENCIL5, core, footprint
            )

    def test_registered(self):
        from repro.kernels import DEFAULT_REGISTRY

        assert "stencil9" in DEFAULT_REGISTRY
