"""Unit tests for kernel descriptors and their NumPy bodies."""

import numpy as np
import pytest

from repro.kernels import (
    BLAS_L1_KERNELS,
    DAXPY,
    DEFAULT_REGISTRY,
    DOT_PRODUCT,
    SAXPY,
    SCOPY,
    SDOT,
    SSWAP,
    STENCIL5,
    VSUB,
    get_kernel,
    kernel_names,
)
from repro.kernels.base import Kernel, KernelRegistry


class TestDaxpy:
    def test_apply_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, x, y = DAXPY.operands(128, rng)
        expected = y + a * x
        result = DAXPY.run((a, x.copy(), y.copy()))
        np.testing.assert_allclose(result, expected)

    def test_memory_use(self):
        assert DAXPY.memory_use(1024) == 1024 * 2 * 8

    def test_flops(self):
        assert DAXPY.flops(100) == 200


class TestVsub:
    def test_apply(self):
        x = np.ones(8)
        y = np.full(8, 3.0)
        out = VSUB.run((x, y))
        np.testing.assert_allclose(out, 2.0)


class TestDotProduct:
    def test_apply(self):
        x = np.array([1.0, 2.0])
        y = np.array([3.0, 4.0])
        assert DOT_PRODUCT.run((x, y)) == pytest.approx(11.0)


class TestStencil5:
    def test_square_requirement(self):
        with pytest.raises(ValueError, match="square"):
            STENCIL5.operands(1000)

    def test_apply_averages_neighbours(self):
        u = np.zeros((4, 4))
        u[1, 2] = 4.0
        out = np.zeros_like(u)
        result = STENCIL5.run((u, out))
        # The neighbour below (2,2) sees u[1,2] through its north stencil arm.
        assert result[2, 2] == pytest.approx(1.0)
        assert result[1, 1] == pytest.approx(1.0)

    def test_interior_only_written(self):
        rng = np.random.default_rng(1)
        u, out = STENCIL5.operands(16, rng)
        STENCIL5.run((u, out))
        assert (out[0, :] == 0).all() and (out[-1, :] == 0).all()
        assert (out[:, 0] == 0).all() and (out[:, -1] == 0).all()


class TestBlasKernels:
    def test_all_eight_present(self):
        names = {k.name for k in BLAS_L1_KERNELS}
        assert names == {
            "sswap", "sscal", "scopy", "saxpy", "sdot", "snrm2", "sasum", "isamax",
        }

    def test_single_precision(self):
        for kernel in BLAS_L1_KERNELS:
            assert kernel.dtype == np.float32

    def test_sswap_swaps(self):
        x = np.arange(4, dtype=np.float32)
        y = np.arange(4, 8, dtype=np.float32)
        SSWAP.run((x, y))
        np.testing.assert_array_equal(x, np.arange(4, 8, dtype=np.float32))
        np.testing.assert_array_equal(y, np.arange(4, dtype=np.float32))

    def test_scopy_copies(self):
        x = np.arange(4, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        SCOPY.run((x, y))
        np.testing.assert_array_equal(x, y)

    def test_sdot_value(self):
        x = np.ones(8, dtype=np.float32)
        y = np.full(8, 2.0, dtype=np.float32)
        assert SDOT.run((x, y)) == pytest.approx(16.0)

    def test_saxpy_in_place(self):
        a = np.float32(2.0)
        x = np.ones(4, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        SAXPY.run((a, x, y))
        np.testing.assert_allclose(y, 2.0)

    def test_memory_use_scalar_vs_vector_factor(self):
        """§4.2: sscal touches half the bytes of saxpy at equal n."""
        assert get_kernel("sscal").memory_use(100) * 2 == get_kernel(
            "saxpy"
        ).memory_use(100)


class TestRegistry:
    def test_default_registry_contents(self):
        # 5 numeric + 8 L1 BLAS + 2 L2 BLAS kernels.
        assert len(DEFAULT_REGISTRY) == 15
        assert "daxpy" in DEFAULT_REGISTRY
        assert "stencil5" in DEFAULT_REGISTRY
        assert "stencil9" in DEFAULT_REGISTRY
        assert "dgemv" in DEFAULT_REGISTRY

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("nope")

    def test_names_sorted(self):
        names = kernel_names()
        assert names == sorted(names)

    def test_duplicate_registration_rejected(self):
        reg = KernelRegistry()
        reg.register(DAXPY)
        with pytest.raises(ValueError, match="already"):
            reg.register(DAXPY)


class TestKernelValidation:
    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            Kernel(
                name="bad",
                flops_per_element=-1.0,
                read_bytes_per_element=0.0,
                write_bytes_per_element=0.0,
                operand_arrays=1,
                dtype=np.dtype(np.float64),
                make_operands=lambda n, rng: (np.zeros(n),),
                apply=lambda ops: None,
            )

    def test_operands_requires_positive_n(self):
        with pytest.raises(ValueError):
            DAXPY.operands(0)

    def test_memory_use_rejects_negative(self):
        with pytest.raises(ValueError):
            DAXPY.memory_use(-1)
