"""Unit tests for cluster ground-truth parameters."""

import pytest

from repro.cluster.params import CacheLevel, ClusterParams, CoreParams, LinkParams
from repro.cluster.presets import (
    athlon_x2_params,
    opteron_12x2x6_params,
    xeon_8x2x4_params,
)
from repro.cluster.topology import Relation


class TestLinkParams:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LinkParams(-1.0, 0.0, 0.0)


class TestCoreParams:
    def test_bandwidth_for_footprint_steps(self):
        core = CoreParams(
            flop_rate=1e9,
            cache_levels=(CacheLevel(1024, 10e9), CacheLevel(4096, 5e9)),
            ram_bandwidth=1e9,
        )
        assert core.bandwidth_for_footprint(512) == 10e9
        assert core.bandwidth_for_footprint(1024) == 10e9
        assert core.bandwidth_for_footprint(1025) == 5e9
        assert core.bandwidth_for_footprint(10_000) == 1e9

    def test_levels_must_be_ordered(self):
        with pytest.raises(ValueError):
            CoreParams(
                flop_rate=1e9,
                cache_levels=(CacheLevel(4096, 5e9), CacheLevel(1024, 10e9)),
                ram_bandwidth=1e9,
            )

    def test_requires_a_level(self):
        with pytest.raises(ValueError):
            CoreParams(flop_rate=1e9, cache_levels=(), ram_bandwidth=1e9)


class TestClusterParams:
    def test_self_link_has_zero_latency(self):
        params = xeon_8x2x4_params()
        link = params.link(Relation.SELF)
        assert link.latency == 0.0
        assert link.start_overhead > 0.0

    def test_missing_relation_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            ClusterParams(
                links={Relation.REMOTE: LinkParams(1e-6, 1e-7, 1e-9)},
                core=xeon_8x2x4_params().core,
            )

    def test_socket_rate_scale_validated(self):
        with pytest.raises(ValueError):
            ClusterParams(
                links=xeon_8x2x4_params().links,
                core=xeon_8x2x4_params().core,
                socket_rate_scale={0: -1.0},
            )


class TestPresets:
    @pytest.mark.parametrize(
        "params", [xeon_8x2x4_params(), opteron_12x2x6_params(), athlon_x2_params()]
    )
    def test_locality_cost_ordering(self, params):
        """Latency must be stratified by topological distance (§5.1)."""
        socket = params.links[Relation.SAME_SOCKET]
        node = params.links[Relation.SAME_NODE]
        remote = params.links[Relation.REMOTE]
        assert socket.latency < node.latency < remote.latency
        assert socket.inv_bandwidth <= node.inv_bandwidth < remote.inv_bandwidth

    def test_athlon_l1_is_64k(self):
        """§4.2: the Athlon X2 shows its knee at the 64 KB L1 boundary."""
        core = athlon_x2_params().core
        assert core.cache_levels[0].size_bytes == 64 * 1024

    def test_xeon_daxpy_rate_near_1gflops(self):
        """Calibration: in-cache DAXPY should sustain ~1 Gflop/s (Tab. 3.1)."""
        from repro.kernels.numeric import DAXPY
        from repro.machine.compute import steady_rate_flops

        rate = steady_rate_flops(DAXPY, xeon_8x2x4_params().core, 16 * 1024)
        assert 0.7e9 < rate < 1.4e9
