"""Unit and property tests for the noise model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.noise import QUIET, NoiseModel


class TestNoiseModel:
    def test_quiet_is_identity(self):
        rng = np.random.default_rng(0)
        base = np.array([1e-6, 2e-3, 5.0])
        out = QUIET.sample(rng, base)
        np.testing.assert_allclose(out, base)

    def test_median_preserved(self):
        """Log-normal jitter is median-1: medians recover the base value."""
        model = NoiseModel(jitter_sigma=0.1, outlier_prob=0.0)
        rng = np.random.default_rng(1)
        samples = model.sample(rng, np.full(20001, 1e-3))
        assert abs(np.median(samples) - 1e-3) / 1e-3 < 0.02

    def test_outliers_appear_at_expected_frequency(self):
        model = NoiseModel(jitter_sigma=0.0, outlier_prob=0.05, outlier_scale=10.0)
        rng = np.random.default_rng(2)
        samples = model.sample(rng, np.full(20000, 1.0))
        frac = np.mean(samples > 1.5)
        assert 0.03 < frac < 0.07

    def test_floor_enforced(self):
        model = NoiseModel(jitter_sigma=0.0, outlier_prob=0.0, floor=1e-6)
        rng = np.random.default_rng(3)
        out = model.sample(rng, np.array([0.0]))
        assert out[0] == 1e-6

    def test_negative_duration_rejected(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            NoiseModel().sample(rng, np.array([-1.0]))

    def test_invalid_outlier_prob(self):
        with pytest.raises(ValueError):
            NoiseModel(outlier_prob=0.9)

    def test_scalar_helper_deprecated(self):
        """sample_scalar still works for one-off draws but warns; the
        pyproject filterwarnings rule turns the warning into an error for
        any repro-internal caller (this test calls from outside repro, so
        the warning is observable rather than fatal)."""
        rng = np.random.default_rng(5)
        model = NoiseModel(jitter_sigma=0.05, outlier_prob=0.0)
        with pytest.deprecated_call():
            value = model.sample_scalar(rng, 1.0)
        assert isinstance(value, float)
        assert value > 0

    def test_scalar_helper_matches_vector_draw(self):
        """The deprecated helper and a length-1 sample consume the stream
        identically — the guarantee that let hot paths migrate without
        re-rolling any golden."""
        model = NoiseModel()
        with pytest.deprecated_call():
            scalar = model.sample_scalar(np.random.default_rng(6), 2.5e-6)
        vector = model.sample(np.random.default_rng(6), np.array([2.5e-6]))
        assert scalar == vector[0]


@given(
    sigma=st.floats(0.0, 0.3),
    base=st.floats(1e-9, 1e3),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=60, deadline=None)
def test_samples_always_positive(sigma, base, seed):
    model = NoiseModel(jitter_sigma=sigma, outlier_prob=0.02)
    rng = np.random.default_rng(seed)
    out = model.sample(rng, np.full(16, base))
    assert np.all(out > 0)


class TestSampleMatrix:
    def test_shape_and_replication_major_order(self):
        """sample_matrix(base, R) must equal one sample() call on the
        (R, *base.shape) broadcast — the engine's draw-order contract."""
        model = NoiseModel()
        base = np.array([1e-6, 2e-6, 3e-6])
        a = model.sample_matrix(np.random.default_rng(9), base, 5)
        b = model.sample(
            np.random.default_rng(9), np.broadcast_to(base, (5, 3)).copy()
        )
        assert a.shape == (5, 3)
        np.testing.assert_array_equal(a, b)

    def test_scalar_base(self):
        out = NoiseModel().sample_matrix(np.random.default_rng(1), 1e-6, 4)
        assert out.shape == (4,)
        assert (out > 0).all()

    def test_nd_base(self):
        base = np.full((2, 3), 1e-6)
        out = NoiseModel().sample_matrix(np.random.default_rng(2), base, 7)
        assert out.shape == (7, 2, 3)

    def test_runs_validated(self):
        with pytest.raises(ValueError, match="runs"):
            NoiseModel().sample_matrix(np.random.default_rng(3), 1.0, 0)

    def test_quiet_model_returns_base(self):
        base = np.array([1e-6, 5e-4])
        out = QUIET.sample_matrix(np.random.default_rng(4), base, 3)
        np.testing.assert_array_equal(out, np.broadcast_to(base, (3, 2)))
