"""Unit and property tests for topology and placement (§5.2, §5.6.6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import Placement, Relation, Topology


@pytest.fixture
def xeon():
    return Topology(nodes=8, sockets_per_node=2, cores_per_socket=4, name="xeon")


class TestTopology:
    def test_dimensions(self, xeon):
        assert xeon.cores_per_node == 8
        assert xeon.total_cores == 64

    def test_node_of(self, xeon):
        assert xeon.node_of(0) == 0
        assert xeon.node_of(7) == 0
        assert xeon.node_of(8) == 1
        assert xeon.node_of(63) == 7

    def test_socket_of(self, xeon):
        assert xeon.socket_of(0) == 0
        assert xeon.socket_of(3) == 0
        assert xeon.socket_of(4) == 1
        assert xeon.socket_of(8) == 2

    def test_relation_classes(self, xeon):
        assert xeon.relation(0, 0) == Relation.SELF
        assert xeon.relation(0, 1) == Relation.SAME_SOCKET
        assert xeon.relation(0, 4) == Relation.SAME_NODE
        assert xeon.relation(0, 8) == Relation.REMOTE

    def test_relation_symmetry(self, xeon):
        for a, b in [(0, 1), (0, 4), (0, 8), (3, 60)]:
            assert xeon.relation(a, b) == xeon.relation(b, a)

    def test_core_out_of_range(self, xeon):
        with pytest.raises(ValueError):
            xeon.node_of(64)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Topology(nodes=0, sockets_per_node=1, cores_per_socket=1)

    def test_describe_mentions_counts(self, xeon):
        assert "8 nodes" in xeon.describe()
        assert "64 cores" in xeon.describe()


class TestRoundRobinPlacement:
    def test_single_node_when_fits(self, xeon):
        pl = Placement.round_robin(xeon, 8)
        assert all(pl.node_of(r) == 0 for r in range(8))

    def test_two_nodes_parity(self, xeon):
        """§5.6.6: with two nodes, rank parity determines the node."""
        pl = Placement.round_robin(xeon, 12)
        for r in range(12):
            assert pl.node_of(r) == r % 2

    def test_uses_minimal_nodes(self, xeon):
        pl = Placement.round_robin(xeon, 17)
        nodes = {pl.node_of(r) for r in range(17)}
        assert nodes == {0, 1, 2}

    def test_full_machine(self, xeon):
        pl = Placement.round_robin(xeon, 64)
        assert sorted(pl.cores.tolist()) == list(range(64))

    def test_rejects_oversubscription(self, xeon):
        with pytest.raises(ValueError):
            Placement.round_robin(xeon, 65)

    def test_core_index_by_position(self, xeon):
        """§5.2: core index = position in sorted co-resident rank list."""
        pl = Placement.round_robin(xeon, 16)
        # Ranks 0,2,4,...,14 land on node 0 in order -> cores 0..7.
        even_ranks = [r for r in range(16) if r % 2 == 0]
        for pos, r in enumerate(even_ranks):
            assert pl.core_of(r) == pos


class TestBlockPlacement:
    def test_identity_mapping(self, xeon):
        pl = Placement.block(xeon, 10)
        assert pl.cores.tolist() == list(range(10))


class TestRelationMatrix:
    def test_matches_pairwise_calls(self, xeon):
        pl = Placement.round_robin(xeon, 12)
        mat = pl.relation_matrix()
        for a in range(12):
            for b in range(12):
                assert mat[a, b] == int(pl.relation(a, b))

    def test_diagonal_self(self, xeon):
        mat = Placement.round_robin(xeon, 6).relation_matrix()
        assert (np.diag(mat) == int(Relation.SELF)).all()


@given(
    nodes=st.integers(1, 6),
    sockets=st.integers(1, 3),
    cores=st.integers(1, 4),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_round_robin_properties(nodes, sockets, cores, data):
    """Placement is injective, in-range, and balanced across used nodes."""
    topo = Topology(nodes=nodes, sockets_per_node=sockets, cores_per_socket=cores)
    nprocs = data.draw(st.integers(1, topo.total_cores))
    pl = Placement.round_robin(topo, nprocs)
    assert pl.nprocs == nprocs
    cores_used = pl.cores
    assert np.unique(cores_used).size == nprocs
    per_node = np.bincount(
        [topo.node_of(int(c)) for c in cores_used], minlength=nodes
    )
    used = per_node[per_node > 0]
    # Round-robin keeps node loads within one of each other.
    assert used.max() - used.min() <= 1
    # No node exceeds its capacity.
    assert per_node.max() <= topo.cores_per_node


class TestPlacementValidation:
    def test_duplicate_core_rejected(self, xeon):
        with pytest.raises(ValueError, match="one core"):
            Placement(xeon, [0, 0])

    def test_out_of_topology_core_rejected(self, xeon):
        with pytest.raises(ValueError):
            Placement(xeon, [0, 99])

    def test_rank_out_of_range(self, xeon):
        pl = Placement.block(xeon, 4)
        with pytest.raises(ValueError):
            pl.core_of(4)
