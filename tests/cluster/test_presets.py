"""The named preset registry and string-referenceable machine factory."""

import pytest

from repro.cluster.presets import (
    PRESETS,
    ClusterPreset,
    get_preset,
    make_preset_machine,
    preset_names,
    register_preset,
    xeon_8x2x4_params,
    xeon_8x2x4_topology,
)


def test_registry_contains_the_calibrated_platforms():
    assert {"xeon-8x2x4", "xeon-8x2x4-ib", "opteron-12x2x6",
            "cluster-10x2x6", "athlon-x2"} <= set(preset_names())


def test_get_preset_errors_name_the_known_presets():
    with pytest.raises(KeyError, match="xeon-8x2x4"):
        get_preset("no-such-cluster")


def test_preset_factories_build_fresh_objects():
    preset = get_preset("xeon-8x2x4")
    assert preset.topology() is not preset.topology()
    assert preset.topology() == preset.topology()
    assert preset.total_cores == 64


def test_make_preset_machine_matches_manual_construction():
    machine = make_preset_machine("xeon-8x2x4", seed=7)
    assert machine.seed == 7
    assert machine.topology == xeon_8x2x4_topology()
    assert machine.params == xeon_8x2x4_params()


def test_scaled_topology_keeps_node_design():
    machine = make_preset_machine("xeon-8x2x4", nodes=3)
    assert machine.topology.nodes == 3
    assert machine.topology.sockets_per_node == 2
    assert machine.topology.cores_per_socket == 4
    with pytest.raises(ValueError):
        get_preset("xeon-8x2x4").scaled_topology(0)


def test_register_preset_overrides_by_name():
    original = PRESETS["xeon-8x2x4"]
    try:
        register_preset(ClusterPreset(
            name="xeon-8x2x4",
            params_factory=xeon_8x2x4_params,
            topology_factory=xeon_8x2x4_topology,
            description="override",
        ))
        assert get_preset("xeon-8x2x4").description == "override"
    finally:
        register_preset(original)
