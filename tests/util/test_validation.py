"""Unit tests for argument validators."""

import numpy as np
import pytest

from repro.util.validation import (
    require_in_range,
    require_int,
    require_matrix,
    require_nonnegative,
    require_positive,
)


class TestRequireInt:
    def test_accepts_python_int(self):
        assert require_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert require_int(np.int64(7), "x") == 7

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="x"):
            require_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_int(2.5, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            require_int("3", "x")


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            require_positive(float("inf"), "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive(True, "x")


class TestRequireNonnegative:
    def test_accepts_zero(self):
        assert require_nonnegative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_nonnegative(-1e-9, "x")


class TestRequireInRange:
    def test_bounds_inclusive(self):
        assert require_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert require_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(1.1, "x", 0.0, 1.0)


class TestRequireMatrix:
    def test_returns_float_array(self):
        out = require_matrix([[1, 2], [3, 4]], "m")
        assert out.dtype == float
        assert out.shape == (2, 2)

    def test_enforces_shape(self):
        with pytest.raises(ValueError, match="shape"):
            require_matrix(np.zeros((2, 3)), "m", (3, 3))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            require_matrix([1.0, 2.0], "m")
