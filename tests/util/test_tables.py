"""Unit tests for table formatting."""

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "long"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # All lines share the same total width (right-justified columns).
        assert len({len(line) for line in lines}) == 1

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1234567.0], [0.00001234]])
        assert "1.235e+06" in text
        assert "1.234e-05" in text


class TestFormatSeries:
    def test_point_per_line(self):
        text = format_series("demo", [1, 2], [0.5, 0.25])
        lines = text.splitlines()
        assert lines[0] == "# series: demo"
        assert len(lines) == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("demo", [1], [1, 2])
