"""Tests for on-line barrier adaptivity (§9.2.2 implemented future work)."""

import numpy as np
import pytest

from repro.adapt import (
    OnlineBarrierAdapter,
    degrade_profile,
    merge_profiles,
)
from repro.barriers import is_correct_barrier, predict_barrier_cost
from repro.barriers.cost_model import CommParameters
from repro.bench import benchmark_comm
from repro.cluster import presets
from repro.machine import SimMachine


@pytest.fixture(scope="module")
def profile():
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=111
    )
    placement = machine.placement(24)
    return benchmark_comm(
        machine, placement, samples=7, sizes=tuple(2**k for k in range(0, 17, 4))
    ).params


class TestMergeProfiles:
    def test_smoothing_zero_keeps_old(self, profile):
        merged = merge_profiles(profile, degrade_profile(profile, [0]), 0.0)
        np.testing.assert_array_equal(merged.latency, profile.latency)

    def test_smoothing_one_takes_new(self, profile):
        new = degrade_profile(profile, [0])
        merged = merge_profiles(profile, new, 1.0)
        np.testing.assert_array_equal(merged.latency, new.latency)

    def test_halfway(self, profile):
        new = degrade_profile(profile, [0], latency_factor=3.0)
        merged = merge_profiles(profile, new, 0.5)
        expected = 0.5 * (profile.latency[0, 5] + new.latency[0, 5])
        assert merged.latency[0, 5] == pytest.approx(expected)

    def test_size_mismatch(self, profile):
        small = CommParameters(
            overhead=np.ones((2, 2)), latency=np.zeros((2, 2))
        )
        with pytest.raises(ValueError):
            merge_profiles(profile, small)


class TestDegradeProfile:
    def test_inflates_touching_links(self, profile):
        degraded = degrade_profile(profile, [3], latency_factor=10.0)
        assert degraded.latency[3, 5] == pytest.approx(
            10.0 * profile.latency[3, 5]
        )
        assert degraded.latency[5, 3] == pytest.approx(
            10.0 * profile.latency[5, 3]
        )
        assert degraded.latency[4, 5] == pytest.approx(profile.latency[4, 5])

    def test_diagonal_stays_zero(self, profile):
        degraded = degrade_profile(profile, [0, 1])
        assert (np.diag(degraded.latency) == 0).all()


class TestOnlineAdapter:
    def test_initial_pattern_correct(self, profile):
        adapter = OnlineBarrierAdapter(profile)
        assert is_correct_barrier(adapter.pattern)

    def test_stable_profile_no_switch(self, profile):
        adapter = OnlineBarrierAdapter(profile)
        for _ in range(3):
            adapter.observe(profile)
        assert adapter.switches == 0

    def test_drift_triggers_readaptation(self, profile):
        """Degrading many links reshapes the optimal pattern family; the
        adapter must react and end with a pattern whose predicted cost
        under the new conditions beats the stale choice."""
        adapter = OnlineBarrierAdapter(profile, smoothing=1.0)
        stale = adapter.pattern
        # All intra-node links now look as slow as remote ones: the SSS
        # structure collapses and the hierarchy choice must change.
        drifted = CommParameters(
            overhead=profile.overhead,
            latency=np.where(
                profile.latency > 0, profile.latency.max(), 0.0
            ),
            inv_bandwidth=profile.inv_bandwidth,
        )
        adapter.observe(drifted)
        stale_cost = predict_barrier_cost(stale, drifted)
        new_cost = predict_barrier_cost(adapter.pattern, drifted)
        assert new_cost <= stale_cost
        assert adapter.events[-1].current_cost >= adapter.events[-1].best_cost

    def test_events_recorded(self, profile):
        adapter = OnlineBarrierAdapter(profile)
        adapter.observe(profile)
        adapter.observe(degrade_profile(profile, [0]))
        assert len(adapter.events) == 2
        assert adapter.events[0].observation == 1

    def test_hysteresis_prevents_flapping(self, profile):
        """Small perturbations below the switch factor never flip the
        pattern back and forth."""
        adapter = OnlineBarrierAdapter(profile, switch_factor=2.0)
        rng = np.random.default_rng(0)
        for _ in range(4):
            jitter = profile.latency * rng.uniform(0.97, 1.03, profile.latency.shape)
            np.fill_diagonal(jitter, 0.0)
            adapter.observe(
                CommParameters(
                    overhead=profile.overhead,
                    latency=jitter,
                    inv_bandwidth=profile.inv_bandwidth,
                )
            )
        assert adapter.switches == 0

    def test_switch_factor_validated(self, profile):
        with pytest.raises(ValueError):
            OnlineBarrierAdapter(profile, switch_factor=0.5)
