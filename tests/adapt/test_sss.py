"""Unit tests for SSS latency clustering (§7.2)."""

import numpy as np
import pytest

from repro.adapt.sss import (
    ClusterLevel,
    clustering_table,
    latency_strata,
    nested_hierarchy,
    sss_cluster,
)
from repro.bench import benchmark_comm
from repro.cluster import presets
from repro.machine import SimMachine


def synthetic_latency(groups, local=1e-6, remote=1e-5):
    """Block matrix: cheap within groups, expensive across."""
    p = sum(groups)
    lat = np.full((p, p), remote)
    start = 0
    for g in groups:
        lat[start : start + g, start : start + g] = local
        start += g
    np.fill_diagonal(lat, 0.0)
    return lat


class TestLatencyStrata:
    def test_two_strata_detected(self):
        lat = synthetic_latency([4, 4])
        bounds = latency_strata(lat)
        assert len(bounds) == 2
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[1] == pytest.approx(1e-5)

    def test_uniform_is_one_stratum(self):
        lat = synthetic_latency([8], local=1e-6)
        assert len(latency_strata(lat)) == 1

    def test_noise_within_stratum_not_split(self):
        rng = np.random.default_rng(0)
        lat = synthetic_latency([4, 4])
        lat *= rng.uniform(0.95, 1.05, lat.shape)
        np.fill_diagonal(lat, 0.0)
        assert len(latency_strata(lat)) == 2

    def test_gap_ratio_validation(self):
        with pytest.raises(ValueError):
            latency_strata(synthetic_latency([4]), gap_ratio=0.9)


class TestSssCluster:
    def test_groups_recovered(self):
        lat = synthetic_latency([3, 5, 4])
        levels = sss_cluster(lat)
        assert levels[0].subset_sizes == [3, 5, 4]
        assert levels[-1].subset_sizes == [12]

    def test_three_level_hierarchy(self):
        """Socket-in-node structure: 2 sockets of 2 per node, 2 nodes."""
        p = 8
        lat = np.full((p, p), 9e-6)  # remote
        for node in range(2):
            base = node * 4
            lat[base : base + 4, base : base + 4] = 2e-6  # same node
            for socket in range(2):
                s = base + socket * 2
                lat[s : s + 2, s : s + 2] = 0.5e-6  # same socket
        np.fill_diagonal(lat, 0.0)
        levels = sss_cluster(lat, gap_ratio=1.5)
        assert [lvl.subset_sizes for lvl in levels] == [
            [2, 2, 2, 2],
            [4, 4],
            [8],
        ]

    def test_disconnected_rejected(self):
        lat = synthetic_latency([4, 4])
        lat[:4, 4:] = 0.0  # no measured connectivity
        lat[4:, :4] = 0.0
        with pytest.raises(ValueError, match="disconnected"):
            sss_cluster(lat)


class TestNestedHierarchy:
    def test_duplicate_levels_dropped(self):
        a = ClusterLevel(1.0, ((0, 1), (2, 3)))
        b = ClusterLevel(2.0, ((0, 1), (2, 3)))
        c = ClusterLevel(3.0, ((0, 1, 2, 3),))
        assert nested_hierarchy([a, b, c]) == [a, c]


class TestClusteringTable:
    def test_row_format(self):
        levels = sss_cluster(synthetic_latency([4, 4, 4]))
        rows = clustering_table(levels)
        assert rows[0][0] == 0
        assert rows[0][2] == 3
        assert rows[0][3] == "3x4"


class TestOnBenchmarkedPlatform:
    def test_recovers_node_structure_60_procs(self):
        """Table 7.1's scenario: 60 processes on the 8x2x4 cluster must
        cluster into the 8 nodes (4 with 8 ranks, 4 with 7)."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=7
        )
        placement = machine.placement(60)
        report = benchmark_comm(
            machine, placement, samples=7,
            sizes=tuple(2**k for k in range(0, 17, 4)),
        )
        levels = sss_cluster(report.params.latency)
        node_level = levels[-2]
        assert sorted(node_level.subset_sizes) == [7, 7, 7, 7, 8, 8, 8, 8]
        # Subsets must coincide with the actual nodes.
        for subset in node_level.subsets:
            nodes = {placement.node_of(r) for r in subset}
            assert len(nodes) == 1
