"""Unit and integration tests for hybrid barriers and greedy adaptation."""

import numpy as np
import pytest

from repro.adapt import (
    ClusterLevel,
    flat_defaults,
    greedy_adapt,
    hierarchical_barrier,
)
from repro.barriers import is_correct_barrier, measure_barrier, predict_barrier_cost
from repro.bench import benchmark_comm
from repro.cluster import presets
from repro.machine import SimMachine


def two_level_levels(groups):
    p = sum(groups)
    subsets = []
    start = 0
    for g in groups:
        subsets.append(tuple(range(start, start + g)))
        start += g
    return [ClusterLevel(1e-6, tuple(subsets))]


class TestHierarchicalBarrier:
    @pytest.mark.parametrize("local", ["linear", "tree2", "tree4"])
    @pytest.mark.parametrize("top", ["linear", "tree2", "dissemination"])
    def test_correct_for_all_kind_combinations(self, local, top):
        levels = two_level_levels([4, 4, 4])
        pattern = hierarchical_barrier(12, levels, local_kind=local, top_kind=top)
        assert is_correct_barrier(pattern)

    def test_uneven_groups(self):
        levels = two_level_levels([5, 3, 7, 1])
        pattern = hierarchical_barrier(16, levels)
        assert is_correct_barrier(pattern)

    def test_three_level_hierarchy(self):
        fine = ClusterLevel(
            1e-6, tuple(tuple(range(s, s + 2)) for s in range(0, 8, 2))
        )
        coarse = ClusterLevel(2e-6, ((0, 1, 2, 3), (4, 5, 6, 7)))
        pattern = hierarchical_barrier(8, [fine, coarse], local_kind="linear")
        assert is_correct_barrier(pattern)

    def test_single_process(self):
        pattern = hierarchical_barrier(1, two_level_levels([1]))
        assert pattern.num_stages == 0

    def test_release_mirrors_gather(self):
        levels = two_level_levels([4, 4])
        pattern = hierarchical_barrier(
            8, levels, local_kind="linear", top_kind="linear"
        )
        gather_depth = (pattern.num_stages - 2) // 2
        for k in range(gather_depth):
            np.testing.assert_array_equal(
                pattern.stages[-(k + 1)], pattern.stages[k].T
            )

    def test_kind_count_mismatch(self):
        with pytest.raises(ValueError, match="per level"):
            hierarchical_barrier(
                8, two_level_levels([4, 4]), local_kind=["linear", "tree2"]
            )

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            hierarchical_barrier(8, two_level_levels([4, 4]), local_kind="magic")

    def test_fewer_messages_than_flat_dissemination(self):
        """The hybrid pays local gathers to spare the interconnect."""
        from repro.barriers.patterns import dissemination_barrier

        levels = two_level_levels([8, 8, 8, 8])
        hybrid = hierarchical_barrier(32, levels, local_kind="tree2")
        assert hybrid.total_messages < dissemination_barrier(32).total_messages


class TestGreedyAdapt:
    @pytest.fixture(scope="class")
    def profiled(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=17
        )
        placement = machine.placement(32)
        report = benchmark_comm(
            machine, placement, samples=7,
            sizes=tuple(2**k for k in range(0, 17, 4)),
        )
        return machine, placement, report.params

    def test_produces_correct_pattern(self, profiled):
        _, _, params = profiled
        adapted = greedy_adapt(params)
        assert is_correct_barrier(adapted.pattern)

    def test_prediction_beats_or_matches_defaults(self, profiled):
        """§7.4's headline: the generated barrier's predicted cost never
        loses to the flat defaults (it can always fall back to them)."""
        _, _, params = profiled
        adapted = greedy_adapt(params)
        assert adapted.predicted_cost <= min(adapted.default_predictions.values())

    def test_measured_performance_competitive(self, profiled):
        """Figs. 7.6-7.7: measured adapted barrier equals or outperforms
        the measured defaults (tolerance for noise)."""
        machine, placement, params = profiled
        adapted = greedy_adapt(params)
        t_adapted = measure_barrier(
            machine, adapted.pattern, placement, runs=16
        ).mean_worst
        best_default = min(
            measure_barrier(machine, p, placement, runs=16).mean_worst
            for p in flat_defaults(placement.nprocs).values()
        )
        assert t_adapted <= best_default * 1.15

    def test_prediction_tracks_measurement(self, profiled):
        machine, placement, params = profiled
        adapted = greedy_adapt(params)
        measured = measure_barrier(
            machine, adapted.pattern, placement, runs=16
        ).mean_worst
        assert adapted.predicted_cost == pytest.approx(measured, rel=1.0)

    def test_flat_latency_still_produces_barrier(self):
        """A structureless platform degenerates to a single subset; the
        generator must still emit a correct barrier (possibly a default)."""
        lat = np.full((6, 6), 1e-6)
        np.fill_diagonal(lat, 0.0)
        ov = np.full((6, 6), 1e-7)
        from repro.barriers.cost_model import CommParameters

        params = CommParameters(overhead=ov, latency=lat)
        adapted = greedy_adapt(params)
        assert is_correct_barrier(adapted.pattern)
        assert adapted.predicted_cost <= min(adapted.default_predictions.values())
