"""Tests for the one-call adaptation evaluation and its parameter-stability
ensemble (``comm_runs``)."""

import pytest

from repro.adapt.evaluate import evaluate_adaptation
from repro.cluster import presets
from repro.machine import SimMachine


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=31
    )


class TestEvaluateAdaptation:
    def test_without_ensemble_fields_absent(self, machine):
        ev = evaluate_adaptation(machine, 8, runs=4, comm_samples=3)
        assert ev.nprocs == 8
        assert ev.adapted_measured > 0
        assert ev.best_default_measured > 0
        assert ev.ensemble_runs is None
        assert ev.ensemble_predicted_spread is None
        assert ev.choice_stability is None

    def test_comm_runs_ensemble_stability(self, machine):
        ev = evaluate_adaptation(
            machine, 8, runs=4, comm_samples=3, comm_runs=5
        )
        assert ev.ensemble_runs == 5
        assert ev.ensemble_predicted_mean > 0
        assert ev.ensemble_predicted_spread >= 0.0
        # The §5.6.3 extraction is stable on this platform: ensemble
        # predictions stay within a factor of the point prediction and the
        # greedy choice agrees for most members.
        assert ev.ensemble_predicted_mean == pytest.approx(
            ev.adapted_predicted, rel=1.0
        )
        assert 0.0 <= ev.choice_stability <= 1.0
        assert ev.choice_stability >= 0.5

    def test_ensemble_deterministic(self, machine):
        a = evaluate_adaptation(machine, 6, runs=4, comm_samples=3,
                                comm_runs=3)
        b = evaluate_adaptation(machine, 6, runs=4, comm_samples=3,
                                comm_runs=3)
        assert a.ensemble_predicted_mean == b.ensemble_predicted_mean
        assert a.ensemble_predicted_spread == b.ensemble_predicted_spread
        assert a.choice_stability == b.choice_stability

    def test_comm_runs_validated(self, machine):
        with pytest.raises(ValueError, match="comm_runs"):
            evaluate_adaptation(machine, 4, runs=2, comm_samples=3,
                                comm_runs=0)
