"""Defensive-validation tests for the hybrid barrier generator."""

import pytest

from repro.adapt import ClusterLevel, hierarchical_barrier
from repro.barriers import is_correct_barrier


def levels_for(groups):
    subsets = []
    start = 0
    for g in groups:
        subsets.append(tuple(range(start, start + g)))
        start += g
    return [ClusterLevel(1e-6, tuple(subsets))]


class TestGeneratorDefenses:
    def test_dissemination_as_gather_caught(self):
        """Dissemination has no arrival/release split, so using it as a
        *gather* kind produces a broken funnel — the knowledge-matrix
        validation must refuse it (the §5.5 debugging story)."""
        with pytest.raises(ValueError, match="lacking arrival evidence"):
            hierarchical_barrier(
                8, levels_for([4, 4]), local_kind="dissemination",
                top_kind="dissemination",
            )

    def test_validation_can_be_bypassed_for_analysis(self):
        pattern = hierarchical_barrier(
            8, levels_for([4, 4]), local_kind="dissemination",
            top_kind="dissemination", validate=False,
        )
        assert not is_correct_barrier(pattern)

    def test_incomplete_level_coverage_rejected(self):
        bad_level = ClusterLevel(1e-6, ((0, 1), (2,)))  # rank 3 missing
        with pytest.raises(ValueError):
            hierarchical_barrier(4, [bad_level])

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            hierarchical_barrier(4, [])

    def test_singleton_subsets_only_top(self):
        """All-singleton level degenerates to the top pattern alone."""
        level = ClusterLevel(1e-6, ((0,), (1,), (2,), (3,)))
        pattern = hierarchical_barrier(
            4, [level], local_kind="linear", top_kind="dissemination"
        )
        assert is_correct_barrier(pattern)
        from repro.barriers import dissemination_barrier

        assert pattern.num_stages == dissemination_barrier(4).num_stages
