"""Isolation for telemetry tests: the module singleton and its activation
environment variable are process-global, so every test starts and ends
with telemetry off."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _telemetry_isolated(monkeypatch):
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    obs.disable()
    yield
    obs.disable()
