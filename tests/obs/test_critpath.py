"""Critical-path extraction from engine provenance (repro.obs.critpath).

The acceptance contract: for every registered pattern family the
extracted path is a valid event chain (connected, time-monotone, ends at
the makespan event), per-category attribution sums *exactly* (Fraction
arithmetic) to the simulated makespan per replication, recording is
strictly opt-in (untraced results bit-identical), and the Chrome export
of a report renders flow arrows that pass the trace validator.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro import obs
from repro.barriers.patterns import (
    dissemination_barrier,
    linear_barrier,
    pairwise_exchange_barrier,
    tree_barrier,
)
from repro.cluster import presets
from repro.machine.simmachine import SimMachine
from repro.obs.critpath import CATEGORIES
from repro.simmpi.engine import simulate_stages_batch

FAMILIES = {
    "linear": linear_barrier,
    "tree": tree_barrier,
    "dissemination": dissemination_barrier,
    "pairwise": pairwise_exchange_barrier,
}


def make_pattern(name: str, p: int):
    if name == "pairwise":
        p = 1 << (p.bit_length() - 1)
    return FAMILIES[name](p)


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=77
    )


def run_with_provenance(machine, pattern, runs=3, noisy=True, seed=11,
                        entry_times=None):
    truth = machine.comm_truth(machine.placement(pattern.nprocs))
    prov = obs.EngineProvenance()
    rng = np.random.default_rng(seed) if noisy else None
    exits = simulate_stages_batch(
        truth, pattern.stages, runs=runs, rng=rng,
        entry_times=entry_times, provenance=prov,
    )
    return prov, exits


class TestEngineCriticalPath:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("p", [4, 8])
    @pytest.mark.parametrize("noisy", [False, True])
    def test_path_is_valid_and_sums_to_makespan(
        self, machine, family, p, noisy
    ):
        pattern = make_pattern(family, p)
        prov, exits = run_with_provenance(
            machine, pattern, runs=3, noisy=noisy
        )
        paths = obs.extract_paths(prov)
        assert len(paths) == 3
        for r, path in enumerate(paths):
            assert obs.validate_path(path) == []
            # Bitwise: the path ends exactly at the simulated makespan.
            assert path.makespan == exits[r].max()
            total = sum(
                path.category_totals().values(), Fraction(0)
            )
            assert total == Fraction(path.makespan)
            assert set(path.category_totals()) <= set(CATEGORIES)

    def test_hops_are_connected_and_monotone(self, machine):
        pattern = make_pattern("dissemination", 8)
        prov, _ = run_with_provenance(machine, pattern, runs=1)
        (path,) = obs.extract_paths(prov)
        assert path.hops[0].t0 == 0.0
        for prev, hop in zip(path.hops, path.hops[1:]):
            assert prev.t1 == hop.t0  # exact float equality: connected
            assert hop.t1 >= hop.t0

    def test_entry_skew_still_valid(self, machine):
        pattern = make_pattern("tree", 8)
        entry = np.random.default_rng(3).uniform(0, 1e-3, pattern.nprocs)
        prov, exits = run_with_provenance(
            machine, pattern, runs=2, entry_times=entry
        )
        for r, path in enumerate(obs.extract_paths(prov)):
            assert obs.validate_path(path) == []
            assert path.makespan == exits[r].max()

    def test_recording_is_bit_identical_off_and_on(self, machine):
        pattern = make_pattern("pairwise", 8)
        truth = machine.comm_truth(machine.placement(pattern.nprocs))
        base = simulate_stages_batch(
            truth, pattern.stages, runs=8, rng=np.random.default_rng(5)
        )
        traced = simulate_stages_batch(
            truth, pattern.stages, runs=8, rng=np.random.default_rng(5),
            provenance=obs.EngineProvenance(),
        )
        assert base.tolist() == traced.tolist()

    def test_clean_broadcast_shares_one_replication(self, machine):
        # The clean batched path computes one replication and broadcasts;
        # provenance must replay identically for every requested row.
        pattern = make_pattern("linear", 6)
        prov, exits = run_with_provenance(
            machine, pattern, runs=4, noisy=False
        )
        assert prov.runs == 4
        paths = obs.extract_paths(prov)
        assert len(paths) == 4
        assert len({p.makespan for p in paths}) == 1
        assert paths[0].hops == paths[3].hops

    def test_critical_resources_have_zero_slack(self, machine):
        pattern = make_pattern("dissemination", 8)
        prov, _ = run_with_provenance(machine, pattern, runs=1)
        graph = obs.event_graph(prov, 0)
        (path,) = obs.extract_paths(prov)
        slacks = graph.resource_slacks()
        assert slacks and all(s >= 0 for s in slacks.values())
        # Every process the critical path blames has no slack at all.
        for hop in path.hops:
            key = f"proc:{hop.process}"
            if key in slacks:
                assert slacks[key] == 0


class TestExplainReport:
    def test_report_round_trips_through_record(self, machine):
        pattern = make_pattern("tree", 8)
        prov, _ = run_with_provenance(machine, pattern, runs=4)
        report = obs.explain(prov, label="tree-8")
        assert report.problems == []
        assert report.runs == 4 and report.nprocs == 8
        shares = [row["share"] for row in report.categories.values()]
        assert sum(shares) == pytest.approx(1.0)
        record = report.to_record()
        import json

        json.dumps(record)  # JSON-safe by construction
        text = obs.render_record(record)
        assert "tree-8" in text and "category attribution" in text

    def test_edge_criticality_frequencies(self, machine):
        pattern = make_pattern("dissemination", 8)
        prov, _ = run_with_provenance(machine, pattern, runs=16)
        edges = obs.edge_criticality(obs.extract_paths(prov))
        assert edges
        assert all(0 < e["frequency"] <= 1.0 for e in edges)
        # Sorted most-critical-first.
        freqs = [e["frequency"] for e in edges]
        assert freqs == sorted(freqs, reverse=True)

    def test_emit_and_read_back(self, machine, tmp_path):
        pattern = make_pattern("linear", 4)
        prov, _ = run_with_provenance(machine, pattern, runs=2)
        report = obs.explain(prov, label="linear-4")
        telemetry = obs.enable(str(tmp_path))
        assert obs.emit_report(report) is True
        telemetry.flush()
        records = obs.critpath_records(obs.read_events(str(tmp_path)))
        assert len(records) == 1
        assert records[0]["label"] == "linear-4"
        assert records[0]["type"] == obs.CRITPATH_EVENT


class TestChromeFlowArrows:
    def test_flow_lane_validates_and_pairs(self, machine):
        pattern = make_pattern("dissemination", 8)
        prov, _ = run_with_provenance(machine, pattern, runs=2)
        record = obs.explain(prov, label="d8").to_record()
        doc = obs.chrome_trace([], critpath=record)
        assert obs.validate_chrome_trace(doc) > 0
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert slices and starts
        # Arrows pair start/finish ids one to one.
        assert sorted(e["id"] for e in starts) == sorted(
            e["id"] for e in ends
        )
        # Slices cover the path in time order with no overlap.
        times = [(e["ts"], e["ts"] + e["dur"]) for e in slices]
        for (_, t1), (t0, _) in zip(times, times[1:]):
            assert t0 >= t1 - 1e-9

    def test_zero_length_path_renders_empty_lane(self):
        record = {"kind": "engine", "label": "empty", "path": []}
        doc = obs.chrome_trace([], critpath=record)
        assert obs.validate_chrome_trace(doc) == 0

    def test_validator_rejects_flow_event_without_id(self):
        doc = {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {"name": "x", "ph": "s", "pid": 1, "tid": 0, "ts": 0.0}
            ],
        }
        with pytest.raises(ValueError, match="lacks 'id'"):
            obs.validate_chrome_trace(doc)
