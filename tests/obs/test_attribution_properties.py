"""Property tests (S3): attribution exactness over the input space.

For *every* pattern family, process count, replication count, and noise
seed hypothesis explores, each replication's per-category attribution
must sum bit-exactly — as :class:`fractions.Fraction` arithmetic over
the IEEE doubles on the path — to that replication's simulated makespan.
Same property one layer up for BSP superstep programs.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.barriers.patterns import (
    dissemination_barrier,
    linear_barrier,
    pairwise_exchange_barrier,
    tree_barrier,
)
from repro.bsplib import bsp_run
from repro.cluster import presets
from repro.kernels import DAXPY
from repro.machine import SimMachine

FAMILIES = {
    "linear": linear_barrier,
    "tree": tree_barrier,
    "dissemination": dissemination_barrier,
    "pairwise": pairwise_exchange_barrier,
}


def _machine(seed: int) -> SimMachine:
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
        seed=seed,
    )


@given(
    family=st.sampled_from(sorted(FAMILIES)),
    p=st.integers(2, 16),
    runs=st.integers(1, 4),
    noisy=st.booleans(),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_engine_attribution_sums_exactly_to_makespan(
    family, p, runs, noisy, seed
):
    from repro.simmpi.engine import simulate_stages_batch

    if family == "pairwise":
        p = 1 << (p.bit_length() - 1)
    pattern = FAMILIES[family](p)
    machine = _machine(7)
    truth = machine.comm_truth(machine.placement(pattern.nprocs))
    prov = obs.EngineProvenance()
    rng = np.random.default_rng(seed) if noisy else None
    exits = simulate_stages_batch(
        truth, pattern.stages, runs=runs, rng=rng, provenance=prov
    )
    paths = obs.extract_paths(prov)
    assert len(paths) == runs
    for r, path in enumerate(paths):
        assert obs.validate_path(path) == []
        assert path.makespan == exits[r].max()
        assert sum(
            path.category_totals().values(), Fraction(0)
        ) == Fraction(path.makespan)
        # The same telescoping holds per process and per scope: each
        # partition covers all hops once.
        assert sum(
            path.process_totals().values(), Fraction(0)
        ) == Fraction(path.makespan)
        assert sum(
            path.scope_totals().values(), Fraction(0)
        ) == Fraction(path.makespan)


@given(
    p=st.integers(2, 6),
    payload=st.integers(1, 24),
    use_gets=st.booleans(),
    use_sends=st.booleans(),
    runs=st.integers(1, 3),
    noisy=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_bsp_attribution_sums_exactly_to_makespan(
    p, payload, use_gets, use_sends, runs, noisy
):
    def program(ctx):
        pid = ctx.pid
        window = np.zeros(payload * ctx.nprocs)
        scratch = np.zeros(payload)
        ctx.push_reg(window)
        ctx.sync()
        src = np.arange(payload, dtype=float) + pid
        ctx.charge_kernel(DAXPY, 256 + 64 * pid)
        ctx.put((pid + 1) % p, src, window, offset=payload * pid)
        if use_gets:
            ctx.get((pid + 2) % p, window, 0, scratch, nelems=payload)
        if use_sends:
            ctx.send((pid + 1) % p, b"", src[: min(4, payload)])
            if ctx.qsize()[0]:
                ctx.move()
        ctx.sync()
        return 0.0

    result = bsp_run(
        _machine(7), p, program, label="prop-bsp", noisy=noisy,
        runs=runs, provenance=True,
    )
    makespans = np.atleast_2d(result.provenance.final_times).max(axis=1)
    paths = obs.extract_paths(result.provenance)
    assert len(paths) == runs
    for r, path in enumerate(paths):
        assert obs.validate_path(path) == []
        assert path.makespan == makespans[r]
        assert sum(
            path.category_totals().values(), Fraction(0)
        ) == Fraction(path.makespan)
