"""``repro.obs`` core: spans, metrics, sinks, Chrome export, summaries."""

import json
import os
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.chrome import SIM_LANE_PID
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.telemetry import Telemetry


def assert_well_formed(events):
    """Every recorded host span nests correctly: its parent is a span of
    the same process and thread whose interval encloses it."""
    spans = [
        e for e in events
        if e.get("type") == "span" and e.get("time") == "host"
    ]
    by_proc = {}
    for s in spans:
        by_proc.setdefault(s["pid"], {})[s["id"]] = s
    eps = 1e-6
    for s in spans:
        parent = s.get("parent")
        if parent is None:
            continue
        table = by_proc[s["pid"]]
        assert parent in table, f"span {s['id']} orphaned in pid {s['pid']}"
        ps = table[parent]
        assert ps["tid"] == s["tid"]
        assert ps["ts"] <= s["ts"] + eps
        assert ps["ts"] + ps["dur"] >= s["ts"] + s["dur"] - eps
    return spans


# ------------------------------------------------------------------ spans

class TestSpans:
    def test_nested_spans_record_parent_links(self):
        t = Telemetry()
        with t.span("outer", layer=1) as outer:
            with t.span("inner") as inner:
                assert inner.parent == outer.id
            outer.set("note", "done")
        events = t.events()
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner_e, outer_e = events
        assert inner_e["parent"] == outer_e["id"]
        assert outer_e["parent"] is None
        assert outer_e["attrs"] == {"layer": 1, "note": "done"}
        assert_well_formed(events)

    def test_exception_stamps_error_attr_and_closes(self):
        t = Telemetry()
        with pytest.raises(ValueError):
            with t.span("risky"):
                raise ValueError("boom")
        (event,) = t.events()
        assert event["attrs"]["error"] == "ValueError"
        assert event["dur"] >= 0.0
        # The stack unwound: the next span is a root again.
        with t.span("after"):
            pass
        assert t.events()[-1]["parent"] is None

    def test_emit_span_sim_timebase(self):
        t = Telemetry()
        t.emit_span("engine.stage", 0.5, 0.25, time_base="sim", stage=3)
        (event,) = t.events()
        assert event["time"] == "sim"
        assert (event["ts"], event["dur"]) == (0.5, 0.25)
        with pytest.raises(ValueError):
            t.emit_span("x", 0.0, 1.0, time_base="galactic")

    def test_threads_get_distinct_tids_and_independent_stacks(self):
        t = Telemetry()
        # OS thread ids recycle after joins; the barrier keeps all four
        # alive at once so each must get a distinct tid.
        barrier = threading.Barrier(4)

        def work():
            with t.span("thread.outer"):
                barrier.wait(timeout=10)
                with t.span("thread.inner"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        spans = assert_well_formed(t.events())
        outer_tids = {s["tid"] for s in spans if s["name"] == "thread.outer"}
        assert len(outer_tids) == 4
        # No cross-thread parentage: every inner's parent is its own
        # thread's outer (checked by assert_well_formed), and every outer
        # is a root.
        assert all(
            s["parent"] is None for s in spans if s["name"] == "thread.outer"
        )

    @given(
        tree=st.recursive(
            st.just([]),
            lambda children: st.lists(children, max_size=3),
            max_leaves=12,
        )
    )
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_arbitrary_nesting_is_well_formed(self, tree):
        t = Telemetry()

        def walk(node, depth):
            with t.span("node", depth=depth):
                for child in node:
                    walk(child, depth + 1)

        walk(tree, 0)
        spans = assert_well_formed(t.events())

        def count(node):
            return 1 + sum(count(c) for c in node)

        assert len(spans) == count(tree)
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 1


# ---------------------------------------------------------------- metrics

class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        t = Telemetry()
        t.count("points", 3)
        t.count("points")
        t.gauge("queued", 7)
        t.gauge("queued", 2)
        t.observe("latency", 0.5)
        t.observe("latency", 2.0)
        snap = t.metrics.snapshot()
        assert snap["counters"]["points"]["total"] == 4.0
        assert snap["gauges"]["queued"]["value"] == 2.0
        assert snap["gauges"]["queued"]["max"] == 7.0
        hist = snap["histograms"]["latency"]
        assert hist["count"] == 2
        assert hist["total"] == 2.5
        assert sum(hist["counts"]) == 2

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=[1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            Histogram(edges=[])

    def test_histogram_overflow_bucket(self):
        h = Histogram(edges=[1.0, 10.0])
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]

    def test_event_replay_reproduces_snapshot(self):
        """The wire form is lossless: replaying a context's metric events
        into a fresh registry yields the identical snapshot — the basis of
        deterministic cross-process merges."""
        t = Telemetry()
        t.count("c", 2)
        t.gauge("g", 9)
        t.observe("h", 0.01)
        t.observe("h", 3.3)
        replayed = MetricsRegistry()
        for event in t.events():
            if event["type"] == "metric":
                replayed.apply_event(event)
        assert replayed.snapshot() == t.metrics.snapshot()


# ---------------------------------------------------------- sinks + merge

class TestSink:
    def test_flush_appends_jsonl_and_read_events_merges(self, tmp_path):
        t = Telemetry(sink_dir=tmp_path)
        with t.span("a"):
            pass
        t.count("n", 1)
        assert t.flush() == 2
        assert t.flush() == 0  # nothing buffered twice
        events = obs.read_events(tmp_path)
        assert [e["type"] for e in events] == ["span", "metric"]

    def test_merge_order_is_sorted_by_filename(self, tmp_path):
        for pid, name in [(222, "late"), (111, "early")]:
            path = tmp_path / f"events-{pid:08d}.jsonl"
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(
                    {"type": "metric", "kind": "counter",
                     "name": name, "value": 1.0, "pid": pid}
                ) + "\n")
        events = obs.read_events(tmp_path)
        assert [e["name"] for e in events] == ["early", "late"]

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "events-00000001.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"type": "metric", "kind": "counter",
                 "name": "ok", "value": 1.0, "pid": 1}
            ) + "\n")
            fh.write('{"type": "metric", "kind": "cou')  # torn write
        events = obs.read_events(tmp_path)
        assert [e["name"] for e in events] == ["ok"]

    def test_enable_is_idempotent_and_disable_detaches(self, tmp_path):
        first = obs.enable(tmp_path)
        second = obs.enable()
        assert first is second
        assert obs.current() is first
        assert obs.is_enabled()
        obs.disable()
        assert obs.current() is None
        assert obs.ENV_VAR not in os.environ

    def test_env_var_activates_on_first_current(self, tmp_path, monkeypatch):
        from repro.obs import telemetry as telemetry_mod

        monkeypatch.setattr(telemetry_mod._STATE, "active", None)
        monkeypatch.setattr(telemetry_mod._STATE, "env_checked", False)
        monkeypatch.setenv(obs.ENV_VAR, str(tmp_path))
        tele = obs.current()
        assert tele is not None
        assert tele.sink_dir == str(tmp_path)


# ----------------------------------------------------------- chrome trace

class TestChromeTrace:
    def _events(self):
        t = Telemetry()
        with t.span("campaign.point", key="abc"):
            pass
        t.emit_span("engine.stage", 0.0, 1e-4, time_base="sim", stage=0)
        return t.events()

    def test_export_validates_and_separates_sim_lane(self):
        doc = obs.chrome_trace(self._events())
        assert obs.validate_chrome_trace(doc) == 2
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        host = [e for e in xs if e["name"] == "campaign.point"]
        sim = [e for e in xs if e["name"] == "engine.stage"]
        assert host[0]["pid"] == os.getpid()
        assert sim[0]["pid"] == SIM_LANE_PID
        # Host timestamps are rebased to zero and scaled to microseconds.
        assert host[0]["ts"] >= 0.0
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(m["name"] == "process_name" for m in metas)

    def test_validator_rejects_malformed_documents(self):
        with pytest.raises(ValueError):
            obs.validate_chrome_trace({"traceEvents": []})  # no unit
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(
                {"displayTimeUnit": "ms",
                 "traceEvents": [{"ph": "X", "name": "x"}]}
            )

    def test_non_jsonable_attrs_are_coerced(self):
        t = Telemetry()
        with t.span("s", obj=object()):
            pass
        doc = obs.chrome_trace(t.events())
        json.dumps(doc)  # must not raise


# --------------------------------------------------------------- summary

class TestSummary:
    def _summary(self, **over):
        base = dict(
            campaign="c", experiment="e", unix_time=100.0, wall_seconds=2.0,
            stats={"total": 4, "evaluated": 4, "cached": 0, "failed": 0},
        )
        base.update(over)
        return obs.TelemetrySummary(**base)

    def test_round_trip(self, tmp_path):
        obs.write_summary(tmp_path, self._summary())
        loaded = obs.load_summary(tmp_path, "c")
        assert loaded.stats["total"] == 4
        assert loaded.previous is None
        assert obs.load_summary(tmp_path, "missing") is None

    def test_rewrite_embeds_previous_one_deep(self, tmp_path):
        obs.write_summary(tmp_path, self._summary())
        obs.write_summary(tmp_path, self._summary(
            unix_time=200.0, wall_seconds=0.5,
            stats={"total": 4, "evaluated": 0, "cached": 4, "failed": 0},
        ))
        obs.write_summary(tmp_path, self._summary(
            unix_time=300.0, wall_seconds=0.4,
            stats={"total": 4, "evaluated": 0, "cached": 4, "failed": 0},
        ))
        loaded = obs.load_summary(tmp_path, "c")
        assert loaded.previous["unix_time"] == 200.0
        assert "previous" not in loaded.previous  # one-deep, not a chain
        deltas = loaded.changes_since_previous()
        assert deltas["cached"] == 0
        assert deltas["wall_seconds"] == pytest.approx(-0.1)

    def test_first_run_reports_no_changes(self, tmp_path):
        obs.write_summary(tmp_path, self._summary())
        assert obs.load_summary(tmp_path, "c").changes_since_previous() is None

    def test_list_summaries(self, tmp_path):
        obs.write_summary(tmp_path, self._summary(campaign="a"))
        obs.write_summary(tmp_path, self._summary(campaign="b"))
        assert [s.campaign for s in obs.list_summaries(tmp_path)] == ["a", "b"]
