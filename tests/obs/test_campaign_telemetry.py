"""Telemetry wired through campaigns, executors, engines, and the profile
cache — and the hard constraint that it never perturbs a result."""

import json
import os
import tracemalloc

import numpy as np
import pytest

from repro import obs
from repro.barriers.patterns import dissemination_barrier
from repro.bench.profile_cache import read_run_stats
from repro.bsplib.runtime import bsp_run
from repro.cluster import presets
from repro.explore.campaign import run_campaign
from repro.explore.experiments import register_experiment
from repro.explore.space import DesignSpace
from repro.machine.simmachine import SimMachine
from repro.simmpi.engine import simulate_stages_batch
from tests.obs.test_telemetry import assert_well_formed

register_experiment("test-obs-cube", "cube the n parameter (test only)")(
    lambda point: {"cube": point["n"] ** 3}
)

#: A small real-engine campaign: exercises the comm benchmark, the
#: profile cache, and the batched engine under each executor.
BARRIER_SPACE = {
    "axes": {"pattern": ["linear", "dissemination"], "nprocs": [4, 8]},
    "constants": {"preset": "xeon-8x2x4", "runs": 3, "comm_samples": 3},
}


def space_of(ns):
    return DesignSpace.from_dict({"axes": {"n": list(ns)}})


def records_fingerprint(outcome):
    return [
        (r.key, json.dumps(r.metrics, sort_keys=True))
        for r in outcome.results.records
    ]


def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=7
    )


# ------------------------------------------------- results are untouched

class TestTelemetryNeverPerturbsResults:
    def test_engine_batch_bit_identical_with_telemetry_on(self):
        m = machine()
        pattern = dissemination_barrier(8)
        truth = m.comm_truth(m.placement(8))
        rng_off, rng_on = (np.random.default_rng(3) for _ in range(2))
        off = simulate_stages_batch(
            truth, pattern.stages, runs=8, rng=rng_off, noise=m.noise
        )
        obs.enable()
        on = simulate_stages_batch(
            truth, pattern.stages, runs=8, rng=rng_on, noise=m.noise
        )
        assert np.array_equal(off, on)
        names = {e["name"] for e in obs.current().events()}
        assert {"engine.simulate_stages_batch", "engine.stage"} <= names

    def test_bsp_run_bit_identical_with_telemetry_on(self):
        from repro.bsplib.collectives import broadcast

        def program(ctx):
            value = np.array([1.0, 2.0]) if ctx.pid == 0 else np.zeros(2)
            return broadcast(ctx, value, root=0).tolist()

        m = machine()
        off = bsp_run(m, 4, program, runs=2)
        obs.enable()
        on = bsp_run(m, 4, program, runs=2)
        assert np.array_equal(off.final_times, on.final_times)
        assert any(
            e["name"] == "bsp.superstep" and e["time"] == "sim"
            for e in obs.current().events()
        )

    @pytest.mark.parametrize("executor", ["serial", "process", "chunked"])
    def test_campaign_bit_identical_with_telemetry_on(
        self, tmp_path, executor
    ):
        baseline = run_campaign(
            "t-off", space_of([1, 2, 3]), "test-obs-cube",
            store_dir=tmp_path / "off", executor=executor,
        )
        obs.enable()
        with_tele = run_campaign(
            "t-on", space_of([1, 2, 3]), "test-obs-cube",
            store_dir=tmp_path / "on", executor=executor,
        )
        assert (
            [f[1] for f in records_fingerprint(with_tele)]
            == [f[1] for f in records_fingerprint(baseline)]
        )

    def test_real_campaign_identical_across_executors(self, tmp_path):
        """Executor equivalence holds with telemetry on for a campaign
        that exercises the engines and the profile cache."""
        baseline = run_campaign(
            "real-off", BARRIER_SPACE, "barrier-cost",
            store_dir=tmp_path / "off", executor="serial",
        )
        obs.enable()
        for executor in ("serial", "process", "chunked"):
            outcome = run_campaign(
                "real-on", BARRIER_SPACE, "barrier-cost",
                store_dir=tmp_path / f"on-{executor}", executor=executor,
            )
            assert (
                records_fingerprint(outcome)
                == records_fingerprint(baseline)
            ), f"telemetry perturbed the {executor} executor"


# ----------------------------------------------- the recorded event model

class TestRecordedCampaignTelemetry:
    def run_with_sink(self, tmp_path, executor, name="obs"):
        obs.enable()
        outcome = run_campaign(
            name, space_of([1, 2, 3, 4]), "test-obs-cube",
            store_dir=tmp_path, executor=executor,
        )
        return outcome, obs.read_events(obs.telemetry_dir_for(tmp_path))

    def test_serial_campaign_records_expected_spans(self, tmp_path):
        outcome, events = self.run_with_sink(tmp_path, "serial")
        spans = assert_well_formed(events)
        names = [s["name"] for s in spans]
        assert names.count("campaign.point") == 4
        assert names.count("campaign.serve") == 1
        assert names.count("executor.map") == 1
        by_name = {s["name"]: s for s in spans}
        serve = by_name["campaign.serve"]
        assert serve["attrs"]["computed"] == 4
        # Nesting: point under map under serve (same process, serial).
        point = by_name["campaign.point"]
        assert point["parent"] == by_name["executor.map"]["id"]
        assert by_name["executor.map"]["parent"] == serve["id"]
        metrics = obs.merged_metrics(events)
        assert metrics["counters"]["campaign.points.computed"]["total"] == 4
        assert metrics["gauges"]["executor.queued"]["value"] == 4

    @pytest.mark.parametrize("executor", ["process", "chunked"])
    def test_worker_spans_merge_and_nest_well(self, tmp_path, executor):
        """Multiprocessing workers stream their own event files; the
        merged stream stays well-formed and the worker spans carry
        worker (not parent) pids."""
        outcome, events = self.run_with_sink(tmp_path, executor)
        spans = assert_well_formed(events)
        points = [s for s in spans if s["name"] == "campaign.point"]
        assert len(points) == 4
        assert all(s["pid"] != os.getpid() for s in points)
        keys = {s["attrs"]["key"] for s in points}
        assert keys == {r.key for r in outcome.results.records}

    def test_chrome_export_of_multiprocessing_campaign(self, tmp_path):
        outcome, events = self.run_with_sink(tmp_path, "process")
        doc = obs.chrome_trace(events)
        complete = obs.validate_chrome_trace(doc)
        assert doc["displayTimeUnit"] in ("ms", "ns")
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == complete
        pids = {e["pid"] for e in xs if e["name"] == "campaign.point"}
        assert pids and os.getpid() not in pids
        # Worker lanes are named via metadata events.
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in metas} >= pids
        json.dumps(doc)  # serialisable as-is

    def test_summary_persisted_with_cache_split_and_deltas(self, tmp_path):
        self.run_with_sink(tmp_path, "serial")
        first = obs.load_summary(tmp_path, "obs")
        assert first.stats["evaluated"] == 4
        assert first.stats["cached"] == 0
        assert len(first.top_slowest) == 4
        assert first.changes_since_previous() is None
        self.run_with_sink(tmp_path, "serial")  # all cached now
        second = obs.load_summary(tmp_path, "obs")
        assert second.stats["cached"] == 4
        deltas = second.changes_since_previous()
        assert deltas["evaluated"] == -4
        assert deltas["cached"] == 4

    def test_worker_utilization_reports_lanes(self, tmp_path):
        _, events = self.run_with_sink(tmp_path, "serial")
        (lane,) = obs.worker_utilization(events)
        assert lane["spans"] == 4
        assert 0.0 < lane["utilization"] <= 1.0


# --------------------------------------------------------- profile cache

class TestProfileCacheTelemetry:
    def test_per_run_stats_persisted_and_counters_recorded(self, tmp_path):
        obs.enable()
        run_campaign(
            "pc", BARRIER_SPACE, "barrier-cost",
            store_dir=tmp_path, executor="serial",
        )
        stats = read_run_stats(tmp_path)
        assert stats, "no per-run profile-cache stats were flushed"
        assert all(
            set(r) >= {"pid", "unix_time", "hits", "misses", "benchmark_s"}
            for r in stats
        )
        served = sum(r["hits"] + r["misses"] for r in stats)
        assert served >= 4  # one profile lookup per point
        metrics = obs.merged_metrics(
            obs.read_events(obs.telemetry_dir_for(tmp_path))
        )
        counters = metrics["counters"]
        recorded = sum(
            counters.get(name, {}).get("total", 0.0)
            for name in ("profile_cache.hits", "profile_cache.misses")
        )
        assert recorded >= 4


# ------------------------------------------------- engine trace opt-in

class TestEngineTraceGating:
    def test_untraced_path_skips_per_stage_entry_copies(self):
        """The untraced hot path must not allocate per-stage ``(R, P)``
        snapshots.  Measured as allocation peaks: with single-message
        stages the working set is a handful of ``(R, P)`` clocks arrays,
        while each traced stage *retains* two more — so the traced peak
        must sit well above the untraced one, and the untraced peak below
        what an unconditional entry copy would need."""
        p, runs, n_stages = 64, 512, 4
        stage = np.zeros((p, p), dtype=bool)
        stage[0, 1] = True  # one message: temporaries stay tiny
        stages = [stage] * n_stages
        m = machine()
        truth = m.comm_truth(m.placement(p))
        rng = np.random.default_rng(0)

        def peak(trace):
            tracemalloc.start()
            simulate_stages_batch(
                truth, stages, runs=runs, rng=rng, noise=m.noise,
                trace=trace,
            )
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak_bytes

        peak(None)  # warm-up: import-time and first-call allocations
        clocks = runs * p * 8  # one (R, P) float64 array
        untraced = peak(None)
        traced = peak([])
        # Traced retains entry+exit per stage on top of the working set.
        assert traced - untraced >= (2 * n_stages - 2) * clocks
        # The untraced peak measures ~5 clocks arrays (t, busy_end,
        # recv_cursor, new_t plus one rebinding overlap); an unconditional
        # entry snapshot would push it to ~6.  Split the difference.
        assert untraced < 5.5 * clocks
