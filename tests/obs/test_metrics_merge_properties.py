"""Property tests (S3): metric merges are order-independent.

A merged snapshot is a fold of per-worker event streams; worker files
arrive in sorted-filename order, but *which* worker got which name is an
accident of pid assignment.  Counters and histograms must therefore
merge to the same snapshot under any permutation of the worker files
(gauges are documented last-write-wins and excluded).  Values are drawn
integer-valued so float accumulation is exact and the comparison can be
``==`` rather than approximate.
"""

import json
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.metrics import DEFAULT_SECONDS_EDGES, MetricsRegistry

# Each name has one fixed kind, as in real instrumented code (a name
# reused across kinds is a TypeError at merge time by design).
KINDS = {"points": "counter", "cache.hits": "counter", "wall.s": "hist"}

metric_events = st.lists(
    st.sampled_from(sorted(KINDS)).flatmap(
        lambda name: st.fixed_dictionaries({
            "type": st.just("metric"),
            "kind": st.just(KINDS[name]),
            "name": st.just(name),
            # Integer-valued floats: addition commutes exactly below 2**53.
            "value": st.integers(0, 10**6).map(float),
        })
    ),
    max_size=12,
)

worker_files = st.lists(metric_events, min_size=1, max_size=5)


def fold(files) -> dict:
    registry = MetricsRegistry()
    for events in files:
        for event in events:
            registry.apply_event(event)
    return registry.snapshot()


@given(files=worker_files, data=st.data())
@settings(max_examples=60, deadline=None)
def test_counter_and_histogram_fold_is_order_independent(files, data):
    shuffled = data.draw(st.permutations(files))
    assert fold(files) == fold(shuffled)


def _write_sink(root, name, files):
    sink = os.path.join(root, name)
    os.makedirs(sink)
    for index, events in enumerate(files):
        path = os.path.join(sink, f"events-{index}.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(json.dumps(e) + "\n" for e in events)
    return sink


@given(files=worker_files, data=st.data())
@settings(max_examples=20, deadline=None)
def test_on_disk_merge_is_worker_order_independent(files, data):
    """Same event streams, different pid→filename assignment: the merged
    snapshot read back from disk must not change."""
    shuffled = data.draw(st.permutations(files))
    with tempfile.TemporaryDirectory() as root:
        a = obs.merged_metrics(
            obs.read_events(_write_sink(root, "a", files))
        )
        b = obs.merged_metrics(
            obs.read_events(_write_sink(root, "b", shuffled))
        )
    a.pop("gauges", None)
    b.pop("gauges", None)
    assert a == b


def test_histogram_merge_uses_fixed_edges():
    registry = MetricsRegistry()
    registry.apply_event(
        {"kind": "hist", "name": "wall.s", "value": 0.5}
    )
    snap = registry.snapshot()["histograms"]["wall.s"]
    assert tuple(snap["edges"]) == DEFAULT_SECONDS_EDGES
