"""Unit tests for the discrete-event stage engine (§5.6.1)."""

import numpy as np
import pytest

from repro.barriers.patterns import (
    dissemination_barrier,
    linear_barrier,
    tree_barrier,
)
from repro.cluster import presets
from repro.cluster.noise import QUIET
from repro.machine.simmachine import SimMachine
from repro.simmpi.engine import simulate_stages, stage_payload_matrix


@pytest.fixture
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(),
        presets.xeon_8x2x4_params(),
        noise=QUIET,
        seed=11,
    )


def run_clean(machine, pattern, nprocs, payload=None, entry=None):
    placement = machine.placement(nprocs)
    truth = machine.comm_truth(placement)
    return simulate_stages(
        truth, pattern.stages, payload_bytes=payload, entry_times=entry
    )


class TestEngineBasics:
    def test_deterministic_without_rng(self, machine):
        p = 8
        pattern = tree_barrier(p)
        a = run_clean(machine, pattern, p)
        b = run_clean(machine, pattern, p)
        np.testing.assert_array_equal(a, b)

    def test_exits_nonnegative_and_finite(self, machine):
        exits = run_clean(machine, dissemination_barrier(16), 16)
        assert np.isfinite(exits).all()
        assert (exits >= 0).all()

    def test_empty_stage_costs_nothing(self, machine):
        placement = machine.placement(4)
        truth = machine.comm_truth(placement)
        exits = simulate_stages(truth, [np.zeros((4, 4), dtype=bool)])
        np.testing.assert_array_equal(exits, np.zeros(4))

    def test_entry_times_respected(self, machine):
        p = 4
        pattern = linear_barrier(p)
        late = np.array([0.0, 0.0, 0.0, 5.0])
        exits = run_clean(machine, pattern, p, entry=late)
        # A 5-second straggler delays everyone past 5 seconds (barrier
        # semantics: §5.5's empirical verification method).
        assert (exits > 5.0).all()

    def test_straggler_delay_visible_per_process(self, machine):
        """The §5.5 verification protocol: delaying each process in turn
        must show in overall completion time."""
        p = 6
        pattern = dissemination_barrier(p)
        base = run_clean(machine, pattern, p).max()
        for victim in range(p):
            entry = np.zeros(p)
            entry[victim] = 1.0
            delayed = run_clean(machine, pattern, p, entry=entry).max()
            assert delayed >= 1.0 + 0.5 * base


class TestLocalityCosts:
    def test_remote_costs_more_than_local(self, machine):
        """One remote signal must cost more than one same-socket signal."""
        p = 10  # two nodes by parity
        placement = machine.placement(p)
        truth = machine.comm_truth(placement)
        local = np.zeros((p, p), dtype=bool)
        local[0, 2] = True  # same node
        remote = np.zeros((p, p), dtype=bool)
        remote[0, 1] = True  # other node by parity
        t_local = simulate_stages(truth, [local]).max()
        t_remote = simulate_stages(truth, [remote]).max()
        assert t_remote > 2 * t_local

    def test_nic_serialises_fanout(self, machine):
        """Many remote sends from one node take longer than one, by at
        least the NIC gap per extra message."""
        p = 16
        placement = machine.placement(p)
        truth = machine.comm_truth(placement)
        one = np.zeros((p, p), dtype=bool)
        one[0, 1] = True
        many = np.zeros((p, p), dtype=bool)
        many[0, [1, 3, 5, 7, 9]] = True
        t_one = simulate_stages(truth, [one]).max()
        t_many = simulate_stages(truth, [many]).max()
        assert t_many > t_one + 3 * truth.nic_gap

    def test_payload_adds_transfer_time(self, machine):
        p = 4
        pattern = linear_barrier(p)
        t0 = run_clean(machine, pattern, p).max()
        t1 = run_clean(machine, pattern, p, payload=1_000_000.0).max()
        assert t1 > t0


class TestNoiseIntegration:
    def test_noisy_runs_vary(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=3
        )
        placement = machine.placement(8)
        truth = machine.comm_truth(placement)
        rng = machine.rng("engine-noise")
        pattern = dissemination_barrier(8)
        a = simulate_stages(truth, pattern.stages, rng=rng, noise=machine.noise).max()
        b = simulate_stages(truth, pattern.stages, rng=rng, noise=machine.noise).max()
        assert a != b

    def test_noise_reproducible_across_streams(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=3
        )
        placement = machine.placement(8)
        truth = machine.comm_truth(placement)
        pattern = dissemination_barrier(8)
        a = simulate_stages(
            truth, pattern.stages, rng=machine.rng("x"), noise=machine.noise
        )
        b = simulate_stages(
            truth, pattern.stages, rng=machine.rng("x"), noise=machine.noise
        )
        np.testing.assert_array_equal(a, b)


class TestPayloadSpec:
    def test_none_is_zero(self):
        np.testing.assert_array_equal(
            stage_payload_matrix(None, 0, 3), np.zeros((3, 3))
        )

    def test_scalar_broadcast(self):
        out = stage_payload_matrix(64.0, 2, 2)
        np.testing.assert_array_equal(out, np.full((2, 2), 64.0))

    def test_per_stage_scalars(self):
        out = stage_payload_matrix([1.0, 2.0], 1, 2)
        np.testing.assert_array_equal(out, np.full((2, 2), 2.0))

    def test_per_stage_matrix(self):
        mats = [np.ones((2, 2)), 3.0 * np.ones((2, 2))]
        out = stage_payload_matrix(mats, 0, 2)
        np.testing.assert_array_equal(out, np.ones((2, 2)))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            stage_payload_matrix([np.ones((3, 3))], 0, 2)


class TestValidationErrors:
    def test_wrong_stage_shape(self, machine):
        placement = machine.placement(4)
        truth = machine.comm_truth(placement)
        with pytest.raises(ValueError, match="wrong shape"):
            simulate_stages(truth, [np.zeros((3, 3), dtype=bool)])

    def test_wrong_entry_shape(self, machine):
        placement = machine.placement(4)
        truth = machine.comm_truth(placement)
        with pytest.raises(ValueError, match="entry_times"):
            simulate_stages(
                truth,
                [np.zeros((4, 4), dtype=bool)],
                entry_times=np.zeros(3),
            )
