"""Tests for the engine's optional stage tracing."""

import numpy as np

from repro.barriers.patterns import tree_barrier
from repro.cluster import presets
from repro.cluster.noise import QUIET
from repro.machine import SimMachine
from repro.simmpi.engine import StageEventTrace, simulate_stages


class TestTrace:
    def test_trace_records_nonempty_stages(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=171,
        )
        pattern = tree_barrier(8)
        placement = machine.placement(8)
        truth = machine.comm_truth(placement)
        trace: list[StageEventTrace] = []
        simulate_stages(truth, pattern.stages, trace=trace)
        assert len(trace) == pattern.num_stages
        message_counts = [t.messages for t in trace]
        # Arrival halves 4,2,1; release mirrors 1,2,4.
        assert message_counts == [4, 2, 1, 1, 2, 4]
        for record in trace:
            assert record.exit.shape == (8,)

    def test_empty_stage_not_traced(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=172,
        )
        placement = machine.placement(4)
        truth = machine.comm_truth(placement)
        trace: list[StageEventTrace] = []
        simulate_stages(truth, [np.zeros((4, 4), dtype=bool)], trace=trace)
        assert trace == []
