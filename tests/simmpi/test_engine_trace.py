"""Tests for the engine's optional stage tracing."""

import numpy as np

from repro.barriers.patterns import tree_barrier
from repro.cluster import presets
from repro.cluster.noise import QUIET
from repro.machine import SimMachine
from repro.simmpi.engine import StageEventTrace, simulate_stages


class TestTrace:
    def test_trace_records_nonempty_stages(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=171,
        )
        pattern = tree_barrier(8)
        placement = machine.placement(8)
        truth = machine.comm_truth(placement)
        trace: list[StageEventTrace] = []
        simulate_stages(truth, pattern.stages, trace=trace)
        assert len(trace) == pattern.num_stages
        message_counts = [t.messages for t in trace]
        # Arrival halves 4,2,1; release mirrors 1,2,4.
        assert message_counts == [4, 2, 1, 1, 2, 4]
        for record in trace:
            assert record.exit.shape == (8,)

    def test_entry_is_pre_stage_state(self):
        """Regression: ``entry`` must capture the clocks *before* the stage
        runs (the original engine recorded ``entry == exit``)."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=173,
        )
        pattern = tree_barrier(8)
        truth = machine.comm_truth(machine.placement(8))
        trace: list[StageEventTrace] = []
        exits = simulate_stages(truth, pattern.stages, trace=trace)
        np.testing.assert_array_equal(trace[0].entry, np.zeros(8))
        for record in trace:
            # Every stage of a tree barrier moves some clock forward.
            assert (record.exit >= record.entry).all()
            assert record.exit.max() > record.entry.max()
        for prev, nxt in zip(trace, trace[1:]):
            np.testing.assert_array_equal(nxt.entry, prev.exit)
        np.testing.assert_array_equal(trace[-1].exit, exits)

    def test_batch_trace_shapes(self):
        from repro.simmpi.engine import simulate_stages_batch

        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            seed=174,
        )
        pattern = tree_barrier(8)
        truth = machine.comm_truth(machine.placement(8))
        trace: list[StageEventTrace] = []
        exits = simulate_stages_batch(
            truth, pattern.stages, runs=5,
            rng=machine.rng("trace"), noise=machine.noise, trace=trace,
        )
        assert len(trace) == pattern.num_stages
        for record in trace:
            assert record.entry.shape == (5, 8)
            assert record.exit.shape == (5, 8)
        np.testing.assert_array_equal(trace[-1].exit, exits)

    def test_empty_stage_not_traced(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=172,
        )
        placement = machine.placement(4)
        truth = machine.comm_truth(placement)
        trace: list[StageEventTrace] = []
        simulate_stages(truth, [np.zeros((4, 4), dtype=bool)], trace=trace)
        assert trace == []
