"""Batched engine vs the scalar reference: identity and distribution.

The contract under test (docs/engine.md):

* clean path (``rng=None``): :func:`simulate_stages_batch` and the
  preserved scalar engine :mod:`repro.simmpi.reference` are *bit-identical*
  for every registered pattern family, payload specification, and entry
  skew;
* noisy path: the batched replication-major draw order produces different
  individual runs but statistically equivalent ensembles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.barriers.patterns import (
    dissemination_barrier,
    linear_barrier,
    pairwise_exchange_barrier,
    tree_barrier,
)
from repro.cluster import presets
from repro.machine.simmachine import SimMachine
from repro.simmpi import reference
from repro.simmpi.engine import simulate_stages, simulate_stages_batch

#: The families named by the acceptance criteria.
FAMILIES = {
    "linear": linear_barrier,
    "tree": tree_barrier,
    "dissemination": dissemination_barrier,
    "pairwise": pairwise_exchange_barrier,
}


def make_pattern(name: str, p: int):
    if name == "pairwise":
        p = 1 << (p.bit_length() - 1)  # family requires a power of two
    return FAMILIES[name](p)


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=77
    )


def payload_spec(kind: str, num_stages: int, p: int):
    if kind == "none":
        return None
    if kind == "scalar":
        return 4096.0
    if kind == "per-stage-scalars":
        return [64.0 * (s + 1) for s in range(num_stages)]
    # Per-stage full matrices with asymmetric traffic.
    return [
        np.fromfunction(lambda i, j: 8.0 * (i + 2 * j + s), (p, p))
        for s in range(num_stages)
    ]


class TestCleanBitIdentity:
    @given(
        family=st.sampled_from(sorted(FAMILIES)),
        p=st.integers(2, 24),
        payload_kind=st.sampled_from(
            ["none", "scalar", "per-stage-scalars", "per-stage-matrices"]
        ),
        skew_seed=st.integers(0, 1000),
        runs=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_reference_bitwise(
        self, family, p, payload_kind, skew_seed, runs
    ):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=7
        )
        pattern = make_pattern(family, p)
        p = pattern.nprocs
        placement = machine.placement(p)
        truth = machine.comm_truth(placement)
        payload = payload_spec(payload_kind, pattern.num_stages, p)
        entry = np.random.default_rng(skew_seed).uniform(0, 1e-3, p)

        ref = reference.simulate_stages(
            truth, pattern.stages, payload_bytes=payload, entry_times=entry
        )
        batch = simulate_stages_batch(
            truth, pattern.stages, runs=runs, payload_bytes=payload,
            entry_times=entry,
        )
        assert batch.shape == (runs, p)
        for r in range(runs):
            assert batch[r].tolist() == ref.tolist()

    def test_wrapper_matches_reference_bitwise(self, machine):
        pattern = dissemination_barrier(16)
        placement = machine.placement(16)
        truth = machine.comm_truth(placement)
        ref = reference.simulate_stages(truth, pattern.stages)
        new = simulate_stages(truth, pattern.stages)
        assert new.tolist() == ref.tolist()

    def test_clean_2d_entry_rows_independent(self, machine):
        """Per-replication entry skews run the full batch path and match a
        row-by-row reference execution bitwise."""
        p = 8
        pattern = tree_barrier(p)
        placement = machine.placement(p)
        truth = machine.comm_truth(placement)
        entries = np.random.default_rng(3).uniform(0, 1e-3, (5, p))
        batch = simulate_stages_batch(
            truth, pattern.stages, runs=5, entry_times=entries
        )
        for r in range(5):
            ref = reference.simulate_stages(
                truth, pattern.stages, entry_times=entries[r]
            )
            assert batch[r].tolist() == ref.tolist()


class TestNoisyDistribution:
    """KS-style tolerance checks: same ensemble, different draw order."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_worst_case_distribution_agrees(self, family):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=5
        )
        pattern = make_pattern(family, 8)
        p = pattern.nprocs
        placement = machine.placement(p)
        truth = machine.comm_truth(placement)
        runs = 384
        batch = simulate_stages_batch(
            truth, pattern.stages, runs=runs,
            rng=machine.rng("batch", family), noise=machine.noise,
        ).max(axis=1)
        rng = machine.rng("loop", family)
        loop = np.array([
            reference.simulate_stages(
                truth, pattern.stages, rng=rng, noise=machine.noise
            ).max()
            for _ in range(runs)
        ])
        # Two-sample KS statistic between the ensembles; the 1% critical
        # value for n = m = 384 is ~0.118.
        grid = np.sort(np.concatenate([batch, loop]))
        ks = np.abs(
            np.searchsorted(np.sort(batch), grid, side="right") / runs
            - np.searchsorted(np.sort(loop), grid, side="right") / runs
        ).max()
        assert ks < 0.118, f"KS={ks:.3f} for {family}"
        assert np.median(batch) == pytest.approx(np.median(loop), rel=0.05)

    def test_batch_reproducible_and_rows_vary(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=5
        )
        pattern = dissemination_barrier(8)
        truth = machine.comm_truth(machine.placement(8))
        a = simulate_stages_batch(
            truth, pattern.stages, runs=16,
            rng=machine.rng("s"), noise=machine.noise,
        )
        b = simulate_stages_batch(
            truth, pattern.stages, runs=16,
            rng=machine.rng("s"), noise=machine.noise,
        )
        assert a.tolist() == b.tolist()
        assert np.unique(a.max(axis=1)).size > 1


class TestEdgeCases:
    def test_runs_validated(self, machine):
        truth = machine.comm_truth(machine.placement(4))
        with pytest.raises(ValueError, match="runs"):
            simulate_stages_batch(truth, [], runs=0)

    def test_empty_stage_list(self, machine):
        truth = machine.comm_truth(machine.placement(4))
        entry = np.array([0.0, 1.0, 2.0, 3.0])
        out = simulate_stages_batch(truth, [], runs=3, entry_times=entry)
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out, np.broadcast_to(entry, (3, 4)))

    def test_all_false_stage_costs_nothing(self, machine):
        truth = machine.comm_truth(machine.placement(4))
        out = simulate_stages_batch(
            truth, [np.zeros((4, 4), dtype=bool)], runs=2
        )
        np.testing.assert_array_equal(out, np.zeros((2, 4)))

    def test_single_node_placement_no_nic(self, machine):
        """A placement confined to one node never touches a NIC FIFO and
        still matches the reference bitwise."""
        placement = machine.placement(8, policy="block")
        nodes = {placement.node_of(r) for r in range(8)}
        assert len(nodes) == 1
        truth = machine.comm_truth(placement)
        pattern = dissemination_barrier(8)
        ref = reference.simulate_stages(truth, pattern.stages)
        batch = simulate_stages_batch(truth, pattern.stages, runs=3)
        for r in range(3):
            assert batch[r].tolist() == ref.tolist()

    def test_r1_noisy_shape_and_wrapper_equivalence(self, machine):
        """runs=1 is the wrapper's path: same stream, same result."""
        pattern = tree_barrier(8)
        truth = machine.comm_truth(machine.placement(8))
        a = simulate_stages_batch(
            truth, pattern.stages, runs=1,
            rng=machine.rng("w"), noise=machine.noise,
        )
        b = simulate_stages(
            truth, pattern.stages, rng=machine.rng("w"), noise=machine.noise
        )
        assert a.shape == (1, 8)
        assert a[0].tolist() == b.tolist()

    def test_bad_entry_shape_rejected(self, machine):
        truth = machine.comm_truth(machine.placement(4))
        with pytest.raises(ValueError, match="entry_times"):
            simulate_stages_batch(
                truth, [np.zeros((4, 4), dtype=bool)], runs=2,
                entry_times=np.zeros((3, 4)),
            )

    def test_bad_stage_shape_rejected(self, machine):
        truth = machine.comm_truth(machine.placement(4))
        with pytest.raises(ValueError, match="wrong shape"):
            simulate_stages_batch(truth, [np.zeros((3, 3), dtype=bool)])
