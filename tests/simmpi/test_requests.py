"""Tests for the persistent-request barrier facade (Fig. 5.5)."""

import numpy as np
import pytest

from repro.barriers.patterns import dissemination_barrier, linear_barrier
from repro.barriers.simulate import measure_barrier
from repro.cluster import presets
from repro.machine import SimMachine
from repro.simmpi import PersistentBarrier


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=121
    )


class TestPersistentBarrier:
    def test_request_lists_mirror_pattern(self, machine):
        pattern = linear_barrier(4)
        barrier = PersistentBarrier(machine, pattern, machine.placement(4))
        arrive = barrier.stages[0]
        assert len(arrive.sends) == 3
        assert len(arrive.receives) == 3
        assert all(r.destination == 0 for r in arrive.sends)

    def test_requests_of_rank(self, machine):
        pattern = linear_barrier(4)
        barrier = PersistentBarrier(machine, pattern, machine.placement(4))
        master_stage0 = barrier.requests_of(0, 0)
        assert len(master_stage0) == 3  # three inbound receives
        assert all(not r.is_send for r in master_stage0)
        leaf_stage0 = barrier.requests_of(2, 0)
        assert len(leaf_stage0) == 1
        assert leaf_stage0[0].is_send

    def test_execute_matches_engine(self, machine):
        """Replaying persistent requests must equal the direct engine run
        (same clean event semantics)."""
        pattern = dissemination_barrier(8)
        placement = machine.placement(8)
        barrier = PersistentBarrier(machine, pattern, placement)
        from repro.simmpi.engine import simulate_stages

        direct = simulate_stages(barrier.truth, pattern.stages)
        via_requests = barrier.execute()
        np.testing.assert_array_equal(direct, via_requests)

    def test_timed_runs_match_measure_protocol_scale(self, machine):
        pattern = dissemination_barrier(16)
        placement = machine.placement(16)
        barrier = PersistentBarrier(machine, pattern, placement)
        runs = barrier.timed_runs(16)
        reference = measure_barrier(machine, pattern, placement, runs=16)
        assert runs.mean() == pytest.approx(reference.mean_worst, rel=0.5)

    def test_size_mismatch_rejected(self, machine):
        with pytest.raises(ValueError):
            PersistentBarrier(machine, linear_barrier(4), machine.placement(8))

    def test_runs_validated(self, machine):
        barrier = PersistentBarrier(
            machine, linear_barrier(4), machine.placement(4)
        )
        with pytest.raises(ValueError):
            barrier.timed_runs(0)
