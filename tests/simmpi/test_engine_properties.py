"""Property-based tests of event-engine invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.barriers.patterns import (
    all_to_all_barrier,
    dissemination_barrier,
    from_stages,
    linear_barrier,
    pairwise_exchange_barrier,
    tree_barrier,
)
from repro.cluster import presets
from repro.cluster.noise import QUIET
from repro.machine import SimMachine

#: Every barrier family sampled by the pattern/size property tests.
FAMILIES = (
    linear_barrier,
    tree_barrier,
    dissemination_barrier,
    pairwise_exchange_barrier,
    all_to_all_barrier,
)


def make_pattern(family_idx: int, p: int):
    """Instantiate a sampled family at size ``p``, rounding down to a
    power of two where the family requires one (pairwise exchange)."""
    family = FAMILIES[family_idx]
    if family is pairwise_exchange_barrier:
        p = 1 << (p.bit_length() - 1)
    return family(p)


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(),
        presets.xeon_8x2x4_params(),
        noise=QUIET,
        seed=131,
    )


def run(machine, stages, p, entry=None, payload=None):
    from repro.simmpi.engine import simulate_stages

    placement = machine.placement(p)
    truth = machine.comm_truth(placement)
    return simulate_stages(
        truth, stages, entry_times=entry, payload_bytes=payload
    )


@given(
    p=st.integers(2, 24),
    factory_idx=st.integers(0, 2),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_exits_never_before_entries(p, factory_idx, seed):
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
        noise=QUIET, seed=7,
    )
    if p > machine.topology.total_cores:
        return
    factory = (linear_barrier, tree_barrier, dissemination_barrier)[factory_idx]
    rng = np.random.default_rng(seed)
    entry = rng.uniform(0, 1e-3, p)
    exits = run(machine, factory(p).stages, p, entry=entry)
    assert (exits >= entry - 1e-15).all()


@given(p=st.integers(2, 16), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_barrier_exit_after_global_max_entry(p, seed):
    """Any correct barrier's exits all follow the latest entry: nobody can
    leave before the straggler arrived."""
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
        noise=QUIET, seed=7,
    )
    rng = np.random.default_rng(seed)
    entry = rng.uniform(0, 1e-3, p)
    exits = run(machine, dissemination_barrier(p).stages, p, entry=entry)
    assert (exits >= entry.max() - 1e-15).all()


class TestMonotonicity:
    def test_extra_message_never_speeds_up(self, machine):
        """Adding a signal to a stage can only keep or raise exit times."""
        p = 12
        base = dissemination_barrier(p)
        extra_stages = [s.copy() for s in base.stages]
        extra_stages[0][3, 7] = True  # one more signal in stage 0
        augmented = from_stages("augmented", extra_stages)
        t_base = run(machine, base.stages, p)
        t_aug = run(machine, augmented.stages, p)
        assert (t_aug >= t_base - 1e-15).all()

    def test_payload_monotone(self, machine):
        p = 8
        pattern = dissemination_barrier(p)
        small = run(machine, pattern.stages, p, payload=64.0).max()
        large = run(machine, pattern.stages, p, payload=64_000.0).max()
        assert large > small

    def test_slower_entry_never_earlier_exit(self, machine):
        p = 8
        pattern = tree_barrier(p)
        base_entry = np.zeros(p)
        late_entry = base_entry.copy()
        late_entry[3] = 1e-4
        t_base = run(machine, pattern.stages, p, entry=base_entry)
        t_late = run(machine, pattern.stages, p, entry=late_entry)
        assert (t_late >= t_base - 1e-15).all()


class TestEngineInvariants:
    """The suite-layer regression properties: non-negative, stage-monotone
    event times; bit-deterministic noise-free runs; exits dominating
    entries for every pattern family and size sampled."""

    @given(
        p=st.integers(2, 24),
        family_idx=st.integers(0, len(FAMILIES) - 1),
        payload=st.sampled_from([None, 64.0, 8192.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_times_nonnegative_and_stage_monotone(self, p, family_idx, payload):
        """Exit times are never negative, and simulating one more stage of
        a pattern can only keep or raise every process's clock."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=7,
        )
        pattern = make_pattern(family_idx, p)
        p = pattern.nprocs
        stages = pattern.stages
        previous = np.zeros(p)
        for k in range(1, len(stages) + 1):
            exits = run(machine, stages[:k], p, payload=payload)
            assert (exits >= 0.0).all()
            assert (exits >= previous - 1e-15).all(), (
                f"stage {k} lowered an exit time"
            )
            previous = exits

    @given(
        p=st.integers(2, 24),
        family_idx=st.integers(0, len(FAMILIES) - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_noise_free_runs_are_bit_deterministic(self, p, family_idx):
        """With ``rng=None`` the engine is a pure function: repeated runs
        agree bit for bit, not merely within tolerance."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=7,
        )
        pattern = make_pattern(family_idx, p)
        p = pattern.nprocs
        first = run(machine, pattern.stages, p, payload=256.0)
        second = run(machine, pattern.stages, p, payload=256.0)
        assert first.tolist() == second.tolist()

    @given(
        p=st.integers(2, 24),
        family_idx=st.integers(0, len(FAMILIES) - 1),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_exits_dominate_entries_for_every_family(self, p, family_idx, seed):
        """Per-process exit times dominate entry times under skewed
        arrivals for every pattern family and size sampled."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=7,
        )
        pattern = make_pattern(family_idx, p)
        p = pattern.nprocs
        rng = np.random.default_rng(seed)
        entry = rng.uniform(0, 1e-3, p)
        exits = run(machine, pattern.stages, p, entry=entry)
        assert (exits >= entry - 1e-15).all()
