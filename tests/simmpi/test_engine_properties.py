"""Property-based tests of event-engine invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.barriers.patterns import (
    dissemination_barrier,
    from_stages,
    linear_barrier,
    tree_barrier,
)
from repro.cluster import presets
from repro.cluster.noise import QUIET
from repro.machine import SimMachine


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(),
        presets.xeon_8x2x4_params(),
        noise=QUIET,
        seed=131,
    )


def run(machine, stages, p, entry=None, payload=None):
    from repro.simmpi.engine import simulate_stages

    placement = machine.placement(p)
    truth = machine.comm_truth(placement)
    return simulate_stages(
        truth, stages, entry_times=entry, payload_bytes=payload
    )


@given(
    p=st.integers(2, 24),
    factory_idx=st.integers(0, 2),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_exits_never_before_entries(p, factory_idx, seed):
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
        noise=QUIET, seed=7,
    )
    if p > machine.topology.total_cores:
        return
    factory = (linear_barrier, tree_barrier, dissemination_barrier)[factory_idx]
    rng = np.random.default_rng(seed)
    entry = rng.uniform(0, 1e-3, p)
    exits = run(machine, factory(p).stages, p, entry=entry)
    assert (exits >= entry - 1e-15).all()


@given(p=st.integers(2, 16), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_barrier_exit_after_global_max_entry(p, seed):
    """Any correct barrier's exits all follow the latest entry: nobody can
    leave before the straggler arrived."""
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
        noise=QUIET, seed=7,
    )
    rng = np.random.default_rng(seed)
    entry = rng.uniform(0, 1e-3, p)
    exits = run(machine, dissemination_barrier(p).stages, p, entry=entry)
    assert (exits >= entry.max() - 1e-15).all()


class TestMonotonicity:
    def test_extra_message_never_speeds_up(self, machine):
        """Adding a signal to a stage can only keep or raise exit times."""
        p = 12
        base = dissemination_barrier(p)
        extra_stages = [s.copy() for s in base.stages]
        extra_stages[0][3, 7] = True  # one more signal in stage 0
        augmented = from_stages("augmented", extra_stages)
        t_base = run(machine, base.stages, p)
        t_aug = run(machine, augmented.stages, p)
        assert (t_aug >= t_base - 1e-15).all()

    def test_payload_monotone(self, machine):
        p = 8
        pattern = dissemination_barrier(p)
        small = run(machine, pattern.stages, p, payload=64.0).max()
        large = run(machine, pattern.stages, p, payload=64_000.0).max()
        assert large > small

    def test_slower_entry_never_earlier_exit(self, machine):
        p = 8
        pattern = tree_barrier(p)
        base_entry = np.zeros(p)
        late_entry = base_entry.copy()
        late_entry[3] = 1e-4
        t_base = run(machine, pattern.stages, p, entry=base_entry)
        t_late = run(machine, pattern.stages, p, entry=late_entry)
        assert (t_late >= t_base - 1e-15).all()
