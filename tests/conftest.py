"""Tier marking for the repository test suite.

Everything under ``tests/`` is tier-1 (fast, default) unless explicitly
marked ``tier2``; the marker is added here so ``pytest -m tier1`` selects
the default set without annotating every module.  Suite-regeneration
tests (and everything under ``benchmarks/``) carry ``tier2`` and are
excluded by the default ``-m "not tier2"`` in pyproject.toml.
"""

from pathlib import Path

import pytest

_TESTS_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    # The hook sees the whole session's items; only mark those under
    # tests/, so a combined run doesn't stamp tier1 onto benchmarks/.
    for item in items:
        if (
            item.path is not None
            and item.path.resolve().is_relative_to(_TESTS_DIR)
            and item.get_closest_marker("tier2") is None
        ):
            item.add_marker(pytest.mark.tier1)
