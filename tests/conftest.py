"""Tier marking for the repository test suite.

Everything under ``tests/`` is tier-1 (fast, default) unless explicitly
marked ``tier2``; the marker is added here so ``pytest -m tier1`` selects
the default set without annotating every module.  Suite-regeneration
tests (and everything under ``benchmarks/``) carry ``tier2`` and are
excluded by the default ``-m "not tier2"`` in pyproject.toml.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        if item.get_closest_marker("tier2") is None:
            item.add_marker(pytest.mark.tier1)
