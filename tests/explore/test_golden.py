"""Golden store: tolerant diffing, persistence, check/update round trips."""

import json

import pytest

from repro.explore.golden import (
    ARTIFACT_FORMAT_VERSION,
    Tolerance,
    check_golden,
    compare_artifacts,
    golden_path,
    load_golden,
    save_golden,
    update_golden,
)


def _artifact(**overrides):
    base = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "suite": "demo",
        "columns": ["x", "y"],
        "rows": [[1, 1.0], [2, 4.0]],
        "series": {"all": {"x": [1, 2], "y": [1.0, 4.0]}},
    }
    base.update(overrides)
    return base


# ------------------------------------------------------------- comparison

def test_identical_artifacts_have_no_diffs():
    assert compare_artifacts(_artifact(), _artifact()) == []


def test_float_within_tolerance_passes():
    fresh = _artifact(rows=[[1, 1.0 * (1 + 1e-9)], [2, 4.0]])
    assert compare_artifacts(_artifact(), fresh) == []


def test_float_beyond_tolerance_fails_with_path():
    fresh = _artifact(rows=[[1, 1.01], [2, 4.0]])
    diffs = compare_artifacts(_artifact(), fresh)
    assert len(diffs) == 1
    assert diffs[0].startswith("$.rows[0][1]:")


def test_custom_tolerance_loosens_comparison():
    fresh = _artifact(rows=[[1, 1.01], [2, 4.0]])
    assert compare_artifacts(_artifact(), fresh, Tolerance(rel=0.05)) == []


def test_int_mismatch_is_exact():
    diffs = compare_artifacts(_artifact(), _artifact(suite="demo2"))
    assert any("$.suite" in d for d in diffs)
    diffs = compare_artifacts(
        _artifact(rows=[[1, 1.0], [2, 4.0]]),
        _artifact(rows=[[3, 1.0], [2, 4.0]]),
    )
    assert any("$.rows[0][0]" in d for d in diffs)


def test_bool_never_compares_as_number():
    golden = _artifact(rows=[[True, 1.0]])
    fresh = _artifact(rows=[[1, 1.0]])
    assert compare_artifacts(golden, fresh)  # True != 1 here
    assert compare_artifacts(golden, _artifact(rows=[[True, 1.0]])) == []


def test_nan_equals_nan():
    golden = _artifact(rows=[[1, float("nan")]])
    fresh = _artifact(rows=[[1, float("nan")]])
    assert compare_artifacts(golden, fresh) == []


def test_missing_and_extra_keys_reported():
    golden = _artifact()
    fresh = _artifact()
    del fresh["series"]
    fresh["extra"] = 1
    diffs = compare_artifacts(golden, fresh)
    assert any("$.series: missing" in d for d in diffs)
    assert any("$.extra: not present in golden" in d for d in diffs)


def test_length_and_type_changes_reported():
    diffs = compare_artifacts(_artifact(), _artifact(rows=[[1, 1.0]]))
    assert any("length changed from 2 to 1" in d for d in diffs)
    diffs = compare_artifacts(_artifact(), _artifact(rows="oops"))
    assert any("type changed" in d for d in diffs)


# ------------------------------------------------------------ persistence

def test_save_load_round_trip(tmp_path):
    path = golden_path(tmp_path, "demo")
    save_golden(path, _artifact())
    assert load_golden(path) == _artifact()
    # Indented, key-sorted, newline-terminated: reviewable diffs.
    text = (tmp_path / "demo.json").read_text()
    assert text.endswith("\n")
    assert json.loads(text) == _artifact()


def test_check_golden_missing_file(tmp_path):
    report = check_golden(tmp_path, "demo", _artifact())
    assert report.missing and not report.ok
    assert "--update-goldens" in report.summary()


def test_check_golden_matches_and_diffs(tmp_path):
    update_golden(tmp_path, "demo", _artifact())
    assert check_golden(tmp_path, "demo", _artifact()).ok

    perturbed = _artifact(rows=[[1, 1.5], [2, 4.0]])
    report = check_golden(tmp_path, "demo", perturbed)
    assert not report.ok
    assert "difference(s)" in report.summary()


def test_check_golden_format_version_mismatch(tmp_path):
    stale = _artifact(format_version=ARTIFACT_FORMAT_VERSION - 1)
    update_golden(tmp_path, "demo", stale)
    report = check_golden(tmp_path, "demo", _artifact())
    assert not report.ok
    assert "format_version" in report.diffs[0]


def test_tolerance_close_semantics():
    tol = Tolerance(rel=1e-6, abs=1e-12)
    assert tol.close(1.0, 1.0 + 1e-7)
    assert not tol.close(1.0, 1.01)
    assert tol.close(0.0, 1e-13)  # absolute floor near zero
    assert tol.close(float("nan"), float("nan"))
