"""Chaos tests: injected faults must not change campaign results.

Every test runs a fault-free baseline, then the same campaign under a
seeded :class:`FaultPlan`, and asserts the ResultSets are bit-identical —
the resilience layer may change *when* points are computed (retries,
pool rebuilds, serial fallback) but never *what* they evaluate to.
Convergence is guaranteed whenever each point's fault budget (``times``)
is below the policy's ``max_attempts``: every failed attempt consumes
one firing, and worker kills consume firings without even consuming an
attempt.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.explore.campaign import Campaign, run_campaign
from repro.explore.experiments import register_experiment
from repro.explore.resilience import (
    FaultPlan,
    FaultSpec,
    PoolBrokenError,
    RetryPolicy,
    activate,
    deactivate,
    read_quarantine,
)
from repro.explore.space import DesignSpace


@register_experiment("chaos-square", "square the n parameter (chaos tests)")
def _square(point):
    return {"square": point["n"] ** 2, "label": f"n={point['n']}"}


@pytest.fixture(autouse=True)
def _no_active_plan():
    deactivate()
    yield
    deactivate()


def space_of(ns):
    return DesignSpace.from_dict({"axes": {"n": list(ns)}})


def run(ns, **kwargs):
    return run_campaign("chaos", space_of(ns), "chaos-square", **kwargs)


NS = [1, 2, 3, 4, 5, 6]
POLICY = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


@pytest.fixture(scope="module")
def baseline():
    deactivate()
    return run(NS).results


@pytest.mark.parametrize("executor", ["serial", "process", "chunked"])
def test_exception_faults_converge_bit_identically(executor, baseline):
    activate(FaultPlan(
        faults=(FaultSpec(kind="exception", rate=0.6, times=2),), seed=3
    ))
    outcome = run(NS, executor=executor, workers=2, policy=POLICY)
    assert outcome.results == baseline
    assert outcome.stats.failed == 0


def test_worker_kill_rebuilds_pool_and_converges(baseline):
    activate(FaultPlan(
        faults=(FaultSpec(kind="kill", rate=0.4, times=1),), seed=5
    ))
    outcome = run(NS, executor="process", workers=2, policy=POLICY)
    assert outcome.results == baseline
    assert outcome.stats.failed == 0


def test_worker_kill_in_chunked_executor_converges(baseline):
    activate(FaultPlan(
        faults=(FaultSpec(kind="kill", rate=0.4, times=1),), seed=5
    ))
    outcome = run(NS, executor="chunked", workers=2, policy=POLICY)
    assert outcome.results == baseline
    assert outcome.stats.failed == 0


def test_hang_past_timeout_is_killed_and_retried(baseline):
    # The injected hang (5s) dwarfs the 0.75s point deadline, so the
    # only way these points can complete is the resilient driver killing
    # the hung pool and retrying them — the firing budget makes the
    # retry succeed.
    policy = RetryPolicy(
        max_attempts=2, backoff_base_s=0.0, point_timeout_s=0.75
    )
    activate(FaultPlan(
        faults=(FaultSpec(kind="hang", hang_s=5.0, rate=0.4, times=1),),
        seed=9,
    ))
    started = time.monotonic()
    outcome = run(NS, executor="process", workers=2, policy=policy)
    assert outcome.results == baseline
    assert outcome.stats.failed == 0
    assert time.monotonic() - started < 5.0  # never waited out a hang


def test_torn_append_resumes_bit_identically(tmp_path, baseline):
    activate(FaultPlan(
        faults=(FaultSpec(
            kind="torn-append", site="cache.put", rate=0.4, times=1
        ),),
        seed=4,
    ))
    first = run(NS, store_dir=tmp_path)
    assert first.results == baseline  # in-memory results unaffected
    deactivate()
    # A fresh load sees the torn/corrupt lines, repairs, re-evaluates.
    with pytest.warns(Warning):
        second = run(NS, store_dir=tmp_path)
    assert second.results == baseline
    third = run(NS, store_dir=tmp_path)
    assert third.results == baseline
    assert third.stats.cached == len(NS)  # store fully healed


def test_repeated_worker_death_degrades_to_serial(baseline):
    # Every evaluation kills its worker twice: the pool dies, is rebuilt
    # once, dies again without progress — with degrade the campaign
    # finishes serially in-process, where the kill downgrades to an
    # exception and the retry budget absorbs it.
    activate(FaultPlan(
        faults=(FaultSpec(kind="kill", rate=1.0, times=2),), seed=0
    ))
    outcome = run(
        [1, 2, 3], executor="process", workers=1,
        policy=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
        degrade=True,
    )
    assert outcome.results == run([1, 2, 3]).results
    assert outcome.stats.failed == 0


def test_repeated_worker_death_without_degrade_raises():
    activate(FaultPlan(
        faults=(FaultSpec(kind="kill", rate=1.0, times=10),), seed=0
    ))
    with pytest.raises(PoolBrokenError) as excinfo:
        run([1, 2, 3], executor="process", workers=1,
            policy=RetryPolicy(max_attempts=3, backoff_base_s=0.0))
    assert excinfo.value.remaining == 3


def test_quarantine_is_deterministic_under_permanent_faults(tmp_path):
    # A fault with an unlimited budget can never be outlasted: the same
    # seeded points quarantine on every run, and the rest evaluate
    # normally.
    plan = FaultPlan(
        faults=(FaultSpec(kind="exception", rate=0.5, times=0),), seed=2
    )
    outcomes = []
    for attempt in ("a", "b"):
        activate(plan)
        store = tmp_path / attempt
        outcome = run(
            NS, store_dir=store, on_error="store",
            policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        deactivate()
        quarantined = read_quarantine(
            Campaign.quarantine_path(store, "chaos")
        )
        outcomes.append((
            outcome.stats.quarantined,
            sorted(q["key"] for q in quarantined),
        ))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] > 0


SIGKILL_SCRIPT = """
import json, sys, time
from repro.explore import DesignSpace, register_experiment, run_campaign

@register_experiment("chaos-slow", "slow square (sigkill test)")
def _slow(point):
    time.sleep(0.15)
    return {"square": point["n"] ** 2}

space = DesignSpace.from_dict({"axes": {"n": list(range(8))}})
outcome = run_campaign(
    "slow", space, "chaos-slow", store_dir=sys.argv[1], durable=True
)
digest = [[r.key, r.point, r.metrics] for r in outcome.results.records]
print(json.dumps({"digest": digest, "cached": outcome.stats.cached}))
"""


def _spawn(script_path, store):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [sys.executable, str(script_path), str(store)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )


def test_sigkill_mid_campaign_resumes_bit_identically(tmp_path):
    script = tmp_path / "campaign.py"
    script.write_text(SIGKILL_SCRIPT)
    resumed_store = tmp_path / "resumed"
    fresh_store = tmp_path / "fresh"

    victim = _spawn(script, resumed_store)
    store_file = resumed_store / "slow.jsonl"
    deadline = time.monotonic() + 30.0
    try:
        while time.monotonic() < deadline:
            if store_file.exists() and store_file.read_text().count("\n") >= 2:
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign wrote no records before the deadline")
    finally:
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

    resumed = _spawn(script, resumed_store)
    out, err = resumed.communicate(timeout=120)
    assert resumed.returncode == 0, err
    resumed_report = json.loads(out)

    fresh = _spawn(script, fresh_store)
    out, err = fresh.communicate(timeout=120)
    assert fresh.returncode == 0, err
    fresh_report = json.loads(out)

    assert resumed_report["digest"] == fresh_report["digest"]
    assert resumed_report["cached"] >= 2  # it really resumed from disk
