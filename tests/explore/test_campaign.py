"""Campaign runner: caching, resume, error paths, executor equivalence."""

import pytest

from repro.explore.campaign import (
    Campaign,
    CampaignPointError,
    make_executor,
    run_campaign,
)
from repro.explore.experiments import EXPERIMENTS, register_experiment
from repro.explore.space import DesignSpace

CALLS = []


@register_experiment("test-square", "square the n parameter (test only)")
def _square(point):
    CALLS.append(point["n"])
    if point.get("explode"):
        raise RuntimeError("requested failure")
    return {"square": point["n"] ** 2, "label": f"n={point['n']}"}


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()
    yield


def space_of(ns, **constants):
    return DesignSpace.from_dict(
        {"axes": {"n": list(ns)}, "constants": constants}
    )


def test_run_evaluates_every_point_in_order(tmp_path):
    outcome = run_campaign("sq", space_of([1, 2, 3]), "test-square",
                           store_dir=tmp_path)
    assert outcome.stats.total == 3
    assert outcome.stats.evaluated == 3
    assert outcome.stats.cached == 0
    assert outcome.results.values("square") == [1, 4, 9]
    assert CALLS == [1, 2, 3]


def test_second_run_is_fully_cached(tmp_path):
    run_campaign("sq", space_of([1, 2, 3]), "test-square", store_dir=tmp_path)
    CALLS.clear()
    outcome = run_campaign("sq", space_of([1, 2, 3]), "test-square",
                           store_dir=tmp_path)
    assert CALLS == []
    assert outcome.stats.cached == 3
    assert outcome.stats.cache_hit_rate == 1.0
    assert outcome.results.values("square") == [1, 4, 9]


def test_growing_the_space_only_runs_new_points(tmp_path):
    run_campaign("sq", space_of([1, 2]), "test-square", store_dir=tmp_path)
    CALLS.clear()
    outcome = run_campaign("sq", space_of([1, 2, 5]), "test-square",
                           store_dir=tmp_path)
    assert CALLS == [5]  # resume semantics: old points served from disk
    assert outcome.stats.cached == 2
    assert outcome.stats.evaluated == 1
    assert outcome.results.values("square") == [1, 4, 25]


def test_cache_is_shared_across_campaign_objects_not_processes(tmp_path):
    first = Campaign("sq", space_of([7]), "test-square", store_dir=tmp_path)
    first.run()
    second = Campaign("sq", space_of([7]), "test-square", store_dir=tmp_path)
    outcome = second.run()
    assert outcome.stats.cached == 1


def test_cached_and_fresh_records_are_identical(tmp_path):
    fresh = run_campaign("sq", space_of([3], scale=0.5), "test-square",
                         store_dir=tmp_path)
    cached = run_campaign("sq", space_of([3], scale=0.5), "test-square",
                          store_dir=tmp_path)
    assert fresh.results == cached.results


def test_uncached_campaign_reruns_everything():
    run_campaign("sq", space_of([1]), "test-square")
    outcome = run_campaign("sq", space_of([1]), "test-square")
    assert CALLS == [1, 1]
    assert outcome.stats.cached == 0


def test_point_failure_raises_by_default(tmp_path):
    space = DesignSpace.from_dict(
        {"points": [{"n": 2}, {"n": 3, "explode": True}]}
    )
    with pytest.raises(CampaignPointError) as err:
        run_campaign("sq", space, "test-square", store_dir=tmp_path)
    assert err.value.point["n"] == 3
    assert "requested failure" in str(err.value)


def test_point_failure_is_stored_with_keep_going(tmp_path):
    space = DesignSpace.from_dict(
        {"points": [{"n": 2}, {"n": 3, "explode": True}]}
    )
    outcome = run_campaign("sq", space, "test-square", store_dir=tmp_path,
                           on_error="store")
    assert outcome.stats.failed == 1
    assert outcome.results[1].failed
    assert outcome.results.ok().values("square") == [4]
    # Failures are not cached: a re-run retries the failed point.
    CALLS.clear()
    run_campaign("sq", space, "test-square", store_dir=tmp_path,
                 on_error="store")
    assert CALLS == [3]


def test_unknown_experiment_fails_cleanly():
    with pytest.raises(CampaignPointError, match="unknown experiment"):
        run_campaign("bad", space_of([1]), "no-such-experiment")


def test_experiment_returning_non_dict_is_a_point_failure():
    register_experiment("test-none", "returns None (test only)")(
        lambda point: None
    )
    # Must surface as a clean per-point failure even with no cache attached.
    with pytest.raises(CampaignPointError, match="metrics dict"):
        run_campaign("none", space_of([1]), "test-none")
    outcome = run_campaign("none", space_of([1]), "test-none",
                           on_error="store")
    assert outcome.stats.failed == 1
    assert outcome.results[0].failed


def test_make_executor_resolution():
    from repro.explore.campaign import ProcessPoolExecutor, SerialExecutor

    assert isinstance(make_executor(None), SerialExecutor)
    assert isinstance(make_executor("serial"), SerialExecutor)
    pool = make_executor("process", workers=3)
    assert isinstance(pool, ProcessPoolExecutor)
    assert pool.workers == 3
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor("warp-drive")


def test_experiment_registry_lists_builtins():
    for name in ("barrier-cost", "barrier-adapt", "stencil-predict"):
        assert name in EXPERIMENTS


@pytest.mark.slow
def test_serial_and_parallel_executors_are_bit_identical(tmp_path):
    space = DesignSpace.from_dict({
        "axes": {
            "preset": ["xeon-8x2x4", "xeon-8x2x4-ib"],
            "pattern": ["linear", "dissemination"],
            "nprocs": [8],
        },
        "constants": {"runs": 4, "comm_samples": 3},
    })
    serial = run_campaign("eq-s", space, "barrier-cost", executor="serial")
    parallel = run_campaign("eq-p", space, "barrier-cost",
                            executor="process", workers=2)
    assert [r.metrics for r in serial.results] == [
        r.metrics for r in parallel.results
    ]
    assert [r.point for r in serial.results] == [
        r.point for r in parallel.results
    ]
