"""ResultSet queries: filter, group, rank, and a hand-computed Pareto front."""

import pytest

from repro.explore.results import ResultRecord, ResultSet


def rec(key, point, metrics):
    return ResultRecord(key=key, experiment="test", point=point, metrics=metrics)


@pytest.fixture
def rs():
    return ResultSet((
        rec("a", {"preset": "x", "p": 8}, {"cost": 3.0, "msgs": 14}),
        rec("b", {"preset": "x", "p": 16}, {"cost": 2.0, "msgs": 24}),
        rec("c", {"preset": "y", "p": 8}, {"cost": 4.0, "msgs": 10}),
        rec("d", {"preset": "y", "p": 16}, {"cost": 2.5, "msgs": 64}),
        rec("e", {"preset": "y", "p": 32}, {"error": "boom"}),
    ))


def test_filter_by_point_and_metric(rs):
    assert [r.key for r in rs.filter(preset="y")] == ["c", "d", "e"]
    assert [r.key for r in rs.filter(cost=2.0)] == ["b"]
    assert [r.key for r in rs.filter(lambda r: r.value("p") == 8)] == ["a", "c"]
    assert [r.key for r in rs.filter(preset="x", p=16)] == ["b"]


def test_ok_drops_failures(rs):
    assert [r.key for r in rs.ok()] == ["a", "b", "c", "d"]
    assert rs[4].failed


def test_group_by_preserves_order(rs):
    groups = rs.group_by("preset")
    assert list(groups) == [("x",), ("y",)]
    assert [r.key for r in groups[("y",)]] == ["c", "d", "e"]


def test_rank_by_and_best(rs):
    ranked = rs.rank_by("cost")
    assert [r.key for r in ranked] == ["b", "d", "a", "c", "e"]  # e lacks cost
    assert rs.best("cost").key == "b"
    assert rs.best("cost", ascending=False).key == "c"
    with pytest.raises(ValueError):
        rs.best("nonexistent")


def test_values_resolve_metrics_then_point(rs):
    assert rs.values("p") == [8, 16, 8, 16, 32]
    assert rs.values("cost")[:2] == [3.0, 2.0]


def test_pareto_front_hand_computed(rs):
    # Minimise (cost, msgs).  Hand check:
    #   a (3.0, 14): not dominated (b has more msgs, c more cost)
    #   b (2.0, 24): not dominated (cheapest cost among msgs<=24 rivals)
    #   c (4.0, 10): not dominated (fewest msgs)
    #   d (2.5, 64): dominated by b (2.0 <= 2.5, 24 <= 64, strictly better)
    #   e: excluded (no objective values)
    front = rs.pareto_front(["cost", "msgs"])
    assert [r.key for r in front] == ["a", "b", "c"]


def test_pareto_front_with_maximize_direction():
    data = ResultSet((
        rec("a", {}, {"speedup": 2.0, "msgs": 20}),
        rec("b", {}, {"speedup": 1.5, "msgs": 10}),
        rec("c", {}, {"speedup": 1.0, "msgs": 15}),  # dominated by both? no:
        # c vs a: a faster but more msgs; c vs b: b faster AND fewer msgs -> dominated
    ))
    front = data.pareto_front(["msgs", "speedup"], maximize=["speedup"])
    assert [r.key for r in front] == ["a", "b"]


def test_pareto_duplicates_all_survive():
    data = ResultSet((
        rec("a", {}, {"cost": 1.0}),
        rec("b", {}, {"cost": 1.0}),
    ))
    assert [r.key for r in data.pareto_front(["cost"])] == ["a", "b"]


def test_pareto_argument_validation(rs):
    with pytest.raises(ValueError):
        rs.pareto_front([])
    with pytest.raises(ValueError):
        rs.pareto_front(["cost"], maximize=["msgs"])


def test_jsonl_round_trip(rs, tmp_path):
    path = str(tmp_path / "results.jsonl")
    rs.to_jsonl(path)
    loaded = ResultSet.from_jsonl(path)
    assert loaded == rs


def test_to_rows_and_names(rs):
    assert rs.point_names() == ["preset", "p"]
    assert rs.metric_names() == ["cost", "msgs", "error"]
    assert rs.to_rows(["preset", "cost"])[0] == ["x", 3.0]


def test_summary_digest(rs):
    summary = rs.summary()
    assert summary["records"] == 5
    assert summary["failed"] == 1
    assert summary["experiments"] == ["test"]
    assert summary["parameters"] == {"preset": 2, "p": 3}
    cost = summary["metrics"]["cost"]
    assert cost["count"] == 4  # the failed record has no cost
    assert cost["min"] == 2.0 and cost["max"] == 4.0
    assert cost["mean"] == pytest.approx((3.0 + 2.0 + 4.0 + 2.5) / 4)
    assert "error" not in summary["metrics"]  # strings are not numeric


def test_summary_of_empty_set():
    summary = ResultSet(()).summary()
    assert summary["records"] == 0
    assert summary["metrics"] == {}


def test_to_csv_default_columns(rs, tmp_path):
    import csv

    path = tmp_path / "out.csv"
    columns = rs.to_csv(path)
    assert columns == ["preset", "p", "cost", "msgs", "error"]
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == columns
    assert len(rows) == 6
    assert rows[1] == ["x", "8", "3.0", "14", ""]
    # The failed record serialises its error string, not a crash.
    assert rows[5][columns.index("error")] == "boom"


def test_to_csv_explicit_columns_and_file_objects(rs):
    import io

    buffer = io.StringIO()
    rs.to_csv(buffer, columns=["preset", "cost"])
    lines = buffer.getvalue().splitlines()
    assert lines[0] == "preset,cost"
    assert lines[1] == "x,3.0"


def test_to_csv_serialises_compound_cells(tmp_path):
    import csv

    compound = ResultSet((
        rec("z", {"p": 8}, {"levels": [1, 2, 3], "meta": {"b": 1, "a": 2}}),
    ))
    path = tmp_path / "compound.csv"
    compound.to_csv(path)
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    assert rows[1][rows[0].index("levels")] == "[1, 2, 3]"
    assert rows[1][rows[0].index("meta")] == '{"a": 2, "b": 1}'
