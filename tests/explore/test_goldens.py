"""The checked-in golden fixtures: schema, perturbation detection, and
(tier-2) full regeneration through ``suite --check``."""

import copy
import json

import pytest

from repro.explore.figures import GOLDEN_SUITES
from repro.explore.golden import (
    ARTIFACT_FORMAT_VERSION,
    check_golden,
    golden_path,
    load_golden,
    update_golden,
)
from repro.explore.suites import DEFAULT_GOLDENS_DIR as GOLDENS_DIR, get_suite


@pytest.mark.parametrize("suite", GOLDEN_SUITES)
def test_golden_fixture_checked_in_and_well_formed(suite):
    artifact = load_golden(golden_path(GOLDENS_DIR, suite))
    assert artifact["format_version"] == ARTIFACT_FORMAT_VERSION
    assert artifact["suite"] == suite
    spec = get_suite(suite)
    assert artifact["experiment"] == spec.experiment
    assert artifact["points"] == len(spec.space)
    assert len(artifact["rows"]) == artifact["points"]
    assert all(
        len(row) == len(artifact["columns"]) for row in artifact["rows"]
    )
    assert set(artifact["series"]) == {s.name for s in spec.series}


@pytest.mark.parametrize("suite", GOLDEN_SUITES)
def test_golden_self_check_passes(suite):
    """A fixture compared against itself is a clean pass — the comparison
    machinery cannot reject the checked-in artifact."""
    artifact = load_golden(golden_path(GOLDENS_DIR, suite))
    spec = get_suite(suite)
    report = check_golden(GOLDENS_DIR, suite, artifact, spec.tolerance)
    assert report.ok, report.summary()


@pytest.mark.parametrize("suite", GOLDEN_SUITES)
def test_perturbed_copy_fails_the_check(tmp_path, suite):
    """Drifted numbers and structural edits must both be caught."""
    artifact = load_golden(golden_path(GOLDENS_DIR, suite))
    update_golden(tmp_path, suite, artifact)
    spec = get_suite(suite)

    def drift(value):
        """Scale every float 2% — far beyond the suite tolerance."""
        if isinstance(value, float):
            return value * 1.02
        if isinstance(value, list):
            return [drift(v) for v in value]
        if isinstance(value, dict):
            return {k: drift(v) for k, v in value.items()}
        return value

    numeric = copy.deepcopy(artifact)
    numeric["rows"] = drift(numeric["rows"])
    assert numeric["rows"] != artifact["rows"], "artifact carries no floats"
    report = check_golden(tmp_path, suite, numeric, spec.tolerance)
    assert not report.ok
    assert report.diffs

    structural = copy.deepcopy(artifact)
    structural["rows"] = structural["rows"][:-1]
    structural["points"] -= 1
    report = check_golden(tmp_path, suite, structural, spec.tolerance)
    assert not report.ok


@pytest.mark.tier2
@pytest.mark.parametrize("suite", GOLDEN_SUITES)
def test_suite_bit_identical_with_telemetry_on(tmp_path, suite):
    """Telemetry must never perturb a result: a fresh regeneration with
    telemetry enabled produces the byte-for-byte artifact of one without."""
    from repro import obs
    from repro.explore.suites import run_suite

    off = run_suite(suite, store_dir=tmp_path / "off")
    try:
        obs.enable(tmp_path / "telemetry")
        on = run_suite(suite, store_dir=tmp_path / "on")
    finally:
        obs.disable()
    assert json.dumps(on.artifact(), sort_keys=True) == json.dumps(
        off.artifact(), sort_keys=True
    )


@pytest.mark.tier2
@pytest.mark.parametrize("suite", GOLDEN_SUITES)
def test_suite_check_regenerates_within_tolerance(tmp_path, suite):
    """Full regeneration (fresh store, no cache) reproduces the golden —
    the CLI path CI runs on every push."""
    from repro.explore.cli import main

    code = main([
        "suite", suite,
        "--check",
        "--store-dir", str(tmp_path / "store"),
        "--goldens-dir", GOLDENS_DIR,
    ])
    assert code == 0
