"""The k-NN / linear surrogates and their disagreement ensemble."""

import numpy as np
import pytest

from repro.explore.adaptive.surrogate import (
    LinearSurrogate,
    NearestNeighbourSurrogate,
    SurrogateEnsemble,
)


def _grid(n=25):
    xs = np.linspace(0.0, 1.0, n)
    return np.array([[x, y] for x in xs for y in xs])


def test_knn_reproduces_observations_exactly():
    X = _grid(5)
    y = X[:, 0] * 2 + X[:, 1]
    model = NearestNeighbourSurrogate(k=3).fit(X, y)
    assert model.predict(X) == pytest.approx(y, abs=1e-6)


def test_linear_recovers_a_linear_function():
    X = _grid(6)
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 0.5
    model = LinearSurrogate(ridge=1e-9).fit(X, y)
    probe = np.array([[0.25, 0.75], [0.9, 0.1]])
    want = 3.0 * probe[:, 0] - 2.0 * probe[:, 1] + 0.5
    assert model.predict(probe) == pytest.approx(want, abs=1e-6)


def test_linear_stays_defined_with_fewer_points_than_features():
    X = np.array([[0.0, 0.0], [1.0, 1.0]])
    model = LinearSurrogate().fit(X, np.array([0.0, 1.0]))
    assert np.isfinite(model.predict(np.array([[0.5, 0.5]]))).all()


def test_ensemble_uncertainty_is_zero_on_agreement_and_positive_on_curvature():
    X = _grid(7)
    linear_y = X[:, 0] + X[:, 1]
    ens = SurrogateEnsemble().fit(X, linear_y)
    probe = X[::5]
    # Both members represent a linear function exactly (k-NN at observed
    # points), so disagreement at observed points is ~0.
    assert ens.uncertainty(probe) == pytest.approx(0.0, abs=1e-6)

    curved_y = (X[:, 0] - 0.5) ** 2
    ens = SurrogateEnsemble().fit(X[::3], curved_y[::3])
    off_grid = np.array([[0.5, 0.5], [0.05, 0.95]])
    assert (ens.uncertainty(off_grid) > 0).all()


def test_fit_validation():
    with pytest.raises(ValueError):
        NearestNeighbourSurrogate(k=0)
    with pytest.raises(ValueError):
        LinearSurrogate(ridge=-1.0)
    with pytest.raises(ValueError):
        NearestNeighbourSurrogate().fit(np.empty((0, 2)), np.empty(0))
    with pytest.raises(RuntimeError):
        LinearSurrogate().predict(np.array([[0.0]]))
