"""Shared fixtures for the adaptive-sampling tests: a cheap, fully
deterministic experiment over a mixed numeric/categorical space with a
known optimum, so search behaviour is assertable without simulator cost."""

import pytest

from repro.explore.experiments import register_experiment
from repro.explore.space import DesignSpace

#: The analytic optimum of ``test-bowl`` over :func:`bowl_space` grids
#: that include these coordinates.
BOWL_OPTIMUM = {"a": 13, "b": 4, "mode": "m3"}

_MODE_PENALTY = {"m0": 1.5, "m1": 1.0, "m2": 0.5, "m3": 0.0, "m4": 2.0}


@register_experiment("test-bowl", "separable bowl over a, b, mode (test only)")
def _bowl(point):
    cost = (
        (point["a"] - 13) ** 2
        + 0.5 * (point["b"] - 4) ** 2
        + _MODE_PENALTY[point["mode"]]
    )
    return {
        "cost": float(cost),
        "weight": float(point["a"] + point["b"]),
    }


def bowl_space(na=18, nb=20, modes=5) -> DesignSpace:
    return DesignSpace.from_dict({
        "axes": {
            "a": list(range(na)),
            "b": list(range(nb)),
            "mode": [f"m{i}" for i in range(modes)],
        },
        "constants": {"runs": 1},
    })


@pytest.fixture
def small_space() -> DesignSpace:
    """6 x 5 x 3 = 90 points: big enough to sample, cheap to exhaust."""
    return bowl_space(na=6, nb=5, modes=3)
