"""AdaptiveCampaign: budgeting, store sharing, executor equivalence, and
the suite integration."""

import pytest

from repro.explore.adaptive import AdaptivePlan, run_adaptive
from repro.explore.campaign import CampaignPointError, run_campaign
from repro.explore.experiments import register_experiment
from repro.explore.space import DesignSpace
from repro.explore.suites import SuiteSpec, run_suite

from tests.explore.adaptive.conftest import bowl_space


def _plan(**overrides):
    base = dict(
        budget=30, strategy="surrogate", objective="cost", batch=10, seed=0
    )
    base.update(overrides)
    return AdaptivePlan(**base)


def test_budget_bounds_observed_points(small_space):
    outcome = run_adaptive("b", small_space, "test-bowl", _plan(budget=23))
    assert outcome.stats.proposed == 23
    assert len(outcome.results) == 23
    assert outcome.stats.coverage == pytest.approx(23 / len(small_space))
    assert outcome.stats.rounds == 3  # 10 + 10 + 3


def test_budget_beyond_the_space_stops_at_exhaustion(small_space):
    outcome = run_adaptive(
        "all", small_space, "test-bowl",
        _plan(budget=10_000, strategy="random", batch=64),
    )
    assert outcome.stats.proposed == len(small_space)
    assert outcome.stats.coverage == 1.0


def test_best_and_regret_against_exhaustive(small_space):
    adaptive = run_adaptive(
        "vs", small_space, "test-bowl", _plan(budget=45)
    )
    exhaustive = run_campaign("vs-full", small_space, "test-bowl")
    regret = adaptive.regret(exhaustive.results)
    assert regret >= 0.0
    best = adaptive.best()
    assert best.value("cost") == pytest.approx(
        exhaustive.results.best("cost").value("cost") + regret
    )


def test_adaptive_and_exhaustive_share_one_store(tmp_path, small_space):
    plan = _plan(budget=40)
    adaptive = run_adaptive(
        "shared", small_space, "test-bowl", plan, store_dir=tmp_path
    )
    assert adaptive.stats.evaluated == 40
    # The exhaustive run pays only for the points the search skipped...
    full = run_campaign(
        "shared", small_space, "test-bowl", store_dir=tmp_path
    )
    assert full.stats.cached == 40
    assert full.stats.evaluated == len(small_space) - 40
    # ...and a re-run of the adaptive campaign is a pure cache read that
    # proposes the identical sequence.
    again = run_adaptive(
        "shared", small_space, "test-bowl", plan, store_dir=tmp_path
    )
    assert again.stats.cached == 40
    assert again.stats.evaluated == 0
    assert [r.key for r in again.results] == [
        r.key for r in adaptive.results
    ]


def test_serial_process_chunked_bit_identity(tmp_path, small_space):
    plan = _plan(budget=25, batch=8)
    outcomes = [
        run_adaptive(
            f"x-{name}", small_space, "test-bowl", plan,
            executor=name, workers=2 if name != "serial" else None,
        )
        for name in ("serial", "process", "chunked")
    ]
    reference = [(r.key, r.metrics) for r in outcomes[0].results]
    for outcome in outcomes[1:]:
        assert [(r.key, r.metrics) for r in outcome.results] == reference


def test_failed_points_respect_on_error(small_space):
    @register_experiment("test-explosive", "fails on a==2 (test only)")
    def _explosive(point):
        if point["a"] == 2:
            raise RuntimeError("boom")
        return {"cost": float(point["a"])}

    with pytest.raises(CampaignPointError):
        run_adaptive(
            "boom", small_space, "test-explosive",
            _plan(budget=len(small_space), strategy="random", batch=32),
        )
    outcome = run_adaptive(
        "boom2", small_space, "test-explosive",
        _plan(budget=len(small_space), strategy="random", batch=32),
        on_error="store",
    )
    assert outcome.stats.failed == len(small_space) // 6  # a==2 slice
    assert outcome.stats.proposed == len(small_space)


def test_plan_validation():
    with pytest.raises(ValueError, match="budget"):
        AdaptivePlan(budget=0)
    with pytest.raises(ValueError, match="batch"):
        AdaptivePlan(budget=5, batch=0)
    plan = AdaptivePlan(
        budget=5, objectives=["a", "b"], maximize=["b"], options={"k": 3}
    )
    assert plan.objectives == ("a", "b")
    assert plan.maximize == ("b",)


def test_outcome_best_requires_single_objective(small_space):
    outcome = run_adaptive(
        "pareto", small_space, "test-bowl",
        _plan(objective=None, objectives=("cost", "weight"), budget=20),
    )
    with pytest.raises(ValueError, match="single-objective"):
        outcome.best()
    front = outcome.front()
    assert len(front) >= 1
    # Front members are mutually non-dominated.
    vectors = [
        (r.value("cost"), r.value("weight")) for r in front
    ]
    for a in vectors:
        assert not any(
            b[0] <= a[0] and b[1] <= a[1] and b != a for b in vectors
        )


def test_suite_with_a_sampling_plan_runs_adaptively(tmp_path):
    spec = SuiteSpec(
        name="adaptive-suite-test",
        title="sampled bowl screening",
        experiment="test-bowl",
        space=bowl_space(na=10, nb=10, modes=3),
        columns=("a", "b", "mode", "cost"),
        sampling=_plan(budget=36, batch=12),
    )
    result = run_suite(spec, store_dir=tmp_path)
    assert result.stats.total == 36  # sampled, not the 300-point space
    artifact = result.artifact()
    assert artifact["points"] == 36
    # Seeded plan: regeneration produces the identical artifact.
    again = run_suite(spec, store_dir=None)
    assert again.artifact() == artifact
    # sampling=False forces the exhaustive expansion over the same store.
    full = run_suite(spec, store_dir=tmp_path, sampling=False)
    assert full.stats.total == len(spec.space)
    assert full.stats.cached == 36
