"""localize_drift: witness search, axis bisection, probe economy, CLI."""

import pytest

from repro.explore.adaptive import localize_drift
from repro.explore.experiments import register_experiment
from repro.explore.golden import update_golden
from repro.explore.space import DesignSpace
from repro.explore.suites import SuiteSpec, register_suite, run_suite

# A mutable switchboard the experiment reads, so tests inject regressions
# without re-registering anything.
REGRESSION = {"scale": 1.0, "min_nprocs": None, "pattern": None}


@register_experiment("test-driftable", "regression-injectable (test only)")
def _driftable(point):
    cost = float(point["nprocs"]) * 1.5 + {
        "lin": 0.0, "tree": 1.0, "dis": 2.0
    }[point["pattern"]]
    hit = True
    if REGRESSION["min_nprocs"] is not None:
        hit = hit and point["nprocs"] >= REGRESSION["min_nprocs"]
    if REGRESSION["pattern"] is not None:
        hit = hit and point["pattern"] == REGRESSION["pattern"]
    if hit:
        cost *= REGRESSION["scale"]
    return {"cost": cost}


NPROCS = [4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 48, 56, 64]


def _spec(name="drift-unit"):
    return SuiteSpec(
        name=name,
        title="driftable sweep",
        experiment="test-driftable",
        space=DesignSpace.from_dict({
            "axes": {"pattern": ["lin", "tree", "dis"], "nprocs": NPROCS},
        }),
        columns=("pattern", "nprocs", "cost"),
    )


@pytest.fixture
def goldens(tmp_path):
    """A golden built from the clean experiment; restores cleanliness."""
    REGRESSION.update(scale=1.0, min_nprocs=None, pattern=None)
    spec = _spec()
    result = run_suite(spec, store_dir=None)
    update_golden(tmp_path, spec.name, result.artifact())
    yield spec, tmp_path
    REGRESSION.update(scale=1.0, min_nprocs=None, pattern=None)


def test_clean_suite_reports_no_drift(goldens):
    spec, goldens_dir = goldens
    report = localize_drift(spec, goldens_dir=goldens_dir)
    assert report.ok and not report.drifted
    assert "no drift" in report.summary()


def test_localises_an_injected_regression_to_its_axis_region(goldens):
    spec, goldens_dir = goldens
    REGRESSION.update(scale=1.5, min_nprocs=24, pattern="tree")
    report = localize_drift(spec, goldens_dir=goldens_dir, seed=5)
    assert report.drifted
    region = report.region
    assert region.axes["pattern"] == ("tree",)
    assert region.axes["nprocs"] == tuple(n for n in NPROCS if n >= 24)
    assert "pattern" not in region.full_axes
    # Bisection economy: far fewer probes than the 39-point space.
    assert report.probes < len(spec.space) / 2
    # The verification sweep confirmed the region drifts throughout.
    assert report.verified_drifting == report.verified > 0
    assert "tree" in report.summary()


def test_region_subspace_re_runs_only_the_offending_points(goldens):
    spec, goldens_dir = goldens
    REGRESSION.update(scale=1.5, min_nprocs=24, pattern="tree")
    report = localize_drift(spec, goldens_dir=goldens_dir, seed=5)
    sub = report.region.subspace(spec.space)
    offending = [n for n in NPROCS if n >= 24]
    assert len(sub) == len(offending)
    # Same content hashes as the parent expansion: a campaign over the
    # region re-uses the parent store.
    parent_keys = {p.key for p in spec.space.expand()}
    assert all(p.key in parent_keys for p in sub.expand())
    assert all(p["pattern"] == "tree" for p in sub)


def test_whole_axis_drift_is_reported_as_unlocalising(goldens):
    spec, goldens_dir = goldens
    REGRESSION.update(scale=2.0, min_nprocs=None, pattern=None)  # everywhere
    report = localize_drift(spec, goldens_dir=goldens_dir)
    assert report.drifted
    assert set(report.region.full_axes) == {"pattern", "nprocs"}
    assert "all" in report.region.describe()


def test_probe_limit_bounds_the_witness_search(goldens):
    spec, goldens_dir = goldens
    REGRESSION.update(scale=1.5, min_nprocs=64, pattern="dis")  # 1 point
    report = localize_drift(
        spec, goldens_dir=goldens_dir, seed=0, probe_limit=3
    )
    # With only 3 probes the single drifted point is (almost surely under
    # this seed) missed: the report must say how little was checked, not
    # claim cleanliness it did not establish.
    if not report.drifted:
        assert report.probes == 3


def test_space_shape_change_is_structural(goldens):
    spec, goldens_dir = goldens
    wider = SuiteSpec(
        name=spec.name,
        title=spec.title,
        experiment=spec.experiment,
        space=DesignSpace.from_dict({
            "axes": {
                "pattern": ["lin", "tree", "dis"],
                "nprocs": NPROCS + [128],
            },
        }),
        columns=spec.columns,
    )
    report = localize_drift(wider, goldens_dir=goldens_dir)
    assert report.structural
    assert not report.drifted
    assert "shape changed" in report.summary()


def test_missing_golden_raises(goldens, tmp_path):
    spec, _ = goldens
    with pytest.raises(FileNotFoundError):
        localize_drift(spec, goldens_dir=tmp_path / "empty")


def test_drift_cli_round_trip(goldens, capsys):
    from repro.explore.cli import main

    spec, goldens_dir = goldens
    register_suite(spec)
    try:
        assert main([
            "drift", spec.name, "--goldens-dir", str(goldens_dir),
        ]) == 0
        REGRESSION.update(scale=1.5, min_nprocs=24, pattern="tree")
        code = main([
            "drift", spec.name, "--goldens-dir", str(goldens_dir),
            "--seed", "5",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "drift localised" in out and "tree" in out
    finally:
        from repro.explore.suites import SUITES

        SUITES.pop(spec.name, None)
