"""SpaceEncoder: feature selection, scaling, determinism."""

import numpy as np
import pytest

from repro.explore.adaptive.encoding import SpaceEncoder
from repro.explore.space import DesignSpace

from tests.explore.adaptive.conftest import bowl_space


def test_constant_parameters_are_dropped():
    space = bowl_space(na=4, nb=3, modes=2)
    enc = SpaceEncoder(space.expand())
    assert set(enc.features) == {"a", "b", "mode"}  # "runs" is constant
    assert enc.dimensions == 3


def test_numeric_axes_scale_by_value_not_rank():
    space = DesignSpace.grid(n=[1, 2, 10])
    enc = SpaceEncoder(space.expand())
    lo, mid, hi = (enc.encode({"n": v})[0] for v in (1, 2, 10))
    assert lo == 0.0 and hi == 1.0
    assert mid == pytest.approx(1 / 9)  # value-proportional, not 0.5


def test_categorical_axes_are_ordinal_in_declaration_order():
    space = DesignSpace.grid(pattern=["tree", "linear", "dissemination"])
    enc = SpaceEncoder(space.expand())
    codes = [enc.encode({"pattern": p})[0]
             for p in ("tree", "linear", "dissemination")]
    assert codes == [0.0, 0.5, 1.0]


def test_unseen_categorical_lands_outside_the_known_range():
    enc = SpaceEncoder(DesignSpace.grid(pattern=["a", "b"]).expand())
    assert enc.encode({"pattern": "zzz"})[0] > 1.0


def test_encode_many_matches_encode_rows():
    points = bowl_space(na=3, nb=3, modes=2).expand()
    enc = SpaceEncoder(points)
    matrix = enc.encode_many(points)
    assert matrix.shape == (len(points), enc.dimensions)
    for row, point in zip(matrix, points):
        assert np.array_equal(row, enc.encode(point))


def test_two_encoders_from_the_same_expansion_agree():
    points = bowl_space(na=4, nb=4, modes=3).expand()
    a, b = SpaceEncoder(points), SpaceEncoder(points)
    assert a.features == b.features
    assert np.array_equal(a.encode_many(points), b.encode_many(points))


def test_empty_candidates_rejected():
    with pytest.raises(ValueError):
        SpaceEncoder([])
