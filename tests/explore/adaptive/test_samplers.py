"""Per-strategy sampler behaviour (the cross-strategy contracts —
in-space, no repeats, seeded determinism — are property-tested in
``test_sampler_properties.py``)."""

import pytest

from repro.explore.adaptive.samplers import (
    Observation,
    RandomSampler,
    StratifiedSampler,
    SuccessiveHalvingSampler,
    SurrogateSampler,
    make_sampler,
)
from repro.explore.space import DesignPoint, DesignSpace

from tests.explore.adaptive.conftest import bowl_space


def _drain(sampler, evaluate, batch=8, budget=10**9):
    """Drive a sampler the way the driver does; returns proposals made."""
    seen = []
    while len(seen) < budget:
        picks = sampler.propose(min(batch, budget - len(seen)))
        if not picks:
            break
        sampler.observe([
            Observation(point=p, metrics=evaluate(p)) for p in picks
        ])
        seen.extend(picks)
    return seen


def _cost(point):
    return {"cost": (point["a"] - 13) ** 2 + 0.5 * (point["b"] - 4) ** 2}


def test_random_exhausts_the_space_without_repeats(small_space):
    sampler = RandomSampler(small_space, seed=3)
    seen = _drain(sampler, _cost, batch=7)
    assert len(seen) == len(small_space)
    assert len({p.key for p in seen}) == len(seen)
    assert sampler.exhausted


def test_stratified_first_batch_spreads_over_every_axis(small_space):
    sampler = StratifiedSampler(small_space, seed=0)
    picks = sampler.propose(6)
    # Six maximin picks over a 6x5x3 grid must touch well more than one
    # stratum per axis — a clustered sampler would not.
    for axis in ("a", "b", "mode"):
        assert len({p[axis] for p in picks}) >= 3, axis


def test_observed_points_are_never_proposed(small_space):
    points = small_space.expand()
    pre = points[:10]
    for cls in (RandomSampler, StratifiedSampler):
        sampler = cls(small_space, seed=1)
        sampler.observe([
            Observation(point=p, metrics=_cost(p)) for p in pre
        ])
        seen = _drain(sampler, _cost)
        assert {p.key for p in seen}.isdisjoint({p.key for p in pre})
        assert len(seen) == len(points) - len(pre)


def test_halving_needs_objective_and_fidelity(small_space):
    with pytest.raises(ValueError, match="objective"):
        SuccessiveHalvingSampler(small_space, fidelity="a")
    with pytest.raises(ValueError, match="fidelity"):
        SuccessiveHalvingSampler(small_space, objective="cost")
    with pytest.raises(ValueError, match="eta"):
        SuccessiveHalvingSampler(
            small_space, objective="cost", fidelity="a", eta=1.0
        )


def test_halving_screens_wide_then_narrows():
    space = DesignSpace.from_dict({
        "axes": {
            "config": list(range(12)),
            "fidelity": [1, 2, 4],
        },
    })

    def evaluate(point):
        # config 5 is best at every fidelity.
        return {"cost": abs(point["config"] - 5) + 1.0 / point["fidelity"]}

    sampler = SuccessiveHalvingSampler(
        space, seed=0, objective="cost", fidelity="fidelity", eta=3
    )
    seen = _drain(sampler, evaluate, batch=6)
    by_fidelity = {f: [] for f in (1, 2, 4)}
    for p in seen:
        by_fidelity[p["fidelity"]].append(p["config"])
    # Rung 0 screens every config at the cheapest fidelity; each
    # promotion keeps ceil(1/3).
    assert sorted(by_fidelity[1]) == list(range(12))
    assert len(by_fidelity[2]) == 4
    assert len(by_fidelity[4]) == 2
    # The true best config survives to the top rung.
    assert 5 in by_fidelity[4]
    # Budget concentrated: 18 evaluations instead of 36.
    assert len(seen) == 18


def test_surrogate_requires_an_objective(small_space):
    with pytest.raises(ValueError, match="objective"):
        SurrogateSampler(small_space)


def test_surrogate_warms_up_space_filling_then_exploits():
    space = bowl_space(na=18, nb=20, modes=5)
    sampler = SurrogateSampler(
        space, seed=2, objective="cost", warmup=12, explore=0.25
    )
    seen = _drain(sampler, _cost, batch=12, budget=168)
    # After warmup the exploit half concentrates near the optimum: the
    # true best point must be among the proposals at <10% coverage
    # (168 of 1800).
    best = min(seen, key=lambda p: _cost(p)["cost"])
    assert _cost(best)["cost"] == 0.0, dict(best)


def test_surrogate_pareto_mode_spreads_over_the_front(small_space):
    sampler = SurrogateSampler(
        small_space,
        seed=4,
        objectives=("cost", "weight"),
        warmup=8,
    )

    def evaluate(point):
        return {**_cost(point), "weight": float(point["a"] + point["b"])}

    seen = _drain(sampler, evaluate, batch=10, budget=40)
    assert len(seen) == 40
    # Both extremes of the trade-off get sampled: some low-weight points
    # (a+b small) and some low-cost points (the bowl's grid minimum is
    # cost=64 at a=5, b=4 on this 6x5 grid).
    weights = [p["a"] + p["b"] for p in seen]
    costs = [_cost(p)["cost"] for p in seen]
    assert min(weights) <= 2
    assert min(costs) <= 66.0


def test_failed_observations_do_not_poison_the_surrogate(small_space):
    sampler = SurrogateSampler(
        small_space, seed=0, objective="cost", warmup=4
    )

    def evaluate(point):
        if point["a"] == 0:
            return {"error": "boom"}  # failed point: no objective
        return _cost(point)

    seen = _drain(sampler, evaluate, batch=8, budget=48)
    assert len(seen) == 48  # failures consume budget but never crash


def test_make_sampler_resolves_names_and_aliases(small_space):
    assert isinstance(
        make_sampler("random", small_space), RandomSampler
    )
    assert isinstance(
        make_sampler("lhs", small_space), StratifiedSampler
    )
    assert isinstance(
        make_sampler("active", small_space, objective="cost"),
        SurrogateSampler,
    )
    with pytest.raises(ValueError, match="unknown sampling strategy"):
        make_sampler("annealing", small_space)


def test_maximize_flips_the_search_direction():
    space = bowl_space(na=18, nb=20, modes=5)
    sampler = SurrogateSampler(
        space, seed=1, objective="cost", maximize=True, warmup=12,
        explore=0.25,
    )
    seen = _drain(sampler, _cost, batch=12, budget=96)
    worst = max(_cost(p)["cost"] for p in seen)
    # The global maximum of the bowl on this grid is at the far corner
    # (mode does not enter _cost, so any mode there is a true maximum).
    true_worst = max(_cost(p)["cost"] for p in space.expand())
    assert worst == true_worst


def test_observations_with_unknown_points_are_tolerated(small_space):
    sampler = SurrogateSampler(small_space, seed=0, objective="cost")
    foreign = DesignPoint({"a": 999, "b": 999, "mode": "zzz", "runs": 1})
    sampler.observe([Observation(point=foreign, metrics={"cost": 1.0})])
    assert len(sampler.propose(4)) == 4
