"""The subsystem's acceptance bar, from ISSUE 3.

Tier 1 proves the claim's *mechanics* on a free synthetic experiment
over a >= 5000-point space: the surrogate strategy finds the true best
point while observing <= 15% of the space, bit-reproducibly under a
fixed seed.  Tier 2 proves it on the real thing — a 5000-point barrier
design space, verified against an exhaustive campaign sharing the same
store.
"""

import math

import pytest

from repro.explore.adaptive import AdaptivePlan, run_adaptive
from repro.explore.campaign import run_campaign
from repro.explore.experiments import register_experiment
from repro.explore.space import DesignSpace

# ----------------------------------------------------------- tier 1 (free)

_MODES = {"m0": 1.5, "m1": 0.0, "m2": 2.5, "m3": 0.75}


@register_experiment(
    "test-rugged-bowl",
    "bowl + deterministic measurement ripple over a, b, mode, rep "
    "(test only)",
)
def _rugged(point):
    base = (
        (point["a"] - 13) ** 2
        + 0.5 * (point["b"] - 4) ** 2
        + _MODES[point["mode"]]
    )
    # Deterministic stand-in for per-run measurement noise: small enough
    # not to reorder the basin, large enough that the *exact* optimum
    # requires probing the rep axis rather than ignoring it.
    ripple = 0.05 * math.sin(
        3.0 * point["a"] + 5.0 * point["b"] + 2.7 * point["rep"]
    )
    return {"cost": float(base + ripple)}


def _reference_space() -> DesignSpace:
    return DesignSpace.from_dict({
        "axes": {
            "a": list(range(20)),
            "b": list(range(25)),
            "mode": list(_MODES),
            "rep": [0, 1, 2],
        },
    })


def test_surrogate_finds_true_best_of_6000_points_within_15_percent():
    space = _reference_space()
    assert len(space) == 6000 >= 5000
    budget = 780  # 13% of the space, within the <= 15% bar
    plan = AdaptivePlan(
        budget=budget, strategy="surrogate", objective="cost",
        batch=26, seed=11,
    )
    outcome = run_adaptive("accept-syn", space, "test-rugged-bowl", plan)
    assert outcome.stats.proposed <= 0.15 * len(space)

    # Ground truth by direct evaluation (no campaign cost: pure python).
    true_best = min(
        (_rugged(p)["cost"] for p in space.expand())
    )
    assert outcome.best().value("cost") == pytest.approx(true_best, abs=0)

    # Bit-reproducible: an independent run proposes the identical
    # sequence and lands on the identical best.
    again = run_adaptive("accept-syn-2", space, "test-rugged-bowl", plan)
    assert [r.key for r in again.results] == [
        r.key for r in outcome.results
    ]


def test_guided_search_beats_random_at_equal_budget():
    space = _reference_space()
    budget = 300  # 5%: starved enough that guidance visibly matters
    results = {}
    for strategy in ("surrogate", "random"):
        plan = AdaptivePlan(
            budget=budget, strategy=strategy, objective="cost",
            batch=25, seed=3,
        )
        outcome = run_adaptive(
            f"race-{strategy}", space, "test-rugged-bowl", plan
        )
        results[strategy] = float(outcome.best().value("cost"))
    assert results["surrogate"] < results["random"]


# ---------------------------------------------------- tier 2 (simulator)

@pytest.mark.tier2
def test_surrogate_finds_true_best_barrier_config_within_15_percent(
    tmp_path,
):
    """The reference barrier space: 5 patterns x 8 process counts x 25
    machine seeds x 5 run depths = 5000 points of ``barrier-cost`` on the
    calibrated Xeon preset.  The surrogate search must find the true
    cheapest measured configuration on <= 15% of the space; the exhaustive
    campaign that verifies it shares the store, so the verification pays
    only for the points the search skipped.
    """
    space = DesignSpace.from_dict({
        "axes": {
            "pattern": [
                "linear", "tree", "dissemination", "sequential",
                "kary-dissemination",
            ],
            "nprocs": [4, 6, 8, 10, 12, 16, 20, 24],
            "seed": list(range(2000, 2025)),
            "runs": [2, 3, 4, 5, 6],
        },
        "constants": {"preset": "xeon-8x2x4", "comm_samples": 3},
    })
    assert len(space) == 5000

    budget = 700  # 14%
    plan = AdaptivePlan(
        budget=budget, strategy="surrogate", objective="measured_s",
        batch=28, seed=7,
    )
    adaptive = run_adaptive(
        "accept-barrier", space, "barrier-cost", plan, store_dir=tmp_path
    )
    assert adaptive.stats.proposed <= 0.15 * len(space)

    exhaustive = run_campaign(
        "accept-barrier", space, "barrier-cost", store_dir=tmp_path,
    )
    # The store is shared: the sweep re-used every adaptive evaluation.
    assert exhaustive.stats.cached == adaptive.stats.evaluated

    assert adaptive.regret(exhaustive.results) == pytest.approx(0.0, abs=0)
    assert (
        adaptive.best().key == exhaustive.results.best("measured_s").key
    )

    # Bit-reproducible under the fixed seed: the cache-served re-run
    # proposes the identical sequence.
    again = run_adaptive(
        "accept-barrier", space, "barrier-cost", plan, store_dir=tmp_path
    )
    assert again.stats.evaluated == 0
    assert [r.key for r in again.results] == [
        r.key for r in adaptive.results
    ]
