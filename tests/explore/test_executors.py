"""Executor equivalence: serial, process, and chunked produce identical
ResultSets — same point hashes, same values, same order."""

import pytest

from repro.explore.campaign import (
    ChunkedProcessPoolExecutor,
    EXECUTORS,
    SerialExecutor,
    make_executor,
    run_campaign,
)
from repro.explore.suites import get_suite, run_suite


def test_chunked_is_registered_and_resolvable():
    assert "chunked" in EXECUTORS
    executor = make_executor("chunked", workers=2)
    assert isinstance(executor, ChunkedProcessPoolExecutor)
    assert executor.workers == 2


def test_chunk_splitting_covers_all_tasks_in_order():
    executor = ChunkedProcessPoolExecutor(chunk_size=3)
    chunks = executor._chunks(list(range(10)), workers=4)
    assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
    # Default sizing: a few slices per worker, never zero-size.
    auto = ChunkedProcessPoolExecutor()._chunks(list(range(100)), workers=4)
    assert [t for chunk in auto for t in chunk] == list(range(100))
    assert all(chunk for chunk in auto)
    assert len(auto) >= 4


def test_chunk_size_validation():
    with pytest.raises(ValueError, match="chunk_size"):
        ChunkedProcessPoolExecutor(chunk_size=0)


def test_chunked_map_empty_and_single_chunk(monkeypatch):
    assert ChunkedProcessPoolExecutor().map([]) == []

    # A task list fitting one chunk takes the documented in-process fast
    # path: no pool is spawned, and results still match the serial path.
    import repro.explore.campaign as campaign_mod

    def no_pool():
        raise AssertionError("single-chunk map must not create a pool")

    monkeypatch.setattr(campaign_mod, "_pool_context", no_pool)
    tasks = [
        ("barrier-cost", {
            "preset": "xeon-8x2x4", "pattern": "linear", "nprocs": 4,
            "runs": 2, "comm_samples": 3,
        }),
        ("barrier-cost", {
            "preset": "xeon-8x2x4", "pattern": "dissemination", "nprocs": 4,
            "runs": 2, "comm_samples": 3,
        }),
    ]
    out = ChunkedProcessPoolExecutor(chunk_size=8).map(tasks)
    assert out == SerialExecutor().map(tasks)
    assert all(ok for ok, _ in out)


@pytest.mark.parametrize("executor", ["process", "chunked"])
def test_executor_equivalence_on_campaign(executor):
    space = {
        "axes": {
            "preset": ["xeon-8x2x4"],
            "pattern": ["linear", "dissemination"],
            "nprocs": [4, 8],
        },
        "constants": {"runs": 2, "comm_samples": 3},
    }
    serial = run_campaign("eq-serial", space, "barrier-cost")
    other = run_campaign(
        "eq-other", space, "barrier-cost", executor=executor, workers=2
    )
    assert [r.key for r in serial.results] == [r.key for r in other.results]
    assert [r.to_dict() for r in serial.results] == [
        r.to_dict() for r in other.results
    ]


def test_executor_equivalence_on_representative_suite():
    """The satellite invariant: a real suite spec (fig-4-2) produces a
    bit-identical artifact under all three executors."""
    spec = get_suite("fig-4-2")
    artifacts = [
        run_suite(spec, store_dir=None, executor=name, workers=2).artifact()
        for name in ("serial", "process", "chunked")
    ]
    assert artifacts[0] == artifacts[1] == artifacts[2]
