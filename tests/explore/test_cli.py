"""CLI surface: spec run, ls/show round trip, registry listings."""

import json

import pytest

from repro.explore.cli import main


@pytest.fixture
def spec_path(tmp_path):
    spec = {
        "name": "cli-demo",
        "experiment": "barrier-cost",
        "space": {
            "axes": {
                "preset": ["xeon-8x2x4"],
                "pattern": ["linear", "dissemination"],
                "nprocs": [8],
            },
            "constants": {"runs": 2, "comm_samples": 3},
        },
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def test_run_then_show_round_trip(spec_path, tmp_path, capsys):
    store = str(tmp_path / "campaigns")
    assert main(["run", spec_path, "--store-dir", store]) == 0
    out = capsys.readouterr().out
    assert "2 points (2 computed, 0 served from cache" in out
    assert "dissemination" in out

    assert main(["run", spec_path, "--store-dir", store]) == 0
    out = capsys.readouterr().out
    assert "(0 computed, 2 served from cache" in out
    assert "hit rate 100%" in out

    assert main(["ls", "--store-dir", store]) == 0
    out = capsys.readouterr().out
    assert "cli-demo" in out and "2" in out

    assert main(["show", "cli-demo", "--store-dir", store,
                 "--sort", "measured_s", "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "measured_s" in out and "pattern" in out


def test_show_unknown_campaign_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["show", "nope", "--store-dir", str(tmp_path)])


def test_spec_validation(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "x"}))
    with pytest.raises(SystemExit, match="experiment"):
        main(["run", str(bad)])


def test_registry_listings(capsys):
    assert main(["presets"]) == 0
    assert "xeon-8x2x4" in capsys.readouterr().out
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "barrier-cost" in out and "stencil-predict" in out


def test_ls_empty_store(tmp_path, capsys):
    assert main(["ls", "--store-dir", str(tmp_path / "missing")]) == 0
    assert "no campaigns" in capsys.readouterr().out


def test_adapt_runs_within_budget_and_reports_best(spec_path, tmp_path,
                                                   capsys):
    store = str(tmp_path / "campaigns")
    assert main([
        "adapt", spec_path, "--budget", "1",
        "--objective", "measured_s", "--strategy", "random",
        "--store-dir", store,
    ]) == 0
    out = capsys.readouterr().out
    assert "1 of 2 points" in out
    assert "best measured_s" in out
    # The adaptive store serves a later exhaustive run of the same spec.
    assert main(["run", spec_path, "--store-dir", store]) == 0
    assert "1 computed, 1 served from cache" in capsys.readouterr().out


def test_adapt_requires_an_objective(spec_path):
    with pytest.raises(SystemExit, match="objective"):
        main(["adapt", spec_path, "--budget", "2"])


def test_adapt_rejects_unknown_strategy(spec_path):
    with pytest.raises(SystemExit, match="unknown sampling strategy"):
        main(["adapt", spec_path, "--budget", "2",
              "--objective", "measured_s", "--strategy", "genetic"])


def test_adapt_option_parsing(spec_path, tmp_path):
    # fidelity=nprocs parses as a string, eta=2 as a number.
    assert main([
        "adapt", spec_path, "--budget", "2",
        "--objective", "measured_s", "--strategy", "halving",
        "--option", "fidelity=nprocs", "--option", "eta=2",
        "--store-dir", str(tmp_path / "s"),
    ]) == 0
    with pytest.raises(SystemExit, match="KEY=VALUE"):
        main(["adapt", spec_path, "--budget", "2",
              "--objective", "measured_s", "--option", "broken"])


def test_results_summary_and_csv(spec_path, tmp_path, capsys):
    store = str(tmp_path / "campaigns")
    assert main(["run", spec_path, "--store-dir", store]) == 0
    capsys.readouterr()
    csv_path = str(tmp_path / "export.csv")
    # By campaign name under --store-dir...
    assert main(["results", "cli-demo", "--store-dir", store,
                 "--csv", csv_path, "--table"]) == 0
    out = capsys.readouterr().out
    assert "2 records (0 failed)" in out
    assert "measured_s" in out
    assert "wrote 2 records" in out
    with open(csv_path) as fh:
        lines = fh.read().splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("comm_samples,")
    # ...and by direct path to the store file.
    assert main(["results", f"{store}/cli-demo.jsonl"]) == 0
    assert "2 records" in capsys.readouterr().out


def test_results_unknown_store_exits(tmp_path):
    with pytest.raises(SystemExit, match="no store file"):
        main(["results", "nope", "--store-dir", str(tmp_path)])


def test_adapt_misspelled_objective_is_a_clean_error(spec_path, tmp_path):
    with pytest.raises(SystemExit, match="no successful records carry"):
        main(["adapt", spec_path, "--budget", "1",
              "--objective", "mesured_s",  # typo
              "--store-dir", str(tmp_path / "s")])


def test_adapt_maximize_named_metric_ranks_best_first(spec_path, tmp_path,
                                                      capsys):
    assert main([
        "adapt", spec_path, "--budget", "2", "--strategy", "random",
        "--objective", "measured_s", "--maximize", "measured_s",
        "--store-dir", str(tmp_path / "s"),
    ]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    header = next(line for line in lines if "measured_s" in line.split())
    columns = header.split()
    rows = [line.split() for line in lines
            if line.split() and line.split()[0] == "3"]  # comm_samples col
    assert len(rows) == 2
    # The table's first row must carry the maximised best, not the worst.
    values = [float(row[columns.index("measured_s")]) for row in rows]
    assert values == sorted(values, reverse=True)
