"""CLI surface: spec run, ls/show round trip, registry listings."""

import json

import pytest

from repro.explore.cli import main


@pytest.fixture
def spec_path(tmp_path):
    spec = {
        "name": "cli-demo",
        "experiment": "barrier-cost",
        "space": {
            "axes": {
                "preset": ["xeon-8x2x4"],
                "pattern": ["linear", "dissemination"],
                "nprocs": [8],
            },
            "constants": {"runs": 2, "comm_samples": 3},
        },
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def test_run_then_show_round_trip(spec_path, tmp_path, capsys):
    store = str(tmp_path / "campaigns")
    assert main(["run", spec_path, "--store-dir", store]) == 0
    out = capsys.readouterr().out
    assert "2 points (2 evaluated, 0 cached" in out
    assert "dissemination" in out

    assert main(["run", spec_path, "--store-dir", store]) == 0
    out = capsys.readouterr().out
    assert "(0 evaluated, 2 cached" in out
    assert "hit rate 100%" in out

    assert main(["ls", "--store-dir", store]) == 0
    out = capsys.readouterr().out
    assert "cli-demo" in out and "2" in out

    assert main(["show", "cli-demo", "--store-dir", store,
                 "--sort", "measured_s", "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "measured_s" in out and "pattern" in out


def test_show_unknown_campaign_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["show", "nope", "--store-dir", str(tmp_path)])


def test_spec_validation(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "x"}))
    with pytest.raises(SystemExit, match="experiment"):
        main(["run", str(bad)])


def test_registry_listings(capsys):
    assert main(["presets"]) == 0
    assert "xeon-8x2x4" in capsys.readouterr().out
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "barrier-cost" in out and "stencil-predict" in out


def test_ls_empty_store(tmp_path, capsys):
    assert main(["ls", "--store-dir", str(tmp_path / "missing")]) == 0
    assert "no campaigns" in capsys.readouterr().out
