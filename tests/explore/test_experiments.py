"""Built-in experiment adapters and the thin evaluate APIs they wrap."""

import pytest

from repro.barriers import dissemination_barrier, evaluate_barrier, profile_placement
from repro.cluster.presets import make_preset_machine
from repro.explore.experiments import run_point

FAST = {"runs": 3, "comm_samples": 3}


def test_barrier_cost_adapter_matches_direct_evaluation():
    metrics = run_point("barrier-cost", {
        "preset": "xeon-8x2x4", "pattern": "dissemination", "nprocs": 8, **FAST,
    })
    machine = make_preset_machine("xeon-8x2x4")
    direct = evaluate_barrier(
        machine, dissemination_barrier(8), runs=3, comm_samples=3
    )
    assert metrics["measured_s"] == pytest.approx(direct.measured)
    assert metrics["predicted_s"] == pytest.approx(direct.predicted)
    assert metrics["total_messages"] == direct.total_messages
    assert metrics["rel_error"] == pytest.approx(direct.relative_error)


def test_barrier_cost_adapter_is_deterministic():
    point = {"preset": "xeon-8x2x4-ib", "pattern": "tree", "nprocs": 8, **FAST}
    assert run_point("barrier-cost", point) == run_point("barrier-cost", point)


def test_barrier_cost_rejects_unknown_pattern():
    with pytest.raises(KeyError, match="unknown barrier pattern"):
        run_point("barrier-cost", {
            "preset": "xeon-8x2x4", "pattern": "quantum", "nprocs": 8,
        })


def test_evaluate_barrier_reuses_supplied_profile():
    machine = make_preset_machine("xeon-8x2x4")
    placement = machine.placement(8)
    params = profile_placement(machine, placement, comm_samples=3)
    with_profile = evaluate_barrier(
        machine, dissemination_barrier(8), placement=placement,
        params=params, runs=3,
    )
    fresh = evaluate_barrier(
        machine, dissemination_barrier(8), runs=3, comm_samples=3
    )
    assert with_profile.predicted == pytest.approx(fresh.predicted)
    assert with_profile.measured == pytest.approx(fresh.measured)


def test_barrier_adapt_adapter_reports_speedup():
    metrics = run_point("barrier-adapt", {
        "preset": "xeon-8x2x4", "nprocs": 16, **FAST,
    })
    assert metrics["adapted_measured_s"] > 0
    assert metrics["default_measured_s"] > 0
    assert metrics["measured_speedup"] == pytest.approx(
        metrics["default_measured_s"] / metrics["adapted_measured_s"]
    )
    assert metrics["levels"] >= 1


def test_stencil_predict_adapter_models_overlap():
    bsp = run_point("stencil-predict", {
        "preset": "xeon-8x2x4", "n": 128, "nprocs": 4, "kind": "bsp",
        "comm_samples": 3,
    })
    mpi = run_point("stencil-predict", {
        "preset": "xeon-8x2x4", "n": 128, "nprocs": 4, "kind": "mpi",
        "comm_samples": 3,
    })
    assert bsp["model"] == "BSP" and mpi["model"] == "MPI"
    assert bsp["per_iteration_s"] > 0
    assert mpi["overlap_saving_s"] == 0.0  # fully exposed exchange
    assert bsp["per_iteration_no_overlap_s"] >= bsp["per_iteration_s"]


def test_scaled_preset_point_changes_capacity():
    # Placement packs ranks onto the fewest nodes that fit (§5.6.6), so the
    # nodes axis shows up as a capacity bound, not a placement change.
    small = run_point("barrier-cost", {
        "preset": "xeon-8x2x4", "pattern": "dissemination", "nprocs": 8,
        "nodes": 1, **FAST,
    })
    assert small["measured_s"] > 0
    with pytest.raises(ValueError, match="nprocs"):
        run_point("barrier-cost", {
            "preset": "xeon-8x2x4", "pattern": "dissemination", "nprocs": 16,
            "nodes": 1, **FAST,
        })


def test_barrier_cost_critpath_fields_are_opt_in():
    base_point = {
        "preset": "xeon-8x2x4", "pattern": "dissemination", "nprocs": 8,
        **FAST,
    }
    base = run_point("barrier-cost", base_point)
    explained = run_point("barrier-cost", {**base_point, "critpath": True})
    # Opt-in fields never perturb the existing metrics.
    for key, value in base.items():
        assert explained[key] == value
    assert explained["critpath_top_edge"]
    assert 0 < explained["critpath_top_edge_frequency"] <= 1.0
    attribution = {
        k: v for k, v in explained.items() if k.startswith("attribution_")
    }
    assert attribution
    # Category means telescope along the path, so they sum to the mean
    # of the per-replication makespans — which is exactly the measured
    # mean-worst statistic (the rng stream replays deterministically).
    assert sum(attribution.values()) == pytest.approx(
        explained["measured_s"], rel=1e-12
    )


def test_stencil_run_critpath_fields_are_opt_in():
    base_point = {
        "preset": "xeon-8x2x4", "impl": "BSP", "n": 96, "nprocs": 4,
        "runs": 2,
    }
    base = run_point("stencil-run", base_point)
    explained = run_point("stencil-run", {**base_point, "critpath": True})
    for key, value in base.items():
        assert explained[key] == value
    assert explained["critpath_top_edge"]
    assert explained["attribution_compute_s"] > 0


def test_stencil_run_critpath_rejects_mpi_family():
    with pytest.raises(ValueError, match="critpath is only supported"):
        run_point("stencil-run", {
            "preset": "xeon-8x2x4", "impl": "MPI", "n": 96, "nprocs": 4,
            "critpath": True,
        })
