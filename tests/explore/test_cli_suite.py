"""The ``suite`` CLI subcommand: listing, regeneration, claims, goldens."""

import json

import pytest

from repro.explore.cli import main
from repro.explore.experiments import EXPERIMENTS, register_experiment
from repro.explore.space import DesignSpace
from repro.explore.suites import (
    SUITES,
    Claim,
    SeriesSpec,
    SuiteSpec,
    register_suite,
)

EXPERIMENT = "cli-suite-test-cube"
SUITE = "cli-toy-suite"


def _monotone(result):
    values = result.series_values("all")
    assert values == sorted(values)


@pytest.fixture(autouse=True)
def _toy_suite():
    register_experiment(EXPERIMENT, "x -> x^3")(
        lambda point: {"y": point["x"] ** 3}
    )
    register_suite(SuiteSpec(
        name=SUITE,
        title="Toy: cubes",
        experiment=EXPERIMENT,
        space=DesignSpace.from_dict({"axes": {"x": [1, 2, 3]}}),
        columns=("x", "y"),
        series=(SeriesSpec("all", y="y", x="x"),),
        claims=(Claim("monotone", _monotone),),
    ))
    yield
    SUITES.pop(SUITE, None)
    EXPERIMENTS.pop(EXPERIMENT, None)


def test_suite_without_name_lists_registry(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert SUITE in out
    assert "fig-5-6-to-5-9" in out


def test_suite_unknown_name_exits():
    with pytest.raises(SystemExit, match="unknown suite"):
        main(["suite", "no-such-suite"])


def test_suite_run_reports_claims_and_caches(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main([
        "suite", SUITE, "--store-dir", store, "--executor", "serial",
    ]) == 0
    out = capsys.readouterr().out
    assert "Toy: cubes" in out
    assert "claims ok: monotone" in out
    assert "3 evaluated" in out

    assert main([
        "suite", SUITE, "--store-dir", store, "--executor", "serial",
    ]) == 0
    assert "3 cached (100% hit)" in capsys.readouterr().out


def test_suite_update_then_check_then_perturb(tmp_path, capsys):
    store = str(tmp_path / "store")
    goldens = str(tmp_path / "goldens")
    args = ["--store-dir", store, "--goldens-dir", goldens,
            "--executor", "serial"]

    # --check before any golden exists: actionable failure.
    assert main(["suite", SUITE, "--check", *args]) == 1
    assert "--update-goldens" in capsys.readouterr().out

    assert main(["suite", SUITE, "--update-goldens", *args]) == 0
    assert "golden updated" in capsys.readouterr().out

    assert main(["suite", SUITE, "--check", *args]) == 0
    assert "matches golden" in capsys.readouterr().out

    # Perturb the stored golden: the check must fail and name the path.
    path = f"{goldens}/{SUITE}.json"
    golden = json.loads(open(path).read())
    golden["rows"][0][1] = 999
    with open(path, "w") as fh:
        json.dump(golden, fh)
    assert main(["suite", SUITE, "--check", *args]) == 1
    assert "difference(s)" in capsys.readouterr().out


def _impossible(result):
    raise AssertionError("nope")


def test_failing_claim_sets_exit_code(tmp_path, capsys):
    register_suite(SuiteSpec(
        name="cli-failing-suite",
        title="Toy: failing",
        experiment=EXPERIMENT,
        space=DesignSpace.from_dict({"axes": {"x": [1]}}),
        claims=(Claim("impossible", _impossible),),
    ))
    try:
        assert main([
            "suite", "cli-failing-suite",
            "--store-dir", str(tmp_path / "store"), "--executor", "serial",
        ]) == 1
        assert "CLAIM FAILED" in capsys.readouterr().out
    finally:
        SUITES.pop("cli-failing-suite", None)
