"""DesignSpace expansion determinism and DesignPoint hash stability."""

import pytest

from repro.explore.space import DesignPoint, DesignSpace, ParamSpec


def test_grid_expansion_order_is_product_order():
    space = DesignSpace.grid(a=["x", "y"], b=[1, 2, 3])
    points = space.expand()
    assert [(p["a"], p["b"]) for p in points] == [
        ("x", 1), ("x", 2), ("x", 3), ("y", 1), ("y", 2), ("y", 3),
    ]


def test_expansion_is_deterministic_across_calls():
    space = DesignSpace(
        axes=(ParamSpec("p", ("a", "b")), ParamSpec("n", (8, 16))),
        points=({"p": "c", "n": 64},),
        constants={"runs": 4},
    )
    first = space.expand()
    second = space.expand()
    assert [p.key for p in first] == [p.key for p in second]
    assert len(first) == 5
    assert all(p["runs"] == 4 for p in first)


def test_explicit_points_follow_grid_and_dedupe():
    space = DesignSpace(
        axes=(ParamSpec("n", (1, 2)),),
        points=({"n": 2}, {"n": 9}),  # first duplicates a grid point
    )
    assert [p["n"] for p in space.expand()] == [1, 2, 9]


def test_constants_are_overridden_by_point_values():
    space = DesignSpace(
        axes=(ParamSpec("n", (1,)),),
        points=({"n": 2, "runs": 99},),
        constants={"runs": 4},
    )
    runs = [p["runs"] for p in space.expand()]
    assert runs == [4, 99]


def test_point_hash_is_stable_and_order_insensitive():
    a = DesignPoint({"alpha": 1, "beta": "two"})
    b = DesignPoint({"beta": "two", "alpha": 1})
    assert a.key == b.key == a.key
    # Regression pin: the hash is part of the on-disk cache format, so it
    # must never drift between sessions or platforms.
    assert a.key == "c290c459436253fc"


def test_point_hash_distinguishes_values_and_types():
    assert DesignPoint({"n": 1}).key != DesignPoint({"n": 2}).key
    assert DesignPoint({"n": 1}).key != DesignPoint({"n": "1"}).key


def test_point_normalises_tuples_and_numpy_scalars():
    np = pytest.importorskip("numpy")
    a = DesignPoint({"sizes": (1, 2), "n": np.int64(8)})
    b = DesignPoint({"sizes": [1, 2], "n": 8})
    assert a.key == b.key
    assert a["n"] == 8


def test_rejects_non_jsonable_values():
    with pytest.raises(TypeError):
        DesignPoint({"bad": object()})
    with pytest.raises(TypeError):
        ParamSpec("bad", (object(),))


def test_axis_validation():
    with pytest.raises(ValueError):
        ParamSpec("n", ())
    with pytest.raises(ValueError):
        ParamSpec("n", (1, 1))
    with pytest.raises(ValueError):
        DesignSpace(axes=(ParamSpec("n", (1,)), ParamSpec("n", (2,))))
    with pytest.raises(ValueError):
        DesignSpace()


def test_spec_round_trip():
    spec = {
        "axes": {"preset": ["xeon-8x2x4"], "nprocs": [8, 16]},
        "points": [{"preset": "athlon-x2", "nprocs": 2}],
        "constants": {"runs": 4},
    }
    space = DesignSpace.from_dict(spec)
    assert space.to_dict() == spec
    assert len(space) == 3


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError):
        DesignSpace.from_dict({"axes": {"n": [1]}, "bogus": 1})


def test_axis_lookup():
    space = DesignSpace.grid(pattern=["a", "b"], nprocs=[8, 16])
    assert space.axis_names() == ["pattern", "nprocs"]
    assert space.axis("nprocs").values == (8, 16)
    with pytest.raises(KeyError, match="no axis"):
        space.axis("preset")


def test_contains_by_content_hash():
    space = DesignSpace.from_dict({
        "axes": {"n": [1, 2]}, "constants": {"runs": 4},
    })
    assert {"n": 1, "runs": 4} in space
    assert {"runs": 4, "n": 1} in space  # order-insensitive
    assert {"n": 3, "runs": 4} not in space
    assert {"n": 1} not in space  # constants are part of the point


def test_restrict_preserves_order_constants_and_hashes():
    space = DesignSpace.from_dict({
        "axes": {"pattern": ["a", "b", "c"], "nprocs": [8, 16, 32]},
        "constants": {"runs": 4},
    })
    sub = space.restrict(pattern=["c", "a"], nprocs=[16])
    # Axis order and parent value order survive (not the argument order).
    assert sub.axis("pattern").values == ("a", "c")
    assert len(sub) == 2
    parent_keys = {p.key for p in space.expand()}
    assert all(p.key in parent_keys for p in sub.expand())
    # Expansion is a subsequence of the parent expansion.
    sub_keys = [p.key for p in sub.expand()]
    parent_seq = [p.key for p in space.expand() if p.key in set(sub_keys)]
    assert sub_keys == parent_seq


def test_restrict_filters_explicit_points():
    space = DesignSpace.from_dict({
        "axes": {"n": [1, 2, 3]},
        "points": [{"n": 2, "tag": "keep"}, {"n": 3, "tag": "drop"}],
    })
    sub = space.restrict(n=[1, 2])
    assert len(sub) == 3  # n=1, n=2, and the matching explicit point
    assert any(p.get("tag") == "keep" for p in sub)
    assert not any(p.get("tag") == "drop" for p in sub)


def test_restrict_validation():
    space = DesignSpace.grid(n=[1, 2])
    with pytest.raises(KeyError, match="unknown axes"):
        space.restrict(m=[1])
    with pytest.raises(ValueError, match="empties"):
        space.restrict(n=[99])
