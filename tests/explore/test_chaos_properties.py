"""Property-based chaos: random seeded fault plans never change results.

Hypothesis draws a fault plan (kind mix, seed, rate) and an executor,
runs the campaign under injection, and asserts the final metrics are
bit-identical to the fault-free baseline.  The drawn plans always keep
each point's firing budget (``times``) below the policy's
``max_attempts``, which is the documented convergence condition: every
failed attempt consumes one firing, so the budget runs dry before the
attempts do.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.explore.campaign import run_campaign
from repro.explore.experiments import register_experiment
from repro.explore.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    activate,
    deactivate,
)
from repro.explore.space import DesignSpace


@register_experiment("chaos-prop-square", "square (chaos property tests)")
def _square(point):
    return {"square": point["n"] ** 2, "cube": point["n"] ** 3}


SPACE = DesignSpace.from_dict({"axes": {"n": [1, 2, 3, 4, 5]}})

#: max_attempts=3 with every drawn ``times`` <= 2 guarantees convergence.
POLICY = RetryPolicy(
    max_attempts=3, backoff_base_s=0.0, point_timeout_s=30.0
)


@pytest.fixture(scope="module")
def baseline_metrics():
    deactivate()
    outcome = run_campaign("chaos-prop", SPACE, "chaos-prop-square")
    return [r.metrics for r in outcome.results.records]


fault_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from(["exception", "hang", "kill"]),
    rate=st.floats(min_value=0.1, max_value=1.0),
    times=st.integers(min_value=1, max_value=2),
    # Short hangs stay under the generous point timeout; the dedicated
    # chaos tests cover hang-past-timeout.
    hang_s=st.just(0.02),
)

fault_plans = st.builds(
    FaultPlan,
    # Convergence needs each point's TOTAL firing budget across every
    # matching spec to stay below max_attempts (3): budgets add up.
    faults=st.lists(fault_specs, min_size=1, max_size=2)
    .filter(lambda fs: sum(f.times for f in fs) <= 2)
    .map(tuple),
    seed=st.integers(min_value=0, max_value=2**16),
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    plan=fault_plans,
    executor=st.sampled_from(["serial", "process", "chunked"]),
)
def test_random_fault_plans_converge_bit_identically(
    plan, executor, baseline_metrics
):
    activate(plan)
    try:
        outcome = run_campaign(
            "chaos-prop", SPACE, "chaos-prop-square",
            executor=executor, workers=2, policy=POLICY,
        )
    finally:
        deactivate()
    assert outcome.stats.failed == 0
    assert [r.metrics for r in outcome.results.records] == baseline_metrics
