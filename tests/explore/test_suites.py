"""Suite layer: specs, series, artifacts, claims, caching, registry."""

import pytest

from repro.explore.experiments import EXPERIMENTS, register_experiment
from repro.explore.golden import ARTIFACT_FORMAT_VERSION
from repro.explore.space import DesignSpace
from repro.explore.suites import (
    SUITES,
    Claim,
    ClaimFailure,
    SeriesSpec,
    SuiteSpec,
    get_suite,
    register_suite,
    run_suite,
    suite_names,
)

EXPERIMENT = "suite-test-square"


@pytest.fixture(autouse=True)
def _toy_experiment():
    register_experiment(EXPERIMENT, "x, tag -> x^2")(
        lambda point: {
            "y": point["x"] ** 2,
            "parity": "even" if point["x"] % 2 == 0 else "odd",
        }
    )
    yield
    EXPERIMENTS.pop(EXPERIMENT, None)


def _toy_spec(claims=(), columns=(), name="toy-suite"):
    return SuiteSpec(
        name=name,
        title="Toy: squares",
        experiment=EXPERIMENT,
        space=DesignSpace.from_dict({
            "axes": {"x": [1, 2, 3, 4]},
            "constants": {"tag": "t"},
        }),
        columns=tuple(columns),
        series=(
            SeriesSpec("all", y="y", x="x"),
            SeriesSpec("even", y="y", x="x", where={"parity": "even"}),
        ),
        claims=tuple(claims),
    )


def test_run_suite_series_and_artifact():
    result = run_suite(_toy_spec(), store_dir=None)
    assert result.series("all") == ([1, 2, 3, 4], [1, 4, 9, 16])
    assert result.series("even") == ([2, 4], [4, 16])
    with pytest.raises(KeyError, match="no series"):
        result.series("missing")

    artifact = result.artifact()
    assert artifact["format_version"] == ARTIFACT_FORMAT_VERSION
    assert artifact["suite"] == "toy-suite"
    assert artifact["experiment"] == EXPERIMENT
    assert artifact["points"] == 4
    # Default columns: point names then metric names (key-sorted, the
    # canonical JSON order the cache round-trip settles on).
    assert artifact["columns"] == ["tag", "x", "parity", "y"]
    assert artifact["rows"][0] == ["t", 1, "odd", 1]
    assert artifact["series"]["even"]["x"] == [2, 4]
    assert artifact["series"]["even"]["y_name"] == "y"


def test_explicit_columns_resolve_metrics_then_point():
    result = run_suite(_toy_spec(columns=("x", "y")), store_dir=None)
    assert result.artifact()["columns"] == ["x", "y"]
    assert result.artifact()["rows"] == [[1, 1], [2, 4], [3, 9], [4, 16]]


def test_claims_pass_and_fail():
    good = Claim("monotone", lambda r: None)

    def bad_check(r):
        assert False, "shape violated"

    bad = Claim("bad-shape", bad_check)
    assert run_suite(
        _toy_spec(claims=(good,)), store_dir=None
    ).check_claims() == ["monotone"]

    result = run_suite(_toy_spec(claims=(good, bad)), store_dir=None)
    with pytest.raises(ClaimFailure, match="'bad-shape' failed: shape"):
        result.check_claims()
    # ClaimFailure is an AssertionError, so pytest wrappers report it.
    assert issubclass(ClaimFailure, AssertionError)


def test_run_suite_check_claims_flag():
    def never(result):
        raise AssertionError()

    bad = Claim("never", never)
    with pytest.raises(ClaimFailure):
        run_suite(_toy_spec(claims=(bad,)), store_dir=None, check_claims=True)


def test_rerun_is_pure_cache_read(tmp_path):
    spec = _toy_spec()
    first = run_suite(spec, store_dir=tmp_path)
    again = run_suite(spec, store_dir=tmp_path)
    assert first.stats.evaluated == 4 and first.stats.cached == 0
    assert again.stats.cached == 4 and again.stats.evaluated == 0
    assert again.artifact() == first.artifact()


def test_spec_validation():
    with pytest.raises(ValueError, match="repeats series names"):
        SuiteSpec(
            name="dup", title="", experiment=EXPERIMENT,
            space=DesignSpace.from_dict({"axes": {"x": [1]}}),
            series=(SeriesSpec("s", y="y", x="x"),
                    SeriesSpec("s", y="z", x="x")),
        )
    with pytest.raises(ValueError, match="repeats claim names"):
        SuiteSpec(
            name="dup", title="", experiment=EXPERIMENT,
            space=DesignSpace.from_dict({"axes": {"x": [1]}}),
            claims=(Claim("c", lambda r: None), Claim("c", lambda r: None)),
        )


def test_registry_register_and_lookup():
    spec = _toy_spec(name="toy-registry-entry")
    register_suite(spec)
    try:
        assert get_suite("toy-registry-entry") is spec
        assert "toy-registry-entry" in suite_names()
    finally:
        SUITES.pop("toy-registry-entry", None)
    with pytest.raises(KeyError, match="unknown suite"):
        get_suite("no-such-suite")


def test_catalogue_suites_are_well_formed():
    """Every registered thesis suite names a real experiment, expands to a
    non-empty space, and declares resolvable series/claims."""
    names = suite_names()
    assert {"fig-4-2", "fig-5-6-to-5-9", "table-7-1"} <= set(names)
    for name in names:
        spec = get_suite(name)
        assert spec.experiment in EXPERIMENTS, name
        assert len(spec.space) > 0, name
        assert spec.claims, f"{name} must claim something"
        assert spec.title


def test_render_includes_title_and_stats():
    result = run_suite(_toy_spec(), store_dir=None)
    rendered = result.render()
    assert "Toy: squares" in rendered
    assert "4 points" in rendered
