"""Result-cache round-trips, durability, and key stability."""

import json
import os

from repro.explore.cache import ResultCache, record_key


def test_record_key_is_stable_and_content_addressed():
    a = record_key("barrier-cost", {"nprocs": 8, "preset": "xeon-8x2x4"})
    b = record_key("barrier-cost", {"preset": "xeon-8x2x4", "nprocs": 8})
    assert a == b
    assert record_key("other-exp", {"nprocs": 8, "preset": "xeon-8x2x4"}) != a
    assert record_key("barrier-cost", {"nprocs": 16, "preset": "xeon-8x2x4"}) != a


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "c.jsonl")
    record = {"metrics": {"cost": 1.25e-5, "stages": 3}, "point": {"n": 8}}
    assert cache.get("k1") is None
    cache.put("k1", record)
    assert "k1" in cache
    assert cache.get("k1") == record
    assert len(cache) == 1


def test_cache_survives_reload(tmp_path):
    path = tmp_path / "c.jsonl"
    first = ResultCache(path)
    first.put("a", {"v": 1})
    first.put("b", {"v": 0.1 + 0.2})  # float round-trip must be exact
    reloaded = ResultCache(path)
    assert len(reloaded) == 2
    assert reloaded.get("a") == {"v": 1}
    assert reloaded.get("b") == {"v": 0.1 + 0.2}


def test_later_puts_override_and_torn_tail_is_ignored(tmp_path):
    path = tmp_path / "c.jsonl"
    cache = ResultCache(path)
    cache.put("a", {"v": 1})
    cache.put("a", {"v": 2})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"key": "torn", "rec')  # interrupted write
    reloaded = ResultCache(path)
    assert reloaded.get("a") == {"v": 2}
    assert "torn" not in reloaded


def test_clear_removes_file(tmp_path):
    path = tmp_path / "c.jsonl"
    cache = ResultCache(path)
    cache.put("a", {"v": 1})
    cache.clear()
    assert len(cache) == 0
    assert not os.path.exists(path)


def test_file_is_line_oriented_json(tmp_path):
    path = tmp_path / "c.jsonl"
    cache = ResultCache(path)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert [entry["key"] for entry in lines] == ["a", "b"]


def test_durable_cache_round_trips(tmp_path):
    """The fsync path writes the same bytes as the default path."""
    fast = ResultCache(tmp_path / "fast.jsonl")
    durable = ResultCache(tmp_path / "durable.jsonl", durable=True)
    record = {"metrics": {"cost": 0.1 + 0.2}}
    fast.put("k", record)
    durable.put("k", record)
    assert (
        (tmp_path / "fast.jsonl").read_bytes()
        == (tmp_path / "durable.jsonl").read_bytes()
    )


def _append_worker(path, worker_id, count):
    cache = ResultCache(path)
    payload = {"blob": "x" * 512, "worker": worker_id}
    for i in range(count):
        cache.put(f"w{worker_id}-{i}", payload)


def test_concurrent_appends_never_tear_records(tmp_path):
    """Four processes hammering one store file: every line must parse —
    O_APPEND single-write appends cannot interleave mid-record, which is
    what lets parallel campaigns share a store without a lock."""
    import multiprocessing

    path = str(tmp_path / "shared.jsonl")
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    workers = [
        ctx.Process(target=_append_worker, args=(path, w, 40))
        for w in range(4)
    ]
    for p in workers:
        p.start()
    for p in workers:
        p.join()
        assert p.exitcode == 0
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    assert len(lines) == 160
    keys = set()
    for line in lines:  # strict: no torn or interleaved bytes anywhere
        entry = json.loads(line)
        keys.add(entry["key"])
        assert entry["record"]["blob"] == "x" * 512
    assert len(keys) == 160
    assert len(ResultCache(path)) == 160
