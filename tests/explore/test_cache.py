"""Result-cache round-trips, durability, and key stability."""

import json
import os

from repro.explore.cache import ResultCache, record_key


def test_record_key_is_stable_and_content_addressed():
    a = record_key("barrier-cost", {"nprocs": 8, "preset": "xeon-8x2x4"})
    b = record_key("barrier-cost", {"preset": "xeon-8x2x4", "nprocs": 8})
    assert a == b
    assert record_key("other-exp", {"nprocs": 8, "preset": "xeon-8x2x4"}) != a
    assert record_key("barrier-cost", {"nprocs": 16, "preset": "xeon-8x2x4"}) != a


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "c.jsonl")
    record = {"metrics": {"cost": 1.25e-5, "stages": 3}, "point": {"n": 8}}
    assert cache.get("k1") is None
    cache.put("k1", record)
    assert "k1" in cache
    assert cache.get("k1") == record
    assert len(cache) == 1


def test_cache_survives_reload(tmp_path):
    path = tmp_path / "c.jsonl"
    first = ResultCache(path)
    first.put("a", {"v": 1})
    first.put("b", {"v": 0.1 + 0.2})  # float round-trip must be exact
    reloaded = ResultCache(path)
    assert len(reloaded) == 2
    assert reloaded.get("a") == {"v": 1}
    assert reloaded.get("b") == {"v": 0.1 + 0.2}


def test_later_puts_override_and_torn_tail_is_ignored(tmp_path):
    path = tmp_path / "c.jsonl"
    cache = ResultCache(path)
    cache.put("a", {"v": 1})
    cache.put("a", {"v": 2})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"key": "torn", "rec')  # interrupted write
    reloaded = ResultCache(path)
    assert reloaded.get("a") == {"v": 2}
    assert "torn" not in reloaded


def test_clear_removes_file(tmp_path):
    path = tmp_path / "c.jsonl"
    cache = ResultCache(path)
    cache.put("a", {"v": 1})
    cache.clear()
    assert len(cache) == 0
    assert not os.path.exists(path)


def test_file_is_line_oriented_json(tmp_path):
    path = tmp_path / "c.jsonl"
    cache = ResultCache(path)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert [entry["key"] for entry in lines] == ["a", "b"]
