"""The ``explain`` subcommand, ``trace --explain``, and the graceful
failure modes of ``trace``/``stats`` on empty or torn telemetry sinks."""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.barriers.patterns import dissemination_barrier
from repro.cluster import presets
from repro.explore.cli import build_parser, main
from repro.machine.simmachine import SimMachine
from repro.simmpi.engine import simulate_stages_batch


@pytest.fixture(autouse=True)
def _telemetry_isolated(monkeypatch):
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def store_with_report(tmp_path):
    """A store directory whose sink holds one span and one critpath
    report (label ``dissemination-8``)."""
    store = tmp_path / "campaigns"
    sink = store / obs.TELEMETRY_DIRNAME
    sink.mkdir(parents=True)
    telemetry = obs.enable(str(sink))
    machine = SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=77
    )
    pattern = dissemination_barrier(8)
    truth = machine.comm_truth(machine.placement(8))
    prov = obs.EngineProvenance()
    with telemetry.span("campaign.point", attrs={"experiment": "demo"}):
        simulate_stages_batch(
            truth, pattern.stages, runs=4,
            rng=np.random.default_rng(3), provenance=prov,
        )
    obs.emit_report(obs.explain(prov, label="dissemination-8"))
    telemetry.flush()
    obs.disable()
    return str(store)


class TestExplainCommand:
    def test_renders_recorded_report(self, store_with_report, capsys):
        assert main(["explain", store_with_report]) == 0
        out = capsys.readouterr().out
        assert "dissemination-8" in out
        assert "category attribution" in out
        assert "tightest resources" in out

    def test_label_filter_hit_and_miss(self, store_with_report, capsys):
        assert main([
            "explain", store_with_report, "--label", "dissemination-8"
        ]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(["explain", store_with_report, "--label", "nope"])
        assert "recorded labels: dissemination-8" in str(exc.value)

    def test_missing_sink_is_graceful(self, tmp_path):
        store = tmp_path / "campaigns"
        store.mkdir()
        with pytest.raises(SystemExit) as exc:
            main(["explain", str(store)])
        assert "no telemetry sink" in str(exc.value)

    def test_sink_without_reports_is_graceful(self, tmp_path):
        store = tmp_path / "campaigns"
        sink = store / obs.TELEMETRY_DIRNAME
        sink.mkdir(parents=True)
        (sink / "events-1.jsonl").write_text(
            json.dumps({"type": "span", "name": "x", "ts": 0.0,
                        "dur": 1.0, "pid": 1, "tid": 0, "time": "host"})
            + "\n"
        )
        with pytest.raises(SystemExit) as exc:
            main(["explain", str(store)])
        assert "no critpath reports" in str(exc.value)


class TestAdapterEmission:
    def test_critpath_adapter_point_feeds_explain(self, tmp_path, capsys):
        """A telemetry-enabled critpath adapter run emits a report the
        ``explain`` subcommand reads back."""
        from repro.explore.experiments import run_point

        store = tmp_path / "campaigns"
        sink = store / obs.TELEMETRY_DIRNAME
        sink.mkdir(parents=True)
        telemetry = obs.enable(str(sink))
        run_point("barrier-cost", {
            "preset": "xeon-8x2x4", "pattern": "dissemination",
            "nprocs": 8, "runs": 3, "comm_samples": 3, "critpath": True,
        })
        telemetry.flush()
        obs.disable()
        assert main(["explain", str(store)]) == 0
        assert "barrier-dissemination-8" in capsys.readouterr().out


class TestTraceExplain:
    def test_chrome_export_gets_flow_lane(
        self, store_with_report, tmp_path, capsys
    ):
        out_path = str(tmp_path / "trace.json")
        assert main([
            "trace", store_with_report, "--explain", "--chrome", out_path
        ]) == 0
        assert "dissemination-8" in capsys.readouterr().out
        with open(out_path, encoding="utf-8") as fh:
            doc = json.load(fh)
        obs.validate_chrome_trace(doc)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"s", "f"} <= phases
        lanes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert "critical path (simulated)" in lanes

    def test_explain_without_reports_still_exports(
        self, tmp_path, capsys
    ):
        store = tmp_path / "campaigns"
        sink = store / obs.TELEMETRY_DIRNAME
        sink.mkdir(parents=True)
        (sink / "events-1.jsonl").write_text(
            json.dumps({"type": "span", "name": "x", "ts": 0.0,
                        "dur": 1.0, "pid": 1, "tid": 0, "time": "host"})
            + "\n"
        )
        out_path = str(tmp_path / "trace.json")
        assert main([
            "trace", str(store), "--explain", "--chrome", out_path
        ]) == 0
        assert "no critpath reports" in capsys.readouterr().out
        assert os.path.exists(out_path)


class TestGracefulSinkFailures:
    @pytest.fixture
    def torn_store(self, tmp_path):
        """Sink exists; its event streams hold only torn/empty lines."""
        store = tmp_path / "campaigns"
        sink = store / obs.TELEMETRY_DIRNAME
        sink.mkdir(parents=True)
        (sink / "events-100.jsonl").write_text("")
        (sink / "events-101.jsonl").write_text('{"type": "span", "tr\n')
        return str(store)

    def test_trace_reports_torn_sink(self, torn_store):
        with pytest.raises(SystemExit) as exc:
            main(["trace", torn_store])
        message = str(exc.value)
        assert "no readable events" in message
        assert "2 event stream(s)" in message

    def test_trace_reports_missing_streams(self, tmp_path):
        store = tmp_path / "campaigns"
        (store / obs.TELEMETRY_DIRNAME).mkdir(parents=True)
        with pytest.raises(SystemExit) as exc:
            main(["trace", str(store)])
        assert "no events-*.jsonl streams" in str(exc.value)

    def test_stats_telemetry_fails_cleanly(self, torn_store, capsys):
        assert main(["stats", torn_store, "--telemetry"]) == 1
        assert "no readable events" in capsys.readouterr().err

    def test_stats_without_telemetry_flag_unaffected(
        self, torn_store, capsys
    ):
        assert main(["stats", torn_store]) == 0
        assert "no run summaries" in capsys.readouterr().out


class TestDriftTelemetryFlag:
    def test_parser_accepts_telemetry(self):
        args = build_parser().parse_args(["drift", "fig-4-2", "--telemetry"])
        assert args.telemetry is True
        args = build_parser().parse_args(["drift", "fig-4-2"])
        assert args.telemetry is False
