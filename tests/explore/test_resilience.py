"""Resilience layer units: policy, fault plans, drivers, quarantine."""

import json
import os

import pytest

from repro.explore.campaign import (
    Campaign,
    CampaignPointError,
    ChunkedProcessPoolExecutor,
    PointFailure,
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
    run_campaign,
)
from repro.explore.experiments import register_experiment
from repro.explore.resilience import (
    ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    activate,
    append_quarantine,
    current_plan,
    deactivate,
    maybe_inject,
    quarantine_path,
    read_quarantine,
    serial_map_with_retry,
)
from repro.explore.space import DesignSpace


@register_experiment("resil-square", "square the n parameter (test only)")
def _square(point):
    if point.get("explode"):
        raise RuntimeError("requested failure")
    return {"square": point["n"] ** 2, "label": f"n={point['n']}"}


@pytest.fixture(autouse=True)
def _no_active_plan():
    deactivate()
    yield
    deactivate()


def space_of(ns, **constants):
    return DesignSpace.from_dict(
        {"axes": {"n": list(ns)}, "constants": constants}
    )


# ----------------------------------------------------------------- RetryPolicy

def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(point_timeout_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_s=-1.0)
    assert RetryPolicy().is_noop
    assert not RetryPolicy(max_attempts=2).is_noop
    assert not RetryPolicy(point_timeout_s=1.0).is_noop


def test_backoff_is_deterministic_and_exponential():
    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1, jitter_seed=3)
    first = policy.backoff_s("k1", 1)
    assert first == policy.backoff_s("k1", 1)  # pure function
    assert policy.backoff_s("k1", 2) != first  # varies with attempt
    assert policy.backoff_s("k2", 1) != first  # varies with point
    # Jitter scales the base by [0.5, 1.5); doubling holds in expectation
    # bounds per attempt.
    for attempt in (1, 2, 3):
        delay = policy.backoff_s("k1", attempt)
        base = 0.1 * 2 ** (attempt - 1)
        assert 0.5 * base <= delay < 1.5 * base


def test_backoff_respects_cap_and_seed():
    capped = RetryPolicy(
        max_attempts=9, backoff_base_s=1.0, backoff_max_s=0.25
    )
    assert capped.backoff_s("k", 8) == 0.25
    a = RetryPolicy(max_attempts=2, jitter_seed=0).backoff_s("k", 1)
    b = RetryPolicy(max_attempts=2, jitter_seed=1).backoff_s("k", 1)
    assert a != b


# ------------------------------------------------------------------ FaultPlan

def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind="nope")
    with pytest.raises(ValueError):
        FaultSpec(kind="exception", site="nope")
    with pytest.raises(ValueError):
        FaultSpec(kind="exception", rate=1.5)


def test_fault_plan_json_round_trip():
    plan = FaultPlan(
        faults=(
            FaultSpec(kind="exception", rate=0.5, times=2),
            FaultSpec(kind="torn-append", site="cache.put"),
        ),
        seed=11,
        state_dir="/tmp/x",
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    with pytest.raises(ValueError):
        FaultPlan.from_json("not json")
    with pytest.raises(ValueError):
        FaultPlan.from_json("[1, 2]")


def test_activation_exports_env_and_fills_state_dir(tmp_path):
    plan = activate(FaultPlan(faults=(FaultSpec(kind="exception"),)))
    assert plan.state_dir is not None and os.path.isdir(plan.state_dir)
    exported = FaultPlan.from_json(os.environ[ENV_VAR])
    assert exported == plan
    assert current_plan() == plan
    deactivate()
    assert ENV_VAR not in os.environ
    assert current_plan() is None


def test_env_var_is_honoured_lazily(tmp_path, monkeypatch):
    plan = FaultPlan(
        faults=(FaultSpec(kind="exception"),), state_dir=str(tmp_path)
    )
    deactivate()
    monkeypatch.setenv(ENV_VAR, plan.to_json())
    # deactivate() marked env as checked; force a re-check as a fresh
    # process (e.g. a spawned worker) would see it.
    from repro.explore import resilience

    resilience._STATE.env_checked = False
    assert current_plan() == plan


def test_firing_budget_is_shared_through_the_ledger(tmp_path):
    plan = activate(FaultPlan(
        faults=(FaultSpec(kind="exception", times=2),),
        state_dir=str(tmp_path),
    ))
    with pytest.raises(FaultInjected):
        plan.inject("evaluate", "exp", "point-a")
    with pytest.raises(FaultInjected):
        plan.inject("evaluate", "exp", "point-a")
    plan.inject("evaluate", "exp", "point-a")  # budget exhausted: no-op
    # A different point has its own budget.
    with pytest.raises(FaultInjected):
        plan.inject("evaluate", "exp", "point-b")


def test_targeting_is_seeded_and_experiment_scoped(tmp_path):
    plan = FaultPlan(
        faults=(FaultSpec(kind="exception", rate=0.5, experiment="only-*"),),
        seed=7,
        state_dir=str(tmp_path),
    )
    keys = [f"key-{i}" for i in range(64)]
    hit = [k for k in keys if plan._targets(0, plan.faults[0], k, "only-x")]
    assert 0 < len(hit) < len(keys)  # rate selects a strict subset
    again = [k for k in keys if plan._targets(0, plan.faults[0], k, "only-x")]
    assert hit == again  # same seed, same targets
    assert not plan._targets(0, plan.faults[0], keys[0], "other")


def test_maybe_inject_is_inert_without_a_plan():
    maybe_inject("evaluate", "exp", "key")  # no plan active: no-op


# ------------------------------------------------------------- serial driver

def test_serial_retry_converges_within_budget():
    attempts = {"n": 0}

    def flaky(task):
        attempts["n"] += 1
        if attempts["n"] < 3:
            return False, {"error": "boom", "error_type": "RuntimeError"}
        return True, {"v": task}

    policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0)
    out = serial_map_with_retry(flaky, ["t"], policy, keys=["k"])
    assert out == [(True, {"v": "t"})]
    assert attempts["n"] == 3


def test_serial_retry_quarantines_on_exhaustion():
    def always_fails(task):
        return False, {"error": "boom", "error_type": "RuntimeError",
                       "traceback": "tb"}

    policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
    (ok, details), = serial_map_with_retry(
        always_fails, ["t"], policy, keys=["k"]
    )
    assert not ok
    assert details["quarantined"] is True
    assert details["attempts"] == 2
    assert details["reason"] == "exception"
    assert details["error"] == "boom"
    assert details["traceback"] == "tb"
    assert details["elapsed_s"] >= 0.0


# --------------------------------------------------------- quarantine records

def test_quarantine_path_and_round_trip(tmp_path):
    store = tmp_path / "camp.jsonl"
    sidecar = quarantine_path(store)
    assert sidecar.endswith("camp.quarantine.jsonl")
    append_quarantine(sidecar, {"key": "a", "attempts": 2})
    append_quarantine(sidecar, {"key": "b", "attempts": 3})
    records = read_quarantine(sidecar)
    assert [r["key"] for r in records] == ["a", "b"]
    assert read_quarantine(tmp_path / "missing.jsonl") == []


def test_campaign_writes_quarantine_sidecar(tmp_path):
    activate(FaultPlan(faults=(FaultSpec(kind="exception", times=0),)))
    outcome = run_campaign(
        "q", space_of([1, 2]), "resil-square", store_dir=tmp_path,
        on_error="store",
        policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
    )
    assert outcome.stats.failed == 2
    assert outcome.stats.quarantined == 2
    records = read_quarantine(Campaign.quarantine_path(tmp_path, "q"))
    assert len(records) == 2
    rec = records[0]
    assert rec["experiment"] == "resil-square"
    assert rec["attempts"] == 2
    assert rec["reason"] == "exception"
    assert rec["error_type"] == "FaultInjected"
    assert "FaultInjected" in rec["traceback"]
    assert rec["point"]["n"] in (1, 2)
    # failures are never written to the result store itself
    store_text = (tmp_path / "q.jsonl").read_text() \
        if (tmp_path / "q.jsonl").exists() else ""
    assert "FaultInjected" not in store_text


def test_exhausted_points_are_retried_next_run(tmp_path):
    policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
    activate(FaultPlan(faults=(FaultSpec(kind="exception", times=4),)))
    first = run_campaign(
        "q", space_of([5]), "resil-square", store_dir=tmp_path,
        on_error="store", policy=policy,
    )
    assert first.stats.quarantined == 1
    # Two firings remain; the re-run burns them and converges.
    second = run_campaign(
        "q", space_of([5]), "resil-square", store_dir=tmp_path,
        on_error="store", policy=policy,
    )
    assert second.stats.quarantined == 1
    third = run_campaign(
        "q", space_of([5]), "resil-square", store_dir=tmp_path,
        on_error="store", policy=policy,
    )
    assert third.stats.failed == 0
    assert third.results.values("square") == [25]


# ----------------------------------------------------------- error chaining

def test_campaign_point_error_chains_the_worker_failure():
    with pytest.raises(CampaignPointError) as excinfo:
        run_campaign(
            "boom", space_of([1], explode=True), "resil-square"
        )
    cause = excinfo.value.__cause__
    assert isinstance(cause, PointFailure)
    assert cause.error_type == "RuntimeError"
    assert "requested failure" in cause.error
    assert "requested failure" in (cause.remote_traceback or "")
    assert "worker traceback" in str(cause)


# ------------------------------------------------------------ executor wiring

def test_make_executor_threads_policy_and_degrade():
    policy = RetryPolicy(max_attempts=2)
    serial = make_executor("serial", policy=policy)
    assert isinstance(serial, SerialExecutor)
    assert serial.policy is policy
    pool = make_executor("process", 2, policy=policy, degrade=True)
    assert isinstance(pool, ProcessPoolExecutor)
    assert pool.policy is policy and pool.degrade
    chunked = make_executor("chunked", 2, policy=policy, degrade=True)
    assert isinstance(chunked, ChunkedProcessPoolExecutor)
    assert chunked.policy is policy and chunked.degrade
    # a ready-made instance with its own policy passes through untouched
    own = SerialExecutor(policy=policy)
    assert make_executor(own) is own
    assert own.policy is policy


def test_noop_policy_keeps_plain_paths():
    assert not ProcessPoolExecutor(policy=RetryPolicy())._resilient
    assert ProcessPoolExecutor(policy=RetryPolicy(max_attempts=2))._resilient
    assert ProcessPoolExecutor(degrade=True)._resilient


def test_cli_reports_quarantine_and_strict_fails(tmp_path, capsys):
    from repro.explore.cli import main

    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "name": "qcli",
        "experiment": "resil-square",
        "space": {"axes": {"n": [1, 2]}},
    }))
    store = str(tmp_path / "store")
    activate(FaultPlan(faults=(FaultSpec(kind="exception", times=0),)))
    code = main([
        "run", str(spec), "--store-dir", store, "--keep-going",
        "--max-retries", "1", "--executor", "serial",
    ])
    assert code == 0
    assert "2 quarantined" in capsys.readouterr().out
    deactivate()
    code = main(["results", "qcli", "--store-dir", store, "--strict"])
    out = capsys.readouterr().out
    assert code == 1
    assert "exhausted their retry budget" in out
    assert "FaultInjected" in out
