"""Unit tests for the L1 BLAS footprint sweep (§4.2)."""

import numpy as np
import pytest

from repro.bench.blas_profile import (
    beyond_cache_sizes,
    in_cache_sizes,
    sweep_kernel,
    sweep_kernels,
)
from repro.cluster import presets
from repro.cluster.noise import QUIET
from repro.kernels import BLAS_L1_KERNELS, SAXPY, SDOT, SSCAL
from repro.machine import SimMachine

L1 = 64 * 1024  # Athlon X2 level-1 capacity


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.athlon_x2_topology(), presets.athlon_x2_params(), seed=71
    )


@pytest.fixture(scope="module")
def quiet_machine():
    return SimMachine(
        presets.athlon_x2_topology(),
        presets.athlon_x2_params(),
        noise=QUIET,
        seed=72,
    )


class TestSizeHelpers:
    def test_in_cache_sizes_respect_l1(self):
        for kernel in (SSCAL, SAXPY):
            for n in in_cache_sizes(kernel, L1):
                assert kernel.memory_use(n) <= L1

    def test_beyond_cache_exceeds_l1(self):
        sizes = beyond_cache_sizes(SAXPY, 8 * L1)
        assert max(SAXPY.memory_use(n) for n in sizes) > L1

    def test_too_small_cache_rejected(self):
        with pytest.raises(ValueError):
            in_cache_sizes(SAXPY, 32, points=16)


class TestInCacheLinearity:
    def test_fig_4_5_linear_time(self, quiet_machine):
        """In-cache: time grows linearly with memory use."""
        sweep = sweep_kernel(
            quiet_machine, 0, SAXPY, in_cache_sizes(SAXPY, L1), batch=3
        )
        mem = sweep.memory_axis()
        t = sweep.time_axis()
        fit = np.polyfit(mem, t, 1)
        residual = t - np.polyval(fit, mem)
        assert np.abs(residual).max() < 0.02 * t.max()

    def test_kernels_have_distinct_gradients(self, quiet_machine):
        """§4.2: a single 'rate' mispredicts across kernels even in-cache."""
        sizes = in_cache_sizes(SAXPY, L1)
        saxpy = sweep_kernel(quiet_machine, 0, SAXPY, sizes, batch=3)
        sdot = sweep_kernel(quiet_machine, 0, SDOT, sizes, batch=3)
        g_saxpy = saxpy.gradient_between(0, L1)
        g_sdot = sdot.gradient_between(0, L1)
        assert g_saxpy != pytest.approx(g_sdot, rel=0.05)


class TestBeyondCacheKnee:
    def test_fig_4_6_gradient_break(self, quiet_machine):
        """Past the 64K L1 boundary the seconds-per-byte gradient jumps."""
        sizes = beyond_cache_sizes(SAXPY, 8 * L1, points=32)
        sweep = sweep_kernel(quiet_machine, 0, SAXPY, sizes, batch=3)
        inside = sweep.gradient_between(0, L1)
        outside = sweep.gradient_between(2 * L1, 8 * L1)
        assert outside > 1.3 * inside

    def test_window_needs_points(self, quiet_machine):
        sweep = sweep_kernel(quiet_machine, 0, SAXPY, [64, 128], batch=3)
        with pytest.raises(ValueError):
            sweep.gradient_between(10**9, 2 * 10**9)


class TestSweepHarness:
    def test_all_eight_kernels(self, machine):
        sweeps = sweep_kernels(
            machine, 0, BLAS_L1_KERNELS, [1024, 4096], batch=5
        )
        assert len(sweeps) == 8
        for sweep in sweeps.values():
            assert len(sweep.points) == 2
            assert all(p.median_seconds > 0 for p in sweep.points)

    def test_memory_use_metric(self, machine):
        sweep = sweep_kernel(machine, 0, SSCAL, [1000], batch=3)
        assert sweep.points[0].memory_use_bytes == 1000 * 4

    def test_batch_validation(self, machine):
        with pytest.raises(ValueError):
            sweep_kernel(machine, 0, SSCAL, [10], batch=1)
