"""Unit tests for the pairwise communication benchmark (§5.6.3)."""

import numpy as np
import pytest

from repro.bench.comm_bench import benchmark_comm, benchmark_comm_for_counts
from repro.cluster import presets
from repro.cluster.noise import QUIET
from repro.cluster.topology import Relation
from repro.machine import SimMachine

FAST_SIZES = tuple(2**k for k in range(0, 17, 4))


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=51
    )


@pytest.fixture(scope="module")
def quiet_machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(),
        presets.xeon_8x2x4_params(),
        noise=QUIET,
        seed=52,
    )


class TestParameterExtraction:
    def test_quiet_gradient_recovers_truth(self, quiet_machine):
        """Without noise, the O_ij gradient equals start overhead plus the
        NIC injection cost for remote pairs."""
        placement = quiet_machine.placement(10)
        truth = quiet_machine.comm_truth(placement)
        report = benchmark_comm(quiet_machine, placement, samples=3,
                                sizes=FAST_SIZES)
        nodes = [placement.node_of(r) for r in range(10)]
        for i, j in [(0, 2), (0, 1)]:
            expected = truth.start_overhead[i, j]
            if nodes[i] != nodes[j]:
                expected += truth.nic_gap
            assert report.params.overhead[i, j] == pytest.approx(expected, rel=1e-6)

    def test_quiet_beta_recovers_truth(self, quiet_machine):
        placement = quiet_machine.placement(6)
        truth = quiet_machine.comm_truth(placement)
        report = benchmark_comm(quiet_machine, placement, samples=3,
                                sizes=FAST_SIZES)
        mask = ~np.eye(6, dtype=bool)
        np.testing.assert_allclose(
            report.params.inv_bandwidth[mask], truth.inv_bandwidth[mask], rtol=1e-6
        )

    def test_latency_intercept_includes_software_path(self, quiet_machine):
        """§5.6.3: the intercept is taken as the zero-length latency; it
        embeds the constant software overheads of the send path."""
        placement = quiet_machine.placement(4)
        truth = quiet_machine.comm_truth(placement)
        report = benchmark_comm(quiet_machine, placement, samples=3,
                                sizes=FAST_SIZES)
        i, j = 0, 1
        expected = (
            truth.invocation_overhead
            + truth.start_overhead[i, j]
            + truth.latency[i, j]
            + truth.recv_overhead
        )
        assert report.params.latency[i, j] == pytest.approx(expected, rel=1e-6)

    def test_diagonal_conventions(self, machine):
        placement = machine.placement(6)
        report = benchmark_comm(machine, placement, samples=5, sizes=FAST_SIZES)
        assert (np.diag(report.params.latency) == 0).all()
        assert (np.diag(report.params.inv_bandwidth) == 0).all()
        assert (np.diag(report.params.overhead) > 0).all()


class TestLocalityStructure:
    def test_latency_stratified_by_distance(self, machine):
        """The benchmarked matrix must reproduce the locality ordering the
        whole of Chapter 5 depends on."""
        placement = machine.placement(12)  # 2 nodes by parity
        report = benchmark_comm(machine, placement, samples=9, sizes=FAST_SIZES)
        latency = report.params.latency
        rel = placement.relation_matrix()
        remote = latency[rel == int(Relation.REMOTE)].mean()
        same_node = latency[rel == int(Relation.SAME_NODE)].mean()
        same_socket = latency[rel == int(Relation.SAME_SOCKET)].mean()
        assert same_socket < same_node < remote
        assert remote > 3 * same_node

    def test_noise_does_not_destroy_estimates(self, machine):
        """Noisy estimates stay within tens of percent of the quiet ones."""
        placement = machine.placement(8)
        noisy = benchmark_comm(machine, placement, samples=15, sizes=FAST_SIZES)
        quiet = SimMachine(
            presets.xeon_8x2x4_topology(),
            presets.xeon_8x2x4_params(),
            noise=QUIET,
            seed=1,
        )
        clean = benchmark_comm(quiet, quiet.placement(8), samples=3,
                               sizes=FAST_SIZES)
        mask = ~np.eye(8, dtype=bool)
        ratio = noisy.params.latency[mask] / clean.params.latency[mask]
        assert np.median(ratio) == pytest.approx(1.0, abs=0.25)


class TestHarness:
    def test_report_metadata(self, machine):
        placement = machine.placement(4)
        report = benchmark_comm(machine, placement, samples=5, sizes=FAST_SIZES)
        assert report.samples == 5
        assert report.sizes == FAST_SIZES
        assert report.invocation_overheads.shape == (4,)

    def test_multiple_counts(self, machine):
        reports = benchmark_comm_for_counts(
            machine, (2, 4), samples=5, sizes=FAST_SIZES
        )
        assert set(reports) == {2, 4}
        assert reports[2].params.nprocs == 2

    def test_validation(self, machine):
        placement = machine.placement(4)
        with pytest.raises(ValueError):
            benchmark_comm(machine, placement, samples=1, sizes=FAST_SIZES)
        with pytest.raises(ValueError):
            benchmark_comm(machine, placement, samples=5, sizes=(1,))

    def test_reproducible(self, machine):
        placement = machine.placement(4)
        a = benchmark_comm(machine, placement, samples=5, sizes=FAST_SIZES)
        b = benchmark_comm(machine, placement, samples=5, sizes=FAST_SIZES)
        np.testing.assert_array_equal(a.params.latency, b.params.latency)


class TestEnsemble:
    """The benchmark's replication dimension (benchmark_comm_ensemble)."""

    def test_single_run_is_benchmark_comm(self, machine):
        from repro.bench.comm_bench import benchmark_comm_ensemble

        placement = machine.placement(4)
        single = benchmark_comm(machine, placement, samples=5,
                                sizes=FAST_SIZES)
        ensemble = benchmark_comm_ensemble(
            machine, placement, samples=5, sizes=FAST_SIZES, runs=1
        )
        assert len(ensemble) == 1
        np.testing.assert_array_equal(
            single.params.latency, ensemble[0].params.latency
        )
        np.testing.assert_array_equal(
            single.params.overhead, ensemble[0].params.overhead
        )
        np.testing.assert_array_equal(
            single.params.inv_bandwidth, ensemble[0].params.inv_bandwidth
        )

    def test_members_differ_but_reproducible(self, machine):
        from repro.bench.comm_bench import benchmark_comm_ensemble

        placement = machine.placement(4)
        a = benchmark_comm_ensemble(
            machine, placement, samples=5, sizes=FAST_SIZES, runs=3
        )
        b = benchmark_comm_ensemble(
            machine, placement, samples=5, sizes=FAST_SIZES, runs=3
        )
        assert len(a) == 3
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.params.latency, rb.params.latency)
        assert a[0].params.latency.tolist() != a[1].params.latency.tolist()

    def test_members_scatter_around_truth(self, machine):
        """Every ensemble member is a valid extraction: latencies cluster
        near the configured link latency for off-node pairs."""
        from repro.bench.comm_bench import benchmark_comm_ensemble

        placement = machine.placement(6)
        truth = machine.comm_truth(placement)
        members = benchmark_comm_ensemble(
            machine, placement, samples=9, sizes=FAST_SIZES, runs=5
        )
        # The slowest off-diagonal pair has the clearest latency signal.
        masked = truth.latency.copy()
        np.fill_diagonal(masked, -1.0)
        i, j = np.unravel_index(int(masked.argmax()), masked.shape)
        estimates = np.array([m.params.latency[i, j] for m in members])
        # Intercepts absorb software-path constants; stay within a factor.
        assert np.all(estimates > 0)
        assert np.all(estimates < 50 * truth.latency[i, j])
        spread = estimates.max() - estimates.min()
        assert spread < estimates.mean()

    def test_runs_validated(self, machine):
        from repro.bench.comm_bench import benchmark_comm_ensemble

        with pytest.raises(ValueError, match="runs"):
            benchmark_comm_ensemble(
                machine, machine.placement(4), samples=5, sizes=FAST_SIZES,
                runs=0,
            )
