"""Unit tests for the kernel-rate benchmark framework (§4.1)."""

import numpy as np
import pytest

from repro.bench.kernel_bench import (
    benchmark_kernel,
    extrapolate_with_rate,
    validate_profile,
)
from repro.cluster import presets
from repro.cluster.noise import QUIET
from repro.kernels import DAXPY, STENCIL5
from repro.machine import SimMachine

FAST_COUNTS = tuple(2**k for k in range(1, 9))


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=61
    )


@pytest.fixture(scope="module")
def quiet_machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(),
        presets.xeon_8x2x4_params(),
        noise=QUIET,
        seed=62,
    )


class TestProfileExtraction:
    def test_quiet_gradient_matches_truth(self, quiet_machine):
        profile = benchmark_kernel(
            quiet_machine, 0, DAXPY, 1024,
            iteration_counts=FAST_COUNTS, samples=5,
        )
        truth = quiet_machine.kernel_time_clean(0, DAXPY, 1024, reps=1)
        assert profile.seconds_per_application == pytest.approx(truth, rel=1e-9)
        assert profile.line.r_squared == pytest.approx(1.0)

    def test_rate_near_calibration(self, machine):
        """In-cache DAXPY on the Xeon preset sustains ~1 Gflop/s (Tab 3.1)."""
        profile = benchmark_kernel(
            machine, 0, DAXPY, 1024, iteration_counts=FAST_COUNTS, samples=12
        )
        assert 0.6e9 < profile.rate_flops < 1.6e9

    def test_kernel_rates_differ(self, machine):
        """§4.1's central observation: per-kernel rates are not exchangeable."""
        daxpy = benchmark_kernel(
            machine, 0, DAXPY, 1024, iteration_counts=FAST_COUNTS, samples=12
        )
        stencil = benchmark_kernel(
            machine, 0, STENCIL5, 1024, iteration_counts=FAST_COUNTS, samples=12
        )
        assert daxpy.seconds_per_element != pytest.approx(
            stencil.seconds_per_element, rel=0.05
        )

    def test_reruns_counted(self, machine):
        profile = benchmark_kernel(
            machine, 0, DAXPY, 256, iteration_counts=FAST_COUNTS, samples=12
        )
        assert profile.total_reruns >= 0

    def test_validation_errors(self, machine):
        with pytest.raises(ValueError):
            benchmark_kernel(machine, 0, DAXPY, 0)
        with pytest.raises(ValueError):
            benchmark_kernel(machine, 0, DAXPY, 64, iteration_counts=(2,))


class TestExtrapolation:
    def test_bounded_relative_error(self, machine):
        """Fig. 4.4: kernel-specific extrapolation stays within bounded
        relative error across orders of magnitude."""
        profile = benchmark_kernel(
            machine, 0, DAXPY, 1024, iteration_counts=FAST_COUNTS, samples=12
        )
        points = validate_profile(
            machine, 0, DAXPY, profile,
            application_counts=(16, 256, 4096, 65536),
        )
        for point in points:
            assert point.relative_error < 0.6

    def test_cross_kernel_extrapolation_worse(self, machine):
        """Fig. 4.3: predicting the stencil from the DAXPY Mflop/s rate is
        worse than its own profile."""
        daxpy = benchmark_kernel(
            machine, 0, DAXPY, 1024, iteration_counts=FAST_COUNTS, samples=12
        )
        stencil = benchmark_kernel(
            machine, 0, STENCIL5, 1024, iteration_counts=FAST_COUNTS, samples=12
        )
        apps = 4096
        truth = machine.kernel_time_clean(0, STENCIL5, 1024, reps=apps)
        own = float(stencil.predict_seconds(apps))
        naive = float(
            extrapolate_with_rate(daxpy.rate_flops, STENCIL5, 1024, apps)
        )
        assert abs(own - truth) < abs(naive - truth)

    def test_extrapolate_with_rate_validation(self):
        with pytest.raises(ValueError):
            extrapolate_with_rate(0.0, DAXPY, 10, 1)


class TestProfileHelpers:
    def test_predict_seconds_linear(self, quiet_machine):
        profile = benchmark_kernel(
            quiet_machine, 0, DAXPY, 128, iteration_counts=FAST_COUNTS, samples=5
        )
        one = float(profile.predict_seconds(1))
        ten = float(profile.predict_seconds(10))
        assert ten - one == pytest.approx(
            9 * profile.seconds_per_application, rel=1e-9
        )

    def test_seconds_per_byte(self, quiet_machine):
        profile = benchmark_kernel(
            quiet_machine, 0, DAXPY, 128, iteration_counts=FAST_COUNTS, samples=5
        )
        expected = profile.seconds_per_application / DAXPY.memory_use(128)
        assert profile.seconds_per_byte(DAXPY) == pytest.approx(expected)

    def test_zero_flop_rate(self, quiet_machine):
        from repro.kernels import SCOPY

        profile = benchmark_kernel(
            quiet_machine, 0, SCOPY, 128, iteration_counts=FAST_COUNTS, samples=5
        )
        assert profile.rate_flops == 0.0
