"""Tests for benchmark stability validation (§5.6.4)."""

import pytest

from repro.bench.validation import benchmark_stability
from repro.cluster import presets
from repro.cluster.noise import NoiseModel, QUIET
from repro.machine import SimMachine

FAST_SIZES = tuple(2**k for k in range(0, 17, 4))


class TestBenchmarkStability:
    def test_quiet_machine_perfectly_stable(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(),
            noise=QUIET, seed=1,
        )
        report = benchmark_stability(
            machine, machine.placement(6), repeats=3, samples=3,
            sizes=FAST_SIZES,
        )
        assert report.worst_latency_spread < 1e-9
        assert report.acceptable(1e-6)

    def test_default_noise_meets_criterion(self):
        """§5.6.4: variability an order of magnitude under the measurement."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=2
        )
        report = benchmark_stability(
            machine, machine.placement(8), repeats=4, samples=15,
            sizes=FAST_SIZES,
        )
        assert report.acceptable(0.15)

    def test_wild_noise_fails_criterion(self):
        """A platform too noisy for the protocol must be flagged — the
        thesis's signal to recalibrate the benchmark."""
        machine = SimMachine(
            presets.xeon_8x2x4_topology(),
            presets.xeon_8x2x4_params(),
            noise=NoiseModel(jitter_sigma=0.45, outlier_prob=0.2,
                             outlier_scale=30.0),
            seed=3,
        )
        report = benchmark_stability(
            machine, machine.placement(6), repeats=4, samples=5,
            sizes=FAST_SIZES,
        )
        assert not report.acceptable(0.05)

    def test_repeats_validated(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=4
        )
        with pytest.raises(ValueError):
            benchmark_stability(machine, machine.placement(4), repeats=1)

    def test_spread_shapes(self):
        machine = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=5
        )
        p = 5
        report = benchmark_stability(
            machine, machine.placement(p), repeats=2, samples=5,
            sizes=FAST_SIZES,
        )
        assert report.latency_rel_spread.shape == (p * p - p,)
        assert report.overhead_rel_spread.shape == (p * p - p,)
