"""Unit and property tests for benchmark statistics (§4.1, §5.6.3)."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.stats import (
    batched_regression,
    linear_regression,
    mean_confidence_interval,
    median,
    outlier_mask,
    resample_outliers,
    student_t_critical,
)


class TestStudentTCritical:
    @pytest.mark.parametrize("confidence", [0.90, 0.95, 0.99])
    @pytest.mark.parametrize("dof", [1, 5, 29, 100])
    def test_matches_scipy(self, confidence, dof):
        """The thesis's trapezoid integration must agree with the reference
        implementation to the stated 1e-4-interval accuracy."""
        ours = student_t_critical(confidence, dof)
        reference = scipy.stats.t.ppf(0.5 + confidence / 2.0, dof)
        assert ours == pytest.approx(reference, abs=5e-3)

    def test_monotone_in_confidence(self):
        assert student_t_critical(0.99, 10) > student_t_critical(0.90, 10)

    def test_rejects_bad_dof(self):
        with pytest.raises(ValueError):
            student_t_critical(0.95, 0)


class TestConfidenceInterval:
    def test_contains_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, size=30)
        lo, hi = mean_confidence_interval(samples, 0.95)
        assert lo < samples.mean() < hi

    def test_narrows_with_samples(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, 10)
        large = rng.normal(0, 1, 1000)
        lo_s, hi_s = mean_confidence_interval(small)
        lo_l, hi_l = mean_confidence_interval(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])


class TestOutlierMask:
    def test_flags_obvious_spike(self):
        samples = np.concatenate([np.full(29, 1.0) + np.linspace(0, 0.01, 29), [50.0]])
        mask = outlier_mask(samples)
        assert mask[-1]
        assert mask[:-1].sum() == 0

    def test_clean_batch_flags_few(self):
        """§4.1: a 95% filter on 30 normal samples expects ~1.5 flags."""
        rng = np.random.default_rng(2)
        flagged = [
            outlier_mask(rng.normal(1.0, 0.01, 30)).sum() for _ in range(20)
        ]
        assert np.mean(flagged) < 4.0

    def test_constant_batch_unflagged(self):
        assert outlier_mask(np.full(30, 1.0)).sum() == 0

    def test_small_batches_never_flag(self):
        assert outlier_mask(np.array([1.0, 100.0])).sum() == 0


class TestResampleOutliers:
    def test_replaces_spikes(self):
        rng = np.random.default_rng(3)
        samples = np.concatenate([rng.normal(1.0, 0.02, 29), [10.0]])
        clean, reruns = resample_outliers(
            samples, lambda k: rng.normal(1.0, 0.02, k)
        )
        assert reruns >= 1
        assert clean.max() < 2.0

    def test_constant_batch_no_reruns(self):
        samples = np.full(30, 1.0)
        _, reruns = resample_outliers(samples, lambda k: np.full(k, 1.0))
        assert reruns == 0

    def test_converges_on_normal_noise(self):
        rng = np.random.default_rng(4)
        clean, reruns = resample_outliers(
            rng.normal(1.0, 0.01, 30), lambda k: rng.normal(1.0, 0.01, k)
        )
        assert clean.shape == (30,)
        assert reruns < 60  # bounded re-sampling, not a runaway loop

    def test_nonconvergence_raises(self):
        samples = np.concatenate([np.full(29, 1.0) + np.linspace(0, 0.01, 29), [50.0]])
        with pytest.raises(RuntimeError, match="did not converge"):
            resample_outliers(samples, lambda k: np.full(k, 99.0), max_rounds=3)


class TestLinearRegression:
    def test_exact_line_recovered(self):
        x = np.arange(10, dtype=float)
        y = 3.0 * x + 2.0
        line = linear_regression(x, y)
        assert line.gradient == pytest.approx(3.0)
        assert line.intercept == pytest.approx(2.0)
        assert line.r_squared == pytest.approx(1.0)

    def test_predict(self):
        line = linear_regression([0.0, 1.0], [1.0, 3.0])
        np.testing.assert_allclose(line.predict([2.0]), [5.0])

    def test_identical_x_rejected(self):
        with pytest.raises(ValueError):
            linear_regression([1.0, 1.0], [0.0, 1.0])


class TestBatchedRegression:
    def test_matches_single(self):
        rng = np.random.default_rng(5)
        x = np.linspace(0, 1, 8)
        ys = rng.normal(size=(6, 8))
        grads, intercepts = batched_regression(x, ys)
        for row in range(6):
            line = linear_regression(x, ys[row])
            assert grads[row] == pytest.approx(line.gradient)
            assert intercepts[row] == pytest.approx(line.intercept)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            batched_regression(np.arange(3.0), np.zeros((2, 4)))


@given(
    gradient=st.floats(-10, 10),
    intercept=st.floats(-10, 10),
    n=st.integers(3, 40),
)
@settings(max_examples=60, deadline=None)
def test_regression_recovers_noiseless_lines(gradient, intercept, n):
    x = np.linspace(0.0, 5.0, n)
    y = gradient * x + intercept
    line = linear_regression(x, y)
    assert line.gradient == pytest.approx(gradient, abs=1e-9)
    assert line.intercept == pytest.approx(intercept, abs=1e-8)


class TestMedian:
    def test_simple(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])
