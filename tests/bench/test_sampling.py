"""Unit tests for the outlier-rerun sampling discipline (§4.1)."""

import numpy as np
import pytest

from repro.bench.sampling import FilteredSample, collect_filtered


class TestCollectFiltered:
    def test_clean_source_untouched(self):
        rng = np.random.default_rng(0)
        batch = collect_filtered(lambda k: rng.normal(1.0, 0.01, k), count=30)
        assert batch.values.shape == (30,)
        assert batch.mean == pytest.approx(1.0, abs=0.02)
        assert batch.confidence == 0.95

    def test_spiky_source_cleaned(self):
        """A source with occasional large outliers converges to a clean
        batch after re-runs — the thesis's calibration loop."""
        rng = np.random.default_rng(1)

        def draw(k):
            base = rng.normal(1.0, 0.01, k)
            spikes = rng.random(k) < 0.08
            return base + spikes * 10.0

        batch = collect_filtered(draw, count=30)
        assert batch.values.max() < 2.0
        assert batch.reruns >= 1

    def test_statistics_helpers(self):
        rng = np.random.default_rng(2)
        batch = collect_filtered(lambda k: rng.normal(5.0, 0.1, k), count=30)
        assert isinstance(batch, FilteredSample)
        assert batch.median == pytest.approx(5.0, abs=0.1)
        assert batch.std < 0.2

    def test_count_validated(self):
        with pytest.raises(ValueError):
            collect_filtered(lambda k: np.zeros(k), count=2)

    def test_draw_shape_validated(self):
        with pytest.raises(ValueError, match="k samples"):
            collect_filtered(lambda k: np.zeros(k + 1), count=10)

    def test_wide_bimodal_is_inherent_variability(self):
        """A 50/50 bimodal source has so much spread that the t-interval
        covers both modes: the filter accepts it as inherent variability
        rather than flagging outliers forever (§4.1's distinction between
        extreme observations and a genuinely variable experiment)."""
        rng = np.random.default_rng(3)

        def bimodal(k):
            return np.where(rng.random(k) < 0.5, 1.0, 100.0) + rng.normal(
                0, 0.01, k
            )

        batch = collect_filtered(bimodal, count=30, max_rounds=5)
        assert batch.std > 10.0

    def test_persistent_replacement_spike_raises(self):
        """If re-draws keep landing far outside the batch, the loop must
        give up with the thesis's recalibration signal."""
        samples = np.concatenate(
            [np.full(29, 1.0) + np.linspace(0, 0.01, 29), [50.0]]
        )

        def draw(k):
            if len(draw_calls) == 0:
                draw_calls.append(1)
                return samples[:k]
            return np.full(k, 75.0)

        draw_calls: list[int] = []
        with pytest.raises(RuntimeError, match="did not converge"):
            collect_filtered(draw, count=30, max_rounds=4)
