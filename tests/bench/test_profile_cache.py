"""Tests for the memoized comm-profile cache (repro.bench.profile_cache)."""

import os

import numpy as np
import pytest

from repro.barriers.evaluate import FAST_COMM_SIZES, profile_placement
from repro.bench.comm_bench import DEFAULT_REQUEST_COUNTS
from repro.bench.profile_cache import (
    ENV_VAR,
    PROFILE_PROTOCOL,
    ProfileCache,
    machine_fingerprint,
    profile_key,
    store_path_for,
)
from repro.cluster import presets
from repro.machine.simmachine import SimMachine


@pytest.fixture(autouse=True)
def _isolate_env(monkeypatch):
    """Campaigns running earlier in the session export ENV_VAR; these
    tests must see a deterministic (unset) environment."""
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=21
    )


def key_for(machine, placement, samples=3):
    return profile_key(
        machine, placement, samples, FAST_COMM_SIZES,
        DEFAULT_REQUEST_COUNTS, "comm-bench", 4096,
    )


class TestKeys:
    def test_key_stable_across_equal_machines(self, machine):
        other = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=21
        )
        assert key_for(machine, machine.placement(8)) == key_for(
            other, other.placement(8)
        )

    def test_key_sensitive_to_seed_placement_and_args(self, machine):
        base = key_for(machine, machine.placement(8))
        reseeded = SimMachine(
            presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=22
        )
        assert key_for(reseeded, reseeded.placement(8)) != base
        assert key_for(machine, machine.placement(16)) != base
        assert key_for(
            machine, machine.placement(10, policy="block")
        ) != key_for(machine, machine.placement(10))
        assert key_for(machine, machine.placement(8), samples=5) != base

    def test_fingerprint_is_json_plain(self, machine):
        import json

        fp = machine_fingerprint(machine)
        assert json.loads(json.dumps(fp)) == fp
        assert fp["seed"] == 21
        assert "v2" in PROFILE_PROTOCOL


class TestServing:
    def test_memoizes_in_process(self, machine):
        cache = ProfileCache()
        placement = machine.placement(8)
        a = cache.get_or_benchmark(machine, placement, 3, FAST_COMM_SIZES)
        b = cache.get_or_benchmark(machine, placement, 3, FAST_COMM_SIZES)
        assert a is b
        assert cache.misses == 1 and cache.hits == 1

    def test_cached_equals_fresh_bitwise(self, machine):
        placement = machine.placement(8)
        cached = profile_placement(machine, placement, comm_samples=3)
        fresh = profile_placement(
            machine, placement, comm_samples=3, cache=False
        )
        np.testing.assert_array_equal(cached.overhead, fresh.overhead)
        np.testing.assert_array_equal(cached.latency, fresh.latency)
        np.testing.assert_array_equal(cached.inv_bandwidth, fresh.inv_bandwidth)

    def test_persistence_round_trip(self, machine, tmp_path):
        placement = machine.placement(8)
        path = store_path_for(tmp_path)
        writer = ProfileCache()
        writer.configure(path)
        first = writer.get_or_benchmark(machine, placement, 3, FAST_COMM_SIZES)
        assert os.path.exists(path)

        reader = ProfileCache()
        reader.configure(path)
        second = reader.get_or_benchmark(machine, placement, 3, FAST_COMM_SIZES)
        assert reader.misses == 0 and reader.hits == 1
        np.testing.assert_array_equal(first.overhead, second.overhead)
        np.testing.assert_array_equal(first.latency, second.latency)
        np.testing.assert_array_equal(
            first.inv_bandwidth, second.inv_bandwidth
        )

    def test_env_var_pickup(self, machine, tmp_path, monkeypatch):
        placement = machine.placement(4)
        path = store_path_for(tmp_path)
        seeded = ProfileCache()
        seeded.configure(path)
        seeded.get_or_benchmark(machine, placement, 3, FAST_COMM_SIZES)

        monkeypatch.setenv(ENV_VAR, path)
        fresh = ProfileCache()  # un-configured: must read the env var
        fresh.get_or_benchmark(machine, placement, 3, FAST_COMM_SIZES)
        assert fresh.hits == 1 and fresh.misses == 0

    def test_detach_persistence(self, machine, tmp_path):
        cache = ProfileCache()
        cache.configure(store_path_for(tmp_path))
        cache.configure(None)
        cache.get_or_benchmark(
            machine, machine.placement(4), 3, FAST_COMM_SIZES
        )
        assert not os.path.exists(store_path_for(tmp_path))


class TestCampaignIntegration:
    def test_campaign_persists_profiles(self, tmp_path):
        from repro.explore import DesignSpace, run_campaign

        space = DesignSpace.from_dict({
            "axes": {"pattern": ["linear", "tree"]},
            "constants": {"preset": "xeon-8x2x4", "nprocs": 8, "runs": 2},
        })
        run_campaign("pc", space, "barrier-cost", store_dir=tmp_path)
        path = store_path_for(tmp_path)
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        # Two patterns share one placement: exactly one profile computed.
        assert len(lines) == 1
