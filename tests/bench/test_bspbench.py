"""Unit tests for the classic bspbench emulation (§3.1)."""

import numpy as np
import pytest

from repro.bench.bspbench import (
    bspbench_table,
    measure_h_relations,
    measure_rate_points,
    run_bspbench,
)
from repro.cluster import presets
from repro.machine import SimMachine


@pytest.fixture(scope="module")
def machine():
    return SimMachine(
        presets.xeon_8x2x4_topology(), presets.xeon_8x2x4_params(), seed=81
    )


class TestRatePoints:
    def test_rate_rises_to_plateau(self, machine):
        """Fig. 4.2: small vectors are overhead-bound; the rate climbs and
        flattens near the sustained in-cache rate."""
        points = measure_rate_points(machine, 0, samples=6)
        rates = [p.rate_flops for p in points]
        assert rates[0] < rates[-1]
        assert rates[-1] == pytest.approx(rates[-2], rel=0.3)

    def test_plateau_near_1gflops(self, machine):
        points = measure_rate_points(machine, 0, samples=6)
        assert 0.5e9 < points[-1].rate_flops < 2e9


class TestHRelations:
    def test_time_grows_with_h(self, machine):
        hs, times = measure_h_relations(machine, 8, h_values=(0, 128, 255),
                                        samples=5)
        assert times[0] < times[-1]

    def test_single_process_skipped(self, machine):
        result = run_bspbench(machine, 1, samples=4)
        assert result.params.g == 0.0
        assert result.params.l == 0.0


class TestBSPBenchTable:
    @pytest.fixture(scope="class")
    def table(self, machine):
        return bspbench_table(machine, (8, 16, 32), samples=5)

    def test_table_3_1_structure(self, table):
        """Table 3.1's qualitative content: r roughly constant near
        1 Gflop/s, l growing steeply once runs span several nodes."""
        rs = [res.params.r for res in table.values()]
        assert max(rs) / min(rs) < 1.5
        assert table[32].params.l > table[8].params.l

    def test_l_spans_orders_of_magnitude(self, table):
        """§3.1: the latency parameter spans orders of magnitude already at
        modest scale — the heterogeneity classic BSP hides."""
        assert table[32].params.l > 5 * table[8].params.l

    def test_g_positive_multinode(self, table):
        assert table[16].params.g >= 0.0

    def test_params_labelled_with_p(self, table):
        for p, result in table.items():
            assert result.params.p == p
