"""``repro.analysis`` — detlint, the determinism-contract linter.

The engine's reproducibility rests on contracts that used to live only
in prose (``docs/engine.md``) and in dynamic tests: bulk seeded draws
under a documented order, no wall-clock on compute paths, canonical
iteration orders, picklable executor payloads, telemetry that never
perturbs results.  This package is the executable form of those
contracts: an AST-based rule pack (DET001–DET006) with inline
``# repro: allow[RULE]`` suppressions and a justified-JSON baseline,
run as ``python -m repro.analysis [paths...]`` and gated in CI.

See ``docs/analysis.md`` for the rule catalogue and workflows.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    load as load_baseline,
    save as save_baseline,
)
from repro.analysis.core import (
    Finding,
    LintResult,
    Module,
    Rule,
    RULES,
    all_rules,
    fingerprint,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis import rules as _rules  # noqa: F401  (registers DET001-006)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "LintResult",
    "Module",
    "RULES",
    "Rule",
    "all_rules",
    "fingerprint",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "save_baseline",
]
