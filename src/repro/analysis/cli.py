"""``python -m repro.analysis`` — the detlint command line.

Exit codes: 0 clean (or every finding baselined/suppressed), 1 findings
(or unused baseline entries under ``--baseline``), 2 usage / IO /
baseline-schema errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis import baseline as baseline_mod
from repro.analysis.core import LintResult, all_rules, lint_paths

FORMATS = ("text", "github", "json")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "detlint: statically enforce the repository's determinism "
            "contracts (rule catalogue: docs/analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--baseline", nargs="?", const=baseline_mod.DEFAULT_PATH,
        metavar="PATH", default=None,
        help=(
            "subtract grandfathered findings recorded in PATH "
            f"(default path: {baseline_mod.DEFAULT_PATH}); unused "
            "entries are reported and fail the run so the baseline "
            "only ever shrinks"
        ),
    )
    parser.add_argument(
        "--write-baseline", nargs="?", const=baseline_mod.DEFAULT_PATH,
        metavar="PATH", default=None,
        help="write the current findings to PATH as a baseline and exit",
    )
    parser.add_argument(
        "--justification", default="",
        help="justification stamped on every --write-baseline entry",
    )
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print one rule's full documentation and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line on stderr",
    )
    return parser


def _select_rules(spec: str | None):
    rules = all_rules()
    if spec is None:
        return rules
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    index = {rule.id: rule for rule in rules}
    unknown = wanted - set(index)
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(index))})"
        )
    return [index[rule_id] for rule_id in sorted(wanted)]


def _emit(findings, fmt: str, result: LintResult) -> None:
    if fmt == "json":
        payload = {
            "findings": [f.to_json() for f in findings],
            "files": result.files,
            "suppressed": result.suppressed,
            "errors": result.errors,
        }
        print(json.dumps(payload, indent=2))
        return
    for finding in findings:
        if fmt == "github":
            print(finding.github())
        else:
            print(finding.text())
            if finding.snippet:
                print(f"    {finding.snippet}")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0
    if args.explain is not None:
        rule_id = args.explain.strip().upper()
        for rule in all_rules():
            if rule.id == rule_id:
                print(rule.__doc__ or f"{rule.id}: (undocumented)")
                return 0
        print(f"unknown rule {args.explain!r}", file=sys.stderr)
        return 2

    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(
            f"no such path(s): {', '.join(missing)}", file=sys.stderr
        )
        return 2

    try:
        rules = _select_rules(args.rules)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    result = lint_paths(paths, rules=rules)
    for error in result.errors:
        print(f"error: {error}", file=sys.stderr)

    if args.write_baseline is not None:
        try:
            baseline_mod.save(
                args.write_baseline, result.findings, args.justification
            )
        except baseline_mod.BaselineError as exc:
            print(f"baseline error: {exc}", file=sys.stderr)
            return 2
        print(
            f"wrote {len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    findings = result.findings
    unused: list = []
    baselined: list = []
    if args.baseline is not None:
        try:
            baseline = baseline_mod.load(args.baseline)
        except FileNotFoundError:
            print(
                f"baseline error: {args.baseline} does not exist",
                file=sys.stderr,
            )
            return 2
        except baseline_mod.BaselineError as exc:
            print(f"baseline error: {exc}", file=sys.stderr)
            return 2
        findings, baselined, unused = baseline.split(findings)

    _emit(findings, args.format, result)
    for entry in unused:
        message = (
            f"unused baseline entry: {entry.rule} {entry.path} "
            f"{entry.fingerprint} — the finding is gone; remove the entry"
        )
        if args.format == "github":
            print(f"::warning file={entry.path},title=detlint::{message}")
        else:
            print(message, file=sys.stderr)

    if not args.quiet:
        bits = [
            f"detlint: {result.files} file(s)",
            f"{len(findings)} finding(s)",
        ]
        if baselined:
            bits.append(f"{len(baselined)} baselined")
        if result.suppressed:
            bits.append(f"{result.suppressed} suppressed inline")
        if unused:
            bits.append(f"{len(unused)} unused baseline entr(y/ies)")
        print(", ".join(bits), file=sys.stderr)

    if result.errors:
        return 2
    return 1 if (findings or unused) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
