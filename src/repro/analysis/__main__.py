"""Entry point: ``python -m repro.analysis [options] [paths...]``."""

import os
import sys

from repro.analysis.cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream consumer (e.g. ``| head``) closed the pipe: not an
    # error.  Point stdout at devnull so the interpreter's shutdown
    # flush doesn't raise a second time.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
raise SystemExit(code)
