"""detlint core: findings, suppressions, the rule registry, and drivers.

The determinism-contract linter is a plain :mod:`ast` walk — no
third-party dependencies, same policy as the rest of the repository.
Each rule is a :class:`Rule` subclass registered with :func:`register`;
:func:`lint_source` runs every registered rule over one parsed module
and :func:`lint_paths` maps that over a file tree.

Suppression model (see ``docs/analysis.md``):

* inline — a ``# repro: allow[DET003]`` comment on the finding's line
  (or the line directly above it) suppresses that rule there.  Multiple
  rules separate with commas: ``allow[DET002,DET004]``.  Suppressions
  are collected from real comment tokens (:mod:`tokenize`), so the
  marker never matches inside a string literal.
* baseline — grandfathered findings live in a JSON file keyed by a
  line-number-independent fingerprint (:mod:`repro.analysis.baseline`),
  each entry carrying a mandatory justification string.
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import re
import tokenize
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

#: ``# repro: allow[DET001]`` / ``# repro: allow[DET001,DET004] -- why``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")

#: Rule id shape: three letters + three digits (DET001 ... DET006).
_RULE_ID_RE = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One contract violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    fingerprint: str = ""

    def text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def github(self) -> str:
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


class Rule:
    """Base class for detlint rules.

    Subclasses set :attr:`id` (``DETnnn``), :attr:`title` (one line),
    keep their full rationale in the class docstring (rendered by
    ``--explain`` and mirrored in ``docs/analysis.md``), and implement
    :meth:`check`.
    """

    id: str = ""
    title: str = ""

    def check(self, module: "Module") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: "Module", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = module.line(line)
        return Finding(
            rule=self.id,
            path=module.path,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
            fingerprint=fingerprint(self.id, module, line),
        )


#: The global registry, in registration (= rule id) order.
RULES: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one rule instance to :data:`RULES`."""
    if not _RULE_ID_RE.match(getattr(cls, "id", "") or ""):
        raise ValueError(f"rule {cls!r} needs an id like 'DET001'")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    return [RULES[k] for k in sorted(RULES)]


class Module:
    """One parsed source file plus the per-module facts rules share."""

    def __init__(self, source: str, path: str, module: str | None = None):
        self.source = source
        self.path = path
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.name = module if module is not None else derive_module_name(path)
        self.suppressions = collect_suppressions(source)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._imports: dict[str, str] | None = None

    # ------------------------------------------------------------ lookups

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent map over the whole tree (built lazily once)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parents
        while node in parents:
            node = parents[node]
            yield node

    @property
    def imports(self) -> dict[str, str]:
        """Local name → fully-qualified imported target.

        ``import numpy as np`` maps ``np -> numpy``;
        ``from numpy.random import default_rng as mk`` maps
        ``mk -> numpy.random.default_rng``.  Relative imports are kept
        with their leading dots — rules match absolute targets only.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        target = alias.name if alias.asname else alias.name.split(".")[0]
                        table[local] = target
                elif isinstance(node, ast.ImportFrom):
                    prefix = "." * node.level + (node.module or "")
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        table[local] = f"{prefix}.{alias.name}" if prefix else alias.name
            self._imports = table
        return self._imports

    def resolve_call_target(self, func: ast.AST) -> str | None:
        """Fully-qualified dotted target of a call's ``func``, if the
        chain roots at an imported name; ``None`` otherwise."""
        chain = attr_chain(func)
        if not chain:
            return None
        head, *rest = chain.split(".")
        target = self.imports.get(head)
        if target is None:
            return None
        return ".".join([target, *rest])

    def is_suppressed(self, finding: Finding) -> bool:
        for lineno in (finding.line, finding.line - 1):
            if finding.rule in self.suppressions.get(lineno, ()):
                return True
        return False


# --------------------------------------------------------------- helpers


def attr_chain(node: ast.AST) -> str | None:
    """Dotted text of a pure Name/Attribute chain (``a.b.c``), else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number → rule ids allowed on that line."""
    table: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            table[tok.start[0]] = table.get(tok.start[0], frozenset()) | rules
    except tokenize.TokenError:
        # A torn file still gets linted from its AST (ast.parse would
        # have raised first if it were unparseable); comments past the
        # tear simply cannot suppress anything.
        pass
    return table


def derive_module_name(path: str) -> str:
    """Dotted module name from the filesystem package structure.

    Walks up while ``__init__.py`` siblings exist, so the result matches
    the import system's view regardless of where the lint root was —
    ``<anything>/src/repro/obs/telemetry.py`` → ``repro.obs.telemetry``,
    and fixture trees get their own package names the same way.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts: list[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.append(pkg)
    return ".".join(reversed(parts))


def fingerprint(rule: str, module: Module, lineno: int) -> str:
    """Line-number-independent identity for a finding.

    Hash of (rule, normalized path, the stripped source line, the
    occurrence index among identical lines in the file) — stable across
    unrelated edits that only shift line numbers, which is what lets a
    baseline survive rebases.
    """
    text = module.line(lineno)
    occurrence = sum(
        1 for prior in module.lines[: lineno - 1] if prior.strip() == text
    )
    path = module.path.replace(os.sep, "/")
    digest = hashlib.sha256(
        f"{rule}\x00{path}\x00{text}\x00{occurrence}".encode()
    ).hexdigest()
    return digest[:16]


# --------------------------------------------------------------- drivers


@dataclass
class LintResult:
    """Outcome of one lint run: surviving findings plus bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    errors: list[str] = field(default_factory=list)


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns non-suppressed findings."""
    mod = Module(source, path, module=module)
    selected = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in selected:
        for finding in rule.check(mod):
            if not mod.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for root in sorted(paths):
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(
    paths: Iterable[str],
    rules: Iterable[Rule] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``."""
    selected = list(rules) if rules is not None else all_rules()
    result = LintResult()
    for filepath in iter_python_files(paths):
        try:
            with open(filepath, encoding="utf-8") as handle:
                source = handle.read()
            mod = Module(source, filepath)
        except (OSError, SyntaxError, ValueError) as exc:
            result.errors.append(f"{filepath}: {exc}")
            continue
        result.files += 1
        for rule in selected:
            for finding in rule.check(mod):
                if mod.is_suppressed(finding):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
