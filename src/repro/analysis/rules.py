"""The DET rule pack: the engine's determinism contracts, machine-checked.

Every rule here encodes a contract that already exists in prose
(``docs/engine.md``, ``docs/observability.md``) or in a dynamic guard
(the ``error::DeprecationWarning:repro`` pytest filter).  The linter
makes them hold on *every* path of *every* file, not just the paths a
test happens to execute — which is the precondition for dropping in a
compiled backend or sharding campaigns across hosts without silently
losing bit-reproducibility.

Rules are heuristic where full static analysis is undecidable; each
docstring states the approximation, and ``# repro: allow[RULE]``
documents the deliberate exceptions in place.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    Module,
    Rule,
    attr_chain,
    register,
)


def _in_loop(module: Module, node: ast.AST) -> bool:
    """True when ``node`` sits inside a ``for``/``while`` body (loops in
    enclosing *functions* do not count — a nested ``def`` runs once per
    call, not once per iteration of the outer loop it is defined in)."""
    current = node
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
            # The loop's iterable/test evaluate once; only the body (or
            # orelse) re-executes per iteration.
            if current in getattr(ancestor, "body", ()) or current in getattr(
                ancestor, "orelse", ()
            ):
                return True
        current = ancestor
    return False


@register
class NoDeprecatedScalarDraws(Rule):
    """DET001 — no ``sample_scalar`` outside ``*/reference.py``.

    ``NoiseModel.sample_scalar`` boxes every duration through a 0-d
    array and three scalar RNG calls; the batched engines draw in bulk
    under the documented draw-order contract (docs/engine.md).  The
    runtime ``DeprecationWarning`` only fires on executed paths — this
    rule covers the rest.  Preserved scalar oracles live in
    ``reference.py`` modules, which are exempt; the deprecated method's
    own definition (and its internal ``self.sample`` delegation) does
    not call itself, so the noise model passes untouched.
    """

    id = "DET001"
    title = "deprecated scalar noise draw outside a reference oracle"

    def check(self, module: Module) -> Iterator[Finding]:
        if module.path.replace("\\", "/").endswith("/reference.py"):
            return
        if module.name.endswith(".reference"):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sample_scalar"
            ):
                yield self.finding(
                    module,
                    node,
                    "sample_scalar is deprecated on hot paths: draw in "
                    "bulk with NoiseModel.sample / sample_matrix "
                    "(docs/engine.md draw-order contract)",
                )


#: numpy.random constructors that are fine *when given a seed argument*.
_NP_SEEDED_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


@register
class NoUnseededRng(Rule):
    """DET002 — every random draw must come from an explicitly seeded
    generator.

    Module-global RNG state (``np.random.<fn>``, stdlib ``random.<fn>``)
    is process-wide and call-order dependent: one stray draw desyncs
    every stream after it, and replays stop being bit-identical.  The
    repository's discipline is ``np.random.default_rng(seed)`` /
    ``random.Random(seed)`` instances threaded explicitly (SimMachine
    derives per-purpose streams from its seed).  Flagged: any call into
    the ``numpy.random`` or ``random`` module globals; generator/
    bit-generator constructors called with *no* seed argument.  Calls on
    generator objects (``rng.normal(...)``) are not module calls and
    pass.  Resolution follows the import table, so aliases are caught
    and same-named methods on unrelated objects are not.
    """

    id = "DET002"
    title = "unseeded or module-global RNG"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve_call_target(node.func)
            if target is None:
                continue
            if target.startswith("numpy.random."):
                name = target[len("numpy.random."):]
                if "." in name:
                    continue
                if name in _NP_SEEDED_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module, node,
                            f"{name}() without a seed draws from OS "
                            "entropy: pass an explicit seed",
                        )
                else:
                    yield self.finding(
                        module, node,
                        f"np.random.{name} uses module-global RNG state: "
                        "draw from an explicitly seeded "
                        "np.random.default_rng(seed) instance",
                    )
            elif target == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "random.Random() without a seed draws from OS "
                        "entropy: pass an explicit seed",
                    )
            elif target == "random.SystemRandom":
                yield self.finding(
                    module, node,
                    "random.SystemRandom is never reproducible: use a "
                    "seeded random.Random",
                )
            elif target.startswith("random.") and "." not in target[len("random."):]:
                yield self.finding(
                    module, node,
                    f"{target} uses module-global RNG state: draw from "
                    "an explicitly seeded random.Random instance",
                )


#: Wall-clock entry points (resolved through the import table).
_WALL_CLOCK_TARGETS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module prefixes whose *job* is host time: telemetry/benchmarking, and
#: the resilience layer's timeout/backoff deadlines.
_WALL_CLOCK_ALLOWED_PREFIXES = ("repro.obs", "repro.bench")
_WALL_CLOCK_ALLOWED_MODULES = frozenset({"repro.explore.resilience"})


@register
class NoWallClock(Rule):
    """DET003 — no wall-clock reads outside the observability, bench,
    and resilience layers.

    Simulated time must be a pure function of (inputs, seed).  A host
    clock read on a compute path couples results to the machine's load,
    and a wall-clock timestamp written into a result store breaks
    byte-identical replay.  Host time is legitimate in exactly three
    places: ``repro.obs`` (telemetry measures the host by design),
    ``repro.bench`` (benchmarks measure the host by design), and
    ``repro.explore.resilience`` (timeout deadlines and backoff waits
    are about the host, not the simulation).  Everything else routes
    through :func:`repro.obs.wallclock` — one sanctioned, greppable,
    fakeable accessor — or carries an ``allow[DET003]`` justification.
    """

    id = "DET003"
    title = "wall-clock read outside obs/bench/resilience"

    def _allowed(self, module: Module) -> bool:
        name = module.name
        if name in _WALL_CLOCK_ALLOWED_MODULES:
            return True
        return any(
            name == prefix or name.startswith(prefix + ".")
            for prefix in _WALL_CLOCK_ALLOWED_PREFIXES
        )

    def check(self, module: Module) -> Iterator[Finding]:
        if self._allowed(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve_call_target(node.func)
            if target in _WALL_CLOCK_TARGETS:
                yield self.finding(
                    module, node,
                    f"{target} read outside repro.obs/repro.bench/"
                    "repro.explore.resilience: use repro.obs.wallclock() "
                    "(telemetry owns host time) or justify with "
                    "allow[DET003]",
                )


#: Call / method names whose argument or receiver order is observable:
#: RNG draws, store/file writes, telemetry emission, ordered collection.
_ORDER_SENSITIVE_SINKS = frozenset({
    # draws
    "sample", "sample_matrix", "sample_scalar", "integers", "normal",
    "lognormal", "uniform", "choice", "shuffle", "permutation",
    "standard_normal", "random",
    # stores / files / serialisation
    "put", "write", "writelines", "dump", "dumps",
    # telemetry
    "emit_span", "emit_event", "count", "gauge", "observe",
    # ordered accumulation that leaks iteration order downstream
    "append", "print",
})


def _unordered_iterable(node: ast.AST) -> str | None:
    """Describe ``node`` if it is an unordered iteration source."""
    # Unwrap wrappers that preserve (non-)order.
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "tuple", "enumerate", "iter"}
        and len(node.args) == 1
    ):
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return ".keys()"
    return None


@register
class SortedIterationForSinks(Rule):
    """DET004 — iteration over ``set``/dict-``.keys()`` feeding draws,
    stores, or emitted output must be ``sorted()``.

    Set iteration order depends on insertion history and hash
    randomization; dict order is insertion order, which drifts the
    moment two code paths (or two merged worker stores) populate it
    differently.  When such an iteration drives an RNG draw, a store
    append, or emitted output, the byte stream — and every stream draw
    after it — becomes history-dependent.  ``sorted(...)`` around the
    iterable restores a canonical order.  Heuristic: only loops and
    list/generator comprehensions whose body calls an order-sensitive
    sink (draw / put / write / emit / append / print) are flagged;
    membership tests and set-building passes are order-free and pass.
    """

    id = "DET004"
    title = "unordered iteration feeding an order-sensitive sink"

    def _body_has_sink(self, nodes) -> bool:
        for stmt in nodes:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = None
                    if isinstance(node.func, ast.Attribute):
                        name = node.func.attr
                    elif isinstance(node.func, ast.Name):
                        name = node.func.id
                    if name in _ORDER_SENSITIVE_SINKS:
                        return True
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                kind = _unordered_iterable(node.iter)
                if kind and self._body_has_sink(node.body):
                    yield self.finding(
                        module, node.iter,
                        f"iterating {kind} into a draw/store/output sink "
                        "is order-nondeterministic: wrap the iterable in "
                        "sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for gen in node.generators:
                    kind = _unordered_iterable(gen.iter)
                    if kind and self._body_has_sink([node.elt]):
                        yield self.finding(
                            module, gen.iter,
                            f"comprehension over {kind} feeding a sink "
                            "is order-nondeterministic: wrap the "
                            "iterable in sorted(...)",
                        )


#: Methods that ship a callable to pool/executor workers.
_SUBMISSION_METHODS = frozenset({
    "map", "imap", "imap_unordered", "map_async", "starmap",
    "starmap_async", "apply", "apply_async", "submit",
})


@register
class PicklableExecutorCallables(Rule):
    """DET005 — no lambdas or locally-defined closures at executor
    submission sites.

    ``multiprocessing`` pickles the task callable; lambdas and functions
    defined inside another function fail at dispatch time — but only on
    the process-pool paths, so a campaign that was only ever exercised
    under the serial executor ships the bug.  The repository pattern is
    module-level workers (``_evaluate``, ``_evaluate_chunk``) plus
    ``functools.partial`` over module-level functions for bound
    arguments (the resilience layer's in-worker retry wrapper).
    Heuristic: flagged when the receiver's name contains ``pool`` /
    ``executor`` / ``exec`` and the submitted callable is a ``lambda``
    (directly or inside a ``partial(...)``) or a name bound by a ``def``
    nested in an enclosing function.
    """

    id = "DET005"
    title = "unpicklable callable at an executor submission site"

    def _local_defs(self, module: Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for ancestor in module.ancestors(node):
                    if isinstance(
                        ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        names.add(node.name)
                        break
        return names

    def _offending(self, arg: ast.AST, local_defs: set[str]) -> str | None:
        if isinstance(arg, ast.Lambda):
            return "a lambda"
        if isinstance(arg, ast.Name) and arg.id in local_defs:
            return f"locally-defined function {arg.id!r}"
        if isinstance(arg, ast.Call):
            func_name = attr_chain(arg.func) or ""
            if func_name.split(".")[-1] == "partial":
                for inner in [*arg.args, *(kw.value for kw in arg.keywords)]:
                    hit = self._offending(inner, local_defs)
                    if hit:
                        return f"{hit} inside partial(...)"
        return None

    def check(self, module: Module) -> Iterator[Finding]:
        local_defs = self._local_defs(module)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMISSION_METHODS
                and node.args
            ):
                continue
            receiver = (attr_chain(node.func.value) or "").lower()
            if not any(tag in receiver for tag in ("pool", "executor", "exec")):
                continue
            hit = self._offending(node.args[0], local_defs)
            if hit:
                yield self.finding(
                    module, node.args[0],
                    f"{hit} submitted to {node.func.attr}() cannot be "
                    "pickled to pool workers: use a module-level "
                    "function (functools.partial over one is fine)",
                )


#: Dotted-name suffixes of the engine hot-path modules.
_HOT_MODULE_SUFFIXES = (
    "simmpi.engine", "simmpi.requests", "bsplib.runtime",
    "machine.simmachine", "machine.clock",
    "stencil.impls", "spinlocks.model",
)

#: Telemetry-context factories and emission methods.
_TELEMETRY_FACTORIES = frozenset({"current", "_telemetry"})
_EMIT_METHODS = frozenset({
    "span", "emit_span", "emit_event", "count", "gauge", "observe", "flush",
})


@register
class TelemetryFastPath(Rule):
    """DET006 — telemetry emission inside engine hot loops must route
    through the disabled-fast-path helpers.

    The observability guarantee (docs/observability.md) is that disabled
    telemetry costs one ``if`` per *call*, not one lookup per loop
    iteration — and that enabling it never changes a result.  Inside the
    engine hot-path modules (event engine, BSP runtime, clocks, stencil
    kernels, spinlock model) that means: resolve ``obs.current()`` once
    outside the loop, and guard every emission on the resolved context
    (``if tele is None: return ...`` early, or ``if tele is not None:``
    around the emission).  Flagged: (a) calling ``current()`` /
    ``_telemetry()`` inside a ``for``/``while`` body; (b) calling an
    emission method on a context variable inside a loop with no ``None``
    guard in scope.  Only variables assigned from the factories are
    checked, so unrelated ``.count()`` / ``.span`` methods pass.
    """

    id = "DET006"
    title = "unguarded telemetry emission in an engine hot loop"

    def _applies(self, module: Module) -> bool:
        return module.name.endswith(_HOT_MODULE_SUFFIXES)

    def _telemetry_vars(self, func: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                chain = attr_chain(node.value.func) or ""
                if chain.split(".")[-1] in _TELEMETRY_FACTORIES:
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            names.add(tgt.id)
        return names

    def _guarded(self, module: Module, node: ast.AST, var: str) -> bool:
        # (1) an enclosing `if var:` / `if var is not None:` branch.
        child = node
        func = None
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.If) and child in ancestor.body:
                test = ancestor.test
                if isinstance(test, ast.Name) and test.id == var:
                    return True
                if (
                    isinstance(test, ast.Compare)
                    and isinstance(test.left, ast.Name)
                    and test.left.id == var
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.IsNot)
                ):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = ancestor
                break
            child = ancestor
        # (2) an early `if var is None: return/raise` anywhere in the
        # enclosing function (the engine's canonical shape).
        if func is not None:
            for stmt in ast.walk(func):
                if not isinstance(stmt, ast.If):
                    continue
                test = stmt.test
                if (
                    isinstance(test, ast.Compare)
                    and isinstance(test.left, ast.Name)
                    and test.left.id == var
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Is)
                    and any(
                        isinstance(s, (ast.Return, ast.Raise, ast.Continue))
                        for s in stmt.body
                    )
                ):
                    return True
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        if not self._applies(module):
            return
        funcs = [
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and (attr_chain(node.func) or "").split(".")[-1]
                in _TELEMETRY_FACTORIES
                and _in_loop(module, node)
            ):
                yield self.finding(
                    module, node,
                    "telemetry context resolved inside a hot loop: call "
                    "obs.current() once before the loop and reuse it",
                )
        for func in funcs:
            tele_vars = self._telemetry_vars(func)
            if not tele_vars:
                continue
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EMIT_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in tele_vars
                ):
                    continue
                if not _in_loop(module, node):
                    continue
                var = node.func.value.id
                if not self._guarded(module, node, var):
                    yield self.finding(
                        module, node,
                        f"telemetry emission on {var!r} inside a hot loop "
                        "without a disabled-fast-path guard: early-return "
                        f"on `if {var} is None` or wrap the emission in "
                        f"`if {var} is not None:`",
                    )
