"""Baseline files: grandfathered findings with mandatory justifications.

A baseline lets the linter gate *new* violations while an agreed set of
existing ones is worked off.  The file is JSON::

    {
      "version": 1,
      "entries": [
        {
          "rule": "DET003",
          "path": "src/repro/explore/campaign.py",
          "fingerprint": "9f2c41aa03b7c155",
          "justification": "summary timestamps; migrating to obs.wallclock in PR 11"
        }
      ]
    }

Fingerprints come from :func:`repro.analysis.core.fingerprint` — they
hash the rule, the path, and the *stripped source line* (plus an
occurrence index), so unrelated edits that shift line numbers do not
invalidate the baseline, while any edit to the offending line does.
Every entry must carry a non-empty ``justification``; a baseline with
silent entries is rejected outright (exit 2), so the file can never
become a list of unexplained exemptions.  The acceptance bar for this
repository is an *empty* baseline — the checked-in
``detlint-baseline.json`` stays empty and exists to pin the workflow.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.analysis.core import Finding

VERSION = 1

#: Default baseline location, relative to the invocation directory.
DEFAULT_PATH = "detlint-baseline.json"


class BaselineError(ValueError):
    """Malformed baseline file (bad JSON, bad schema, silent entries)."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    justification: str

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "justification": self.justification,
        }


class Baseline:
    """An in-memory baseline: match findings, track unused entries."""

    def __init__(self, entries: list[BaselineEntry] | None = None):
        self.entries = list(entries or [])

    @property
    def _index(self) -> dict[tuple[str, str], BaselineEntry]:
        return {(e.rule, e.fingerprint): e for e in self.entries}

    def matches(self, finding: Finding) -> bool:
        return (finding.rule, finding.fingerprint) in self._index

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition into (new, baselined) findings plus unused entries."""
        index = self._index
        new: list[Finding] = []
        old: list[Finding] = []
        seen: set[tuple[str, str]] = set()
        for finding in findings:
            key = (finding.rule, finding.fingerprint)
            if key in index:
                old.append(finding)
                seen.add(key)
            else:
                new.append(finding)
        unused = [e for e in self.entries if (e.rule, e.fingerprint) not in seen]
        return new, old, unused


def load(path: str) -> Baseline:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or data.get("version") != VERSION:
        raise BaselineError(
            f"{path}: expected a baseline object with version {VERSION}"
        )
    raw = data.get("entries")
    if not isinstance(raw, list):
        raise BaselineError(f"{path}: 'entries' must be a list")
    entries: list[BaselineEntry] = []
    for i, item in enumerate(raw):
        if not isinstance(item, dict):
            raise BaselineError(f"{path}: entry {i} is not an object")
        try:
            entry = BaselineEntry(
                rule=str(item["rule"]),
                path=str(item["path"]),
                fingerprint=str(item["fingerprint"]),
                justification=str(item.get("justification", "")),
            )
        except KeyError as exc:
            raise BaselineError(
                f"{path}: entry {i} is missing {exc.args[0]!r}"
            ) from exc
        if not entry.justification.strip():
            raise BaselineError(
                f"{path}: entry {i} ({entry.rule} {entry.path}) has no "
                "justification — every baselined finding must say why "
                "it is allowed to stand"
            )
        entries.append(entry)
    return Baseline(entries)


def save(path: str, findings: list[Finding], justification: str) -> Baseline:
    """Write a baseline covering ``findings``; returns the new baseline.

    The caller-supplied ``justification`` is stamped on every entry, so
    a generated baseline is honest about being a bulk grandfather; edit
    the file to refine per-entry reasons.
    """
    if not justification.strip():
        raise BaselineError(
            "refusing to write a baseline without a justification "
            "(pass --justification)"
        )
    entries = [
        BaselineEntry(
            rule=f.rule,
            path=f.path.replace(os.sep, "/"),
            fingerprint=f.fingerprint,
            justification=justification,
        )
        for f in findings
    ]
    baseline = Baseline(entries)
    payload = {
        "version": VERSION,
        "entries": [e.to_json() for e in baseline.entries],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return baseline
