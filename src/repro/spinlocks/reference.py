"""Scalar reference implementation of the §5.1 spinlock simulation.

This is the pre-vectorization ``simulate_spinlock`` loop, preserved
verbatim as the behavioural oracle for :mod:`repro.spinlocks.model` — the
same role :mod:`repro.simmpi.reference` plays for the batched event
engine.  The contract, enforced by ``tests/spinlocks/test_model_batch.py``:

* **clean path** (``noisy=False``): the vectorized simulation is
  *bit-identical* to this loop — the handoff schedule (winner sequence,
  line-transfer costs, storm/broadcast terms) never touched the noise
  stream, so separating it from the draws changes no clean value;
* **noisy path**: the vectorized bulk draw consumes the stream in a
  different order (one :meth:`NoiseModel.sample` call over the whole
  handoff vector instead of one boxed scalar draw per acquisition), so
  individual samples differ while the ensembles agree distributionally.

The only deliberate edit: the per-acquisition draw inlines the guts of the
deprecated ``NoiseModel.sample_scalar`` (``float(noise.sample(rng, 0-d))``)
so the oracle reproduces the historical stream bit-for-bit without
tripping the deprecation gate, and the noise generator may be passed in
(``rng=...``) so equivalence tests can draw many *distinct* reference
replications from one continuing stream.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.topology import Placement, Relation
from repro.machine.simmachine import SimMachine
from repro.util.validation import require_int


def reference_spinlock(
    machine: SimMachine,
    algorithm: str,
    placement: Placement,
    acquisitions_per_thread: int = 16,
    critical_section: float = 0.2e-6,
    stream: str = "spinlock",
    noisy: bool = True,
    rng: np.random.Generator | None = None,
):
    """The original scalar handoff loop; returns a ``SpinlockResult``.

    ``rng`` overrides the machine-derived noise stream (the arbiter stream
    is never overridden — the winner schedule is part of the experiment's
    identity, not its noise).
    """
    from repro.spinlocks.model import ALGORITHMS, LINE_TRANSFER_SCALE, SpinlockResult, _line_cost

    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; know {ALGORITHMS}")
    require_int(acquisitions_per_thread, "acquisitions_per_thread")
    if acquisitions_per_thread < 1:
        raise ValueError("acquisitions_per_thread must be >= 1")
    nthreads = placement.nprocs
    if noisy and rng is None:
        rng = machine.rng(stream, algorithm, nthreads)
    elif not noisy:
        rng = None

    remaining = np.full(nthreads, acquisitions_per_thread)
    holder = 0
    now = 0.0
    costs = []
    total = int(remaining.sum())
    fifo = list(range(nthreads))
    arbiter = machine.rng(stream, algorithm, nthreads, "arbiter")
    for _ in range(total):
        active = np.flatnonzero(remaining > 0)
        if algorithm == "mcs":
            queue_active = [t for t in fifo if remaining[t] > 0]
            winner = queue_active[0]
            fifo.remove(winner)
            fifo.append(winner)
        else:
            winner = int(active[arbiter.integers(active.size)])
        handoff = _line_cost(machine, placement, holder, winner)
        if algorithm == "test_and_set":
            storm = sum(
                _line_cost(machine, placement, winner, int(t))
                for t in active
                if t != winner
            )
            handoff += 0.5 * storm
        elif algorithm == "ticket":
            sockets = {
                machine.topology.socket_of(placement.core_of(int(t)))
                for t in active
                if t != winner
            }
            handoff += sum(
                LINE_TRANSFER_SCALE[Relation.SAME_NODE]
                * machine.params.links[Relation.SAME_SOCKET].latency
                for _ in sockets
            )
        if rng is not None:
            # Inlined sample_scalar: one boxed 0-d draw per acquisition —
            # the deprecated hot-path pattern this module exists to pin.
            handoff = float(
                machine.noise.sample(rng, np.asarray(handoff, dtype=float))
            )
        now += handoff + critical_section
        costs.append(handoff)
        remaining[winner] -= 1
        holder = winner
    return SpinlockResult(
        algorithm=algorithm,
        nthreads=nthreads,
        acquisitions=total,
        total_seconds=now,
        per_acquisition=np.asarray(costs),
        critical_section=critical_section,
    )
