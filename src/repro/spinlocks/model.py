"""Shared-memory spinlock study (§5.1).

The thesis's preliminary work re-ran Mellor-Crummey & Scott's spinlock
comparison on contemporary SMP hardware and drew the two guidelines that
shape the whole framework:

1. process/lock locality must be controlled to measure synchronisation, and
2. under contention, *topological distance* (cache-line transfer latency)
   dominates cost, not aggregate bandwidth.

This module reproduces that study on the simulated node: a cache-coherence
cost model where acquiring a lock costs the cache-line transfer from the
previous holder's cache (distance-dependent), plus algorithm-specific
traffic.  Algorithms:

* ``test_and_set`` — every waiter hammers the line; each release triggers a
  storm of transfers, one winner chosen by proximity-independent arrival;
* ``ticket`` — one RMW per acquisition, then local spinning on a shared
  counter whose every update is broadcast to all waiters;
* ``mcs`` — queue lock: each handoff is exactly one line transfer to the
  *next* waiter, making cost a pure function of the handoff distance.

The observable reproduced from §5.1: MCS-style locality-aware locks
degrade gracefully with contention, simple locks do not, and *which cores
contend* matters as much as how many — even on one node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import Placement, Relation
from repro.machine.simmachine import SimMachine
from repro.util.validation import require_int

#: Cache-line transfer cost by topological relation, relative to the
#: same-socket transfer (L1/L2-to-L1 vs. cross-socket vs. cross-node
#: coherence traffic).  Scaled by the machine's same-socket latency.
LINE_TRANSFER_SCALE = {
    Relation.SELF: 0.1,
    Relation.SAME_SOCKET: 1.0,
    Relation.SAME_NODE: 2.4,
    Relation.REMOTE: 40.0,  # software DSM / RDMA-style fallback
}

ALGORITHMS = ("test_and_set", "ticket", "mcs")


@dataclass(frozen=True)
class SpinlockResult:
    """Outcome of one contention experiment.

    ``per_acquisition`` is ``(N,)`` for a single run and ``(R, N)`` for a
    replication batch (``runs=R``): the same handoff schedule re-rolled
    under ``R`` independent noise replications.
    """

    algorithm: str
    nthreads: int
    acquisitions: int
    total_seconds: float  # single run: the run's span; batch: mean span
    per_acquisition: np.ndarray  # cost of each critical-section handoff
    critical_section: float = 0.2e-6

    @property
    def runs(self) -> int | None:
        """Replication count, or ``None`` for a single (scalar) run."""
        return None if self.per_acquisition.ndim == 1 else int(
            self.per_acquisition.shape[0]
        )

    @property
    def run_seconds(self) -> np.ndarray:
        """Per-replication total span, shape ``(R,)`` (``(1,)`` scalar)."""
        handoffs = np.atleast_2d(self.per_acquisition)
        return handoffs.sum(axis=1) + self.acquisitions * self.critical_section

    @property
    def mean_handoff(self) -> float:
        return float(self.per_acquisition.mean())


def _line_cost(machine: SimMachine, placement: Placement, a: int, b: int) -> float:
    """Seconds to move the lock's cache line from holder a to acquirer b."""
    base = machine.params.links[Relation.SAME_SOCKET].latency
    return base * LINE_TRANSFER_SCALE[placement.relation(a, b)]


def _handoff_schedule(
    machine: SimMachine,
    algorithm: str,
    placement: Placement,
    acquisitions_per_thread: int,
    stream: str,
) -> np.ndarray:
    """The deterministic part of the contention experiment: the winner
    sequence and each handoff's clean (noise-free) line-transfer cost.

    The winner arbitration draws from its own ``"arbiter"`` stream and
    never touches the noise stream, so the schedule is identical whether
    the run is clean, noisy, or a replication batch — which is what lets
    the noise be drawn in bulk afterwards.
    """
    nthreads = placement.nprocs
    remaining = np.full(nthreads, acquisitions_per_thread)
    holder = 0
    costs = []
    total = int(remaining.sum())
    # Deterministic contention: FIFO for queue locks; for the others the
    # winner is drawn from the still-active threads, modelling the
    # arbitrary hardware arbitration of line ownership.
    fifo = list(range(nthreads))
    arbiter = machine.rng(stream, algorithm, nthreads, "arbiter")
    for _ in range(total):
        active = np.flatnonzero(remaining > 0)
        if algorithm == "mcs":
            queue_active = [t for t in fifo if remaining[t] > 0]
            winner = queue_active[0]
            fifo.remove(winner)
            fifo.append(winner)
        else:
            winner = int(active[arbiter.integers(active.size)])
        handoff = _line_cost(machine, placement, holder, winner)
        if algorithm == "test_and_set":
            # Failed test-and-set attempts by every other waiter keep
            # pulling the line around before the winner settles.
            storm = sum(
                _line_cost(machine, placement, winner, int(t))
                for t in active
                if t != winner
            )
            handoff += 0.5 * storm
        elif algorithm == "ticket":
            # The release's counter update is observed by all spinners:
            # one broadcast round of line transfers, amortised by
            # simultaneous snooping within a socket.
            sockets = {
                machine.topology.socket_of(placement.core_of(int(t)))
                for t in active
                if t != winner
            }
            handoff += sum(
                LINE_TRANSFER_SCALE[Relation.SAME_NODE]
                * machine.params.links[Relation.SAME_SOCKET].latency
                for _ in sockets
            )
        costs.append(handoff)
        remaining[winner] -= 1
        holder = winner
    return np.asarray(costs)


def simulate_spinlock(
    machine: SimMachine,
    algorithm: str,
    placement: Placement,
    acquisitions_per_thread: int = 16,
    critical_section: float = 0.2e-6,
    stream: str = "spinlock",
    noisy: bool = True,
    runs: int | None = None,
) -> SpinlockResult:
    """Simulate ``nthreads`` contending for one lock until every thread has
    completed its share of acquisitions.

    Noise is applied to the whole handoff schedule with one bulk
    :meth:`NoiseModel.sample` call (or one :meth:`NoiseModel.sample_matrix`
    call for a ``runs=R`` replication batch, draws filling
    replication-major) — the scalar reference loop survives as
    :func:`repro.spinlocks.reference.reference_spinlock`, bit-identical on
    the clean path and KS-equivalent on the noisy one.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; know {ALGORITHMS}")
    require_int(acquisitions_per_thread, "acquisitions_per_thread")
    if acquisitions_per_thread < 1:
        raise ValueError("acquisitions_per_thread must be >= 1")
    if runs is not None:
        runs = require_int(runs, "runs")
        if runs < 1:
            raise ValueError("runs must be >= 1")
    nthreads = placement.nprocs
    clean = _handoff_schedule(
        machine, algorithm, placement, acquisitions_per_thread, stream
    )
    total = int(clean.shape[0])
    if noisy:
        rng = machine.rng(stream, algorithm, nthreads)
        if runs is None:
            handoffs = machine.noise.sample(rng, clean)
        else:
            handoffs = machine.noise.sample_matrix(rng, clean, runs)
    else:
        handoffs = clean if runs is None else np.broadcast_to(
            clean, (runs, total)
        ).copy()
    spans = handoffs.sum(axis=-1) + total * critical_section
    return SpinlockResult(
        algorithm=algorithm,
        nthreads=nthreads,
        acquisitions=total,
        total_seconds=float(np.mean(spans)),
        per_acquisition=handoffs,
        critical_section=critical_section,
    )


def contention_sweep(
    machine: SimMachine,
    thread_counts,
    algorithms=ALGORITHMS,
    acquisitions_per_thread: int = 16,
    placement_policy: str = "block",
    runs: int | None = None,
) -> dict[str, dict[int, SpinlockResult]]:
    """Mean handoff cost vs. contention level per algorithm (§5.1's
    experiment shape).  ``runs=R`` replicates every cell's noise ``R``
    times in one bulk draw per cell."""
    out: dict[str, dict[int, SpinlockResult]] = {a: {} for a in algorithms}
    for n in thread_counts:
        placement = machine.placement(n, policy=placement_policy)
        for algorithm in algorithms:
            out[algorithm][n] = simulate_spinlock(
                machine, algorithm, placement,
                acquisitions_per_thread=acquisitions_per_thread,
                runs=runs,
            )
    return out


def barrier_lower_bound(machine: SimMachine, placement: Placement) -> float:
    """§5.1: a single uncontended atomic arrival signal is a lower bound on
    any barrier's per-process cost — the cheapest possible handoff."""
    costs = [
        _line_cost(machine, placement, a, b)
        for a in range(placement.nprocs)
        for b in range(placement.nprocs)
        if a != b
    ]
    return min(costs) if costs else 0.0
