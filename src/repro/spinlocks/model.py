"""Shared-memory spinlock study (§5.1).

The thesis's preliminary work re-ran Mellor-Crummey & Scott's spinlock
comparison on contemporary SMP hardware and drew the two guidelines that
shape the whole framework:

1. process/lock locality must be controlled to measure synchronisation, and
2. under contention, *topological distance* (cache-line transfer latency)
   dominates cost, not aggregate bandwidth.

This module reproduces that study on the simulated node: a cache-coherence
cost model where acquiring a lock costs the cache-line transfer from the
previous holder's cache (distance-dependent), plus algorithm-specific
traffic.  Algorithms:

* ``test_and_set`` — every waiter hammers the line; each release triggers a
  storm of transfers, one winner chosen by proximity-independent arrival;
* ``ticket`` — one RMW per acquisition, then local spinning on a shared
  counter whose every update is broadcast to all waiters;
* ``mcs`` — queue lock: each handoff is exactly one line transfer to the
  *next* waiter, making cost a pure function of the handoff distance.

The observable reproduced from §5.1: MCS-style locality-aware locks
degrade gracefully with contention, simple locks do not, and *which cores
contend* matters as much as how many — even on one node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import Placement, Relation
from repro.machine.simmachine import SimMachine
from repro.util.validation import require_int

#: Cache-line transfer cost by topological relation, relative to the
#: same-socket transfer (L1/L2-to-L1 vs. cross-socket vs. cross-node
#: coherence traffic).  Scaled by the machine's same-socket latency.
LINE_TRANSFER_SCALE = {
    Relation.SELF: 0.1,
    Relation.SAME_SOCKET: 1.0,
    Relation.SAME_NODE: 2.4,
    Relation.REMOTE: 40.0,  # software DSM / RDMA-style fallback
}

ALGORITHMS = ("test_and_set", "ticket", "mcs")


@dataclass(frozen=True)
class SpinlockResult:
    """Outcome of one contention experiment."""

    algorithm: str
    nthreads: int
    acquisitions: int
    total_seconds: float
    per_acquisition: np.ndarray  # cost of each critical-section handoff

    @property
    def mean_handoff(self) -> float:
        return float(self.per_acquisition.mean())


def _line_cost(machine: SimMachine, placement: Placement, a: int, b: int) -> float:
    """Seconds to move the lock's cache line from holder a to acquirer b."""
    base = machine.params.links[Relation.SAME_SOCKET].latency
    return base * LINE_TRANSFER_SCALE[placement.relation(a, b)]


def simulate_spinlock(
    machine: SimMachine,
    algorithm: str,
    placement: Placement,
    acquisitions_per_thread: int = 16,
    critical_section: float = 0.2e-6,
    stream: str = "spinlock",
    noisy: bool = True,
) -> SpinlockResult:
    """Simulate ``nthreads`` contending for one lock until every thread has
    completed its share of acquisitions."""
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; know {ALGORITHMS}")
    require_int(acquisitions_per_thread, "acquisitions_per_thread")
    if acquisitions_per_thread < 1:
        raise ValueError("acquisitions_per_thread must be >= 1")
    nthreads = placement.nprocs
    rng = machine.rng(stream, algorithm, nthreads) if noisy else None

    remaining = np.full(nthreads, acquisitions_per_thread)
    holder = 0
    now = 0.0
    costs = []
    total = int(remaining.sum())
    # Deterministic contention: FIFO for queue locks; for the others the
    # winner is drawn from the still-active threads, modelling the
    # arbitrary hardware arbitration of line ownership.
    fifo = list(range(nthreads))
    arbiter = machine.rng(stream, algorithm, nthreads, "arbiter")
    for _ in range(total):
        active = np.flatnonzero(remaining > 0)
        if algorithm == "mcs":
            queue_active = [t for t in fifo if remaining[t] > 0]
            winner = queue_active[0]
            fifo.remove(winner)
            fifo.append(winner)
        else:
            winner = int(active[arbiter.integers(active.size)])
        handoff = _line_cost(machine, placement, holder, winner)
        if algorithm == "test_and_set":
            # Failed test-and-set attempts by every other waiter keep
            # pulling the line around before the winner settles.
            storm = sum(
                _line_cost(machine, placement, winner, int(t))
                for t in active
                if t != winner
            )
            handoff += 0.5 * storm
        elif algorithm == "ticket":
            # The release's counter update is observed by all spinners:
            # one broadcast round of line transfers, amortised by
            # simultaneous snooping within a socket.
            sockets = {
                machine.topology.socket_of(placement.core_of(int(t)))
                for t in active
                if t != winner
            }
            handoff += sum(
                LINE_TRANSFER_SCALE[Relation.SAME_NODE]
                * machine.params.links[Relation.SAME_SOCKET].latency
                for _ in sockets
            )
        if rng is not None:
            handoff = machine.noise.sample_scalar(rng, handoff)
        now += handoff + critical_section
        costs.append(handoff)
        remaining[winner] -= 1
        holder = winner
    return SpinlockResult(
        algorithm=algorithm,
        nthreads=nthreads,
        acquisitions=total,
        total_seconds=now,
        per_acquisition=np.asarray(costs),
    )


def contention_sweep(
    machine: SimMachine,
    thread_counts,
    algorithms=ALGORITHMS,
    acquisitions_per_thread: int = 16,
    placement_policy: str = "block",
) -> dict[str, dict[int, SpinlockResult]]:
    """Mean handoff cost vs. contention level per algorithm (§5.1's
    experiment shape)."""
    out: dict[str, dict[int, SpinlockResult]] = {a: {} for a in algorithms}
    for n in thread_counts:
        placement = machine.placement(n, policy=placement_policy)
        for algorithm in algorithms:
            out[algorithm][n] = simulate_spinlock(
                machine, algorithm, placement,
                acquisitions_per_thread=acquisitions_per_thread,
            )
    return out


def barrier_lower_bound(machine: SimMachine, placement: Placement) -> float:
    """§5.1: a single uncontended atomic arrival signal is a lower bound on
    any barrier's per-process cost — the cheapest possible handoff."""
    costs = [
        _line_cost(machine, placement, a, b)
        for a in range(placement.nprocs)
        for b in range(placement.nprocs)
        if a != b
    ]
    return min(costs) if costs else 0.0
