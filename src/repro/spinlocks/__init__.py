"""§5.1 spinlock study: locality-dominated synchronisation on shared memory."""

from repro.spinlocks.model import (
    ALGORITHMS,
    LINE_TRANSFER_SCALE,
    SpinlockResult,
    barrier_lower_bound,
    contention_sweep,
    simulate_spinlock,
)
from repro.spinlocks.reference import reference_spinlock

__all__ = [
    "ALGORITHMS",
    "LINE_TRANSFER_SCALE",
    "SpinlockResult",
    "barrier_lower_bound",
    "contention_sweep",
    "reference_spinlock",
    "simulate_spinlock",
]
