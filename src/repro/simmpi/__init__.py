"""Discrete-event message-passing engine for stage-structured patterns."""

from repro.simmpi.engine import simulate_stages, stage_payload_matrix, StageEventTrace
from repro.simmpi.requests import (
    PersistentBarrier,
    PersistentRequest,
    StageRequests,
)

__all__ = [
    "simulate_stages",
    "stage_payload_matrix",
    "StageEventTrace",
    "PersistentBarrier",
    "PersistentRequest",
    "StageRequests",
]
