"""Discrete-event message-passing engine for stage-structured patterns.

The replication-batched engine lives in :mod:`repro.simmpi.engine`; the
original scalar implementation is preserved as its behavioural oracle in
:mod:`repro.simmpi.reference` (clean-path bit-identity is tested).
"""

from repro.simmpi.engine import (
    StageEventTrace,
    simulate_stages,
    simulate_stages_batch,
    stage_payload_matrix,
)
from repro.simmpi.requests import (
    PersistentBarrier,
    PersistentRequest,
    StageRequests,
)

__all__ = [
    "simulate_stages",
    "simulate_stages_batch",
    "stage_payload_matrix",
    "StageEventTrace",
    "PersistentBarrier",
    "PersistentRequest",
    "StageRequests",
]
