"""Discrete-event execution of stage-structured communication (§5.6.1).

This is the simulated counterpart of the thesis's C/MPI test harness
(Fig. 5.5): a pattern executes stage by stage; within a stage every
participant issues all its requests with one ``MPI_Startall``-like call and
blocks in ``MPI_Waitall`` until its sends are acknowledged and its receives
consumed.

Event semantics per message ``i -> j`` of ``size`` bytes:

1.  *Initiation*: process i is busy for its invocation overhead plus one
    start-overhead term per request; sends depart sequentially.
2.  *NIC serialisation*: remote messages queue FIFO at the source node's
    transmit NIC and the destination node's receive NIC, each charging
    ``nic_gap``.  This is the contention that makes dissemination patterns
    "stress the entire interconnect in most stages" (§5.4) — and it is
    deliberately invisible to the analytic model, as on real hardware.
3.  *Wire*: transit costs ``latency + size * inv_bandwidth``.
4.  *Consumption*: the receiver handles messages after it has finished its
    own initiation, one ``recv_overhead`` at a time.
5.  *Acknowledgement*: the sender's request completes one latency after
    consumption — the round trip behind the model's ``2 * L`` term.

All stochastic terms flow through the machine's :class:`NoiseModel` via the
caller-provided generator; passing ``rng=None`` yields clean event times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.noise import NoiseModel
from repro.machine.simmachine import CommTruth


@dataclass
class StageEventTrace:
    """Per-stage record kept when tracing is requested."""

    stage: int
    entry: np.ndarray
    exit: np.ndarray
    messages: int


def _noisy(noise: NoiseModel | None, rng, values: np.ndarray) -> np.ndarray:
    if rng is None or noise is None:
        return values
    return noise.sample(rng, values)


def simulate_stages(
    truth: CommTruth,
    stages,
    payload_bytes=None,
    rng: np.random.Generator | None = None,
    noise: NoiseModel | None = None,
    entry_times: np.ndarray | None = None,
    trace: list[StageEventTrace] | None = None,
) -> np.ndarray:
    """Execute stage matrices over the ground truth; return exit times.

    ``payload_bytes`` may be ``None`` (pure signals), a scalar, or a
    per-stage sequence of scalars/matrices.  ``entry_times`` lets callers
    model skewed arrival at the synchronisation point.
    """
    p = truth.nprocs
    stages = list(stages)
    nodes = np.array([truth.placement.node_of(r) for r in range(p)])
    n_nodes = int(nodes.max()) + 1 if p else 0
    remote = nodes[:, None] != nodes[None, :]

    t = np.zeros(p) if entry_times is None else np.array(entry_times, dtype=float)
    if t.shape != (p,):
        raise ValueError(f"entry_times must have shape ({p},)")

    for s_idx, stage in enumerate(stages):
        stage = np.asarray(stage, dtype=bool)
        if stage.shape != (p, p):
            raise ValueError(f"stage {s_idx} has wrong shape {stage.shape}")
        payload = stage_payload_matrix(payload_bytes, s_idx, p)

        sends_of = [np.flatnonzero(stage[i]) for i in range(p)]
        participants = stage.any(axis=1) | stage.any(axis=0)

        # 1. Initiation: busy time and sequential departures per sender.
        busy_end = t.copy()
        departs: dict[tuple[int, int], float] = {}
        for i in range(p):
            if not participants[i]:
                continue
            cursor = t[i] + float(
                _noisy(noise, rng, np.asarray(truth.invocation_overhead))
            )
            for j in sends_of[i]:
                cursor += float(
                    _noisy(noise, rng, np.asarray(truth.start_overhead[i, j]))
                )
                departs[(i, j)] = cursor
            busy_end[i] = cursor

        if not departs:
            # A stage with receivers but no senders cannot occur in a valid
            # pattern; a fully empty stage just costs nothing.
            continue

        msg_list = sorted(departs.items(), key=lambda kv: (kv[1], kv[0]))

        # 2./3. NIC serialisation and wire transit.
        tx_free = np.zeros(n_nodes)
        arrivals: list[tuple[float, int, int]] = []
        for (i, j), depart in msg_list:
            if remote[i, j]:
                wire_entry = max(depart, tx_free[nodes[i]])
                tx_free[nodes[i]] = wire_entry + truth.nic_gap
            else:
                wire_entry = depart
            transit = truth.latency[i, j] + payload[i, j] * truth.inv_bandwidth[i, j]
            arrive = wire_entry + float(_noisy(noise, rng, np.asarray(transit)))
            arrivals.append((arrive, i, j))

        arrivals.sort()
        rx_free = np.zeros(n_nodes)
        recv_cursor = busy_end.copy()  # receiver consumes after own initiation
        consumed_of = [[] for _ in range(p)]
        acks_of = [[] for _ in range(p)]
        for arrive, i, j in arrivals:
            if remote[i, j]:
                deliver = max(arrive, rx_free[nodes[j]])
                rx_free[nodes[j]] = deliver + truth.nic_gap
            else:
                deliver = arrive
            handle = max(deliver, recv_cursor[j]) + float(
                _noisy(noise, rng, np.asarray(truth.recv_overhead))
            )
            recv_cursor[j] = handle
            consumed_of[j].append(handle)
            ack = handle + float(_noisy(noise, rng, np.asarray(truth.latency[i, j])))
            acks_of[i].append(ack)

        # 5. Stage exit: Waitall returns when sends are acked and receives
        # consumed; non-participants pass through untouched.
        new_t = t.copy()
        for i in range(p):
            if not participants[i]:
                continue
            exit_time = busy_end[i]
            if acks_of[i]:
                exit_time = max(exit_time, max(acks_of[i]))
            if consumed_of[i]:
                exit_time = max(exit_time, max(consumed_of[i]))
            new_t[i] = exit_time
        t = new_t
        if trace is not None:
            trace.append(
                StageEventTrace(
                    stage=s_idx,
                    entry=t.copy(),
                    exit=t.copy(),
                    messages=len(msg_list),
                )
            )
    return t


def stage_payload_matrix(payload_bytes, stage_idx: int, p: int) -> np.ndarray:
    """Normalise a payload specification to a P x P byte matrix.

    Accepts ``None`` (pure signals), a scalar applied to every stage, or a
    per-stage sequence whose entries are scalars or full matrices.  Shared
    by the event engine and the analytic cost model so both price the same
    traffic.
    """
    if payload_bytes is None:
        return np.zeros((p, p))
    if np.isscalar(payload_bytes):
        return np.full((p, p), float(payload_bytes))
    spec = payload_bytes[stage_idx]
    if np.isscalar(spec):
        return np.full((p, p), float(spec))
    spec = np.asarray(spec, dtype=float)
    if spec.shape != (p, p):
        raise ValueError("per-stage payload matrix has wrong shape")
    return spec
