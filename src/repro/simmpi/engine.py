"""Discrete-event execution of stage-structured communication (§5.6.1).

This is the simulated counterpart of the thesis's C/MPI test harness
(Fig. 5.5): a pattern executes stage by stage; within a stage every
participant issues all its requests with one ``MPI_Startall``-like call and
blocks in ``MPI_Waitall`` until its sends are acknowledged and its receives
consumed.

Event semantics per message ``i -> j`` of ``size`` bytes:

1.  *Initiation*: process i is busy for its invocation overhead plus one
    start-overhead term per request; sends depart sequentially.
2.  *NIC serialisation*: remote messages queue FIFO at the source node's
    transmit NIC and the destination node's receive NIC, each charging
    ``nic_gap``.  This is the contention that makes dissemination patterns
    "stress the entire interconnect in most stages" (§5.4) — and it is
    deliberately invisible to the analytic model, as on real hardware.
3.  *Wire*: transit costs ``latency + size * inv_bandwidth``.
4.  *Consumption*: the receiver handles messages after it has finished its
    own initiation, one ``recv_overhead`` at a time.
5.  *Acknowledgement*: the sender's request completes one latency after
    consumption — the round trip behind the model's ``2 * L`` term.

Execution is *replication-batched*: :func:`simulate_stages_batch` runs all
``R`` noisy replications of a stage pattern as ``(R, P)`` ndarray state in
one pass.  Per replication the event semantics are exactly those of the
scalar reference engine (:mod:`repro.simmpi.reference`): initiation
cursors are per-sender cumulative sums, NIC FIFOs are per-node sequential
scans over stably-sorted departures/arrivals, and Waitall exits are
grouped maxima.  On the clean path (``rng=None`` or ``noise=None``) the
two engines are bit-identical.

RNG draw-order contract (noisy path)
------------------------------------
All stochastic terms flow through the machine's :class:`NoiseModel` via the
caller-provided generator; passing ``rng=None`` yields clean event times.
Noise is drawn in bulk per stage, in this fixed sequence of
:meth:`NoiseModel.sample` calls:

1. invocation overheads, shape ``(R, n_participants)`` with participants
   in ascending rank order;
2. start overheads, shape ``(R, M)``;
3. wire transits, shape ``(R, M)``;
4. receive overheads, shape ``(R, M)``;
5. acknowledgement latencies, shape ``(R, M)``;

where ``M`` is the stage's message count and messages are enumerated in
fixed sender-major ``(source, destination)`` order.  Each matrix is filled
in C order, i.e. **replication-major**: replication 0 takes the first row
of draws, replication 1 the next, and so on.  This order is part of the
engine's public contract — golden artifacts were regenerated when it
replaced the reference engine's per-message interleaved draws (see
``docs/engine.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.noise import NoiseModel
from repro.machine.simmachine import CommTruth
from repro.obs import current as _telemetry
from repro.obs.provenance import EngineProvenance, StageProvenance


@dataclass
class StageEventTrace:
    """Per-stage record kept when tracing is requested.

    ``entry`` holds the clocks *before* the stage ran and ``exit`` the
    clocks after it; both are ``(P,)`` from :func:`simulate_stages` and
    ``(R, P)`` from :func:`simulate_stages_batch`.
    """

    stage: int
    entry: np.ndarray
    exit: np.ndarray
    messages: int


def stage_payload_matrix(payload_bytes, stage_idx: int, p: int) -> np.ndarray:
    """Normalise a payload specification to a P x P byte matrix.

    Accepts ``None`` (pure signals), a scalar applied to every stage, or a
    per-stage sequence whose entries are scalars or full matrices.  Shared
    by the event engine and the analytic cost model so both price the same
    traffic.
    """
    if payload_bytes is None:
        return np.zeros((p, p))
    if np.isscalar(payload_bytes):
        return np.full((p, p), float(payload_bytes))
    spec = payload_bytes[stage_idx]
    if np.isscalar(spec):
        return np.full((p, p), float(spec))
    spec = np.asarray(spec, dtype=float)
    if spec.shape != (p, p):
        raise ValueError("per-stage payload matrix has wrong shape")
    return spec


def _batch_entry_times(entry_times, runs: int, p: int) -> np.ndarray:
    """Normalise ``entry_times`` to a fresh ``(runs, p)`` float matrix."""
    if entry_times is None:
        return np.zeros((runs, p))
    t = np.array(entry_times, dtype=float)
    if t.shape == (p,):
        return np.broadcast_to(t, (runs, p)).copy()
    if t.shape == (runs, p):
        return t
    raise ValueError(
        f"entry_times must have shape ({p},) or ({runs}, {p}), got {t.shape}"
    )


def _draw(noise, rng, base, runs: int) -> np.ndarray:
    """One bulk noise matrix: ``(runs, *base.shape)``, replication-major.

    On the clean path the broadcast base values are returned as a
    (read-only) view — no RNG state is consumed.
    """
    if rng is None or noise is None:
        return np.broadcast_to(base, (runs, *np.shape(base)))
    return noise.sample_matrix(rng, base, runs)


def simulate_stages_batch(
    truth: CommTruth,
    stages,
    runs: int = 1,
    payload_bytes=None,
    rng: np.random.Generator | None = None,
    noise: NoiseModel | None = None,
    entry_times: np.ndarray | None = None,
    trace: list[StageEventTrace] | None = None,
    provenance: EngineProvenance | None = None,
) -> np.ndarray:
    """Execute ``runs`` noisy replications of the stage pattern in one pass.

    Returns the ``(runs, P)`` matrix of per-replication exit times.
    ``entry_times`` may be ``(P,)`` (shared by every replication) or
    ``(runs, P)``.  With ``rng=None`` (or ``noise=None``) every replication
    is the identical clean execution, computed once and broadcast.

    Stage traces are **opt-in**: pass ``trace=[]`` to collect
    :class:`StageEventTrace` records, or enable telemetry
    (:mod:`repro.obs`), under which the engine collects them internally
    and emits one host span per call plus one *simulated-time* span
    summary per stage.  With both off, the stage loop allocates no
    per-stage trace state.  Telemetry draws no randomness and never
    changes the returned exits.

    Event provenance is likewise opt-in: pass a fresh
    :class:`repro.obs.provenance.EngineProvenance` as ``provenance=`` to
    record every event time plus NIC/receiver FIFO predecessor links,
    enough for :mod:`repro.obs.critpath` to rebuild the full event graph.
    Recording draws no randomness and never changes the returned exits.
    """
    tele = _telemetry()
    if tele is None:
        return _simulate_stages_batch(
            truth, stages, runs, payload_bytes, rng, noise, entry_times,
            trace, provenance,
        )
    stages = list(stages)
    eng_trace: list[StageEventTrace] = trace if trace is not None else []
    first = len(eng_trace)
    with tele.span(
        "engine.simulate_stages_batch",
        runs=int(runs),
        nprocs=int(truth.nprocs),
        stages=len(stages),
        clean=bool(rng is None or noise is None),
    ) as span:
        exits = _simulate_stages_batch(
            truth, stages, runs, payload_bytes, rng, noise, entry_times,
            eng_trace, provenance,
        )
        for rec in eng_trace[first:]:
            entry_min = float(rec.entry.min()) if rec.entry.size else 0.0
            exit_max = float(rec.exit.max()) if rec.exit.size else 0.0
            tele.emit_span(
                "engine.stage",
                entry_min,
                exit_max - entry_min,
                time_base="sim",
                stage=int(rec.stage),
                messages=int(rec.messages),
                runs=int(runs),
                sim_exit_mean_s=float(
                    np.atleast_2d(rec.exit).max(axis=-1).mean()
                ),
            )
        span.set(
            "sim_makespan_s", float(exits.max()) if exits.size else 0.0
        )
    return exits


def _simulate_stages_batch(
    truth: CommTruth,
    stages,
    runs: int,
    payload_bytes,
    rng: np.random.Generator | None,
    noise: NoiseModel | None,
    entry_times: np.ndarray | None,
    trace: list[StageEventTrace] | None,
    provenance: EngineProvenance | None = None,
) -> np.ndarray:
    if runs < 1:
        raise ValueError("runs must be >= 1")
    p = truth.nprocs
    clean = rng is None or noise is None

    if clean and runs > 1 and (
        entry_times is None or np.asarray(entry_times).ndim == 1
    ):
        # Clean replications are identical: compute one, broadcast all.
        # Provenance rides through the runs=1 sub-call with its arrays
        # left single-row (rep_row clamps), only the requested replication
        # count re-tagged.
        sub_trace: list[StageEventTrace] | None = (
            [] if trace is not None else None
        )
        one = _simulate_stages_batch(
            truth, stages, runs=1, payload_bytes=payload_bytes,
            rng=None, noise=None, entry_times=entry_times, trace=sub_trace,
            provenance=provenance,
        )
        if provenance is not None:
            provenance.runs = int(runs)
        if trace is not None:
            trace.extend(
                StageEventTrace(
                    stage=rec.stage,
                    entry=np.broadcast_to(rec.entry[0], (runs, p)).copy(),
                    exit=np.broadcast_to(rec.exit[0], (runs, p)).copy(),
                    messages=rec.messages,
                )
                for rec in sub_trace  # type: ignore[union-attr]
            )
        return np.broadcast_to(one[0], (runs, p)).copy()

    stages = list(stages)
    nodes = np.array(
        [truth.placement.node_of(r) for r in range(p)], dtype=np.intp
    )
    n_nodes = int(nodes.max()) + 1 if p else 0
    remote = nodes[:, None] != nodes[None, :]
    rows = np.arange(runs)

    t = _batch_entry_times(entry_times, runs, p)

    capture = provenance is not None
    if capture:
        provenance.runs = int(runs)
        provenance.nprocs = int(p)
        provenance.nic_gap = float(truth.nic_gap)
        provenance.initial_entry = t.copy()

    for s_idx, stage in enumerate(stages):
        stage = np.asarray(stage, dtype=bool)
        if stage.shape != (p, p):
            raise ValueError(f"stage {s_idx} has wrong shape {stage.shape}")
        src, dst = np.nonzero(stage)  # sender-major fixed message order
        n_msg = src.size
        if n_msg == 0:
            # A stage with receivers but no senders cannot occur in a valid
            # pattern; a fully empty stage just costs nothing.
            continue
        payload = stage_payload_matrix(payload_bytes, s_idx, p)
        # Entry snapshot only when a trace/provenance was requested: the
        # untraced hot path must not allocate per-stage (R, P) copies.
        stage_entry = t.copy() if (trace is not None or capture) else None

        participants = np.flatnonzero(stage.any(axis=1) | stage.any(axis=0))
        senders = np.flatnonzero(stage.any(axis=1))
        send_counts = stage.sum(axis=1)[senders]
        offsets = np.concatenate(([0], np.cumsum(send_counts)))
        sender_of_msg = np.repeat(np.arange(senders.size), send_counts)
        within = np.arange(n_msg) - offsets[:-1][sender_of_msg]

        # --- bulk noise (documented draw order; see module docstring) ----
        inv_vals = _draw(
            noise, rng, np.full(participants.size, truth.invocation_overhead),
            runs,
        )
        start_vals = _draw(noise, rng, truth.start_overhead[src, dst], runs)
        transit_vals = _draw(
            noise, rng,
            truth.latency[src, dst] + payload[src, dst]
            * truth.inv_bandwidth[src, dst],
            runs,
        )
        recv_vals = _draw(
            noise, rng, np.full(n_msg, truth.recv_overhead), runs
        )
        ack_vals = _draw(noise, rng, truth.latency[src, dst], runs)

        # 1. Initiation: departure cursors are per-sender cumulative sums
        # seeded with entry + invocation overhead; padding with zeros keeps
        # the prefix sums bit-identical to the reference scalar chain.
        busy_end = t.copy()
        after_inv = t[:, participants] + inv_vals
        busy_end[:, participants] = after_inv
        sender_pos = np.searchsorted(participants, senders)
        pad = np.zeros((runs, senders.size, int(send_counts.max()) + 1))
        pad[:, :, 0] = after_inv[:, sender_pos]
        pad[:, sender_of_msg, within + 1] = start_vals
        cursors = np.cumsum(pad, axis=2)
        departs = cursors[:, sender_of_msg, within + 1]
        busy_end[:, senders] = cursors[:, np.arange(senders.size), send_counts]

        # 2./3. Transmit-NIC FIFO and wire transit: a per-node sequential
        # scan over departures stably sorted per replication — the stable
        # sort preserves the fixed (source, destination) tie order of the
        # reference engine.
        msg_remote = remote[src, dst]
        src_nodes = nodes[src]
        order = np.argsort(departs, axis=1, kind="stable")
        dep_sorted = np.take_along_axis(departs, order, axis=1)
        if capture:
            tx_pred_sorted = np.full((runs, n_msg), -1, dtype=np.intp)
            tx_last = np.full((runs, n_nodes), -1, dtype=np.intp)
        if msg_remote.any():
            wire = np.empty((runs, n_msg))
            tx_free = np.zeros((runs, n_nodes))
            for k in range(n_msg):
                m = order[:, k]
                node = src_nodes[m]
                rm = msg_remote[m]
                d = dep_sorted[:, k]
                prev = tx_free[rows, node]
                we = np.where(rm, np.maximum(d, prev), d)
                tx_free[rows, node] = np.where(rm, we + truth.nic_gap, prev)
                wire[:, k] = we
                if capture:
                    tx_pred_sorted[:, k] = np.where(
                        rm, tx_last[rows, node], -1
                    )
                    tx_last[rows, node] = np.where(rm, m, tx_last[rows, node])
        else:
            wire = dep_sorted
        if capture:
            wire_entry = np.empty((runs, n_msg))
            np.put_along_axis(wire_entry, order, wire, axis=1)
            tx_pred = np.empty((runs, n_msg), dtype=np.intp)
            np.put_along_axis(tx_pred, order, tx_pred_sorted, axis=1)
        arrive_sorted = wire + np.take_along_axis(transit_vals, order, axis=1)
        arrivals = np.empty((runs, n_msg))
        np.put_along_axis(arrivals, order, arrive_sorted, axis=1)

        # 4./5. Receive-NIC FIFO, consumption, acknowledgement: one scan in
        # per-replication arrival order.
        order2 = np.argsort(arrivals, axis=1, kind="stable")
        arr2 = np.take_along_axis(arrivals, order2, axis=1)
        recv2 = np.take_along_axis(recv_vals, order2, axis=1)
        ack2 = np.take_along_axis(ack_vals, order2, axis=1)
        dst_nodes = nodes[dst]
        recv_cursor = busy_end.copy()
        rx_free = np.zeros((runs, n_nodes))
        handles_sorted = np.empty((runs, n_msg))
        acks_sorted = np.empty((runs, n_msg))
        any_remote = bool(msg_remote.any())
        if capture:
            deliver_sorted = np.empty((runs, n_msg))
            rx_pred_sorted = np.full((runs, n_msg), -1, dtype=np.intp)
            recv_pred_sorted = np.full((runs, n_msg), -1, dtype=np.intp)
            rx_last = np.full((runs, n_nodes), -1, dtype=np.intp)
            rcv_last = np.full((runs, p), -1, dtype=np.intp)
        for k in range(n_msg):
            m = order2[:, k]
            a = arr2[:, k]
            j = dst[m]
            if any_remote:
                node = dst_nodes[m]
                rm = msg_remote[m]
                prev = rx_free[rows, node]
                deliver = np.where(rm, np.maximum(a, prev), a)
                rx_free[rows, node] = np.where(
                    rm, deliver + truth.nic_gap, prev
                )
                if capture:
                    rx_pred_sorted[:, k] = np.where(
                        rm, rx_last[rows, node], -1
                    )
                    rx_last[rows, node] = np.where(rm, m, rx_last[rows, node])
            else:
                deliver = a
            handle = np.maximum(deliver, recv_cursor[rows, j]) + recv2[:, k]
            recv_cursor[rows, j] = handle
            handles_sorted[:, k] = handle
            acks_sorted[:, k] = handle + ack2[:, k]
            if capture:
                deliver_sorted[:, k] = deliver
                recv_pred_sorted[:, k] = rcv_last[rows, j]
                rcv_last[rows, j] = m
        handles = np.empty((runs, n_msg))
        np.put_along_axis(handles, order2, handles_sorted, axis=1)
        acks = np.empty((runs, n_msg))
        np.put_along_axis(acks, order2, acks_sorted, axis=1)

        # Stage exit: Waitall returns when sends are acked and receives
        # consumed — grouped maxima over the fixed message order;
        # non-participants pass through untouched.
        new_t = t.copy()
        new_t[:, participants] = busy_end[:, participants]
        ack_max = np.maximum.reduceat(acks, offsets[:-1], axis=1)
        new_t[:, senders] = np.maximum(new_t[:, senders], ack_max)
        recv_perm = np.lexsort((src, dst))  # group messages by receiver
        receivers, recv_counts = np.unique(dst, return_counts=True)
        recv_offsets = np.concatenate(([0], np.cumsum(recv_counts)[:-1]))
        cons_max = np.maximum.reduceat(
            handles[:, recv_perm], recv_offsets, axis=1
        )
        new_t[:, receivers] = np.maximum(new_t[:, receivers], cons_max)
        t = new_t
        if capture:
            deliver_canon = np.empty((runs, n_msg))
            np.put_along_axis(deliver_canon, order2, deliver_sorted, axis=1)
            rx_pred = np.empty((runs, n_msg), dtype=np.intp)
            np.put_along_axis(rx_pred, order2, rx_pred_sorted, axis=1)
            recv_pred = np.empty((runs, n_msg), dtype=np.intp)
            np.put_along_axis(recv_pred, order2, recv_pred_sorted, axis=1)
            provenance.stages.append(
                StageProvenance(
                    stage=s_idx,
                    src=src,
                    dst=dst,
                    participants=participants,
                    senders=senders,
                    sender_of_msg=sender_of_msg,
                    offsets=offsets,
                    msg_remote=msg_remote,
                    src_nodes=src_nodes,
                    dst_nodes=dst_nodes,
                    entry=stage_entry,
                    after_inv=after_inv,
                    departs=departs,
                    wire_entry=wire_entry,
                    tx_pred=tx_pred,
                    arrivals=arrivals,
                    deliver=deliver_canon,
                    rx_pred=rx_pred,
                    handles=handles,
                    recv_pred=recv_pred,
                    acks=acks,
                    busy_end=busy_end,
                    exit=t,
                )
            )
        if trace is not None:
            trace.append(
                StageEventTrace(
                    stage=s_idx,
                    entry=stage_entry,
                    exit=t.copy(),
                    messages=n_msg,
                )
            )
    if capture:
        provenance.final_exit = t
    return t


def simulate_stages(
    truth: CommTruth,
    stages,
    payload_bytes=None,
    rng: np.random.Generator | None = None,
    noise: NoiseModel | None = None,
    entry_times: np.ndarray | None = None,
    trace: list[StageEventTrace] | None = None,
    provenance: EngineProvenance | None = None,
) -> np.ndarray:
    """Execute stage matrices over the ground truth; return exit times.

    ``payload_bytes`` may be ``None`` (pure signals), a scalar, or a
    per-stage sequence of scalars/matrices.  ``entry_times`` lets callers
    model skewed arrival at the synchronisation point.

    This is the single-replication view of :func:`simulate_stages_batch`;
    callers measuring many noisy runs should pass ``runs=R`` there instead
    of looping here.  A ``provenance`` record is filled with
    single-replication rows.
    """
    p = truth.nprocs
    if entry_times is not None and np.shape(entry_times) != (p,):
        raise ValueError(f"entry_times must have shape ({p},)")
    batch_trace: list[StageEventTrace] | None = (
        [] if trace is not None else None
    )
    exits = simulate_stages_batch(
        truth,
        stages,
        runs=1,
        payload_bytes=payload_bytes,
        rng=rng,
        noise=noise,
        entry_times=entry_times,
        trace=batch_trace,
        provenance=provenance,
    )
    if trace is not None:
        trace.extend(
            StageEventTrace(
                stage=rec.stage,
                entry=rec.entry[0],
                exit=rec.exit[0],
                messages=rec.messages,
            )
            for rec in batch_trace  # type: ignore[union-attr]
        )
    return exits[0]
