"""Reference (scalar) discrete-event engine — the pre-batching implementation.

This module preserves the original per-message Python implementation of
:func:`repro.simmpi.engine.simulate_stages` verbatim, as the behavioural
oracle for the vectorized replication-batched engine that replaced it on
the hot path.  The contract between the two:

* **Clean path** (``rng=None`` or ``noise=None``): the batched engine is
  *bit-identical* to this reference for every registered pattern family —
  the vectorized recurrences apply the same floating-point operations in
  the same order (tested in ``tests/simmpi/test_engine_batch.py``).
* **Noisy path**: the engines draw the same noise terms from the same
  distributions but in a different (replication-major, bulk) order, so
  individual runs differ while statistics agree distributionally.

Keep this implementation dumb and obvious: its value is that it is easy to
audit against the §5.6.1 event semantics, not that it is fast.  The one
deliberate divergence from the historical code is the
:class:`StageEventTrace` fix — entry times are recorded *before* the stage
advances the clocks (the old code recorded ``entry == exit``).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.noise import NoiseModel
from repro.machine.simmachine import CommTruth
from repro.simmpi.engine import StageEventTrace, stage_payload_matrix


def _noisy(noise: NoiseModel | None, rng, values: np.ndarray) -> np.ndarray:
    if rng is None or noise is None:
        return values
    return noise.sample(rng, values)


def simulate_stages(
    truth: CommTruth,
    stages,
    payload_bytes=None,
    rng: np.random.Generator | None = None,
    noise: NoiseModel | None = None,
    entry_times: np.ndarray | None = None,
    trace: list[StageEventTrace] | None = None,
) -> np.ndarray:
    """Execute stage matrices over the ground truth; return exit times.

    ``payload_bytes`` may be ``None`` (pure signals), a scalar, or a
    per-stage sequence of scalars/matrices.  ``entry_times`` lets callers
    model skewed arrival at the synchronisation point.
    """
    p = truth.nprocs
    stages = list(stages)
    nodes = np.array([truth.placement.node_of(r) for r in range(p)])
    n_nodes = int(nodes.max()) + 1 if p else 0
    remote = nodes[:, None] != nodes[None, :]

    t = np.zeros(p) if entry_times is None else np.array(entry_times, dtype=float)
    if t.shape != (p,):
        raise ValueError(f"entry_times must have shape ({p},)")

    for s_idx, stage in enumerate(stages):
        stage = np.asarray(stage, dtype=bool)
        if stage.shape != (p, p):
            raise ValueError(f"stage {s_idx} has wrong shape {stage.shape}")
        payload = stage_payload_matrix(payload_bytes, s_idx, p)
        stage_entry = t.copy()

        sends_of = [np.flatnonzero(stage[i]) for i in range(p)]
        participants = stage.any(axis=1) | stage.any(axis=0)

        # 1. Initiation: busy time and sequential departures per sender.
        busy_end = t.copy()
        departs: dict[tuple[int, int], float] = {}
        for i in range(p):
            if not participants[i]:
                continue
            cursor = t[i] + float(
                _noisy(noise, rng, np.asarray(truth.invocation_overhead))
            )
            for j in sends_of[i]:
                cursor += float(
                    _noisy(noise, rng, np.asarray(truth.start_overhead[i, j]))
                )
                departs[(i, j)] = cursor
            busy_end[i] = cursor

        if not departs:
            # A stage with receivers but no senders cannot occur in a valid
            # pattern; a fully empty stage just costs nothing.
            continue

        msg_list = sorted(departs.items(), key=lambda kv: (kv[1], kv[0]))

        # 2./3. NIC serialisation and wire transit.
        tx_free = np.zeros(n_nodes)
        arrivals: list[tuple[float, int, int]] = []
        for (i, j), depart in msg_list:
            if remote[i, j]:
                wire_entry = max(depart, tx_free[nodes[i]])
                tx_free[nodes[i]] = wire_entry + truth.nic_gap
            else:
                wire_entry = depart
            transit = truth.latency[i, j] + payload[i, j] * truth.inv_bandwidth[i, j]
            arrive = wire_entry + float(_noisy(noise, rng, np.asarray(transit)))
            arrivals.append((arrive, i, j))

        arrivals.sort()
        rx_free = np.zeros(n_nodes)
        recv_cursor = busy_end.copy()  # receiver consumes after own initiation
        consumed_of = [[] for _ in range(p)]
        acks_of = [[] for _ in range(p)]
        for arrive, i, j in arrivals:
            if remote[i, j]:
                deliver = max(arrive, rx_free[nodes[j]])
                rx_free[nodes[j]] = deliver + truth.nic_gap
            else:
                deliver = arrive
            handle = max(deliver, recv_cursor[j]) + float(
                _noisy(noise, rng, np.asarray(truth.recv_overhead))
            )
            recv_cursor[j] = handle
            consumed_of[j].append(handle)
            ack = handle + float(_noisy(noise, rng, np.asarray(truth.latency[i, j])))
            acks_of[i].append(ack)

        # 5. Stage exit: Waitall returns when sends are acked and receives
        # consumed; non-participants pass through untouched.
        new_t = t.copy()
        for i in range(p):
            if not participants[i]:
                continue
            exit_time = busy_end[i]
            if acks_of[i]:
                exit_time = max(exit_time, max(acks_of[i]))
            if consumed_of[i]:
                exit_time = max(exit_time, max(consumed_of[i]))
            new_t[i] = exit_time
        t = new_t
        if trace is not None:
            trace.append(
                StageEventTrace(
                    stage=s_idx,
                    entry=stage_entry,
                    exit=t.copy(),
                    messages=len(msg_list),
                )
            )
    return t
