"""Persistent-request barrier execution, mirroring Fig. 5.5's C/MPI shape.

The thesis's test harness stores, per stage, the pre-initialised send and
receive request lists of a ``barrier_t`` and replays them with
``MPI_Startall`` / ``MPI_Waitall``.  :class:`PersistentBarrier` reproduces
that structure over the event engine: requests are built once from a
:class:`BarrierPattern`, then ``execute`` replays them per run, so the
simulated object model matches the instrumented C program the thesis
measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.barriers.patterns import BarrierPattern
from repro.machine.simmachine import CommTruth, SimMachine
from repro.simmpi.engine import simulate_stages
from repro.util.validation import require_int


@dataclass(frozen=True)
class PersistentRequest:
    """One pre-initialised point-to-point request."""

    source: int
    destination: int
    stage: int
    is_send: bool


@dataclass(frozen=True)
class StageRequests:
    """The srcs/dsts request lists of one barrier stage (Fig. 5.5)."""

    stage: int
    sends: tuple[PersistentRequest, ...]
    receives: tuple[PersistentRequest, ...]

    @property
    def request_count(self) -> int:
        return len(self.sends) + len(self.receives)


class PersistentBarrier:
    """A barrier pattern compiled to persistent request lists."""

    def __init__(self, machine: SimMachine, pattern: BarrierPattern,
                 placement):
        if placement.nprocs != pattern.nprocs:
            raise ValueError("pattern and placement sizes differ")
        self.machine = machine
        self.pattern = pattern
        self.placement = placement
        self.truth: CommTruth = machine.comm_truth(placement)
        self.stages: list[StageRequests] = []
        for k, stage in enumerate(pattern.stages):
            srcs, dsts = np.nonzero(stage)
            sends = tuple(
                PersistentRequest(int(i), int(j), k, True)
                for i, j in zip(srcs, dsts)
            )
            receives = tuple(
                PersistentRequest(int(i), int(j), k, False)
                for i, j in zip(srcs, dsts)
            )
            self.stages.append(StageRequests(k, sends, receives))

    def requests_of(self, rank: int, stage: int) -> list[PersistentRequest]:
        """The rank's Startall batch for one stage (sends + receives)."""
        require_int(rank, "rank")
        sr = self.stages[stage]
        return [r for r in sr.sends if r.source == rank] + [
            r for r in sr.receives if r.destination == rank
        ]

    def execute(
        self,
        rng: np.random.Generator | None = None,
        payload_bytes=None,
        entry_times=None,
    ) -> np.ndarray:
        """One barrier execution: Startall/Waitall per stage; returns the
        per-process completion times."""
        return simulate_stages(
            self.truth,
            self.pattern.stages,
            payload_bytes=payload_bytes,
            rng=rng,
            noise=self.machine.noise if rng is not None else None,
            entry_times=entry_times,
        )

    def timed_runs(self, runs: int, stream: str = "persistent-barrier") -> np.ndarray:
        """Worst-case completion per run, as the Fig. 5.5 harness times it."""
        runs = require_int(runs, "runs")
        if runs < 1:
            raise ValueError("runs must be >= 1")
        rng = self.machine.rng(stream, self.pattern.name, self.pattern.nprocs)
        out = np.empty(runs)
        for r in range(runs):
            exits = self.execute(rng=rng)
            out[r] = exits.max() if exits.size else 0.0
        return out
