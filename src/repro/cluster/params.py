"""Ground-truth communication and computation parameters of a cluster.

These are the *platform's* true characteristics; the modelling framework
never reads them directly.  It only ever sees statistics extracted by the
benchmark programs (`repro.bench`), mirroring the thesis's separation of
platform profile and model input (§1.2 Stage 1).

Per pairwise relation class we keep the heterogeneous Hockney-style triple
(§5.6.2): one-way wire latency ``latency``, per-request start overhead
``start_overhead`` (the cost one extra request adds to an ``MPI_Startall``
batch), and ``inv_bandwidth`` (seconds per byte).  On top of that the event
engine charges ``nic_gap`` per remote message at each node's NIC, producing
the contention that makes dissemination patterns stress the interconnect
(§5.4) without being visible to the analytic model — one honest source of
prediction error, as in the thesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import Relation
from repro.util.validation import require_nonnegative, require_positive


@dataclass(frozen=True)
class LinkParams:
    """Pairwise cost triple for one topological relation class."""

    latency: float  # one-way wire latency [s]
    start_overhead: float  # marginal cost per started request [s]
    inv_bandwidth: float  # [s / byte]

    def __post_init__(self):
        require_nonnegative(self.latency, "latency")
        require_nonnegative(self.start_overhead, "start_overhead")
        require_nonnegative(self.inv_bandwidth, "inv_bandwidth")


@dataclass(frozen=True)
class CacheLevel:
    """One stage of the memory hierarchy seen by a core."""

    size_bytes: int  # capacity of this level
    bandwidth: float  # sustainable stream bandwidth [bytes/s]

    def __post_init__(self):
        require_positive(self.size_bytes, "size_bytes")
        require_positive(self.bandwidth, "bandwidth")


@dataclass(frozen=True)
class CoreParams:
    """Compute-side parameters of one core design (Ch. 4).

    The kernel-time model is roofline-flavoured: per element a kernel pays
    flop time (``flops / flop_rate``) plus memory time (``bytes /
    level_bandwidth``) where the level is picked by the working-set size.
    ``invocation_overhead`` is the fixed cost of entering a kernel once.
    """

    flop_rate: float  # peak scalar flop rate [flop/s]
    cache_levels: tuple[CacheLevel, ...]  # ordered, innermost first
    ram_bandwidth: float  # [bytes/s] past the last cache level
    invocation_overhead: float = 2.0e-7  # [s] per kernel invocation
    multiply_accumulate: bool = False  # fused mul+add at half cost (§3.3)
    # Stores cost a write-allocate round trip: each written byte moves this
    # many bytes of effective traffic.  This is what separates store-bound
    # kernels (saxpy) from read-only ones (sdot) in the §4.2 sweeps.
    write_allocate_factor: float = 2.0

    def __post_init__(self):
        require_positive(self.flop_rate, "flop_rate")
        require_positive(self.ram_bandwidth, "ram_bandwidth")
        require_nonnegative(self.invocation_overhead, "invocation_overhead")
        require_nonnegative(self.write_allocate_factor, "write_allocate_factor")
        if not self.cache_levels:
            raise ValueError("at least one cache level is required")
        sizes = [lvl.size_bytes for lvl in self.cache_levels]
        if sizes != sorted(sizes):
            raise ValueError("cache levels must be ordered innermost-first")

    def bandwidth_for_footprint(self, footprint_bytes: float) -> float:
        """Stream bandwidth for a working set of the given size."""
        require_nonnegative(footprint_bytes, "footprint_bytes")
        for level in self.cache_levels:
            if footprint_bytes <= level.size_bytes:
                return level.bandwidth
        return self.ram_bandwidth


@dataclass(frozen=True)
class ClusterParams:
    """Full ground-truth parameter set for a simulated cluster."""

    links: dict[Relation, LinkParams]
    core: CoreParams
    nic_gap: float = 2.5e-6  # NIC occupancy per remote message [s]
    recv_overhead: float = 4.0e-7  # per-message receive handling cost [s]
    invocation_overhead: float = 2.5e-7  # O_ii: cost of an empty start call [s]
    # Optional per-core flop-rate multipliers keyed by global socket index,
    # modelling mixed processor configurations (§3.3).
    socket_rate_scale: dict[int, float] = field(default_factory=dict)

    def __post_init__(self):
        require_nonnegative(self.nic_gap, "nic_gap")
        require_nonnegative(self.recv_overhead, "recv_overhead")
        require_nonnegative(self.invocation_overhead, "invocation_overhead")
        missing = [r for r in (Relation.SAME_SOCKET, Relation.SAME_NODE, Relation.REMOTE)
                   if r not in self.links]
        if missing:
            raise ValueError(f"links missing relations: {missing}")
        for scale in self.socket_rate_scale.values():
            require_positive(scale, "socket_rate_scale value")

    def link(self, relation: Relation) -> LinkParams:
        if relation == Relation.SELF:
            # A process "communicating" with itself is a local memcpy; treat
            # as the same-socket link with zero wire latency.
            base = self.links[Relation.SAME_SOCKET]
            return LinkParams(0.0, base.start_overhead, base.inv_bandwidth)
        return self.links[relation]
