"""Hierarchical cluster topology and process placement.

Models the thesis's test systems: clusters of SMP nodes, each node holding
multiple sockets, each socket multiple cores (§2.2.4, §5.6.6).  Processes are
mapped to cores by a :class:`Placement`; the default reproduces the thesis's
environment: the batch scheduler hands out *nodes* round-robin (§5.6.6) and
the affinity library pins ranks to core indices by their position in the
sorted list of co-resident ranks (§5.2).

The topological *relation* between two cores (same core / same socket / same
node / remote) is the sole index into the pairwise communication parameters,
which is exactly the locality structure the thesis's latency model captures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.validation import require_int


class Relation(enum.IntEnum):
    """Topological distance class between two cores (ordered by locality)."""

    SELF = 0
    SAME_SOCKET = 1
    SAME_NODE = 2
    REMOTE = 3


@dataclass(frozen=True)
class Topology:
    """A cluster of ``nodes`` x ``sockets_per_node`` x ``cores_per_socket``.

    Core ids are dense integers in ``[0, total_cores)`` laid out node-major,
    socket-major: core ``c`` lives on node ``c // cores_per_node``.
    """

    nodes: int
    sockets_per_node: int
    cores_per_socket: int
    name: str = ""

    def __post_init__(self):
        require_int(self.nodes, "nodes")
        require_int(self.sockets_per_node, "sockets_per_node")
        require_int(self.cores_per_socket, "cores_per_socket")
        if min(self.nodes, self.sockets_per_node, self.cores_per_socket) < 1:
            raise ValueError("topology dimensions must all be >= 1")

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def node_of(self, core: int) -> int:
        self._check_core(core)
        return core // self.cores_per_node

    def socket_of(self, core: int) -> int:
        """Global socket index of a core."""
        self._check_core(core)
        node, within = divmod(core, self.cores_per_node)
        return node * self.sockets_per_node + within // self.cores_per_socket

    def relation(self, a: int, b: int) -> Relation:
        """Topological distance class between cores ``a`` and ``b``."""
        self._check_core(a)
        self._check_core(b)
        if a == b:
            return Relation.SELF
        if self.node_of(a) != self.node_of(b):
            return Relation.REMOTE
        if self.socket_of(a) != self.socket_of(b):
            return Relation.SAME_NODE
        return Relation.SAME_SOCKET

    def _check_core(self, core: int) -> None:
        require_int(core, "core")
        if not 0 <= core < self.total_cores:
            raise ValueError(
                f"core {core} out of range for {self.total_cores}-core topology"
            )

    def describe(self) -> str:
        label = self.name or "cluster"
        return (
            f"{label}: {self.nodes} nodes x {self.sockets_per_node} sockets "
            f"x {self.cores_per_socket} cores = {self.total_cores} cores"
        )


class Placement:
    """Mapping of MPI-style ranks onto topology cores.

    ``cores[r]`` is the core executing rank ``r``.  The mapping is injective;
    a rank owns its core for the duration of a run (the thesis pins affinity
    precisely to keep pairwise costs reproducible, §5.2).
    """

    def __init__(self, topology: Topology, cores):
        self.topology = topology
        cores = np.asarray(cores, dtype=np.int64)
        if cores.ndim != 1 or cores.size == 0:
            raise ValueError("placement needs a non-empty 1-D core list")
        if np.unique(cores).size != cores.size:
            raise ValueError("placement maps two ranks to one core")
        if cores.min() < 0 or cores.max() >= topology.total_cores:
            raise ValueError("placement references cores outside the topology")
        self.cores = cores

    @property
    def nprocs(self) -> int:
        return int(self.cores.size)

    def core_of(self, rank: int) -> int:
        require_int(rank, "rank")
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range for P={self.nprocs}")
        return int(self.cores[rank])

    def node_of(self, rank: int) -> int:
        return self.topology.node_of(self.core_of(rank))

    def relation(self, a: int, b: int) -> Relation:
        return self.topology.relation(self.core_of(a), self.core_of(b))

    def relation_matrix(self) -> np.ndarray:
        """P x P integer matrix of :class:`Relation` values."""
        p = self.nprocs
        nodes = np.array([self.topology.node_of(c) for c in self.cores])
        sockets = np.array([self.topology.socket_of(c) for c in self.cores])
        rel = np.full((p, p), int(Relation.REMOTE), dtype=np.int64)
        same_node = nodes[:, None] == nodes[None, :]
        same_socket = sockets[:, None] == sockets[None, :]
        rel[same_node] = int(Relation.SAME_NODE)
        rel[same_node & same_socket] = int(Relation.SAME_SOCKET)
        np.fill_diagonal(rel, int(Relation.SELF))
        return rel

    @classmethod
    def round_robin(cls, topology: Topology, nprocs: int) -> "Placement":
        """The thesis's default: scheduler spreads ranks over the fewest
        nodes that fit them, round-robin by rank (§5.6.6); within each node,
        ranks take core indices by their position in the sorted co-resident
        rank list (§5.2).
        """
        nprocs = require_int(nprocs, "nprocs")
        if not 1 <= nprocs <= topology.total_cores:
            raise ValueError(
                f"nprocs must be in [1, {topology.total_cores}], got {nprocs}"
            )
        nodes_used = min(topology.nodes, -(-nprocs // topology.cores_per_node))
        cores = np.empty(nprocs, dtype=np.int64)
        position_on_node = np.zeros(nodes_used, dtype=np.int64)
        for rank in range(nprocs):
            node = rank % nodes_used
            core_index = position_on_node[node] % topology.cores_per_node
            position_on_node[node] += 1
            cores[rank] = node * topology.cores_per_node + core_index
        return cls(topology, cores)

    @classmethod
    def block(cls, topology: Topology, nprocs: int) -> "Placement":
        """Fill nodes one at a time: rank r -> core r."""
        nprocs = require_int(nprocs, "nprocs")
        if not 1 <= nprocs <= topology.total_cores:
            raise ValueError(
                f"nprocs must be in [1, {topology.total_cores}], got {nprocs}"
            )
        return cls(topology, np.arange(nprocs, dtype=np.int64))
