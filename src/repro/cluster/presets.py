"""Calibrated ground-truth presets for the thesis's test platforms.

The constants below are *inputs to the simulator*, not reproduction claims.
They are chosen so the simulated platforms land in the thesis's measured
magnitude windows:

* DAXPY in-cache rate ~1 Gflop/s (Table 3.1 reports r ~ 990 Mflop/s),
* gigabit-ethernet-like inter-node links: ~9 us effective one-way latency
  (regression intercept scale), ~118 MB/s payload bandwidth,
* sub-microsecond shared-memory latencies stratified by socket/node,
* barrier costs in the 1e-4..2e-3 s window for 8..144 processes
  (Figs. 5.6 and 5.10),
* L1 BLAS knee at a 64 KB working set on the Athlon X2 node (Fig. 4.6).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.cluster.params import CacheLevel, ClusterParams, CoreParams, LinkParams
from repro.cluster.topology import Relation, Topology

_GIG_ETH_INV_BW = 8.5e-9  # ~118 MB/s sustained payload bandwidth


def xeon_8x2x4_params() -> ClusterParams:
    """8 nodes x dual-socket x quad-core Intel Xeon, gigabit ethernet (§5.6.6)."""
    return ClusterParams(
        links={
            Relation.SAME_SOCKET: LinkParams(0.6e-6, 0.30e-6, 0.25e-9),
            Relation.SAME_NODE: LinkParams(1.1e-6, 0.40e-6, 0.45e-9),
            Relation.REMOTE: LinkParams(9.0e-6, 1.40e-6, _GIG_ETH_INV_BW),
        },
        core=CoreParams(
            flop_rate=2.0e9,
            cache_levels=(
                CacheLevel(32 * 1024, 24.0e9),
                CacheLevel(4 * 1024 * 1024, 12.0e9),
            ),
            ram_bandwidth=5.0e9,
        ),
        # Per-message NIC/stack occupancy: gigabit MPI injects small eager
        # messages at ~100-150k msg/s, so the per-message cost is the same
        # order as the wire latency.  This is what serialises fan-out and
        # same-stage traffic sharing a node's NIC.
        nic_gap=7.0e-6,
        recv_overhead=0.40e-6,
        invocation_overhead=0.25e-6,
    )


def xeon_8x2x4_topology() -> Topology:
    return Topology(nodes=8, sockets_per_node=2, cores_per_socket=4, name="xeon-8x2x4")


def xeon_8x2x4_ib_params() -> ClusterParams:
    """The same 8x2x4 nodes on an InfiniBand-class interconnect (§9.2.4's
    "range of interconnects" future work): ~1.6 us one-way latency,
    ~1.4 GB/s payload bandwidth, and a far smaller per-message injection
    cost.  Used by the interconnect ablation to show the adaptation
    pipeline responds to the platform rather than to baked-in assumptions.
    """
    base = xeon_8x2x4_params()
    return ClusterParams(
        links={
            Relation.SAME_SOCKET: base.links[Relation.SAME_SOCKET],
            Relation.SAME_NODE: base.links[Relation.SAME_NODE],
            Relation.REMOTE: LinkParams(1.6e-6, 0.60e-6, 0.7e-9),
        },
        core=base.core,
        nic_gap=0.7e-6,
        recv_overhead=base.recv_overhead,
        invocation_overhead=base.invocation_overhead,
    )


def xeon_8x2x4_fma_params() -> ClusterParams:
    """The Xeon cluster with heterogeneous sockets (§3.3's worked example):
    every even-numbered global socket carries a multiply-accumulate unit
    running FMA-eligible kernels at twice the rate, giving uniformly
    decomposed workloads a structural load imbalance scalar models miss."""
    from dataclasses import replace

    base = xeon_8x2x4_params()
    topo = xeon_8x2x4_topology()
    return ClusterParams(
        links=base.links,
        core=replace(base.core, multiply_accumulate=True),
        nic_gap=base.nic_gap,
        recv_overhead=base.recv_overhead,
        invocation_overhead=base.invocation_overhead,
        socket_rate_scale={
            s: 2.0
            for s in range(topo.nodes * topo.sockets_per_node)
            if s % 2 == 0
        },
    )


def opteron_12x2x6_params() -> ClusterParams:
    """12 nodes x dual-socket x hex-core AMD Opteron, gigabit ethernet (§5.6.6)."""
    return ClusterParams(
        links={
            Relation.SAME_SOCKET: LinkParams(0.7e-6, 0.35e-6, 0.30e-9),
            Relation.SAME_NODE: LinkParams(1.3e-6, 0.50e-6, 0.50e-9),
            Relation.REMOTE: LinkParams(11.0e-6, 1.60e-6, _GIG_ETH_INV_BW),
        },
        core=CoreParams(
            flop_rate=1.8e9,
            cache_levels=(
                CacheLevel(64 * 1024, 20.0e9),
                CacheLevel(6 * 1024 * 1024, 10.0e9),
            ),
            ram_bandwidth=4.5e9,
        ),
        nic_gap=8.0e-6,
        recv_overhead=0.45e-6,
        invocation_overhead=0.30e-6,
    )


def opteron_12x2x6_topology() -> Topology:
    return Topology(nodes=12, sockets_per_node=2, cores_per_socket=6, name="opteron-12x2x6")


def cluster_10x2x6_topology() -> Topology:
    """The 10-node 2x6 configuration used for the 115-process SSS clustering
    output (Table 7.2); same node design as the Opteron cluster."""
    return Topology(nodes=10, sockets_per_node=2, cores_per_socket=6, name="cluster-10x2x6")


def athlon_x2_params() -> ClusterParams:
    """Single Athlon X2 workstation: two cores with private 64 KB L1 caches
    (§4.2).  Only the compute side matters for the BLAS footprint sweeps."""
    return ClusterParams(
        links={
            Relation.SAME_SOCKET: LinkParams(0.5e-6, 0.25e-6, 0.30e-9),
            Relation.SAME_NODE: LinkParams(0.9e-6, 0.35e-6, 0.50e-9),
            Relation.REMOTE: LinkParams(50.0e-6, 2.0e-6, 10.0e-9),
        },
        core=CoreParams(
            flop_rate=1.2e9,
            cache_levels=(
                CacheLevel(64 * 1024, 16.0e9),
                CacheLevel(256 * 1024, 8.0e9),
            ),
            ram_bandwidth=3.2e9,
        ),
        nic_gap=2.5e-6,
        recv_overhead=0.40e-6,
        invocation_overhead=0.25e-6,
    )


def athlon_x2_topology() -> Topology:
    return Topology(nodes=1, sockets_per_node=1, cores_per_socket=2, name="athlon-x2")


# --------------------------------------------------------------- registry

@dataclass(frozen=True)
class ClusterPreset:
    """A named, calibrated platform: parameter and topology factories.

    Factories (rather than instances) keep presets immutable-by-use: every
    lookup builds fresh objects, so campaigns and tests can never corrupt
    each other through a shared topology.
    """

    name: str
    params_factory: Callable[[], ClusterParams]
    topology_factory: Callable[[], Topology]
    description: str = ""

    def params(self) -> ClusterParams:
        return self.params_factory()

    def topology(self) -> Topology:
        return self.topology_factory()

    @property
    def total_cores(self) -> int:
        return self.topology().total_cores

    def scaled_topology(self, nodes: int) -> Topology:
        """The same node design scaled to ``nodes`` nodes (a weak-scaling
        axis for design-space exploration)."""
        base = self.topology()
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        return Topology(
            nodes=nodes,
            sockets_per_node=base.sockets_per_node,
            cores_per_socket=base.cores_per_socket,
            name=f"{base.name}@{nodes}n",
        )


PRESETS: dict[str, ClusterPreset] = {}


def register_preset(preset: ClusterPreset) -> ClusterPreset:
    """Register a preset under its name; later registrations override."""
    PRESETS[preset.name] = preset
    return preset


def get_preset(name: str) -> ClusterPreset:
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown cluster preset {name!r} (known: {known})") from None


def preset_names() -> list[str]:
    return sorted(PRESETS)


def make_preset_machine(name: str, *, nodes: int | None = None, seed: int = 2012,
                        noise=None):
    """Build a :class:`~repro.machine.simmachine.SimMachine` from a preset
    name — the string-referenceable entry point design-space specs use."""
    from repro.machine.simmachine import SimMachine

    preset = get_preset(name)
    topology = preset.topology() if nodes is None else preset.scaled_topology(nodes)
    return SimMachine(topology, preset.params(), noise=noise, seed=seed)


register_preset(ClusterPreset(
    name="xeon-8x2x4",
    params_factory=xeon_8x2x4_params,
    topology_factory=xeon_8x2x4_topology,
    description="8 nodes x 2 sockets x 4-core Xeon, gigabit ethernet (§5.6.6)",
))
register_preset(ClusterPreset(
    name="xeon-8x2x4-ib",
    params_factory=xeon_8x2x4_ib_params,
    topology_factory=xeon_8x2x4_topology,
    description="the Xeon cluster on an InfiniBand-class interconnect (§9.2.4)",
))
register_preset(ClusterPreset(
    name="xeon-8x2x4-fma",
    params_factory=xeon_8x2x4_fma_params,
    topology_factory=xeon_8x2x4_topology,
    description="the Xeon cluster with 2x-rate FMA units on even sockets (§3.3)",
))
register_preset(ClusterPreset(
    name="opteron-12x2x6",
    params_factory=opteron_12x2x6_params,
    topology_factory=opteron_12x2x6_topology,
    description="12 nodes x 2 sockets x 6-core Opteron, gigabit ethernet (§5.6.6)",
))
register_preset(ClusterPreset(
    name="cluster-10x2x6",
    params_factory=opteron_12x2x6_params,
    topology_factory=cluster_10x2x6_topology,
    description="10-node 2x6 configuration of the Table 7.2 SSS study",
))
register_preset(ClusterPreset(
    name="athlon-x2",
    params_factory=athlon_x2_params,
    topology_factory=athlon_x2_topology,
    description="dual-core Athlon X2 workstation for the BLAS sweeps (§4.2)",
))
