"""Simulated SMP-cluster substrate: topology, placement, ground-truth
parameters, noise, and calibrated platform presets."""

from repro.cluster.topology import Relation, Topology, Placement
from repro.cluster.params import (
    LinkParams,
    CacheLevel,
    CoreParams,
    ClusterParams,
)
from repro.cluster.noise import NoiseModel, QUIET
from repro.cluster import presets

__all__ = [
    "Relation",
    "Topology",
    "Placement",
    "LinkParams",
    "CacheLevel",
    "CoreParams",
    "ClusterParams",
    "NoiseModel",
    "QUIET",
    "presets",
]
