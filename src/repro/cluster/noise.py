"""Measurement noise model for the simulated platform.

The thesis's benchmarking chapters (§4.1, §5.6.3) are shaped by the fight
against nondeterministic timing: OS jitter, cache state, background services,
and occasional extreme outliers that must be filtered before regression.  We
reproduce that environment with a two-component model applied to every
sampled duration:

* multiplicative log-normal jitter (``sigma`` in log space), representing
  scheduling and cache-state variation, and
* rare additive outlier spikes (probability ``outlier_prob``), scaled a
  multiple of the base duration, representing daemon wakeups / page faults.

Both components only ever *add* time in expectation terms that keep the
median close to the base value, which is why median-based statistics (used
throughout the thesis) are robust here while means are not.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.util.validation import require_in_range, require_nonnegative


@dataclass(frozen=True)
class NoiseModel:
    """Stochastic perturbation applied to simulated durations."""

    jitter_sigma: float = 0.06  # log-space sigma of multiplicative jitter
    outlier_prob: float = 0.015  # probability a sample is an outlier
    outlier_scale: float = 8.0  # outlier adds U(1, scale) * base seconds
    floor: float = 1.0e-9  # timer resolution floor [s]

    def __post_init__(self):
        require_nonnegative(self.jitter_sigma, "jitter_sigma")
        require_in_range(self.outlier_prob, "outlier_prob", 0.0, 0.5)
        require_nonnegative(self.outlier_scale, "outlier_scale")
        require_nonnegative(self.floor, "floor")

    def sample(self, rng: np.random.Generator, base):
        """Perturb ``base`` durations (scalar or array), returning same shape.

        The log-normal factor is median-1 so central-tendency statistics of
        samples recover the base duration.
        """
        base = np.asarray(base, dtype=float)
        if np.any(base < 0):
            raise ValueError("durations must be non-negative")
        out = base * rng.lognormal(mean=0.0, sigma=self.jitter_sigma, size=base.shape)
        if self.outlier_prob > 0.0:
            hits = rng.random(base.shape) < self.outlier_prob
            if np.any(hits):
                spikes = rng.uniform(1.0, max(1.0, self.outlier_scale), size=base.shape)
                out = out + np.where(hits, spikes * base, 0.0)
        return np.maximum(out, self.floor)

    def sample_matrix(
        self, rng: np.random.Generator, base, runs: int
    ) -> np.ndarray:
        """``runs`` independent perturbations of ``base`` in one bulk draw.

        ``base`` (scalar or any array shape ``S``) is broadcast to
        ``(runs, *S)`` and sampled with a single :meth:`sample` call, so
        the draws fill the replication axis in C order (replication-major)
        — the draw-order contract of the batched event engine
        (:mod:`repro.simmpi.engine`).  This is the entry point hot paths
        should use; one matrix draw replaces ``runs * base.size`` scalar
        round trips through 0-d arrays.
        """
        if runs < 1:
            raise ValueError("runs must be >= 1")
        base = np.asarray(base, dtype=float)
        return self.sample(rng, np.broadcast_to(base, (runs, *base.shape)))

    def sample_scalar(self, rng: np.random.Generator, base: float) -> float:
        """Perturb one scalar duration.

        .. deprecated::
            Hot paths (the event engine, benchmarks, charge models) must
            not call this per value — it boxes every duration through a
            0-d array and three scalar RNG calls.  Use :meth:`sample` on a
            whole vector or :meth:`sample_matrix` for a replication batch;
            this remains only for genuinely scalar one-off draws.

            The warning below is raised with ``stacklevel=2``, so pytest's
            ``error::DeprecationWarning`` rule scoped to ``repro`` modules
            turns any *in-repo* caller into a test failure while leaving
            external one-off users (and the deprecation test itself) on a
            plain warning.
        """
        warnings.warn(
            "NoiseModel.sample_scalar is deprecated on hot paths: use "
            "NoiseModel.sample on a whole vector or NoiseModel.sample_matrix "
            "for a replication batch",
            DeprecationWarning,
            stacklevel=2,
        )
        return float(self.sample(rng, np.asarray(base, dtype=float)))


QUIET = NoiseModel(jitter_sigma=0.0, outlier_prob=0.0, floor=0.0)
