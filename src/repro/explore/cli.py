"""``python -m repro.explore`` — run and inspect experiment campaigns.

Subcommands:

* ``run SPEC.json``  — execute a campaign described by a JSON spec file,
* ``adapt SPEC.json --budget N`` — explore the spec's design space
  adaptively: evaluate only the points the chosen ``--strategy``
  (``surrogate``, ``stratified``, ``halving``, ``random``) proposes,
* ``suite [NAME]``   — regenerate a thesis figure/table suite, check its
  shape claims, and optionally compare against / refresh its golden
  artifact (``--check`` / ``--update-goldens``); without a name, list
  the registered suites,
* ``drift NAME``     — localise a failed golden to the smallest
  offending axis region by bisection probing,
* ``ls``             — list the campaigns in a store directory,
* ``show NAME``      — print a campaign's stored results as a table,
* ``results STORE``  — summarise a campaign store (counts, metric
  ranges) and optionally export it as CSV,
* ``trace [STORE_DIR]`` — export a store's recorded telemetry as a
  Chrome ``trace_event`` file (``--chrome out.json``, loadable in
  Perfetto) or a merged metrics snapshot (``--metrics out.json``);
  ``--explain`` renders recorded critical-path reports and adds a
  flow-arrow lane to the Chrome export,
* ``explain [STORE_DIR]`` — render the critical-path/attribution
  reports recorded in a store's telemetry sink,
* ``stats [STORE_DIR]`` — report persisted run summaries, profile-cache
  hit rates, and (``--telemetry``) top-k slowest points and per-worker
  utilization from the recorded spans,
* ``presets``        — list the registered cluster presets,
* ``experiments``    — list the registered experiments.

``run``, ``adapt``, and ``suite`` accept ``--telemetry`` to record
spans and metrics under ``<store>/.telemetry`` while they work (the
``REPRO_TELEMETRY`` environment variable does the same); telemetry
never changes computed results.

A spec file is pure data::

    {
      "name": "barrier-ranking",
      "experiment": "barrier-cost",
      "space": {
        "axes": {
          "preset": ["xeon-8x2x4", "opteron-12x2x6"],
          "pattern": ["linear", "tree", "dissemination"],
          "nprocs": [8, 16, 32]
        },
        "constants": {"runs": 16}
      }
    }
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.explore.campaign import (
    Campaign,
    CampaignPointError,
    EXECUTORS,
    make_executor,
)
from repro.explore.results import ResultSet
from repro.explore.space import DesignSpace
from repro.util.tables import format_table

DEFAULT_STORE = os.path.join(".", "campaigns")


def _load_spec(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            spec = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read spec {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"spec {path!r} is not valid JSON: {exc}") from None
    for field in ("name", "experiment", "space"):
        if field not in spec:
            raise SystemExit(f"spec {path!r} is missing the {field!r} field")
    return spec


def _maybe_enable_telemetry(args: argparse.Namespace) -> None:
    if getattr(args, "telemetry", False):
        from repro import obs

        obs.enable()


def _policy_from_args(args: argparse.Namespace):
    """Build the :class:`RetryPolicy` the resilience flags describe, or
    ``None`` when neither flag was given (plain execution)."""
    retries = getattr(args, "max_retries", 0) or 0
    timeout = getattr(args, "point_timeout", None)
    if retries < 0:
        raise SystemExit("--max-retries must be >= 0")
    if not retries and timeout is None:
        return None
    from repro.explore.resilience import RetryPolicy

    return RetryPolicy(max_attempts=retries + 1, point_timeout_s=timeout)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    _maybe_enable_telemetry(args)
    try:
        campaign = Campaign(
            spec["name"],
            DesignSpace.from_dict(spec["space"]),
            spec["experiment"],
            store_dir=args.store_dir,
            executor=args.executor,
            workers=args.workers,
            on_error="store" if args.keep_going else "raise",
            policy=_policy_from_args(args),
            degrade=args.degrade,
        )
        outcome = campaign.run()
    except CampaignPointError as exc:
        raise SystemExit(f"{exc}\n(use --keep-going to record failed "
                         f"points and continue)") from None
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    stats = outcome.stats
    quarantined = (
        f", {stats.quarantined} quarantined" if stats.quarantined else ""
    )
    print(
        f"campaign {outcome.name!r}: {stats.total} points "
        f"({stats.computed} computed, {stats.served_from_cache} served "
        f"from cache, {stats.failed} failed{quarantined}; cache hit rate "
        f"{stats.cache_hit_rate:.0%})"
    )
    _print_results(outcome.results, sort=args.sort, limit=args.limit)
    return 0


def _parse_option(item: str) -> tuple[str, object]:
    """One ``key=value`` strategy option; the value parses as JSON when it
    can (``eta=2`` is a number, ``fidelity=runs`` a string)."""
    key, sep, raw = item.partition("=")
    if not sep or not key:
        raise SystemExit(f"--option wants KEY=VALUE, got {item!r}")
    try:
        return key, json.loads(raw)
    except json.JSONDecodeError:
        return key, raw


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.explore.adaptive import AdaptivePlan, run_adaptive

    spec = _load_spec(args.spec)
    _maybe_enable_telemetry(args)
    if args.objective is None and not args.objectives:
        raise SystemExit(
            "adapt needs --objective METRIC (or --objectives for Pareto "
            "search)"
        )
    if args.maximize is None:
        maximize: bool | tuple[str, ...] = False
    elif args.maximize == []:
        maximize = True
    else:
        maximize = tuple(args.maximize)
    try:
        plan = AdaptivePlan(
            budget=args.budget,
            strategy=args.strategy,
            objective=args.objective,
            objectives=tuple(args.objectives or ()),
            maximize=maximize,
            batch=args.batch,
            seed=args.seed,
            options=dict(
                _parse_option(item) for item in (args.option or [])
            ),
        )
        outcome = run_adaptive(
            spec["name"],
            DesignSpace.from_dict(spec["space"]),
            spec["experiment"],
            plan,
            store_dir=args.store_dir,
            executor=args.executor,
            workers=args.workers,
            on_error="store" if args.keep_going else "raise",
            policy=_policy_from_args(args),
            degrade=args.degrade,
        )
    except CampaignPointError as exc:
        raise SystemExit(f"{exc}\n(use --keep-going to record failed "
                         f"points and continue)") from None
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    stats = outcome.stats
    quarantined = (
        f", {stats.quarantined} quarantined" if stats.quarantined else ""
    )
    print(
        f"adaptive campaign {outcome.name!r} [{plan.strategy}]: "
        f"{stats.proposed} of {stats.space_size} points "
        f"({stats.coverage:.1%} coverage) in {stats.rounds} rounds; "
        f"{stats.evaluated} evaluated, {stats.cached} cached, "
        f"{stats.failed} failed{quarantined}"
    )
    if plan.objective is not None:
        try:
            best = outcome.best()
        except ValueError as exc:
            # No successful record carries the objective: a typo'd metric
            # name, or every point failed under --keep-going.  The store
            # has the evaluations; the report must say why there is no
            # ranking rather than traceback.
            raise SystemExit(
                f"{exc}\n(check the metric name against "
                f"`python -m repro.explore experiments`, and the store "
                f"for failed points)"
            ) from None
        print(f"best {plan.objective}: {best.value(plan.objective)!r} "
              f"at {dict(best.point)!r}")
        ascending = not (
            maximize is True
            or (not isinstance(maximize, bool) and plan.objective in maximize)
        )
        shown = outcome.results.rank_by(plan.objective, ascending=ascending)
    else:
        shown = outcome.front()
        print(f"observed Pareto front: {len(shown)} points")
    _print_results(shown, sort=args.sort, limit=args.limit or 10)
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    from repro.explore.adaptive import localize_drift
    from repro.explore.suites import get_suite

    try:
        spec = get_suite(args.name)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    _maybe_enable_telemetry(args)
    try:
        report = localize_drift(
            spec,
            goldens_dir=args.goldens_dir,
            store_dir=args.store_dir,
            executor=args.executor,
            workers=args.workers,
            seed=args.seed,
            probe_limit=args.probe_limit,
        )
    except FileNotFoundError as exc:
        raise SystemExit(
            f"no golden for suite {args.name!r}: {exc}"
        ) from None
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.explore.golden import check_golden, update_golden
    from repro.explore.suites import (
        ClaimFailure,
        get_suite,
        run_suite,
        suite_names,
    )

    if args.name is None:
        rows = []
        for name in suite_names():
            spec = get_suite(name)
            rows.append([name, spec.experiment, len(spec.space),
                         len(spec.claims), spec.title])
        print(format_table(
            ["suite", "experiment", "points", "claims", "title"], rows
        ))
        return 0

    try:
        spec = get_suite(args.name)
    except KeyError as exc:
        # str() of a KeyError wraps the message in repr quotes.
        raise SystemExit(exc.args[0]) from None
    _maybe_enable_telemetry(args)
    # Validate the executor spec up front: the --update-goldens path below
    # destroys the suite's cache, which must not happen on an invocation
    # that was never going to run.
    try:
        executor = make_executor(args.executor, args.workers)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    # Golden updates must reflect the current code: store keys hash only
    # (experiment, point), so a cached entry can predate an experiment
    # change — drop this suite's store file and let the run repopulate it,
    # keeping cache and golden consistent for follow-up --check runs.
    if args.update_goldens:
        stale = Campaign.results_path(args.store_dir, spec.name)
        if os.path.exists(stale):
            os.remove(stale)
        # Memoized comm profiles are also store state: drop them so the
        # regenerated golden reflects the current benchmark protocol.
        from repro.bench.profile_cache import PROFILE_CACHE, store_path_for

        stale_profiles = store_path_for(args.store_dir)
        if os.path.exists(stale_profiles):
            os.remove(stale_profiles)
        PROFILE_CACHE.clear_memory()
        PROFILE_CACHE.configure(None)
    try:
        result = run_suite(
            spec,
            store_dir=args.store_dir,
            executor=executor,
            sampling=False if args.exhaustive else None,
        )
    except CampaignPointError as exc:
        raise SystemExit(str(exc)) from None
    print(result.render())

    try:
        checked = result.check_claims()
    except ClaimFailure as exc:
        print(f"CLAIM FAILED: {exc}")
        return 1
    if checked:
        print(f"claims ok: {', '.join(checked)}")

    if args.update_goldens:
        path = update_golden(args.goldens_dir, spec.name, result.artifact())
        print(f"golden updated: {path}")
    elif args.check:
        if result.stats.cached:
            print(
                f"note: {result.stats.cached}/{result.stats.total} points "
                f"served from the store cache; delete "
                f"{Campaign.results_path(args.store_dir, spec.name)!r} "
                f"to check against a from-scratch regeneration"
            )
        report = check_golden(
            args.goldens_dir, spec.name, result.artifact(), spec.tolerance
        )
        print(report.summary())
        if not report.ok:
            return 1
    return 0


def _store_files(store_dir: str) -> list[str]:
    if not os.path.isdir(store_dir):
        return []
    return sorted(
        f for f in os.listdir(store_dir)
        if f.endswith(".jsonl") and not f.endswith(".quarantine.jsonl")
    )


def _cmd_ls(args: argparse.Namespace) -> int:
    files = _store_files(args.store_dir)
    if not files:
        print(f"no campaigns under {args.store_dir!r}")
        return 0
    rows = []
    for fname in files:
        path = os.path.join(args.store_dir, fname)
        with open(path, "r", encoding="utf-8") as fh:
            count = sum(1 for line in fh if line.strip())
        rows.append([fname[: -len(".jsonl")], count, path])
    print(format_table(["campaign", "records", "path"], rows))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    path = Campaign.results_path(args.store_dir, args.name)
    if not os.path.exists(path):
        raise SystemExit(f"no stored campaign {args.name!r} under "
                         f"{args.store_dir!r} (expected {path})")
    # The store file holds cache entries; rebuild displayable records
    # through ResultCache, which tolerates a torn tail line.
    from repro.explore.cache import ResultCache
    from repro.explore.results import ResultRecord

    cache = ResultCache(path)
    records = []
    # Store append order *is* the canonical display order (one JSONL
    # file read sequentially — deterministic per store, and the run
    # order is what a human wants to see).
    for key in cache.keys():  # repro: allow[DET004]
        entry = cache.get(key)
        records.append(ResultRecord(
            key=key,
            experiment=entry.get("experiment", ""),
            point=entry.get("point", {}),
            metrics=entry.get("metrics", entry),
        ))
    _print_results(ResultSet(tuple(records)), sort=args.sort, limit=args.limit)
    return 0


def _store_records(args: argparse.Namespace) -> tuple[str, ResultSet]:
    """Resolve the ``results`` argument: a JSONL path, or a campaign name
    under ``--store-dir``; returns (path, records)."""
    from repro.explore.cache import ResultCache
    from repro.explore.results import ResultRecord

    from repro.explore.resilience import quarantine_path

    if os.path.exists(args.store) and not os.path.isdir(args.store):
        path = args.store
    else:
        path = Campaign.results_path(args.store_dir, args.store)
        if not os.path.exists(path) and not os.path.exists(
            quarantine_path(path)
        ):
            # A store whose every point quarantined has a sidecar but no
            # result file; that is still a reportable campaign.
            raise SystemExit(
                f"no store file {args.store!r} and no stored campaign "
                f"{args.store!r} under {args.store_dir!r} (expected {path})"
            )
    cache = ResultCache(path)
    records = []
    # Store append order *is* the canonical display order (one JSONL
    # file read sequentially — deterministic per store, and the run
    # order is what a human wants to see).
    for key in cache.keys():  # repro: allow[DET004]
        entry = cache.get(key)
        records.append(ResultRecord(
            key=key,
            experiment=entry.get("experiment", ""),
            point=entry.get("point", {}),
            metrics=entry.get("metrics", entry),
        ))
    return path, ResultSet(tuple(records))


def _cmd_results(args: argparse.Namespace) -> int:
    path, results = _store_records(args)
    summary = results.summary()
    print(f"{path}: {summary['records']} records "
          f"({summary['failed']} failed), "
          f"experiments: {', '.join(summary['experiments']) or '(none)'}")
    _print_last_run(path)
    quarantined = _print_quarantine(path)
    if summary["parameters"]:
        rows = [[n, c] for n, c in summary["parameters"].items()]
        print(format_table(["parameter", "distinct values"], rows))
    if summary["metrics"]:
        rows = [
            [name, m["count"], m["min"], m["mean"], m["max"]]
            for name, m in summary["metrics"].items()
        ]
        print(format_table(["metric", "count", "min", "mean", "max"], rows))
    if args.csv:
        columns = results.to_csv(args.csv)
        print(f"wrote {len(results)} records x {len(columns)} columns "
              f"to {args.csv}")
    if args.table:
        _print_results(results, sort=args.sort, limit=args.limit)
    if args.strict and (quarantined or summary["failed"]):
        print(
            f"strict: {quarantined} quarantined point(s), "
            f"{summary['failed']} failed record(s) — failing"
        )
        return 1
    return 0


def _print_quarantine(store_path: str) -> int:
    """Report the store's quarantine sidecar (points that exhausted a
    retry policy), newest record per point; returns the distinct-point
    count.  Silent when no sidecar exists."""
    from repro.explore.resilience import quarantine_path, read_quarantine

    records = read_quarantine(quarantine_path(store_path))
    if not records:
        return 0
    latest: dict[str, dict] = {}
    for record in records:  # append order: later entries are newer
        latest[str(record.get("key"))] = record
    print(f"quarantined: {len(latest)} point(s) exhausted their retry "
          f"budget")
    rows = []
    for key, record in latest.items():
        error = str(record.get("error") or "?")
        if len(error) > 60:
            error = error[:57] + "..."
        rows.append([
            key,
            record.get("attempts") or "?",
            record.get("reason") or "?",
            error,
        ])
    print(format_table(["key", "attempts", "reason", "last error"], rows))
    return len(latest)


def _print_last_run(store_path: str) -> None:
    """Report the last telemetry-enabled run against one store file:
    served-from-cache vs computed split, and what changed vs the run
    before.  Silent when no summary was ever persisted."""
    from repro import obs

    store_dir = os.path.dirname(store_path) or "."
    name = os.path.basename(store_path)
    if name.endswith(".jsonl"):
        name = name[: -len(".jsonl")]
    summary = obs.load_summary(store_dir, name)
    if summary is None:
        return
    st = summary.stats
    total = int(st.get("total", 0))
    cached = int(st.get("cached", 0))
    rate = cached / total if total else 0.0
    quarantined = int(st.get("quarantined", 0))
    qpart = f" ({quarantined} quarantined)" if quarantined else ""
    print(
        f"last run: {int(st.get('evaluated', 0))} computed, "
        f"{cached} served from cache (hit rate {rate:.0%}), "
        f"{int(st.get('failed', 0))} failed{qpart} "
        f"in {summary.wall_seconds:.2f}s"
    )
    changes = summary.changes_since_previous()
    if changes is not None:
        parts = [f"{key} {value:+d}" for key, value in changes.items()
                 if key != "wall_seconds" and value]
        parts.append(f"wall {changes['wall_seconds']:+.2f}s")
        print(f"vs previous run: {', '.join(parts)}")


def _telemetry_store(args: argparse.Namespace) -> str:
    store = args.store if args.store is not None else args.store_dir
    if not os.path.isdir(store):
        raise SystemExit(f"no store directory {store!r}")
    return store


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    store = _telemetry_store(args)
    sink = obs.telemetry_dir_for(store)
    events = obs.read_events(sink)
    if not events:
        raise SystemExit(
            f"{obs.describe_empty_sink(sink)}\n(run campaigns with "
            f"--telemetry or REPRO_TELEMETRY=1 first)"
        )
    n_spans = sum(1 for e in events if e.get("type") == "span")
    n_metrics = sum(1 for e in events if e.get("type") == "metric")
    pids = sorted({int(e.get("pid", 0)) for e in events})
    print(f"{sink}: {len(events)} events ({n_spans} spans, {n_metrics} "
          f"metric updates) from {len(pids)} process(es)")
    critpath = None
    if args.explain:
        critpath = obs.critpath_records(events)
        if critpath:
            for record in critpath:
                print(obs.render_record(record))
        else:
            print("no critpath reports in this sink — run a "
                  "provenance-enabled simulation first (see `explain -h`)")
            critpath = None
    if args.chrome:
        doc = obs.chrome_trace(events, critpath=critpath)
        complete = obs.validate_chrome_trace(doc)
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        print(f"wrote Chrome trace: {args.chrome} ({complete} complete "
              f"events; load in Perfetto or chrome://tracing)")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(obs.merged_metrics(events), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote metrics snapshot: {args.metrics}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro import obs

    store = _telemetry_store(args)
    sink = obs.telemetry_dir_for(store)
    events = obs.read_events(sink)
    if not events:
        raise SystemExit(obs.describe_empty_sink(sink))
    records = obs.critpath_records(events)
    if not records:
        raise SystemExit(
            f"telemetry sink {sink} holds {len(events)} event(s) but no "
            f"critpath reports — run a provenance-enabled simulation "
            f"(e.g. the stencil-run experiment with critpath=true) or "
            f"emit one with repro.obs.emit_report()"
        )
    if args.label is not None:
        matched = [r for r in records if r.get("label") == args.label]
        if not matched:
            labels = sorted({
                str(r.get("label") or "(unlabelled)") for r in records
            })
            raise SystemExit(
                f"no critpath report labelled {args.label!r}; recorded "
                f"labels: {', '.join(labels)}"
            )
        records = matched
    if args.last:
        records = records[-args.last:]
    for index, record in enumerate(records):
        if index:
            print()
        print(obs.render_record(record))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import time as _time

    from repro import obs
    from repro.bench.profile_cache import read_run_stats

    store = _telemetry_store(args)
    summaries = obs.list_summaries(store)
    if summaries:
        rows = []
        for s in summaries:
            st = s.stats
            rows.append([
                s.campaign,
                _time.strftime(
                    "%Y-%m-%d %H:%M:%S", _time.localtime(s.unix_time)
                ),
                f"{s.wall_seconds:.2f}",
                int(st.get("total", 0)),
                int(st.get("evaluated", 0)),
                int(st.get("cached", 0)),
                int(st.get("failed", 0)),
            ])
        print(format_table(
            ["campaign", "last run", "wall [s]", "points", "computed",
             "cached", "failed"],
            rows,
        ))
    else:
        print(f"no run summaries under {obs.telemetry_dir_for(store)!r}")

    run_stats = read_run_stats(store)
    if run_stats:
        hits = sum(int(r.get("hits", 0)) for r in run_stats)
        misses = sum(int(r.get("misses", 0)) for r in run_stats)
        bench_s = sum(float(r.get("benchmark_s", 0.0)) for r in run_stats)
        served = hits + misses
        rate = hits / served if served else 0.0
        print(
            f"profile cache: {hits} hits, {misses} misses "
            f"(hit rate {rate:.0%}) over {len(run_stats)} flushes; "
            f"{bench_s:.2f}s spent benchmarking"
        )

    if args.telemetry:
        sink = obs.telemetry_dir_for(store)
        events = obs.read_events(sink)
        if not events:
            print(obs.describe_empty_sink(sink), file=sys.stderr)
            return 1
        top = obs.top_spans(events, k=args.top)
        if top:
            rows = [
                [
                    f"{s.get('dur', 0.0) * 1e3:.2f}",
                    int(s.get("pid", 0)),
                    s.get("attrs", {}).get("experiment", ""),
                    json.dumps(s.get("attrs", {}).get("point", {}),
                               sort_keys=True),
                ]
                for s in top
            ]
            print(f"top {len(top)} slowest points:")
            print(format_table(["host ms", "pid", "experiment", "point"],
                               rows))
        workers = obs.worker_utilization(events)
        if workers:
            rows = [
                [
                    w["pid"], w["tid"], w["spans"], f"{w['busy_s']:.3f}",
                    f"{w['utilization']:.0%}",
                    f"{w['start_offset_s']:.3f}",
                    f"{w['end_offset_s']:.3f}",
                ]
                for w in workers
            ]
            print("worker utilization (campaign.point spans):")
            print(format_table(
                ["pid", "tid", "points", "busy [s]", "util",
                 "first start [s]", "last end [s]"],
                rows,
            ))
        if not top and not workers:
            print("no recorded campaign.point spans")
    return 0


def _cmd_presets(args: argparse.Namespace) -> int:
    from repro.cluster.presets import PRESETS

    rows = [
        [name, preset.total_cores, preset.description]
        for name, preset in sorted(PRESETS.items())
    ]
    print(format_table(["preset", "cores", "description"], rows))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.explore.experiments import EXPERIMENTS

    rows = [
        [name, exp.description]
        for name, exp in sorted(EXPERIMENTS.items())
    ]
    print(format_table(["experiment", "point parameters"], rows))
    return 0


def _print_results(results: ResultSet, sort: str | None, limit: int | None):
    if not len(results):
        print("(no records)")
        return
    if sort:
        results = results.rank_by(sort)
    if limit:
        results = ResultSet(results.records[:limit])
    columns = [
        c for c in results.point_names() + results.metric_names()
        if c != "traceback"  # multiline; available in the stored record
    ]
    rows = results.to_rows(columns)
    print(format_table(columns, rows))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description="declarative design-space exploration campaigns",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p):
        p.add_argument(
            "--store-dir", default=DEFAULT_STORE,
            help=f"campaign result store (default: {DEFAULT_STORE})",
        )

    def add_display(p):
        p.add_argument("--sort", help="metric to sort the table by")
        p.add_argument("--limit", type=int, help="show at most N rows")

    def add_telemetry(p):
        p.add_argument(
            "--telemetry", action="store_true",
            help="record spans/metrics under <store>/.telemetry "
                 "(never changes results; see `trace` and `stats`)",
        )

    def add_resilience(p):
        p.add_argument(
            "--max-retries", type=int, default=0, metavar="N",
            help="retry a failed point up to N times with deterministic "
                 "exponential backoff before quarantining it (default: 0)",
        )
        p.add_argument(
            "--point-timeout", type=float, default=None, metavar="SECONDS",
            help="per-point wall-clock deadline, enforced by the pool "
                 "executors (a blown deadline counts as one failed "
                 "attempt); the serial executor cannot preempt and "
                 "ignores it",
        )
        p.add_argument(
            "--degrade", action="store_true",
            help="after repeated worker-pool death, finish the remaining "
                 "points serially in-process instead of aborting",
        )

    p_run = sub.add_parser("run", help="run a campaign from a JSON spec")
    p_run.add_argument("spec", help="path to the campaign spec file")
    p_run.add_argument(
        "--executor", choices=sorted(EXECUTORS), default="serial"
    )
    p_run.add_argument("--workers", type=int, default=None)
    p_run.add_argument(
        "--keep-going", action="store_true",
        help="record failed points instead of aborting",
    )
    add_resilience(p_run)
    add_store(p_run)
    add_display(p_run)
    add_telemetry(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_adapt = sub.add_parser(
        "adapt",
        help="explore a spec's design space adaptively under a budget",
    )
    p_adapt.add_argument("spec", help="path to the campaign spec file")
    p_adapt.add_argument(
        "--budget", type=int, required=True,
        help="maximum number of design points to observe",
    )
    p_adapt.add_argument(
        "--strategy", default="surrogate",
        help="sampling strategy: surrogate (default), stratified, "
             "halving, random (aliases: lhs, active)",
    )
    p_adapt.add_argument(
        "--objective", default=None,
        help="metric to optimise (minimised unless --maximize)",
    )
    p_adapt.add_argument(
        "--objectives", nargs="+", default=None, metavar="METRIC",
        help="several metrics: Pareto search instead of a single optimum",
    )
    p_adapt.add_argument(
        "--maximize", nargs="*", default=None, metavar="METRIC",
        help="maximise the objective (bare flag) or the named metrics",
    )
    p_adapt.add_argument("--batch", type=int, default=16)
    p_adapt.add_argument("--seed", type=int, default=0)
    p_adapt.add_argument(
        "--option", action="append", metavar="KEY=VALUE",
        help="strategy option, repeatable (e.g. fidelity=runs, eta=2, "
             "explore=0.5)",
    )
    p_adapt.add_argument(
        "--executor", choices=sorted(EXECUTORS), default="serial"
    )
    p_adapt.add_argument("--workers", type=int, default=None)
    p_adapt.add_argument(
        "--keep-going", action="store_true",
        help="record failed points instead of aborting",
    )
    add_resilience(p_adapt)
    add_store(p_adapt)
    add_display(p_adapt)
    add_telemetry(p_adapt)
    p_adapt.set_defaults(fn=_cmd_adapt)

    from repro.explore.suites import DEFAULT_GOLDENS_DIR, DEFAULT_SUITE_STORE

    p_suite = sub.add_parser(
        "suite",
        help="regenerate a figure/table suite and check its claims/golden",
    )
    p_suite.add_argument(
        "name", nargs="?", default=None,
        help="suite to regenerate (omit to list registered suites)",
    )
    p_suite.add_argument(
        "--executor", choices=sorted(EXECUTORS), default="chunked"
    )
    p_suite.add_argument("--workers", type=int, default=None)
    group = p_suite.add_mutually_exclusive_group()
    group.add_argument(
        "--check", action="store_true",
        help="compare the regenerated artifact against its golden",
    )
    group.add_argument(
        "--update-goldens", action="store_true",
        help="write the regenerated artifact as the new golden",
    )
    p_suite.add_argument(
        "--goldens-dir", default=DEFAULT_GOLDENS_DIR,
        help=f"golden artifact directory (default: {DEFAULT_GOLDENS_DIR})",
    )
    p_suite.add_argument(
        "--store-dir", default=DEFAULT_SUITE_STORE,
        help=f"suite campaign store (default: {DEFAULT_SUITE_STORE})",
    )
    p_suite.add_argument(
        "--exhaustive", action="store_true",
        help="ignore the suite's sampling plan and expand the full space",
    )
    add_telemetry(p_suite)
    p_suite.set_defaults(fn=_cmd_suite)

    p_drift = sub.add_parser(
        "drift",
        help="localise a failed golden to the offending axis region",
    )
    p_drift.add_argument("name", help="suite whose golden drifted")
    p_drift.add_argument(
        "--goldens-dir", default=DEFAULT_GOLDENS_DIR,
        help=f"golden artifact directory (default: {DEFAULT_GOLDENS_DIR})",
    )
    p_drift.add_argument(
        "--store-dir", default=None,
        help="probe store (default: none — probes must reflect current "
             "code, not a stale cache)",
    )
    p_drift.add_argument(
        "--executor", choices=sorted(EXECUTORS), default="serial"
    )
    p_drift.add_argument("--workers", type=int, default=None)
    p_drift.add_argument("--seed", type=int, default=0)
    p_drift.add_argument(
        "--probe-limit", type=int, default=None,
        help="stop the witness search after N probes (default: the "
             "whole space)",
    )
    add_telemetry(p_drift)
    p_drift.set_defaults(fn=_cmd_drift)

    p_ls = sub.add_parser("ls", help="list stored campaigns")
    add_store(p_ls)
    p_ls.set_defaults(fn=_cmd_ls)

    p_show = sub.add_parser("show", help="print a stored campaign")
    p_show.add_argument("name")
    add_store(p_show)
    add_display(p_show)
    p_show.set_defaults(fn=_cmd_show)

    p_results = sub.add_parser(
        "results",
        help="summarise a campaign store and optionally export CSV",
    )
    p_results.add_argument(
        "store", help="path to a store .jsonl file, or a campaign name "
                      "resolved under --store-dir",
    )
    p_results.add_argument("--csv", help="write the records to this CSV file")
    p_results.add_argument(
        "--table", action="store_true", help="also print the full table"
    )
    p_results.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when the store holds failed records or its "
             "quarantine sidecar holds any points",
    )
    add_store(p_results)
    add_display(p_results)
    p_results.set_defaults(fn=_cmd_results)

    p_trace = sub.add_parser(
        "trace",
        help="export recorded telemetry (Chrome trace, metrics snapshot)",
    )
    p_trace.add_argument(
        "store", nargs="?", default=None,
        help="store directory holding .telemetry (default: --store-dir)",
    )
    p_trace.add_argument(
        "--chrome", metavar="OUT.json",
        help="write a Chrome trace_event file (Perfetto-loadable)",
    )
    p_trace.add_argument(
        "--metrics", metavar="OUT.json",
        help="write the merged metrics snapshot",
    )
    p_trace.add_argument(
        "--explain", action="store_true",
        help="render recorded critical-path reports and add a "
             "flow-arrow lane to the --chrome export",
    )
    add_store(p_trace)
    p_trace.set_defaults(fn=_cmd_trace)

    p_explain = sub.add_parser(
        "explain",
        help="render recorded critical-path / attribution reports",
    )
    p_explain.add_argument(
        "store", nargs="?", default=None,
        help="store directory holding .telemetry (default: --store-dir)",
    )
    p_explain.add_argument(
        "--label", default=None,
        help="only reports with this label",
    )
    p_explain.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the N most recent matching reports",
    )
    add_store(p_explain)
    p_explain.set_defaults(fn=_cmd_explain)

    p_stats = sub.add_parser(
        "stats",
        help="report run summaries, cache rates, and span-derived stats",
    )
    p_stats.add_argument(
        "store", nargs="?", default=None,
        help="store directory (default: --store-dir)",
    )
    p_stats.add_argument(
        "--telemetry", action="store_true",
        help="also report top-k slowest points and worker utilization "
             "from the recorded spans",
    )
    p_stats.add_argument(
        "--top", type=int, default=10,
        help="slowest points to list with --telemetry (default: 10)",
    )
    add_store(p_stats)
    p_stats.set_defaults(fn=_cmd_stats)

    sub.add_parser(
        "presets", help="list cluster presets"
    ).set_defaults(fn=_cmd_presets)
    sub.add_parser(
        "experiments", help="list registered experiments"
    ).set_defaults(fn=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
