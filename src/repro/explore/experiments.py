"""Experiment registry and the built-in thesis experiment adapters.

An *experiment* maps one design point (a plain parameter dict) to a flat
metrics dict.  Experiments are registered by name so design-space specs —
and worker processes of the parallel executor — can reference them as
strings.  The built-ins wrap the repository's evaluate APIs:

* ``barrier-cost``     — measured vs predicted cost of one barrier pattern
                         (§5.6.6; the Figs. 5.6-5.13 points),
* ``barrier-adapt``    — the greedy adaptation pipeline vs the best system
                         default (Figs. 7.6-7.7),
* ``stencil-predict``  — predicted per-iteration stencil cost for one
                         implementation model (§8.5, Figs. 8.8-8.9).

Every adapter builds its platform from the named preset registry
(:mod:`repro.cluster.presets`), so a campaign spec is pure data.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.barriers.patterns import (
    all_to_all_barrier,
    dissemination_barrier,
    kary_dissemination_barrier,
    linear_barrier,
    pairwise_exchange_barrier,
    sequential_linear_barrier,
    tree_barrier,
)

#: Barrier families referenceable by name from design points.
PATTERN_FAMILIES: dict[str, Callable[[int], Any]] = {
    "linear": linear_barrier,
    "tree": tree_barrier,
    "dissemination": dissemination_barrier,
    "pairwise": pairwise_exchange_barrier,
    "all-to-all": all_to_all_barrier,
    "sequential": sequential_linear_barrier,
    "kary-dissemination": kary_dissemination_barrier,
}


@dataclass(frozen=True)
class Experiment:
    """A named design-point evaluator."""

    name: str
    fn: Callable[[Mapping[str, Any]], dict]
    description: str = ""

    def __call__(self, point: Mapping[str, Any]) -> dict:
        return self.fn(point)


EXPERIMENTS: dict[str, Experiment] = {}


def register_experiment(name: str, description: str = ""):
    """Decorator registering ``fn`` as the experiment called ``name``."""

    def deco(fn: Callable[[Mapping[str, Any]], dict]):
        EXPERIMENTS[name] = Experiment(name=name, fn=fn, description=description)
        return fn

    return deco


def get_experiment(name: str) -> Experiment:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r} (known: {known})") from None


def experiment_names() -> list[str]:
    return sorted(EXPERIMENTS)


def run_point(experiment: str, point: Mapping[str, Any]) -> dict:
    """Evaluate one design point — the unit of work both executors run."""
    return get_experiment(experiment)(point)


# ----------------------------------------------------------------- adapters

def _machine_from_point(point: Mapping[str, Any]):
    from repro.cluster.presets import make_preset_machine

    return make_preset_machine(
        point["preset"],
        nodes=point.get("nodes"),
        seed=int(point.get("seed", 2012)),
    )


def _pattern_from_point(point: Mapping[str, Any]):
    name = point["pattern"]
    try:
        factory = PATTERN_FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(PATTERN_FAMILIES))
        raise KeyError(
            f"unknown barrier pattern {name!r} (known: {known})"
        ) from None
    return factory(int(point["nprocs"]))


def _critpath_metrics(report) -> dict:
    """Flatten an :class:`repro.obs.ExplainReport` into the derived
    ``attribution_*_s`` / ``critpath_*`` result fields."""
    metrics = {
        f"attribution_{name}_s": row["mean_s"]
        for name, row in report.categories.items()
    }
    top = report.top_edge
    if top is not None:
        metrics["critpath_top_edge"] = top["edge"]
        metrics["critpath_top_edge_frequency"] = top["frequency"]
    return metrics


@register_experiment(
    "barrier-cost",
    "measured vs predicted barrier cost: preset, pattern, nprocs "
    "[runs, comm_samples, nodes, seed, critpath]",
)
def barrier_cost(point: Mapping[str, Any]) -> dict:
    from repro.barriers.evaluate import evaluate_barrier

    machine = _machine_from_point(point)
    pattern = _pattern_from_point(point)
    runs = int(point.get("runs", 16))
    ev = evaluate_barrier(
        machine,
        pattern,
        runs=runs,
        comm_samples=int(point.get("comm_samples", 5)),
    )
    metrics = {
        "measured_s": ev.measured,
        "predicted_s": ev.predicted,
        "abs_error_s": ev.absolute_error,
        "rel_error": ev.relative_error,
        "num_stages": ev.num_stages,
        "total_messages": ev.total_messages,
    }
    # Critical-path fields only appear when requested, so existing
    # campaigns/goldens without the key stay byte-identical.  The rng
    # stream is deterministic, so the provenance-enabled re-measure
    # replays exactly the noise of the measurement above.
    if point.get("critpath"):
        from repro.barriers.simulate import measure_barrier
        from repro.obs import EngineProvenance, emit_report, explain

        prov = EngineProvenance()
        measure_barrier(
            machine, pattern, machine.placement(pattern.nprocs),
            runs=runs, provenance=prov,
        )
        report = explain(
            prov, label=f"barrier-{pattern.name}-{pattern.nprocs}"
        )
        emit_report(report)  # no-op unless telemetry is on
        metrics.update(_critpath_metrics(report))
    return metrics


@register_experiment(
    "barrier-adapt",
    "greedy adaptation vs best flat default: preset, nprocs "
    "[runs, gap_ratio, comm_samples, comm_runs, nodes, seed]",
)
def barrier_adapt(point: Mapping[str, Any]) -> dict:
    from repro.adapt.evaluate import evaluate_adaptation

    machine = _machine_from_point(point)
    comm_runs = point.get("comm_runs")
    ev = evaluate_adaptation(
        machine,
        int(point["nprocs"]),
        runs=int(point.get("runs", 16)),
        gap_ratio=float(point.get("gap_ratio", 2.0)),
        comm_samples=int(point.get("comm_samples", 5)),
        comm_runs=None if comm_runs is None else int(comm_runs),
    )
    metrics = {
        "adapted_pattern": ev.pattern_name,
        "top_kind": ev.top_kind,
        "levels": ev.levels,
        "adapted_predicted_s": ev.adapted_predicted,
        "adapted_measured_s": ev.adapted_measured,
        "best_default": ev.best_default_name,
        "default_predicted_s": ev.best_default_predicted,
        "default_measured_s": ev.best_default_measured,
        "measured_speedup": ev.measured_speedup,
    }
    if ev.ensemble_runs is not None:
        metrics["ensemble_predicted_s"] = ev.ensemble_predicted_mean
        metrics["ensemble_predicted_spread"] = ev.ensemble_predicted_spread
        metrics["choice_stability"] = ev.choice_stability
    return metrics


@register_experiment(
    "stencil-predict",
    "predicted stencil iteration cost: preset, n, nprocs "
    "[kind=bsp|mpi|mpi+r, comm_samples, nodes, seed]",
)
def stencil_predict(point: Mapping[str, Any]) -> dict:
    from repro.stencil.predictor import predict_iteration

    machine = _machine_from_point(point)
    prediction = predict_iteration(
        machine,
        int(point["n"]),
        int(point["nprocs"]),
        kind=str(point.get("kind", "bsp")),
        comm_samples=int(point.get("comm_samples", 5)),
    )
    return {
        "model": prediction.name,
        "per_iteration_s": prediction.per_iteration,
        "per_iteration_no_overlap_s": prediction.per_iteration_no_overlap,
        "overlap_saving_s": prediction.predicted_overlap_saving,
        "sync_s": prediction.t_sync,
    }


# ------------------------------------------------------- suite adapters
#
# The adapters below back the thesis figure/table suites in
# :mod:`repro.explore.figures`.  Each wraps one already-tested evaluate or
# bench API as a (point dict) -> (metrics dict) callable, so the suites'
# sweeps run through the campaign cache instead of bespoke loops.


def _profile_from_point(machine, placement, point: Mapping[str, Any]):
    from repro.barriers.evaluate import profile_placement

    return profile_placement(
        machine, placement, comm_samples=int(point.get("comm_samples", 5))
    )


@register_experiment(
    "bspbench-params",
    "classic bspbench (P, r, g, l) row: preset, nprocs [samples, seed]",
)
def bspbench_params(point: Mapping[str, Any]) -> dict:
    from repro.bench.bspbench import run_bspbench

    machine = _machine_from_point(point)
    result = run_bspbench(
        machine, int(point["nprocs"]), samples=int(point.get("samples", 9))
    )
    return {
        "r_flops": result.params.r,
        "g_flop": result.params.g,
        "l_flop": result.params.l,
    }


@register_experiment(
    "bspbench-rate",
    "DAXPY rate at one vector size (Fig. 4.2): preset, n "
    "[core, samples, iterations, seed]",
)
def bspbench_rate(point: Mapping[str, Any]) -> dict:
    from repro.bench.bspbench import measure_rate_points

    machine = _machine_from_point(point)
    pt = measure_rate_points(
        machine,
        int(point.get("core", 0)),
        sizes=(int(point["n"]),),
        iterations=int(point.get("iterations", 64)),
        samples=int(point.get("samples", 8)),
    )[0]
    return {"rate_flops": pt.rate_flops, "mean_s": pt.mean_seconds}


@register_experiment(
    "inner-product",
    "measured BSP inner product vs classic Eq. 3.7 estimate: preset, "
    "nprocs, n_total [samples, runs, seed]; runs=R measures a batched "
    "R-replication ensemble in one bsp_run",
)
def inner_product(point: Mapping[str, Any]) -> dict:
    import numpy as np

    from repro.bsplib import bsp_run
    from repro.bench.bspbench import run_bspbench
    from repro.core.bsp_classic import inner_product_cost_seconds
    from repro.kernels import DOT_PRODUCT

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    n_total = int(point["n_total"])

    def program(ctx):
        p, pid = ctx.nprocs, ctx.pid
        local_n = n_total // p
        sums = np.zeros(p)
        ctx.push_reg(sums)
        ctx.sync()
        ctx.charge_kernel(DOT_PRODUCT, local_n)
        local = np.array([1.0])
        for q in range(p):
            ctx.put(q, local, sums, offset=pid)
        ctx.sync()
        ctx.charge_kernel(DOT_PRODUCT, p)
        ctx.sync()

    runs = point.get("runs")
    measured = bsp_run(
        machine, nprocs, program, label=f"fig32-{nprocs}",
        runs=None if runs is None else int(runs),
    ).total_seconds
    params = run_bspbench(
        machine, nprocs, samples=int(point.get("samples", 5))
    ).params
    estimate = inner_product_cost_seconds(params, n_total)
    return {
        "measured_s": measured,
        "estimate_s": estimate,
        "estimate_ratio": estimate / measured,
    }


@register_experiment(
    "kernel-extrapolation",
    "kernel profile extrapolated to one application count vs measurement "
    "and the naive Mflops line: preset, kernel, applications "
    "[profile_n, samples, seed]",
)
def kernel_extrapolation(point: Mapping[str, Any]) -> dict:
    from repro.bench.kernel_bench import (
        benchmark_kernel,
        extrapolate_with_rate,
        validate_profile,
    )
    from repro.kernels import DAXPY, get_kernel

    machine = _machine_from_point(point)
    kernel = get_kernel(str(point["kernel"]))
    profile_n = int(point.get("profile_n", 1024))
    samples = int(point.get("samples", 15))
    iteration_counts = tuple(2**k for k in range(1, 11))
    profile = benchmark_kernel(
        machine, 0, kernel, profile_n,
        iteration_counts=iteration_counts, samples=samples,
    )
    # The naive "Mflops" line always extrapolates from the DAXPY rate, the
    # thesis's stand-in for a single-figure machine rating (§4.1).
    if kernel is DAXPY:
        mflops_rate = profile.rate_flops
    else:
        mflops_rate = benchmark_kernel(
            machine, 0, DAXPY, profile_n,
            iteration_counts=iteration_counts, samples=samples,
        ).rate_flops
    pt = validate_profile(
        machine, 0, kernel, profile,
        application_counts=(int(point["applications"]),),
    )[0]
    naive = float(
        extrapolate_with_rate(mflops_rate, kernel, profile_n, pt.applications)
    )
    return {
        "measured_s": pt.measured_seconds,
        "predicted_s": pt.predicted_seconds,
        "mflops_predicted_s": naive,
        "rel_error": pt.relative_error,
    }


@register_experiment(
    "blas-sweep",
    "median batch time of one BLAS L1 kernel at one problem size: preset, "
    "kernel, n [batch, seed]",
)
def blas_sweep(point: Mapping[str, Any]) -> dict:
    from repro.bench.blas_profile import sweep_kernel
    from repro.kernels import get_kernel

    machine = _machine_from_point(point)
    kernel = get_kernel(str(point["kernel"]))
    sweep = sweep_kernel(
        machine, 0, kernel, [int(point["n"])],
        batch=int(point.get("batch", 24)),
    )
    pt = sweep.points[0]
    return {
        "median_s": pt.median_seconds,
        "memory_bytes": pt.memory_use_bytes,
    }


@register_experiment(
    "sync-cost",
    "payload-carrying BSP sync vs bare barrier and the Ch. 6 estimate: "
    "preset, nprocs [runs, comm_samples, seed]",
)
def sync_cost(point: Mapping[str, Any]) -> dict:
    from repro.barriers import measure_barrier
    from repro.barriers.cost_model import predict_barrier_cost
    from repro.bsplib.sync_model import (
        measure_sync_cost,
        predict_sync_cost,
        sync_pattern,
    )

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    runs = int(point.get("runs", 16))
    placement = machine.placement(nprocs)
    params = _profile_from_point(machine, placement, point)
    pattern = sync_pattern(nprocs)
    return {
        "bare_s": measure_barrier(
            machine, pattern, placement, runs=runs
        ).mean_worst,
        "measured_s": measure_sync_cost(
            machine, placement, runs=runs
        ).mean_worst,
        "predicted_s": predict_sync_cost(params, nprocs),
        "predicted_bare_s": predict_barrier_cost(pattern, params),
    }


@register_experiment(
    "sss-cluster",
    "SSS latency clustering of one placement (Tables 7.1/7.2): preset, "
    "nprocs [gap_ratio, samples, seed]",
)
def sss_cluster_experiment(point: Mapping[str, Any]) -> dict:
    from repro.adapt import sss_cluster
    from repro.bench import benchmark_comm

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    placement = machine.placement(nprocs)
    sizes = point.get("comm_sizes")
    report = benchmark_comm(
        machine,
        placement,
        samples=int(point.get("samples", 9)),
        **({"sizes": tuple(int(s) for s in sizes)} if sizes else {}),
    )
    levels = sss_cluster(
        report.params.latency, gap_ratio=float(point.get("gap_ratio", 2.0))
    )
    node_level = levels[-2] if len(levels) >= 2 else levels[-1]
    nodes_pure = all(
        len({placement.node_of(r) for r in subset}) == 1
        for subset in node_level.subsets
    )
    return {
        "levels": [
            {
                "threshold_s": level.threshold,
                "subset_count": level.subset_count,
                "sizes": sorted(level.subset_sizes),
            }
            for level in levels
        ],
        "node_sizes": sorted(node_level.subset_sizes),
        "nodes_pure": nodes_pure,
        "top_subsets": levels[-1].subset_count,
    }


@register_experiment(
    "hybrid-barrier",
    "SSS-hierarchy hybrid barrier vs the flat defaults (Figs. 7.4/7.5): "
    "preset, nprocs [runs, comm_samples, seed]",
)
def hybrid_barrier(point: Mapping[str, Any]) -> dict:
    from repro.adapt import hierarchical_barrier, sss_cluster
    from repro.adapt.greedy import _useful_levels
    from repro.adapt.hybrid import flat_defaults
    from repro.barriers import measure_barrier

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    runs = int(point.get("runs", 16))
    placement = machine.placement(nprocs)
    params = _profile_from_point(machine, placement, point)
    levels = _useful_levels(sss_cluster(params.latency))
    gather = levels[:-1] if len(levels) > 1 else levels
    hybrid = hierarchical_barrier(
        nprocs, gather, local_kind="tree2", top_kind="dissemination"
    )
    metrics = {
        "hybrid_s": measure_barrier(
            machine, hybrid, placement, runs=runs
        ).mean_worst,
    }
    for name, pattern in flat_defaults(nprocs).items():
        metrics[f"{name}_s"] = measure_barrier(
            machine, pattern, placement, runs=runs
        ).mean_worst
    metrics["win"] = metrics["hybrid_s"] <= 1.05 * min(
        v for k, v in metrics.items() if k not in ("hybrid_s", "win")
    )
    return metrics


@register_experiment(
    "barrier-prediction-variants",
    "measured barrier vs Eq. 5.4 prediction and its ablated variants "
    "(DESIGN.md §6): preset, pattern, nprocs [runs, comm_samples, seed]",
)
def barrier_prediction_variants(point: Mapping[str, Any]) -> dict:
    from repro.barriers import CommParameters, measure_barrier
    from repro.barriers.cost_model import predict_barrier_cost

    machine = _machine_from_point(point)
    pattern = _pattern_from_point(point)
    placement = machine.placement(pattern.nprocs)
    params = _profile_from_point(machine, placement, point)
    halved = CommParameters(
        overhead=params.overhead,
        latency=params.latency * 0.5,  # turns 2L into 1L in Eq. 5.4
        inv_bandwidth=params.inv_bandwidth,
    )
    return {
        "measured_s": measure_barrier(
            machine, pattern, placement, runs=int(point.get("runs", 16))
        ).mean_worst,
        "predicted_s": predict_barrier_cost(pattern, params),
        "predicted_no_posted_s": predict_barrier_cost(
            pattern, params, use_posted_condition=False
        ),
        "predicted_single_latency_s": predict_barrier_cost(pattern, halved),
    }


@register_experiment(
    "fabric-study",
    "default barriers, profiled latency, and greedy adaptation on one "
    "fabric (§9.2.4): preset, nprocs [runs, comm_samples, seed]",
)
def fabric_study(point: Mapping[str, Any]) -> dict:
    from repro.adapt import flat_defaults, greedy_adapt
    from repro.barriers import measure_barrier

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    runs = int(point.get("runs", 16))
    placement = machine.placement(nprocs)
    params = _profile_from_point(machine, placement, point)
    metrics = {
        f"{name}_s": measure_barrier(
            machine, pattern, placement, runs=runs
        ).mean_worst
        for name, pattern in flat_defaults(nprocs).items()
    }
    adapted = greedy_adapt(params)
    metrics["adapted_pattern"] = adapted.pattern.name
    metrics["adapted_s"] = measure_barrier(
        machine, adapted.pattern, placement, runs=runs
    ).mean_worst
    metrics["max_latency_s"] = float(params.latency.max())
    return metrics


@register_experiment(
    "stencil-run",
    "one stencil implementation run (A-series): preset, impl, n, nprocs "
    "[iterations, noisy, runs, seed, critpath]",
)
def stencil_run(point: Mapping[str, Any]) -> dict:
    import numpy as np

    from repro.stencil.experiments import run_strong_scaling

    machine = _machine_from_point(point)
    impl = str(point["impl"])
    n = int(point["n"])
    nprocs = int(point["nprocs"])
    iterations = int(point.get("iterations", 6))
    noisy = bool(point.get("noisy", True))
    runs = point.get("runs")
    critpath = bool(point.get("critpath", False))
    # Like runs, provenance exists only on the BSP runtime; an MPI-family
    # request is an error rather than a silent scalar fallback.
    if critpath and impl != "BSP":
        raise ValueError(
            f"critpath is only supported for the BSP implementation; "
            f"got critpath with impl={impl!r}"
        )
    result = run_strong_scaling(
        machine,
        [impl],
        n,
        (nprocs,),
        iterations=iterations,
        noisy=noisy,
        runs=None if runs is None else int(runs),
    )[impl][nprocs]
    metrics = {
        "mean_iteration_s": result.mean_iteration,
        "total_s": result.total_seconds,
    }
    # Ensemble fields only appear when runs is requested, so existing
    # campaigns/goldens without the key stay byte-identical.
    if runs is not None:
        per_run = result.run_mean_iterations
        metrics["ensemble_runs"] = int(runs)
        metrics["ensemble_mean_iteration_s"] = float(per_run.mean())
        metrics["ensemble_spread_iteration_s"] = float(np.std(per_run))
    if critpath:
        from repro.obs import emit_report, explain
        from repro.stencil.impls import run_bsp_stencil

        # Replay the exact A-series run (same label → same noise draws)
        # with provenance recording enabled.
        replay = run_bsp_stencil(
            machine, nprocs, n, iterations,
            execute_numerics=False, noisy=noisy,
            label=f"a-series-{nprocs}-{n}",
            runs=None if runs is None else int(runs),
            provenance=True,
        )
        report = explain(
            replay.provenance, label=f"stencil-bsp-{nprocs}-{n}"
        )
        emit_report(report)  # no-op unless telemetry is on
        metrics.update(_critpath_metrics(report))
    return metrics


@register_experiment(
    "stencil-accuracy",
    "stencil per-iteration prediction vs measurement (B-series): preset, "
    "impl, n, nprocs [iterations, comm_samples, runs, seed]",
)
def stencil_accuracy(point: Mapping[str, Any]) -> dict:
    import numpy as np

    from repro.stencil import (
        decompose,
        predict_bsp_iteration,
        predict_mpi_iteration,
        run_bsp_stencil,
        run_mpi_r_stencil,
        run_mpi_stencil,
        stencil_sec_per_cell,
    )
    from repro.stencil.impls import WORD

    machine = _machine_from_point(point)
    impl = str(point["impl"])
    n = int(point["n"])
    nprocs = int(point["nprocs"])
    iterations = int(point.get("iterations", 5))
    blocks = decompose(n, nprocs)
    placement = machine.placement(nprocs)
    params = _profile_from_point(machine, placement, point)
    block = blocks[0]
    spc = stencil_sec_per_cell(
        machine,
        placement.core_of(0),
        block.interior_cells,
        2.0 * (block.height + 2) * (block.width + 2) * WORD,
    )
    runs = point.get("runs")
    if runs is not None and impl != "BSP":
        raise ValueError(
            f"runs is only supported for the BSP implementation; "
            f"got runs={runs} with impl={impl!r}"
        )
    ensemble = None
    if impl == "BSP":
        predicted = predict_bsp_iteration(blocks, spc, params).per_iteration
        result = run_bsp_stencil(
            machine, nprocs, n, iterations, execute_numerics=False,
            label=f"b-{impl}-{n}-{nprocs}",
            runs=None if runs is None else int(runs),
        )
        measured = result.mean_iteration
        if runs is not None:
            ensemble = result.run_mean_iterations
    elif impl == "MPI":
        predicted = predict_mpi_iteration(blocks, spc, params).per_iteration
        measured = run_mpi_stencil(
            machine, nprocs, n, iterations
        ).mean_iteration
    elif impl == "MPI+R":
        predicted = predict_mpi_iteration(
            blocks, spc, params, overlap=True
        ).per_iteration
        measured = run_mpi_r_stencil(
            machine, nprocs, n, iterations
        ).mean_iteration
    else:
        raise ValueError(f"unknown prediction implementation {impl!r}")
    metrics = {
        "predicted_s": predicted,
        "measured_s": measured,
        "ratio": predicted / measured,
    }
    if ensemble is not None:
        metrics["ensemble_runs"] = int(runs)
        metrics["ensemble_mean_iteration_s"] = float(ensemble.mean())
        metrics["ensemble_spread_iteration_s"] = float(np.std(ensemble))
    return metrics


@register_experiment(
    "halo-depth",
    "adapted-superstep prediction and charge-model measurement at one "
    "shadow-cell depth (Fig. 8.18): preset, nprocs, n, depth "
    "[cycles, comm_samples, runs, seed]",
)
def halo_depth(point: Mapping[str, Any]) -> dict:
    import numpy as np

    from repro.stencil import (
        decompose,
        measure_halo_iteration,
        stencil_sec_per_cell,
    )
    from repro.stencil.impls import WORD
    from repro.stencil.optimizer import predict_halo_iteration

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    n = int(point["n"])
    depth = int(point["depth"])
    placement = machine.placement(nprocs)
    params = _profile_from_point(machine, placement, point)
    block = decompose(n, nprocs)[0]
    spc = stencil_sec_per_cell(
        machine,
        placement.core_of(0),
        block.interior_cells,
        2.0 * (block.height + 2) * (block.width + 2) * WORD,
    )
    metrics = {
        "predicted_s": predict_halo_iteration(
            nprocs, n, depth, spc, params
        ).per_iteration,
    }
    runs = point.get("runs")
    if runs is None:
        metrics["measured_s"] = measure_halo_iteration(
            machine, nprocs, n, depth, cycles=int(point.get("cycles", 6))
        )
    else:
        ensemble = measure_halo_iteration(
            machine, nprocs, n, depth, cycles=int(point.get("cycles", 6)),
            runs=int(runs),
        )
        metrics["measured_s"] = float(ensemble.mean())
        metrics["ensemble_runs"] = int(runs)
        metrics["measured_spread_s"] = float(np.std(ensemble))
    return metrics


@register_experiment(
    "overlap-commit",
    "identical superstep workload with puts committed early vs late "
    "(Fig. 1.2 ablation): preset, nprocs, commit=early|late [seed]",
)
def overlap_commit(point: Mapping[str, Any]) -> dict:
    import numpy as np

    from repro.bsplib import bsp_run
    from repro.kernels import DAXPY

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    commit = str(point["commit"])
    if commit not in ("early", "late"):
        raise ValueError("commit must be 'early' or 'late'")
    payload_elems = int(point.get("payload_elems", 40_000))
    compute_reps = int(point.get("compute_reps", 220))
    supersteps = int(point.get("supersteps", 3))

    def program(ctx):
        data = np.zeros(payload_elems)
        ctx.push_reg(data)
        ctx.sync()
        src = np.ones(payload_elems)
        for _ in range(supersteps):
            if commit == "early":
                ctx.put((ctx.pid + 1) % ctx.nprocs, src, data)
                ctx.charge_kernel(DAXPY, 4096, reps=compute_reps)
            else:
                ctx.charge_kernel(DAXPY, 4096, reps=compute_reps)
                ctx.put((ctx.pid + 1) % ctx.nprocs, src, data)
            ctx.sync()

    result = bsp_run(
        machine, nprocs, program,
        label=f"ov-{commit}-{nprocs}", noisy=False,
    )
    return {"total_s": result.total_seconds}


@register_experiment(
    "spinlock",
    "spinlock handoff under contention (§5.1): preset, lock, nprocs "
    "[acquisitions, placement=block, runs, seed]; lock='bound' reports the "
    "single-signal lower bound against a measured dissemination barrier "
    "on the round-robin placement instead; runs=R re-rolls the handoff "
    "noise over R batched replications",
)
def spinlock(point: Mapping[str, Any]) -> dict:
    from repro.barriers import dissemination_barrier, measure_barrier
    from repro.spinlocks import barrier_lower_bound, simulate_spinlock

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    lock = str(point["lock"])
    if lock == "bound":
        placement = machine.placement(nprocs)
        return {
            "bound_s": barrier_lower_bound(machine, placement),
            "barrier_s": measure_barrier(
                machine,
                dissemination_barrier(nprocs),
                placement,
                runs=int(point.get("runs", 16)),
            ).mean_worst,
        }
    # Contending threads pack onto sockets/nodes ("block"), the locality
    # setup the §5.1 study is about — round-robin would interleave nodes
    # and measure a different experiment.
    placement = machine.placement(
        nprocs, policy=str(point.get("placement", "block"))
    )
    runs = point.get("runs")
    result = simulate_spinlock(
        machine, lock, placement,
        acquisitions_per_thread=int(point.get("acquisitions", 12)),
        runs=None if runs is None else int(runs),
    )
    return {"mean_handoff_s": result.mean_handoff}


@register_experiment(
    "stencil-mode-accuracy",
    "BSP stencil prediction error in weak vs strong mode (§4.3): preset, "
    "nprocs, mode=weak|strong [local_side, strong_n, comm_samples, seed]",
)
def stencil_mode_accuracy(point: Mapping[str, Any]) -> dict:
    from repro.stencil import (
        decompose,
        predict_bsp_iteration,
        run_bsp_stencil,
        stencil_sec_per_cell,
    )
    from repro.stencil.impls import WORD

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    mode = str(point["mode"])
    if mode == "weak":
        side = int(point.get("local_side", 256))
        n = int(round((side * side * nprocs) ** 0.5))
    elif mode == "strong":
        n = int(point.get("strong_n", 1024))
    else:
        raise ValueError("mode must be 'weak' or 'strong'")
    blocks = decompose(n, nprocs)
    placement = machine.placement(nprocs)
    params = _profile_from_point(machine, placement, point)
    block = blocks[0]
    spc = stencil_sec_per_cell(
        machine, placement.core_of(0), block.interior_cells,
        2.0 * (block.height + 2) * (block.width + 2) * WORD,
    )
    predicted = predict_bsp_iteration(blocks, spc, params).per_iteration
    measured = run_bsp_stencil(
        machine, nprocs, n, 5, execute_numerics=False,
        label=f"ws-{nprocs}-{n}",
    ).mean_iteration
    return {
        "n": n,
        "predicted_s": predicted,
        "measured_s": measured,
        "rel_error": abs(predicted - measured) / measured,
    }


@register_experiment(
    "hetero-compute",
    "per-rank compute prediction vs measurement on the FMA-heterogeneous "
    "preset (§3.3): preset, nprocs, n [seed]",
)
def hetero_compute(point: Mapping[str, Any]) -> dict:
    import numpy as np

    from repro.core.matrix_model import ComputationModel
    from repro.kernels import STENCIL5
    from repro.stencil import decompose
    from repro.stencil.impls import WORD

    machine = _machine_from_point(point)
    nprocs = int(point["nprocs"])
    n = int(point["n"])
    placement = machine.placement(nprocs)
    blocks = decompose(n, nprocs)

    # R/C matrices: requirements = cells per rank; costs = profiled
    # seconds/cell per rank (medians of noisy timings).
    cells = np.array([float(b.interior_cells) for b in blocks])
    costs = np.empty(nprocs)
    rng = machine.rng("hetero-profile")
    for rank, block in enumerate(blocks):
        fp = 2.0 * (block.height + 2) * (block.width + 2) * WORD
        samples = [
            machine.kernel_time(
                placement.core_of(rank), STENCIL5, block.interior_cells,
                rng=rng, footprint_bytes=fp,
            )
            for _ in range(9)
        ]
        costs[rank] = np.median(samples) / block.interior_cells
    model = ComputationModel(
        cells.reshape(-1, 1), costs.reshape(-1, 1),
        kernel_names=("stencil5",),
    )
    predicted = model.superstep_times()
    measured = np.array([
        machine.kernel_time_clean(
            placement.core_of(rank), STENCIL5, b.interior_cells,
            footprint_bytes=2.0 * (b.height + 2) * (b.width + 2) * WORD,
        )
        for rank, b in enumerate(blocks)
    ])
    fast = np.array([
        machine.topology.socket_of(placement.core_of(r)) % 2 == 0
        for r in range(nprocs)
    ])
    weights = (1.0 / costs) / (1.0 / costs).sum()
    balanced = ComputationModel(
        (weights * cells.sum()).reshape(-1, 1), costs.reshape(-1, 1)
    )
    return {
        "predicted_s": [float(v) for v in predicted],
        "measured_s": [float(v) for v in measured],
        "fast_socket": [bool(v) for v in fast],
        "imbalance_predicted_s": model.load_imbalance(),
        "imbalance_measured_s": float(measured.max() - measured.min()),
        "superstep_s": float(predicted.max()),
        "rebalanced_superstep_s": float(balanced.superstep_times().max()),
    }
