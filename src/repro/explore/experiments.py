"""Experiment registry and the built-in thesis experiment adapters.

An *experiment* maps one design point (a plain parameter dict) to a flat
metrics dict.  Experiments are registered by name so design-space specs —
and worker processes of the parallel executor — can reference them as
strings.  The built-ins wrap the repository's evaluate APIs:

* ``barrier-cost``     — measured vs predicted cost of one barrier pattern
                         (§5.6.6; the Figs. 5.6-5.13 points),
* ``barrier-adapt``    — the greedy adaptation pipeline vs the best system
                         default (Figs. 7.6-7.7),
* ``stencil-predict``  — predicted per-iteration stencil cost for one
                         implementation model (§8.5, Figs. 8.8-8.9).

Every adapter builds its platform from the named preset registry
(:mod:`repro.cluster.presets`), so a campaign spec is pure data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.barriers.patterns import (
    all_to_all_barrier,
    dissemination_barrier,
    kary_dissemination_barrier,
    linear_barrier,
    pairwise_exchange_barrier,
    sequential_linear_barrier,
    tree_barrier,
)

#: Barrier families referenceable by name from design points.
PATTERN_FAMILIES: dict[str, Callable[[int], Any]] = {
    "linear": linear_barrier,
    "tree": tree_barrier,
    "dissemination": dissemination_barrier,
    "pairwise": pairwise_exchange_barrier,
    "all-to-all": all_to_all_barrier,
    "sequential": sequential_linear_barrier,
    "kary-dissemination": kary_dissemination_barrier,
}


@dataclass(frozen=True)
class Experiment:
    """A named design-point evaluator."""

    name: str
    fn: Callable[[Mapping[str, Any]], dict]
    description: str = ""

    def __call__(self, point: Mapping[str, Any]) -> dict:
        return self.fn(point)


EXPERIMENTS: dict[str, Experiment] = {}


def register_experiment(name: str, description: str = ""):
    """Decorator registering ``fn`` as the experiment called ``name``."""

    def deco(fn: Callable[[Mapping[str, Any]], dict]):
        EXPERIMENTS[name] = Experiment(name=name, fn=fn, description=description)
        return fn

    return deco


def get_experiment(name: str) -> Experiment:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r} (known: {known})") from None


def experiment_names() -> list[str]:
    return sorted(EXPERIMENTS)


def run_point(experiment: str, point: Mapping[str, Any]) -> dict:
    """Evaluate one design point — the unit of work both executors run."""
    return get_experiment(experiment)(point)


# ----------------------------------------------------------------- adapters

def _machine_from_point(point: Mapping[str, Any]):
    from repro.cluster.presets import make_preset_machine

    return make_preset_machine(
        point["preset"],
        nodes=point.get("nodes"),
        seed=int(point.get("seed", 2012)),
    )


def _pattern_from_point(point: Mapping[str, Any]):
    name = point["pattern"]
    try:
        factory = PATTERN_FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(PATTERN_FAMILIES))
        raise KeyError(
            f"unknown barrier pattern {name!r} (known: {known})"
        ) from None
    return factory(int(point["nprocs"]))


@register_experiment(
    "barrier-cost",
    "measured vs predicted barrier cost: preset, pattern, nprocs "
    "[runs, comm_samples, nodes, seed]",
)
def barrier_cost(point: Mapping[str, Any]) -> dict:
    from repro.barriers.evaluate import evaluate_barrier

    machine = _machine_from_point(point)
    pattern = _pattern_from_point(point)
    ev = evaluate_barrier(
        machine,
        pattern,
        runs=int(point.get("runs", 16)),
        comm_samples=int(point.get("comm_samples", 5)),
    )
    return {
        "measured_s": ev.measured,
        "predicted_s": ev.predicted,
        "abs_error_s": ev.absolute_error,
        "rel_error": ev.relative_error,
        "num_stages": ev.num_stages,
        "total_messages": ev.total_messages,
    }


@register_experiment(
    "barrier-adapt",
    "greedy adaptation vs best flat default: preset, nprocs "
    "[runs, gap_ratio, comm_samples, nodes, seed]",
)
def barrier_adapt(point: Mapping[str, Any]) -> dict:
    from repro.adapt.evaluate import evaluate_adaptation

    machine = _machine_from_point(point)
    ev = evaluate_adaptation(
        machine,
        int(point["nprocs"]),
        runs=int(point.get("runs", 16)),
        gap_ratio=float(point.get("gap_ratio", 2.0)),
        comm_samples=int(point.get("comm_samples", 5)),
    )
    return {
        "adapted_pattern": ev.pattern_name,
        "top_kind": ev.top_kind,
        "levels": ev.levels,
        "adapted_predicted_s": ev.adapted_predicted,
        "adapted_measured_s": ev.adapted_measured,
        "best_default": ev.best_default_name,
        "default_predicted_s": ev.best_default_predicted,
        "default_measured_s": ev.best_default_measured,
        "measured_speedup": ev.measured_speedup,
    }


@register_experiment(
    "stencil-predict",
    "predicted stencil iteration cost: preset, n, nprocs "
    "[kind=bsp|mpi|mpi+r, comm_samples, nodes, seed]",
)
def stencil_predict(point: Mapping[str, Any]) -> dict:
    from repro.stencil.predictor import predict_iteration

    machine = _machine_from_point(point)
    prediction = predict_iteration(
        machine,
        int(point["n"]),
        int(point["nprocs"]),
        kind=str(point.get("kind", "bsp")),
        comm_samples=int(point.get("comm_samples", 5)),
    )
    return {
        "model": prediction.name,
        "per_iteration_s": prediction.per_iteration,
        "per_iteration_no_overlap_s": prediction.per_iteration_no_overlap,
        "overlap_saving_s": prediction.predicted_overlap_saving,
        "sync_s": prediction.t_sync,
    }
