"""Numeric encoding of design points for surrogates and distances.

Samplers and surrogates need a geometry over the (discrete, mixed-type)
design space: "how far apart are two configurations?" and "what does the
objective look like as a function of position?".  A :class:`SpaceEncoder`
maps every candidate point to a vector in the unit hypercube, one feature
per *varying* parameter:

* numeric parameters (ints/floats, not bools) are min-max scaled by
  value, so ``nprocs=8`` and ``nprocs=16`` are closer than ``nprocs=8``
  and ``nprocs=64`` — the ordering the surrogate exploits;
* everything else (pattern names, presets, bools, lists) is ordinal over
  the parameter's first-seen value order, which for grid axes is the
  declaration order of the axis;
* parameters constant across all candidates (the space's ``constants``
  and single-value axes) are dropped — they carry no information.

Encoding is a pure function of the candidate list, so two encoders built
from the same expansion are bit-identical — a requirement for the seeded
determinism the samplers guarantee.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.explore.space import DesignPoint, canonical_json


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class SpaceEncoder:
    """Encode design points as vectors in ``[0, 1]^d``."""

    def __init__(self, points: Sequence[DesignPoint | Mapping]):
        points = [
            p if isinstance(p, DesignPoint) else DesignPoint(p)
            for p in points
        ]
        if not points:
            raise ValueError("cannot build an encoder from zero points")
        # First-seen value order per parameter, over the expansion order.
        values: dict[str, dict[str, object]] = {}
        for point in points:
            for name, value in point.items():
                values.setdefault(name, {}).setdefault(
                    canonical_json(value), value
                )
        self._features: list[str] = []
        self._scales: dict[str, tuple[float, float]] = {}
        self._ordinals: dict[str, dict[str, float]] = {}
        for name, seen in values.items():
            if len(seen) < 2:
                continue  # constant: no information
            self._features.append(name)
            if all(_is_numeric(v) for v in seen.values()):
                lo = min(float(v) for v in seen.values())
                hi = max(float(v) for v in seen.values())
                self._scales[name] = (lo, hi - lo)
            else:
                k = len(seen) - 1
                self._ordinals[name] = {
                    marker: idx / k for idx, marker in enumerate(seen)
                }

    @property
    def features(self) -> list[str]:
        """The encoded parameter names, in first-seen order."""
        return list(self._features)

    @property
    def dimensions(self) -> int:
        return len(self._features)

    def encode(self, point: DesignPoint | Mapping) -> np.ndarray:
        """One point as a ``(dimensions,)`` float vector.

        Unseen numeric values extrapolate through the min-max scale;
        unseen categorical values land just past the known range (1 + 1/k)
        so they are "far from everything" rather than an error — drift
        refinement may probe off-grid points.
        """
        if not isinstance(point, DesignPoint):
            point = DesignPoint(point)
        vec = np.empty(len(self._features))
        for i, name in enumerate(self._features):
            value = point.get(name)
            if name in self._scales:
                lo, span = self._scales[name]
                if not _is_numeric(value):
                    raise TypeError(
                        f"parameter {name!r} is numeric in the space but "
                        f"{value!r} is not"
                    )
                vec[i] = (float(value) - lo) / span
            else:
                ordinals = self._ordinals[name]
                marker = canonical_json(value)
                if marker in ordinals:
                    vec[i] = ordinals[marker]
                else:
                    vec[i] = 1.0 + 1.0 / max(len(ordinals), 1)
        return vec

    def encode_many(self, points: Sequence[DesignPoint | Mapping]) -> np.ndarray:
        """A ``(len(points), dimensions)`` matrix, row order preserved."""
        if not points:
            return np.empty((0, len(self._features)))
        return np.stack([self.encode(p) for p in points])
