"""The adaptive campaign driver: budgeted propose/evaluate/observe loops.

:class:`AdaptiveCampaign` is to a sampler what :class:`Campaign` is to a
design space: it owns the evaluation plumbing — executor choice, the
append-only JSONL store, failure policy — and loops batches of sampler
proposals through :meth:`Campaign.serve` until the budget is spent or the
strategy has nothing left to propose.  Because serving goes through the
same content-hash cache as exhaustive campaigns, adaptive and exhaustive
runs over one store *share* results in both directions: an adaptive run
warm-starts from whatever an earlier sweep evaluated, and the points it
evaluates make a later exhaustive run cheaper.

Budget semantics: the budget counts **distinct points observed** by the
strategy, whether they were freshly evaluated or served from the cache —
it bounds the information the search consumes, which is what makes the
"found the optimum on ≤ N points" claim meaningful and run-independent.
The stats still split fresh evaluations from cache reads.
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.explore.adaptive.samplers import Observation, make_sampler
from repro.explore.campaign import Campaign, CampaignStats
from repro.explore.resilience import RetryPolicy
from repro.explore.results import ResultRecord, ResultSet
from repro.explore.space import DesignSpace
from repro.obs import current as _telemetry
from repro.obs import summarize_run
from repro.obs import wallclock as _wallclock


@dataclass(frozen=True)
class AdaptivePlan:
    """A sampling plan as data: strategy, budget, objective(s), options.

    This is the declarative form suite specs and the CLI build —
    everything :func:`run_adaptive` needs beyond the (space, experiment)
    pair.  ``options`` passes through to the strategy constructor
    (``fidelity=``/``eta=`` for halving, ``explore=``/``warmup=`` for
    surrogate, ...).
    """

    budget: int
    strategy: str = "surrogate"
    objective: str | None = None
    objectives: tuple[str, ...] = ()
    maximize: bool | tuple[str, ...] = False
    batch: int = 16
    seed: int = 0
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        object.__setattr__(self, "objectives", tuple(self.objectives))
        if not isinstance(self.maximize, bool):
            object.__setattr__(self, "maximize", tuple(self.maximize))
        object.__setattr__(self, "options", dict(self.options))

    def build_sampler(self, space: DesignSpace):
        return make_sampler(
            self.strategy,
            space,
            seed=self.seed,
            objective=self.objective,
            objectives=self.objectives,
            maximize=self.maximize,
            **self.options,
        )


@dataclass(frozen=True)
class AdaptiveStats:
    """How an adaptive run spent its budget."""

    budget: int
    space_size: int
    proposed: int
    evaluated: int
    cached: int
    failed: int
    rounds: int
    quarantined: int = 0

    @property
    def total(self) -> int:
        """Points served, the :class:`CampaignStats` -compatible name — a
        suite over an adaptive plan renders through the same template."""
        return self.proposed

    @property
    def coverage(self) -> float:
        """Fraction of the design space the run observed."""
        return self.proposed / self.space_size if self.space_size else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.proposed if self.proposed else 0.0


@dataclass(frozen=True)
class AdaptiveOutcome:
    """A finished adaptive run: results in evaluation order plus stats."""

    name: str
    plan: AdaptivePlan
    results: ResultSet
    stats: AdaptiveStats

    def best(self) -> ResultRecord:
        """The best observed record under the plan's single objective."""
        if self.plan.objective is None:
            raise ValueError(
                "best() needs a single-objective plan; use front() for "
                "Pareto plans"
            )
        ascending = not (
            self.plan.maximize is True
            or (
                not isinstance(self.plan.maximize, bool)
                and self.plan.objective in self.plan.maximize
            )
        )
        return self.results.best(self.plan.objective, ascending=ascending)

    def front(self) -> ResultSet:
        """The observed Pareto front under the plan's objectives."""
        objectives = self.plan.objectives or (
            (self.plan.objective,) if self.plan.objective else ()
        )
        if not objectives:
            raise ValueError("the plan names no objectives")
        maximize = (
            () if isinstance(self.plan.maximize, bool) and not self.plan.maximize
            else (objectives if self.plan.maximize is True else self.plan.maximize)
        )
        return self.results.pareto_front(objectives, maximize=maximize)

    def regret(self, exhaustive: ResultSet) -> float:
        """Gap between the adaptive best and the true best of an
        exhaustive result set, in objective units (0.0 = optimum found).

        The exhaustive set is typically a tier-2 full sweep over the same
        store; signs are normalised so regret is always >= 0-ish
        ("how much worse is what the search found").
        """
        if self.plan.objective is None:
            raise ValueError("regret() needs a single-objective plan")
        ascending = not (
            self.plan.maximize is True
            or (
                not isinstance(self.plan.maximize, bool)
                and self.plan.objective in self.plan.maximize
            )
        )
        found = float(self.best().value(self.plan.objective))
        true = float(
            exhaustive.best(
                self.plan.objective, ascending=ascending
            ).value(self.plan.objective)
        )
        return (found - true) if ascending else (true - found)


class AdaptiveCampaign:
    """A named (design space, experiment, plan) triple bound to a store."""

    def __init__(
        self,
        name: str,
        space: DesignSpace,
        experiment: str,
        plan: AdaptivePlan,
        store_dir: str | os.PathLike | None = None,
        executor: str | Any | None = None,
        workers: int | None = None,
        on_error: str = "raise",
        durable: bool = False,
        policy: RetryPolicy | None = None,
        degrade: bool = False,
    ):
        self.plan = plan
        # The underlying campaign owns cache, executor, and error policy;
        # sharing its name with exhaustive runs is what shares the store.
        self._campaign = Campaign(
            name,
            space,
            experiment,
            store_dir=store_dir,
            executor=executor,
            workers=workers,
            on_error=on_error,
            durable=durable,
            policy=policy,
            degrade=degrade,
        )

    @property
    def name(self) -> str:
        return self._campaign.name

    @property
    def space(self) -> DesignSpace:
        return self._campaign.space

    def run(self) -> AdaptiveOutcome:
        """Loop propose → serve → observe until the budget is spent.

        With telemetry on, each round records an ``adaptive.round`` span
        (serving nests ``campaign.serve`` inside it) and the finished run
        persists a :class:`repro.obs.TelemetrySummary` next to the store,
        exactly like an exhaustive :meth:`Campaign.run`.
        """
        tele = _telemetry()
        started = _wallclock()
        plan = self.plan
        sampler = plan.build_sampler(self.space)
        records: list[ResultRecord] = []
        evaluated = cached = failed = quarantined = rounds = 0
        failures: list[dict] = []
        while len(records) < plan.budget:
            batch = min(plan.batch, plan.budget - len(records))
            proposals = sampler.propose(batch)
            if not proposals:
                break  # strategy done (space exhausted or halving finished)
            if tele is None:
                served, stats = self._campaign.serve(proposals)
            else:
                with tele.span(
                    "adaptive.round",
                    campaign=self.name,
                    round=rounds,
                    proposed=len(proposals),
                    strategy=plan.strategy,
                ) as span:
                    served, stats = self._campaign.serve(proposals)
                    span.set("computed", stats.evaluated)
                    span.set("cached", stats.cached)
            sampler.observe([
                Observation(point=point, metrics=record.metrics)
                for point, record in zip(proposals, served)
            ])
            records.extend(served)
            evaluated += stats.evaluated
            cached += stats.cached
            failed += stats.failed
            quarantined += stats.quarantined
            failures.extend(self._campaign._last_failures)
            rounds += 1
        if tele is not None and self._campaign.store_dir is not None:
            tele.flush()
            summarize_run(
                self._campaign.store_dir,
                campaign=self.name,
                experiment=self._campaign.experiment,
                stats={
                    "total": len(records),
                    "evaluated": evaluated,
                    "cached": cached,
                    "failed": failed,
                    "quarantined": quarantined,
                    "rounds": rounds,
                    "budget": plan.budget,
                },
                wall_seconds=_wallclock() - started,
                keys=[record.key for record in records],
                started=started,
                failures=failures,
            )
        return AdaptiveOutcome(
            name=self.name,
            plan=plan,
            results=ResultSet(tuple(records)),
            stats=AdaptiveStats(
                budget=plan.budget,
                space_size=len(self.space),
                proposed=len(records),
                evaluated=evaluated,
                cached=cached,
                failed=failed,
                rounds=rounds,
                quarantined=quarantined,
            ),
        )


def run_adaptive(
    name: str,
    space: DesignSpace | Mapping[str, Any],
    experiment: str,
    plan: AdaptivePlan | Mapping[str, Any],
    store_dir: str | os.PathLike | None = None,
    executor: str | Any | None = None,
    workers: int | None = None,
    on_error: str = "raise",
    durable: bool = False,
    policy: RetryPolicy | None = None,
    degrade: bool = False,
) -> AdaptiveOutcome:
    """One-call convenience wrapper mirroring :func:`run_campaign`."""
    if not isinstance(space, DesignSpace):
        space = DesignSpace.from_dict(space)
    if not isinstance(plan, AdaptivePlan):
        plan = AdaptivePlan(**dict(plan))
    return AdaptiveCampaign(
        name,
        space,
        experiment,
        plan,
        store_dir=store_dir,
        executor=executor,
        workers=workers,
        on_error=on_error,
        durable=durable,
        policy=policy,
        degrade=degrade,
    ).run()
