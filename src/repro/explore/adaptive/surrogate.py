"""Cheap surrogate models over encoded design points.

The adaptive engine's surrogates are deliberately modest: a
nearest-neighbour interpolator and a ridge-regularised linear model, both
exact, dependency-free (numpy only), and refit from scratch on every
batch — at campaign scales (10^2–10^4 candidates, 10^1–10^3 observations)
a refit costs microseconds, and statelessness is what keeps the sampler
bit-reproducible.  The two see the objective differently — the linear
model extrapolates global trend, the neighbour model tracks local
structure — and :class:`SurrogateEnsemble` turns their *disagreement*
into the uncertainty signal the explore half of the acquisition rule
feeds on (Memeti & Pllana 2021 use the same trick with heavier models).
"""

from __future__ import annotations

import numpy as np


class NearestNeighbourSurrogate:
    """Inverse-distance-weighted k-NN regression.

    Prediction at an observed point reproduces its observation exactly
    (distance ~ 0 dominates the weights), so the exploit ranking never
    re-proposes a known point over an equally-promising unknown one.
    """

    name = "knn"

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NearestNeighbourSurrogate":
        if len(X) == 0:
            raise ValueError("cannot fit on zero observations")
        self._X = np.asarray(X, dtype=float)
        self._y = np.asarray(y, dtype=float)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("fit before predict")
        X = np.asarray(X, dtype=float)
        # (m, n) pairwise distances; small spaces make this exact approach
        # cheaper than any index structure.
        d = np.sqrt(
            ((X[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
        )
        k = min(self.k, len(self._X))
        nearest = np.argsort(d, axis=1, kind="stable")[:, :k]
        rows = np.arange(len(X))[:, None]
        w = 1.0 / (d[rows, nearest] + 1e-12)
        w /= w.sum(axis=1, keepdims=True)
        return (w * self._y[nearest]).sum(axis=1)


class LinearSurrogate:
    """Ridge-regularised least squares with intercept.

    The regulariser keeps the fit defined when observations are fewer
    than features (the first adaptive batches) and never penalises the
    intercept.
    """

    name = "linear"

    def __init__(self, ridge: float = 1e-6):
        if ridge < 0:
            raise ValueError("ridge must be >= 0")
        self.ridge = ridge
        self._beta: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSurrogate":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) == 0:
            raise ValueError("cannot fit on zero observations")
        A = np.hstack([np.ones((len(X), 1)), X])
        reg = self.ridge * np.eye(A.shape[1])
        reg[0, 0] = 0.0  # free intercept
        self._beta = np.linalg.solve(A.T @ A + reg, A.T @ y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._beta is None:
            raise RuntimeError("fit before predict")
        X = np.asarray(X, dtype=float)
        return np.hstack([np.ones((len(X), 1)), X]) @ self._beta


class SurrogateEnsemble:
    """The k-NN + linear pair: mean prediction and model disagreement.

    ``predict`` averages the members; ``uncertainty`` is the absolute
    spread between them — zero where both models agree (well-sampled,
    locally linear regions), large where global trend and local structure
    tell different stories, which is exactly where another sample buys
    the most information.
    """

    def __init__(self, k: int = 5, ridge: float = 1e-6):
        self.members = (NearestNeighbourSurrogate(k), LinearSurrogate(ridge))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SurrogateEnsemble":
        for member in self.members:
            member.fit(X, y)
        return self

    def _member_predictions(self, X: np.ndarray) -> np.ndarray:
        return np.stack([m.predict(X) for m in self.members])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._member_predictions(X).mean(axis=0)

    def uncertainty(self, X: np.ndarray) -> np.ndarray:
        preds = self._member_predictions(X)
        return np.abs(preds.max(axis=0) - preds.min(axis=0))
