"""Sampling strategies: which design points to evaluate next.

A sampler owns the *selection policy* of an adaptive campaign and nothing
else: the driver (:mod:`repro.explore.adaptive.driver`) asks it for a
batch of proposals, evaluates them through the ordinary campaign
machinery, and feeds the metrics back via :meth:`Sampler.observe`.  Three
properties are contractual, and the test suite enforces them per
strategy:

* **in-space** — proposals are always drawn from the space's expansion,
  never synthesised, so every proposal is evaluable and cacheable;
* **no repeats** — a point is proposed at most once per sampler, and
  points observed from elsewhere (a shared cache, a previous run) are
  never proposed again;
* **seeded determinism** — the proposal sequence is a pure function of
  ``(space, seed, options, observations fed back)``; no global RNG, no
  iteration-order dependence.  This is what makes adaptive campaigns
  bit-reproducible and executor-independent.

Strategies:

* ``random``      — seeded uniform order without replacement; the
                    baseline every guided strategy must beat;
* ``stratified``  — greedy maximin space-filling over the encoded axes
                    (a discrete stand-in for latin-hypercube designs);
* ``halving``     — successive halving over a declared fidelity axis:
                    wide and cheap first, deep on survivors;
* ``surrogate``   — active search: k-NN + linear surrogate ensemble,
                    exploit/explore acquisition, optional Pareto mode
                    over several objectives.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.explore.adaptive.encoding import SpaceEncoder
from repro.explore.adaptive.surrogate import SurrogateEnsemble
from repro.explore.space import DesignPoint, DesignSpace


@dataclass(frozen=True)
class Observation:
    """One evaluated proposal fed back to the sampler."""

    point: DesignPoint
    metrics: Mapping[str, Any]

    def value(self, objective: str) -> float | None:
        """The objective as a float, or None when missing/failed."""
        value = self.metrics.get(objective)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        value = float(value)
        return value if math.isfinite(value) else None


class Sampler:
    """Base class: candidate bookkeeping shared by every strategy.

    ``objective`` names the metric single-objective strategies optimise
    (minimised unless ``maximize``); ``objectives`` switches the
    strategies that support it into multi-metric mode, with ``maximize``
    then naming the metrics to maximise.
    """

    name = "base"

    def __init__(
        self,
        space: DesignSpace | Sequence[DesignPoint],
        seed: int = 0,
        objective: str | None = None,
        objectives: Sequence[str] = (),
        maximize: bool | Sequence[str] = False,
    ):
        if isinstance(space, DesignSpace):
            self.candidates: list[DesignPoint] = space.expand()
        else:
            self.candidates = [
                p if isinstance(p, DesignPoint) else DesignPoint(p)
                for p in space
            ]
        if not self.candidates:
            raise ValueError("sampler needs a non-empty candidate set")
        self.seed = int(seed)
        # Strategy name in the seed string: two strategies at the same seed
        # still make independent choices.
        self.rng = random.Random(f"{self.name}:{self.seed}")
        self.objectives = tuple(objectives)
        if objective is not None and self.objectives:
            raise ValueError("pass objective or objectives, not both")
        self.objective = objective
        if isinstance(maximize, bool):
            self._maximize = (
                set(filter(None, [objective])) if maximize else set()
            )
        else:
            self._maximize = set(maximize)
            unknown = self._maximize - set(self.objectives) - (
                {objective} if objective else set()
            )
            if unknown:
                raise ValueError(
                    f"maximize names unknown objectives: {sorted(unknown)}"
                )
        self._index = {p.key: i for i, p in enumerate(self.candidates)}
        self._proposed: set[str] = set()
        self.observations: list[Observation] = []

    # ------------------------------------------------------------- protocol

    def propose(self, batch: int) -> list[DesignPoint]:
        """Up to ``batch`` fresh candidate points (empty when exhausted)."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        picks = self._pick(batch)
        for point in picks:
            self._proposed.add(point.key)
        return picks

    def observe(self, observations: Sequence[Observation]) -> None:
        """Feed back evaluated metrics (proposed here or imported from a
        shared cache); observed points are never proposed again."""
        for obs in observations:
            self._proposed.add(obs.point.key)
            self.observations.append(obs)
            self._note(obs)

    # ----------------------------------------------------- subclass surface

    def _pick(self, batch: int) -> list[DesignPoint]:
        raise NotImplementedError

    def _note(self, observation: Observation) -> None:
        """Hook: a subclass updates its internal state per observation."""

    # -------------------------------------------------------------- helpers

    def _sign(self, objective: str) -> float:
        return -1.0 if objective in self._maximize else 1.0

    def _unproposed(self) -> list[int]:
        return [
            i for i, p in enumerate(self.candidates)
            if p.key not in self._proposed
        ]

    @property
    def exhausted(self) -> bool:
        return len(self._proposed) >= len(self.candidates)


class RandomSampler(Sampler):
    """Seeded uniform sampling without replacement."""

    name = "random"

    def __init__(self, space, seed: int = 0, **kwargs):
        super().__init__(space, seed, **kwargs)
        self._order = list(range(len(self.candidates)))
        self.rng.shuffle(self._order)
        self._cursor = 0

    def _pick(self, batch: int) -> list[DesignPoint]:
        picks: list[DesignPoint] = []
        while len(picks) < batch and self._cursor < len(self._order):
            point = self.candidates[self._order[self._cursor]]
            self._cursor += 1
            if point.key not in self._proposed:
                picks.append(point)
        return picks


class _MaximinState:
    """Greedy farthest-point bookkeeping over encoded candidates: tracks
    every candidate's distance to the nearest already-selected point."""

    def __init__(self, encoded: np.ndarray):
        self.encoded = encoded
        self.min_dist = np.full(len(encoded), np.inf)

    def select(self, idx: int) -> None:
        d = np.sqrt(((self.encoded - self.encoded[idx]) ** 2).sum(axis=1))
        self.min_dist = np.minimum(self.min_dist, d)

    def exclude(self, idx: int) -> None:
        self.min_dist[idx] = -np.inf

    def farthest(self) -> int:
        # argmax returns the first maximum: deterministic tie-breaking on
        # candidate (= expansion) order.
        return int(np.argmax(self.min_dist))


class StratifiedSampler(Sampler):
    """Greedy maximin space-filling over the encoded axes.

    The first pick is seeded-random; every later pick is the unproposed
    candidate farthest (in encoded Euclidean distance) from everything
    already selected or observed.  On discrete grids this covers every
    axis stratum before revisiting any — the role latin-hypercube designs
    play over continuous spaces — and it degrades gracefully on
    explicit-point spaces where no grid structure exists.
    """

    name = "stratified"

    def __init__(self, space, seed: int = 0, **kwargs):
        super().__init__(space, seed, **kwargs)
        self._encoder = SpaceEncoder(self.candidates)
        self._state = _MaximinState(self._encoder.encode_many(self.candidates))
        self._first = self.rng.randrange(len(self.candidates))
        self._started = False

    def _note(self, observation: Observation) -> None:
        idx = self._index.get(observation.point.key)
        if idx is not None:
            self._state.select(idx)
            self._state.exclude(idx)
            self._started = True

    def _pick(self, batch: int) -> list[DesignPoint]:
        picks: list[DesignPoint] = []
        while len(picks) < batch:
            if not self._started:
                idx = self._first
                if self.candidates[idx].key in self._proposed:
                    self._started = True
                    continue
                self._started = True
            else:
                idx = self._state.farthest()
                if self._state.min_dist[idx] == -np.inf:
                    break  # every candidate excluded
            if self.candidates[idx].key in self._proposed:
                self._state.exclude(idx)
                continue
            self._state.select(idx)
            self._state.exclude(idx)
            picks.append(self.candidates[idx])
        return picks


class SuccessiveHalvingSampler(Sampler):
    """Successive halving over a declared fidelity axis.

    The fidelity axis (``runs``, ``samples``, ``iterations`` — any axis
    whose values order cheap to expensive) splits the space into
    *configurations* (all other parameters) × *rungs* (fidelity values).
    Rung 0 proposes every configuration at the cheapest fidelity; each
    later rung keeps the best ``1/eta`` of the previous rung's survivors
    by the objective and re-proposes them one fidelity step up.  The
    effect: the full breadth of the space is screened at minimum cost and
    the evaluation budget concentrates on the configurations that keep
    winning.
    """

    name = "halving"

    def __init__(
        self,
        space,
        seed: int = 0,
        fidelity: str | None = None,
        eta: float = 3.0,
        **kwargs,
    ):
        super().__init__(space, seed, **kwargs)
        if self.objectives:
            raise ValueError(
                "successive halving is single-objective; pass objective="
            )
        if self.objective is None:
            raise ValueError("successive halving needs objective=")
        if not fidelity:
            raise ValueError(
                "successive halving needs fidelity= (the axis ordered "
                "cheap to expensive)"
            )
        if eta <= 1.0:
            raise ValueError("eta must be > 1")
        self.fidelity = fidelity
        self.eta = float(eta)
        if isinstance(space, DesignSpace):
            rung_values = list(space.axis(fidelity).values)
        else:
            seen: dict[str, Any] = {}
            for p in self.candidates:
                if fidelity in p:
                    seen.setdefault(
                        DesignPoint({fidelity: p[fidelity]}).key, p[fidelity]
                    )
            rung_values = list(seen.values())
        if not rung_values:
            raise ValueError(f"no candidate carries the axis {fidelity!r}")
        self._rungs = rung_values
        # configuration key -> {rung index -> candidate index}
        self._configs: dict[str, dict[int, int]] = {}
        rung_of = {
            DesignPoint({fidelity: v}).key: r
            for r, v in enumerate(rung_values)
        }
        for idx, point in enumerate(self.candidates):
            if fidelity not in point:
                continue
            rung = rung_of.get(DesignPoint({fidelity: point[fidelity]}).key)
            if rung is None:
                continue
            config = DesignPoint({
                k: v for k, v in point.items() if k != fidelity
            }).key
            self._configs.setdefault(config, {})[rung] = idx
        self._rung = 0
        cohort = [c for c, by in self._configs.items() if 0 in by]
        self.rng.shuffle(cohort)  # seeded tie-neutral rung-0 order
        self._cohort = cohort
        self._queue: list[int] = [self._configs[c][0] for c in cohort]
        self._pending: set[str] = set()  # point keys awaiting observation
        self._scores: dict[int, dict[str, float]] = {}  # rung -> config -> y

    def _note(self, observation: Observation) -> None:
        key = observation.point.key
        self._pending.discard(key)
        idx = self._index.get(key)
        if idx is None:
            return
        point = self.candidates[idx]
        if self.fidelity not in point:
            return
        rung_key = DesignPoint({self.fidelity: point[self.fidelity]}).key
        rung = {
            DesignPoint({self.fidelity: v}).key: r
            for r, v in enumerate(self._rungs)
        }.get(rung_key)
        if rung is None:
            return
        value = observation.value(self.objective)
        if value is None:
            return
        config = DesignPoint({
            k: v for k, v in point.items() if k != self.fidelity
        }).key
        self._scores.setdefault(rung, {})[config] = (
            self._sign(self.objective) * value
        )

    def _advance(self) -> None:
        """Promote the best 1/eta of the finished rung to the next one."""
        scores = self._scores.get(self._rung, {})
        ranked = sorted(
            (c for c in self._cohort if c in scores),
            key=lambda c: (scores[c], self._cohort.index(c)),
        )
        if not ranked or self._rung + 1 >= len(self._rungs):
            self._cohort = []
            return
        keep = max(1, math.ceil(len(ranked) / self.eta))
        self._rung += 1
        self._cohort = ranked[:keep]
        self._queue = [
            self._configs[c][self._rung]
            for c in self._cohort
            if self._rung in self._configs[c]
        ]

    def _pick(self, batch: int) -> list[DesignPoint]:
        picks: list[DesignPoint] = []
        while len(picks) < batch:
            while not self._queue:
                if self._pending:
                    # The rung is in flight; hand back what we have and
                    # wait for observe() before promoting survivors.
                    return picks
                if not self._cohort:
                    return picks
                self._advance()
                if not self._cohort:
                    return picks
            idx = self._queue.pop(0)
            point = self.candidates[idx]
            if point.key in self._proposed:
                continue
            self._pending.add(point.key)
            picks.append(point)
        return picks


class SurrogateSampler(Sampler):
    """Surrogate-guided active search with an exploit/explore acquisition.

    Until ``warmup`` observations carry a usable objective the sampler
    space-fills (greedy maximin, like ``stratified``).  After that, every
    batch refits a :class:`SurrogateEnsemble` per objective on the encoded
    observations and splits the batch:

    * **exploit** (``1 - explore`` of the batch): the unproposed
      candidates with the best predicted objective — in Pareto mode, the
      best under seeded rotating weighted-sum scalarisations, which
      spreads the exploit picks across the predicted front;
    * **explore** (the rest): the candidates with the largest uncertainty
      — surrogate disagreement plus distance to the nearest observation —
      which is where another sample most improves the model.

    Everything is refit from scratch per batch, so the proposal sequence
    is a pure function of the observations fed back.
    """

    name = "surrogate"

    def __init__(
        self,
        space,
        seed: int = 0,
        explore: float = 0.34,
        warmup: int | None = None,
        k: int = 5,
        ridge: float = 1e-6,
        **kwargs,
    ):
        super().__init__(space, seed, **kwargs)
        if self.objective is None and not self.objectives:
            raise ValueError(
                "surrogate sampling needs objective= (or objectives= for "
                "Pareto mode)"
            )
        if not 0.0 <= explore <= 1.0:
            raise ValueError("explore must be within [0, 1]")
        self.explore = float(explore)
        self._encoder = SpaceEncoder(self.candidates)
        self._encoded = self._encoder.encode_many(self.candidates)
        if warmup is None:
            warmup = max(2 * self._encoder.dimensions + 2, 4)
        self.warmup = int(warmup)
        self._filler = _MaximinState(self._encoded.copy())
        self._filler_first = self.rng.randrange(len(self.candidates))
        self._filler_started = False
        self._ensemble_factory = lambda: SurrogateEnsemble(k=k, ridge=ridge)

    # ------------------------------------------------------------- plumbing

    @property
    def _objective_names(self) -> tuple[str, ...]:
        return self.objectives if self.objectives else (self.objective,)

    def _note(self, observation: Observation) -> None:
        idx = self._index.get(observation.point.key)
        if idx is not None:
            self._filler.select(idx)
            self._filler.exclude(idx)
            self._filler_started = True

    def _usable(self) -> list[tuple[int, tuple[float, ...]]]:
        """Observations that are in-space and carry every objective."""
        usable = []
        for obs in self.observations:
            idx = self._index.get(obs.point.key)
            if idx is None:
                continue
            values = []
            for name in self._objective_names:
                value = obs.value(name)
                if value is None:
                    break
                values.append(self._sign(name) * value)
            else:
                usable.append((idx, tuple(values)))
        return usable

    # ------------------------------------------------------------ proposing

    def _fill_pick(self) -> int | None:
        """One space-filling pick (warmup path)."""
        if not self._filler_started:
            self._filler_started = True
            idx = self._filler_first
            if self.candidates[idx].key not in self._proposed:
                return idx
        while True:
            idx = self._filler.farthest()
            if self._filler.min_dist[idx] == -np.inf:
                return None
            if self.candidates[idx].key in self._proposed:
                self._filler.exclude(idx)
                continue
            return idx

    def _pick(self, batch: int) -> list[DesignPoint]:
        picks: list[int] = []
        usable = self._usable()
        if len(usable) < self.warmup:
            while len(picks) < batch:
                idx = self._fill_pick()
                if idx is None:
                    break
                self._filler.select(idx)
                self._filler.exclude(idx)
                picks.append(idx)
            return [self.candidates[i] for i in picks]

        unproposed = self._unproposed()
        if not unproposed:
            return []
        rows = np.array([idx for idx, _ in usable])
        X = self._encoded[rows]
        U = self._encoded[np.array(unproposed)]

        # One ensemble per objective, all on sign-normalised ("smaller is
        # better") targets.
        predictions = np.empty((len(self._objective_names), len(unproposed)))
        spread = np.zeros(len(unproposed))
        for j in range(len(self._objective_names)):
            y = np.array([values[j] for _, values in usable])
            ensemble = self._ensemble_factory().fit(X, y)
            predictions[j] = ensemble.predict(U)
            scale = float(np.std(y)) or 1.0
            spread += ensemble.uncertainty(U) / scale

        # Distance to the nearest observation, from the maximin state —
        # candidates in unexplored territory get an exploration bonus even
        # where the two surrogates happen to agree.
        distance = self._filler.min_dist[np.array(unproposed)]
        distance = np.where(np.isfinite(distance), distance, 0.0)
        uncertainty = spread + distance

        n_explore = int(round(batch * self.explore))
        n_exploit = batch - n_explore
        chosen: list[int] = []
        taken = np.zeros(len(unproposed), dtype=bool)

        if len(self._objective_names) == 1:
            # A slice of the exploit half refines the incumbent: surrogate
            # smoothing can hold the predicted minimum one grid step off
            # the true one indefinitely, so the endgame must be an explicit
            # hill climb.  The neighbourhood is *coordinate-wise* — every
            # unproposed candidate differing from the best observation in
            # exactly one parameter — not a Euclidean ball: on a noise/seed
            # axis with few values one step is half the encoded cube, and a
            # distance ball would sweep hundreds of nearby grid points
            # before ever varying it.  Ties inside the neighbourhood break
            # by predicted value, then candidate order.
            n_local = max(1, n_exploit // 4) if n_exploit else 0
            best_row = rows[int(np.argmin([v[0] for _, v in usable]))]
            best_point = self.candidates[best_row]
            features = self._encoder.features
            neighbour_positions = [
                pos for pos, ci in enumerate(unproposed)
                if sum(
                    self.candidates[ci].get(name) != best_point.get(name)
                    for name in features
                ) == 1
            ]
            neighbour_positions.sort(
                key=lambda pos: (predictions[0][pos], pos)
            )
            for pos in neighbour_positions[:n_local]:
                taken[pos] = True
                chosen.append(unproposed[pos])
            exploit_order = np.argsort(predictions[0], kind="stable")
            for pos in exploit_order:
                if len(chosen) >= n_exploit:
                    break
                if taken[pos]:
                    continue
                taken[pos] = True
                chosen.append(unproposed[pos])
        else:
            # Pareto mode: rotating seeded weighted sums spread the
            # exploit picks across the predicted front.
            for _ in range(n_exploit):
                raw = [self.rng.random() for _ in self._objective_names]
                total = sum(raw) or 1.0
                w = np.array(raw) / total
                scores = w @ predictions
                scores = np.where(taken, np.inf, scores)
                pos = int(np.argmin(scores))
                if not np.isfinite(scores[pos]):
                    break
                taken[pos] = True
                chosen.append(unproposed[pos])

        explore_order = np.argsort(-uncertainty, kind="stable")
        for pos in explore_order:
            if len(chosen) >= batch:
                break
            if not taken[pos]:
                taken[pos] = True
                chosen.append(unproposed[pos])

        for idx in chosen:
            self._filler.select(idx)
            self._filler.exclude(idx)
        return [self.candidates[i] for i in chosen]


#: Strategy registry: the names the CLI, plans, and suite specs accept.
SAMPLERS: dict[str, type[Sampler]] = {
    RandomSampler.name: RandomSampler,
    StratifiedSampler.name: StratifiedSampler,
    SuccessiveHalvingSampler.name: SuccessiveHalvingSampler,
    SurrogateSampler.name: SurrogateSampler,
}

#: Friendly aliases.
SAMPLER_ALIASES = {"lhs": "stratified", "active": "surrogate"}


def make_sampler(
    strategy: str,
    space: DesignSpace | Sequence[DesignPoint],
    seed: int = 0,
    **options,
) -> Sampler:
    """Resolve a strategy name (or alias) into a configured sampler."""
    name = SAMPLER_ALIASES.get(strategy, strategy)
    try:
        cls = SAMPLERS[name]
    except KeyError:
        known = ", ".join(sorted([*SAMPLERS, *SAMPLER_ALIASES]))
        raise ValueError(
            f"unknown sampling strategy {strategy!r} (known: {known})"
        ) from None
    return cls(space, seed=seed, **options)
