"""Localise a failed golden check to the smallest offending axis region.

When CI reports that a goldened suite drifted, the artifact diff says
*that* numbers moved, not *where in the design space* the regression
lives.  Re-running the whole suite point by point answers that, but at
full regeneration cost.  :func:`localize_drift` answers it with a
bisection/refinement search instead:

1. **witness** — probe points in a seeded order until one drifted point
   is found (fast when the drift is broad, bounded by ``probe_limit``
   when it is not);
2. **per-axis refinement** — from the witness, vary one axis at a time:
   short axes are swept exactly; long ordered axes are bisected under the
   standard assumption that the offending values form a contiguous run
   around the witness (an experiment regression gated on "nprocs >= 48"
   or "payload > 4 KiB" — the common case — satisfies this);
3. **verification** — a few seeded extra points inside the claimed
   region confirm it drifts throughout (reported as purity, not assumed).

Every probe is one design-point evaluation through the ordinary campaign
machinery, so the total cost is ``O(witness search + Σ_axis log|axis|)``
evaluations instead of the full product — the difference between seconds
and a full tier-2 regeneration.
"""

from __future__ import annotations

import os
import random
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.explore.campaign import Campaign
from repro.explore.golden import (
    ARTIFACT_FORMAT_VERSION,
    diff_rows,
    golden_path,
    load_golden,
)
from repro.explore.space import DesignPoint, DesignSpace

#: Axes at or below this length are swept exactly; longer ones bisected.
_SWEEP_LIMIT = 6


@dataclass(frozen=True)
class DriftRegion:
    """The offending axis-aligned region: values per axis, plus a witness.

    An axis listing *all* its values does not localise (the drift spans
    it); an axis listing a strict subset narrows the region.
    """

    axes: Mapping[str, tuple]
    full_axes: tuple[str, ...]
    witness: Mapping[str, Any]

    def __post_init__(self):
        object.__setattr__(
            self, "axes", {k: tuple(v) for k, v in self.axes.items()}
        )
        object.__setattr__(self, "full_axes", tuple(self.full_axes))
        object.__setattr__(self, "witness", dict(self.witness))

    def size(self) -> int:
        """Number of grid points inside the region."""
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def subspace(self, space) -> "DesignSpace":
        """The region as its own design space — same constants, same
        point hashes — ready to re-run as a focused campaign (e.g. a full
        sweep of just the offending region against the previous code)."""
        restricted = {
            name: values for name, values in self.axes.items()
            if name not in self.full_axes
        }
        return space.restrict(**restricted) if restricted else space

    def describe(self) -> str:
        parts = []
        for name, values in self.axes.items():
            if name in self.full_axes:
                parts.append(f"{name}: all {len(values)} values")
            else:
                shown = ", ".join(repr(v) for v in values)
                parts.append(f"{name} in {{{shown}}}")
        return "; ".join(parts) if parts else "(single-point space)"


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one localisation run."""

    suite: str
    drifted: bool
    structural: tuple[str, ...] = ()
    region: DriftRegion | None = None
    probes: int = 0
    space_size: int = 0
    verified: int = 0
    verified_drifting: int = 0
    sample_diffs: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.drifted and not self.structural

    def summary(self) -> str:
        if self.structural:
            lines = "\n  ".join(self.structural)
            return (
                f"{self.suite}: artifact shape changed — localisation "
                f"needs a same-shape golden:\n  {lines}"
            )
        if not self.drifted:
            return (
                f"{self.suite}: no drift found "
                f"({self.probes}/{self.space_size} points probed)"
            )
        region = self.region
        assert region is not None
        purity = (
            f", verified {self.verified_drifting}/{self.verified} "
            f"region probes drifting" if self.verified else ""
        )
        head = (
            f"{self.suite}: drift localised to {region.describe()} "
            f"[~{region.size()} of {self.space_size} points; "
            f"{self.probes} probed{purity}]"
        )
        if self.sample_diffs:
            shown = "\n  ".join(self.sample_diffs[:6])
            head += f"\n  witness diff:\n  {shown}"
        return head


def localize_drift(
    suite,
    goldens_dir: str | os.PathLike,
    store_dir: str | os.PathLike | None = None,
    executor: str | Any | None = None,
    workers: int | None = None,
    seed: int = 0,
    probe_limit: int | None = None,
    verify: int = 4,
) -> DriftReport:
    """Narrow a failed golden for ``suite`` to the offending axis region.

    ``suite`` is a spec or a registered suite name.  ``store_dir``
    defaults to None — probes must reflect the *current* code, and a
    store populated before the regression would mask it; pass a fresh
    directory to make repeated localisations share work.

    Returns a :class:`DriftReport`; ``report.ok`` means no drifted point
    was found within ``probe_limit`` (default: the whole space).
    """
    from repro.explore.suites import SuiteSpec, get_suite

    spec: SuiteSpec = suite if isinstance(suite, SuiteSpec) else get_suite(suite)
    golden = load_golden(golden_path(goldens_dir, spec.name))

    points = spec.space.expand()
    structural = []
    if golden.get("format_version") != ARTIFACT_FORMAT_VERSION:
        structural.append(
            f"format_version: golden {golden.get('format_version')!r} vs "
            f"current {ARTIFACT_FORMAT_VERSION}"
        )
    rows = golden.get("rows", [])
    if len(rows) != len(points):
        structural.append(
            f"rows: golden has {len(rows)}, the space expands to "
            f"{len(points)} — the space itself changed"
        )
    if structural:
        return DriftReport(
            suite=spec.name,
            drifted=False,
            structural=tuple(structural),
            space_size=len(points),
        )
    columns = list(golden["columns"])

    campaign = Campaign(
        spec.name,
        spec.space,
        spec.experiment,
        store_dir=store_dir,
        executor=executor,
        workers=workers,
        on_error="store",  # a crashing point is itself drift, not an abort
    )
    key_to_idx = {p.key: i for i, p in enumerate(points)}
    status: dict[int, list[str]] = {}

    def probe(idx: int) -> list[str]:
        """Diff lines for point ``idx`` against its golden row (memoised);
        empty means the point reproduces its golden numbers."""
        if idx not in status:
            (record,), _ = campaign.serve([points[idx]])
            if record.failed:
                status[idx] = [
                    f"point {idx}: evaluation failed: "
                    f"{record.metrics.get('error')}"
                ]
            else:
                fresh_row = [record.value(c) for c in columns]
                status[idx] = diff_rows(
                    columns, rows[idx], fresh_row, spec.tolerance
                )
        return status[idx]

    # ---- 1. witness search ------------------------------------------------
    rng = random.Random(f"drift:{spec.name}:{seed}")
    order = list(range(len(points)))
    rng.shuffle(order)
    limit = len(points) if probe_limit is None else min(probe_limit, len(points))
    witness = None
    for idx in order[:limit]:
        if probe(idx):
            witness = idx
            break
    if witness is None:
        return DriftReport(
            suite=spec.name,
            drifted=False,
            probes=len(status),
            space_size=len(points),
        )
    witness_point = points[witness]
    witness_diffs = tuple(status[witness])

    # ---- 2. per-axis refinement ------------------------------------------
    def at(axis: str, value) -> int | None:
        """Expansion index of the witness with ``axis`` rebound."""
        candidate = DesignPoint({**witness_point.as_dict(), axis: value})
        return key_to_idx.get(candidate.key)

    def drifts(axis: str, value) -> bool:
        idx = at(axis, value)
        # Off-grid (explicit-point spaces): treat as outside the region.
        return bool(probe(idx)) if idx is not None else False

    region_axes: dict[str, tuple] = {}
    full_axes: list[str] = []
    for axis_spec in spec.space.axes:
        values = list(axis_spec.values)
        j0 = next(
            (j for j, v in enumerate(values)
             if at(axis_spec.name, v) == witness),
            None,
        )
        if j0 is None:  # witness off this axis' grid; cannot refine it
            region_axes[axis_spec.name] = tuple(values)
            full_axes.append(axis_spec.name)
            continue
        if len(values) <= _SWEEP_LIMIT:
            offending = tuple(
                v for j, v in enumerate(values)
                if j == j0 or drifts(axis_spec.name, v)
            )
        else:
            # Bisect the boundaries of the contiguous run around j0.
            lo = 0
            if drifts(axis_spec.name, values[0]):
                left = 0
            else:
                hi = j0
                while hi - lo > 1:
                    mid = (lo + hi) // 2
                    if drifts(axis_spec.name, values[mid]):
                        hi = mid
                    else:
                        lo = mid
                left = hi
            hi = len(values) - 1
            if drifts(axis_spec.name, values[-1]):
                right = hi
            else:
                lo = j0
                while hi - lo > 1:
                    mid = (lo + hi) // 2
                    if drifts(axis_spec.name, values[mid]):
                        lo = mid
                    else:
                        hi = mid
                right = lo
            offending = tuple(values[left:right + 1])
        region_axes[axis_spec.name] = offending
        if len(offending) == len(values):
            full_axes.append(axis_spec.name)

    region = DriftRegion(
        axes=region_axes,
        full_axes=tuple(full_axes),
        witness=witness_point.as_dict(),
    )

    # ---- 3. verification sweep -------------------------------------------
    verified = verified_drifting = 0
    if verify > 0 and region_axes:
        for _ in range(verify):
            candidate = dict(witness_point.as_dict())
            for name, offending in region_axes.items():
                candidate[name] = offending[rng.randrange(len(offending))]
            idx = key_to_idx.get(DesignPoint(candidate).key)
            if idx is None:
                continue
            verified += 1
            if probe(idx):
                verified_drifting += 1

    return DriftReport(
        suite=spec.name,
        drifted=True,
        region=region,
        probes=len(status),
        space_size=len(points),
        verified=verified,
        verified_drifting=verified_drifting,
        sample_diffs=witness_diffs,
    )
