"""Surrogate-guided adaptive sampling for large design spaces.

Exhaustive campaigns (PRs 1-2) evaluate every point of a
:class:`~repro.explore.space.DesignSpace`; the spaces the thesis's
methodology invites (preset × pattern × nprocs × size × noise) explode
combinatorially.  This package evaluates only the points a *strategy*
asks for:

* :mod:`~repro.explore.adaptive.samplers`  — the ``Sampler`` protocol and
  the seeded-deterministic strategies (``random``, ``stratified``,
  ``halving``, ``surrogate`` — including a Pareto mode);
* :mod:`~repro.explore.adaptive.surrogate` — the k-NN + linear ensemble
  whose disagreement drives exploration;
* :mod:`~repro.explore.adaptive.encoding`  — design points as vectors in
  the unit hypercube;
* :mod:`~repro.explore.adaptive.driver`    — :class:`AdaptiveCampaign`,
  the budgeted propose/evaluate/observe loop over the ordinary campaign
  executors and JSONL stores;
* :mod:`~repro.explore.adaptive.drift`     — :func:`localize_drift`,
  bisection of a failed golden check down to the offending axis region.

See ``docs/adaptive.md`` and ``examples/adaptive_barrier_space.py``.
"""

from repro.explore.adaptive.encoding import SpaceEncoder
from repro.explore.adaptive.surrogate import (
    LinearSurrogate,
    NearestNeighbourSurrogate,
    SurrogateEnsemble,
)
from repro.explore.adaptive.samplers import (
    Observation,
    RandomSampler,
    SAMPLERS,
    Sampler,
    StratifiedSampler,
    SuccessiveHalvingSampler,
    SurrogateSampler,
    make_sampler,
)
from repro.explore.adaptive.driver import (
    AdaptiveCampaign,
    AdaptiveOutcome,
    AdaptivePlan,
    AdaptiveStats,
    run_adaptive,
)
from repro.explore.adaptive.drift import (
    DriftRegion,
    DriftReport,
    localize_drift,
)

__all__ = [
    "SpaceEncoder",
    "LinearSurrogate",
    "NearestNeighbourSurrogate",
    "SurrogateEnsemble",
    "Observation",
    "RandomSampler",
    "SAMPLERS",
    "Sampler",
    "StratifiedSampler",
    "SuccessiveHalvingSampler",
    "SurrogateSampler",
    "make_sampler",
    "AdaptiveCampaign",
    "AdaptiveOutcome",
    "AdaptivePlan",
    "AdaptiveStats",
    "run_adaptive",
    "DriftRegion",
    "DriftReport",
    "localize_drift",
]
