"""Declarative design-space exploration and experiment campaigns.

The exploration layer turns the repository's calibrated models into the
workflow the thesis argues for: ask cross-configuration questions (which
barrier pattern wins on which platform? how does the prediction error
scale?) as *data* — a design space and an experiment name — instead of
bespoke benchmark scripts.

* :mod:`repro.explore.space`       — ``ParamSpec`` / ``DesignSpace`` /
                                     ``DesignPoint`` with stable hashing
* :mod:`repro.explore.campaign`    — the resumable ``Campaign`` runner and
                                     serial/multiprocessing executors
* :mod:`repro.explore.cache`       — the append-only JSONL result cache
* :mod:`repro.explore.resilience`  — retry/timeout/backoff policy,
                                     poison-point quarantine, and the
                                     deterministic fault-injection
                                     harness
* :mod:`repro.explore.results`     — ``ResultSet`` queries: filter,
                                     group-by, rank, Pareto front
* :mod:`repro.explore.experiments` — the experiment registry and built-in
                                     thesis adapters
* :mod:`repro.explore.suites`      — figure/table suites: artifact
                                     rendering and shape claims over
                                     campaign results
* :mod:`repro.explore.golden`      — the golden-artifact regression store
* :mod:`repro.explore.figures`     — the thesis suite catalogue
* :mod:`repro.explore.adaptive`    — surrogate-guided adaptive sampling:
                                     seeded samplers, the budgeted
                                     ``AdaptiveCampaign`` driver, and
                                     golden-drift localisation
* :mod:`repro.explore.cli`         — ``python -m repro.explore``
"""

from repro.explore.space import ParamSpec, DesignPoint, DesignSpace, canonical_json
from repro.explore.cache import CorruptStoreWarning, ResultCache, record_key
from repro.explore.resilience import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    PoolBrokenError,
    RetryPolicy,
    read_quarantine,
)
from repro.explore.results import ResultRecord, ResultSet
from repro.explore.experiments import (
    EXPERIMENTS,
    PATTERN_FAMILIES,
    Experiment,
    experiment_names,
    get_experiment,
    register_experiment,
    run_point,
)
from repro.explore.campaign import (
    Campaign,
    CampaignOutcome,
    CampaignPointError,
    CampaignStats,
    ChunkedProcessPoolExecutor,
    PointFailure,
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
    run_campaign,
)
from repro.explore.golden import (
    GoldenReport,
    Tolerance,
    check_golden,
    compare_artifacts,
    diff_rows,
    golden_path,
    load_golden,
    save_golden,
    update_golden,
)
from repro.explore.suites import (
    Claim,
    ClaimFailure,
    SeriesSpec,
    SuiteResult,
    SuiteSpec,
    get_suite,
    register_suite,
    run_suite,
    suite_names,
)
from repro.explore.adaptive import (
    AdaptiveCampaign,
    AdaptiveOutcome,
    AdaptivePlan,
    AdaptiveStats,
    DriftRegion,
    DriftReport,
    Observation,
    SAMPLERS,
    Sampler,
    SpaceEncoder,
    localize_drift,
    make_sampler,
    run_adaptive,
)

__all__ = [
    "ParamSpec",
    "DesignPoint",
    "DesignSpace",
    "canonical_json",
    "CorruptStoreWarning",
    "ResultCache",
    "record_key",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "PoolBrokenError",
    "RetryPolicy",
    "read_quarantine",
    "ResultRecord",
    "ResultSet",
    "EXPERIMENTS",
    "PATTERN_FAMILIES",
    "Experiment",
    "experiment_names",
    "get_experiment",
    "register_experiment",
    "run_point",
    "Campaign",
    "CampaignOutcome",
    "CampaignPointError",
    "CampaignStats",
    "ChunkedProcessPoolExecutor",
    "PointFailure",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "make_executor",
    "run_campaign",
    "GoldenReport",
    "Tolerance",
    "check_golden",
    "compare_artifacts",
    "golden_path",
    "load_golden",
    "save_golden",
    "update_golden",
    "Claim",
    "ClaimFailure",
    "SeriesSpec",
    "SuiteResult",
    "SuiteSpec",
    "get_suite",
    "register_suite",
    "run_suite",
    "suite_names",
    "diff_rows",
    "AdaptiveCampaign",
    "AdaptiveOutcome",
    "AdaptivePlan",
    "AdaptiveStats",
    "DriftRegion",
    "DriftReport",
    "Observation",
    "SAMPLERS",
    "Sampler",
    "SpaceEncoder",
    "localize_drift",
    "make_sampler",
    "run_adaptive",
]
