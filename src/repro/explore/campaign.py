"""Campaign runner: design space × experiment → cached, ordered results.

A :class:`Campaign` materialises every point of a :class:`DesignSpace`,
evaluates the points not already present in its result cache through a
pluggable executor (in-process serial, or a ``multiprocessing`` pool), and
returns a :class:`ResultSet` in deterministic expansion order together
with run statistics.  Because every record is keyed by content hash and
persisted as it is produced, campaigns are resumable: interrupting a run
loses at most the in-flight points, and re-running is a pure cache read.

Executor equivalence is a design invariant, not an accident: workers are
handed ``(experiment name, point dict)`` — plain picklable data — and the
runner reassembles records in point order, so the serial and parallel
executors produce bit-identical result sets.
"""

from __future__ import annotations

import functools
import json
import multiprocessing
import os
import traceback
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.explore.cache import ResultCache, record_key
from repro.explore.experiments import run_point
from repro.explore.resilience import (
    RetryPolicy,
    append_quarantine,
    chunked_map_resilient,
    current_plan,
    pool_map_resilient,
    quarantine_path as _quarantine_path,
    serial_map_with_retry,
)
from repro.explore.results import ResultRecord, ResultSet
from repro.explore.space import DesignPoint, DesignSpace, jsonable
from repro.obs import current as _telemetry
from repro.obs import summarize_run, telemetry_dir_for
from repro.obs import wallclock as _wallclock


def _jsonify_metrics(value: Any) -> dict:
    """Coerce experiment output to a plain JSON dict so fresh records are
    bit-identical to their cached round-trip."""
    if not isinstance(value, dict):
        raise TypeError(
            f"experiment must return a metrics dict, got {type(value).__name__}"
        )
    return json.loads(json.dumps(jsonable(value, "experiment metrics")))


def _evaluate_point(experiment: str, params: dict) -> tuple[bool, dict]:
    try:
        if current_plan() is not None:  # chaos harness; inert otherwise
            from repro.explore.resilience import maybe_inject

            maybe_inject("evaluate", experiment, record_key(experiment, params))
        return True, _jsonify_metrics(run_point(experiment, params))
    except Exception as exc:  # noqa: BLE001 — reported, never swallowed
        return False, {
            "error": f"{type(exc).__name__}: {exc}",
            "error_type": type(exc).__name__,
            "traceback": traceback.format_exc(),
        }


def _evaluate(task: tuple[str, dict]) -> tuple[bool, dict]:
    """Worker entry point: evaluate one (experiment, point) task.

    Returns ``(ok, metrics-or-error)`` rather than raising, so one failed
    point cannot poison a whole pool map.  Module-level by necessity: the
    parallel executor pickles it by reference.

    With telemetry on, each task records a ``campaign.point`` span keyed
    like the result cache and flushes its own event file plus the profile
    cache's per-run stats — so pool workers stream their spans before the
    pool tears them down, and the parent merges afterwards.
    """
    experiment, params = task
    tele = _telemetry()
    if tele is None:
        return _evaluate_point(experiment, params)
    from repro.bench.profile_cache import PROFILE_CACHE

    with tele.span(
        "campaign.point",
        experiment=experiment,
        key=record_key(experiment, params),
        point=params,
    ) as span:
        ok, metrics = _evaluate_point(experiment, params)
        span.set("ok", ok)
    tele.flush()
    PROFILE_CACHE.flush_run_stats()
    return ok, metrics


def _evaluate_chunk(chunk: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
    """Worker entry point of the chunked executor: one task per point is
    replaced by one task per *chunk*, amortising pickle/dispatch overhead
    over many cheap points."""
    return [_evaluate(task) for task in chunk]


def _evaluate_chunk_with_policy(
    policy: RetryPolicy, chunk: list[tuple[str, dict]]
) -> list[tuple[bool, dict]]:
    """Chunked worker entry under a retry policy: the chunk still
    evaluates serially inside one worker, but each point gets the
    policy's retry/backoff budget (and quarantine enrichment) right
    there — a failed point must not force the whole chunk back to the
    parent.  Module-level + ``functools.partial`` so the pool can pickle
    it by reference."""
    return serial_map_with_retry(
        _evaluate, chunk, policy, keys=_task_keys(chunk)
    )


def _pool_context():
    """The multiprocessing context both pool executors share: fork where
    available so experiments registered at runtime (e.g. in tests) exist
    in the workers; falls back to spawn, under which only importable
    experiments resolve."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _worker_count(tasks: list, workers: int | None) -> int:
    return workers or min(len(tasks), os.cpu_count() or 1)


def _task_keys(tasks: list[tuple[str, dict]]) -> list[str]:
    """Cache keys of the tasks — the retry drivers key jitter, fault
    ledgers, and quarantine records the same way the result store does."""
    return [record_key(experiment, params) for experiment, params in tasks]


class SerialExecutor:
    """In-process, in-order evaluation.

    With a :class:`RetryPolicy`, failed points retry after deterministic
    backoff and quarantine on exhaustion.  ``point_timeout_s`` is *not*
    enforced here — a single process cannot preempt its own call; use a
    pool executor when hung points must be reclaimed.
    """

    name = "serial"

    def __init__(self, policy: RetryPolicy | None = None):
        self.policy = policy

    def _map(self, tasks: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
        if self.policy is None or self.policy.is_noop:
            return [_evaluate(task) for task in tasks]
        return serial_map_with_retry(
            _evaluate, tasks, self.policy, keys=_task_keys(tasks)
        )

    def map(self, tasks: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
        tele = _telemetry()
        if tele is None:
            return self._map(tasks)
        tele.gauge("executor.workers", 1)
        with tele.span(
            "executor.map", executor=self.name, tasks=len(tasks), workers=1
        ):
            return self._map(tasks)


class ProcessPoolExecutor:
    """Process-pool evaluation, order-preserving, one point per pool
    task — right for few expensive points.

    Without a :class:`RetryPolicy` (and with ``degrade`` off) this is a
    plain ``multiprocessing.Pool`` map, where a dying worker hangs the
    map and a stuck point wedges it.  With a policy or ``degrade``, the
    resilient driver takes over: per-point wall-clock deadlines (blown
    deadlines kill and rebuild the pool), retries with deterministic
    backoff, quarantine on exhaustion, and — when ``degrade`` is set —
    serial in-process fallback after repeated worker death.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        policy: RetryPolicy | None = None,
        degrade: bool = False,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.policy = policy
        self.degrade = degrade

    @property
    def _resilient(self) -> bool:
        return self.degrade or (
            self.policy is not None and not self.policy.is_noop
        )

    def _map_resilient(
        self, tasks: list[tuple[str, dict]], workers: int,
        pre_submit=None,
    ) -> list[tuple[bool, dict]]:
        return pool_map_resilient(
            _pool_context(),
            _evaluate,
            tasks,
            _task_keys(tasks),
            workers,
            self.policy or RetryPolicy(),
            degrade=self.degrade,
            pre_submit=pre_submit,
        )

    def map(self, tasks: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
        if not tasks:
            return []
        workers = _worker_count(tasks, self.workers)
        tele = _telemetry()
        if tele is None:
            if self._resilient:
                return self._map_resilient(tasks, workers)
            with _pool_context().Pool(processes=workers) as pool:
                return pool.map(_evaluate, tasks)
        tele.gauge("executor.workers", workers)
        # Flush before forking: the workers reset their inherited buffers,
        # so anything unflushed would otherwise sit in the parent until
        # the map returns.
        tele.flush()
        with tele.span(
            "executor.map", executor=self.name, tasks=len(tasks),
            workers=workers,
        ):
            if self._resilient:
                return self._map_resilient(
                    tasks, workers, pre_submit=tele.flush
                )
            with _pool_context().Pool(processes=workers) as pool:
                return pool.map(_evaluate, tasks)


class ChunkedProcessPoolExecutor:
    """Batched ``multiprocessing.Pool`` evaluation, order-preserving.

    The plain process executor ships one point per pool task, so on sweeps
    of hundreds of sub-millisecond points the pickle/dispatch round trip
    dominates wall time.  This executor slices the task list into
    contiguous chunks — default: enough chunks to give every worker a few
    slices for load balancing — evaluates each chunk in one task, and
    flattens the per-chunk outputs back into task order, so its result is
    bit-identical to the serial executor's.

    When the task list fits in a single chunk it is evaluated directly in
    the calling process: there is no parallelism to win, so the pool is
    skipped.  That fast path trades the crash isolation of the multi-chunk
    and ``process`` paths for startup cost — a crashing experiment takes
    the campaign process with it, and experiment side effects land in the
    parent.  Use :class:`ProcessPoolExecutor` when isolation must hold for
    every run regardless of sweep size.
    """

    name = "chunked"

    #: Target chunks handed to each worker when no chunk size is forced;
    #: > 1 so one straggler chunk cannot serialise the tail of a sweep.
    SLICES_PER_WORKER = 4

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        policy: RetryPolicy | None = None,
        degrade: bool = False,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.policy = policy
        self.degrade = degrade

    @property
    def _resilient(self) -> bool:
        return self.degrade or (
            self.policy is not None and not self.policy.is_noop
        )

    def _chunks(self, tasks: list, workers: int) -> list[list]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(tasks) // (workers * self.SLICES_PER_WORKER)))
        return [tasks[i:i + size] for i in range(0, len(tasks), size)]

    def map(self, tasks: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
        if not tasks:
            return []
        workers = _worker_count(tasks, self.workers)
        chunks = self._chunks(tasks, workers)
        tele = _telemetry()
        if len(chunks) == 1:
            # One chunk means no parallelism to win; skip the pool.  The
            # resilient single-chunk path keeps the in-process fast path
            # (retry/backoff apply; timeouts cannot — same contract as
            # the serial executor).
            if tele is None:
                return self._map_single(tasks)
            tele.gauge("executor.workers", 1)
            with tele.span(
                "executor.map", executor=self.name, tasks=len(tasks),
                workers=1, chunks=1,
            ):
                return self._map_single(tasks)
        processes = min(workers, len(chunks))
        if tele is None:
            if self._resilient:
                return self._map_resilient(tasks, chunks, processes)
            with _pool_context().Pool(processes=processes) as pool:
                outputs = pool.map(_evaluate_chunk, chunks)
            return [result for chunk_out in outputs for result in chunk_out]
        tele.gauge("executor.workers", processes)
        tele.flush()  # forked workers reset inherited buffers; see above
        with tele.span(
            "executor.map", executor=self.name, tasks=len(tasks),
            workers=processes, chunks=len(chunks),
        ):
            if self._resilient:
                return self._map_resilient(
                    tasks, chunks, processes, pre_submit=tele.flush
                )
            with _pool_context().Pool(processes=processes) as pool:
                outputs = pool.map(_evaluate_chunk, chunks)
        return [result for chunk_out in outputs for result in chunk_out]

    def _map_single(
        self, tasks: list[tuple[str, dict]]
    ) -> list[tuple[bool, dict]]:
        if self.policy is None or self.policy.is_noop:
            return _evaluate_chunk(tasks)
        return serial_map_with_retry(
            _evaluate, tasks, self.policy, keys=_task_keys(tasks)
        )

    def _map_resilient(
        self, tasks: list[tuple[str, dict]], chunks: list, processes: int,
        pre_submit=None,
    ) -> list[tuple[bool, dict]]:
        policy = self.policy or RetryPolicy()
        return chunked_map_resilient(
            _pool_context(),
            functools.partial(_evaluate_chunk_with_policy, policy),
            _evaluate,
            chunks,
            _task_keys(tasks),
            processes,
            policy,
            degrade=self.degrade,
            pre_submit=pre_submit,
        )


EXECUTORS = {
    "serial": SerialExecutor,
    "process": ProcessPoolExecutor,
    "chunked": ChunkedProcessPoolExecutor,
}


def make_executor(
    spec: str | None,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    degrade: bool = False,
):
    """Resolve an executor spec: an instance, a name, or None (serial).

    ``policy`` and ``degrade`` configure named executors; on a
    ready-made instance they are applied only when given, so an executor
    constructed with its own policy passes through untouched.
    """
    if spec is None:
        return SerialExecutor(policy=policy)
    if isinstance(spec, str):
        try:
            cls = EXECUTORS[spec]
        except KeyError:
            known = ", ".join(sorted(EXECUTORS))
            raise ValueError(
                f"unknown executor {spec!r} (known: {known})"
            ) from None
        if cls is SerialExecutor:
            return cls(policy=policy)
        return cls(workers, policy=policy, degrade=degrade)
    if policy is not None and hasattr(spec, "policy"):
        spec.policy = policy
    if degrade and hasattr(spec, "degrade"):
        spec.degrade = True
    return spec


@dataclass(frozen=True)
class CampaignStats:
    """How a campaign run was served.

    ``cached`` counts points *served from cache this run* (no work done);
    ``evaluated`` counts points *computed this run* (fresh executor work,
    failures included).  The two are disjoint and sum to ``total`` — the
    rates below keep that distinction instead of conflating "cache was
    useful" with "cache did everything".  ``quarantined`` is the subset
    of ``failed`` that exhausted a retry policy and was recorded to the
    quarantine sidecar.
    """

    total: int
    evaluated: int
    cached: int
    failed: int
    quarantined: int = 0

    @property
    def served_from_cache(self) -> int:
        """Alias for ``cached``, named for what it means."""
        return self.cached

    @property
    def computed(self) -> int:
        """Alias for ``evaluated``: fresh work done this run."""
        return self.evaluated

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this run's points served from cache."""
        return self.cached / self.total if self.total else 0.0

    @property
    def computed_rate(self) -> float:
        """Fraction of this run's points computed fresh."""
        return self.evaluated / self.total if self.total else 0.0


@dataclass(frozen=True)
class CampaignOutcome:
    """A completed run: ordered results plus serving statistics."""

    name: str
    results: ResultSet
    stats: CampaignStats


class Campaign:
    """A named (design space, experiment) pair bound to a result store."""

    def __init__(
        self,
        name: str,
        space: DesignSpace,
        experiment: str,
        store_dir: str | os.PathLike | None = None,
        executor: str | Any | None = None,
        workers: int | None = None,
        on_error: str = "raise",
        durable: bool = False,
        policy: RetryPolicy | None = None,
        degrade: bool = False,
    ):
        if on_error not in ("raise", "store"):
            raise ValueError("on_error must be 'raise' or 'store'")
        self.name = name
        self.space = space
        self.experiment = experiment
        self.store_dir = os.fspath(store_dir) if store_dir is not None else None
        self.executor = make_executor(executor, workers, policy, degrade)
        self.on_error = on_error
        self._cache: ResultCache | None = None
        self._last_failures: list[dict] = []
        if self.store_dir is not None:
            self._cache = ResultCache(
                self.results_path(self.store_dir, name), durable=durable
            )

    @staticmethod
    def results_path(store_dir: str | os.PathLike, name: str) -> str:
        return os.path.join(os.fspath(store_dir), f"{name}.jsonl")

    @staticmethod
    def quarantine_path(store_dir: str | os.PathLike, name: str) -> str:
        """The quarantine sidecar: structured records of points that
        exhausted their retry budget, next to ``<name>.jsonl``."""
        return _quarantine_path(Campaign.results_path(store_dir, name))

    @property
    def cache(self) -> ResultCache | None:
        return self._cache

    # ------------------------------------------------------------------ run

    def serve(
        self, points: Sequence[DesignPoint]
    ) -> tuple[list[ResultRecord], CampaignStats]:
        """Serve an explicit point list: cache reads for known points, one
        executor ``map`` for the rest, records back in point order.

        This is the evaluation core both entry points share —
        :meth:`run` serves the space's full expansion, the adaptive driver
        (:mod:`repro.explore.adaptive`) serves each batch of sampler
        proposals — so adaptive and exhaustive campaigns populate and
        re-use the *same* JSONL store entries.

        With telemetry on, the batch records a ``campaign.serve`` span,
        binds the context's sink next to this campaign's store (mirroring
        the profile-cache binding below), and counts served-from-cache vs
        computed vs failed points.  None of it touches evaluation —
        results are bit-identical either way.
        """
        tele = _telemetry()
        if tele is None:
            return self._serve(points)
        if self.store_dir is not None:
            tele.attach_sink(
                telemetry_dir_for(self.store_dir), export_env=True
            )
        try:
            with tele.span(
                "campaign.serve",
                campaign=self.name,
                experiment=self.experiment,
            ) as span:
                records, stats = self._serve(points)
                span.set("total", stats.total)
                span.set("cached", stats.cached)
                span.set("computed", stats.evaluated)
                span.set("failed", stats.failed)
                span.set("quarantined", stats.quarantined)
        except BaseException:
            tele.flush()  # keep the error-stamped span on disk
            raise
        if stats.cached:
            tele.count("campaign.points.served_from_cache", stats.cached)
        if stats.evaluated:
            tele.count("campaign.points.computed", stats.evaluated)
        if stats.failed:
            tele.count("campaign.points.failed", stats.failed)
        if stats.quarantined:
            tele.count("campaign.points.quarantined", stats.quarantined)
        tele.flush()
        from repro.bench.profile_cache import PROFILE_CACHE

        PROFILE_CACHE.flush_run_stats()
        return records, stats

    def _serve(
        self, points: Sequence[DesignPoint]
    ) -> tuple[list[ResultRecord], CampaignStats]:
        # Persist memoized comm profiles alongside the result store so
        # every campaign (and executor worker — via fork inheritance or
        # the exported env var under spawn) sharing this store also shares
        # benchmark profiles.  Rebinding per batch keeps the singleton
        # pointed at the *active* campaign's store when several stores are
        # used in one process, and a store-less campaign detaches it so
        # profiles never land in a stale (possibly deleted) directory.
        # Values are bit-identical with and without the cache, so executor
        # equivalence is unaffected.
        from repro.bench.profile_cache import PROFILE_CACHE, store_path_for

        if self.store_dir is not None:
            PROFILE_CACHE.configure(
                store_path_for(self.store_dir), export_env=True
            )
        else:
            PROFILE_CACHE.configure(None)
        points = list(points)
        keys = [record_key(self.experiment, p) for p in points]

        pending: list[tuple[int, DesignPoint]] = []
        cached = 0
        for idx, key in enumerate(keys):
            if self._cache is not None and key in self._cache:
                cached += 1
            else:
                pending.append((idx, points[idx]))

        tele = _telemetry()
        if tele is not None:
            tele.gauge("executor.queued", len(pending))

        outputs = self.executor.map(
            [(self.experiment, p.as_dict()) for _, p in pending]
        )

        fresh: dict[int, dict] = {}
        failed = 0
        quarantined = 0
        self._last_failures = []
        # strict: a custom executor returning a short/long mapping is a
        # bug that must surface, not silently drop points.
        for (idx, point), (ok, metrics) in zip(pending, outputs, strict=True):
            if not ok:
                failed += 1
                if metrics.get("quarantined"):
                    quarantined += 1
                    self._persist_quarantine(keys[idx], point, metrics)
                self._last_failures.append({
                    "key": keys[idx],
                    "error": metrics.get("error", "unknown error"),
                    "error_type": metrics.get("error_type"),
                    "attempts": metrics.get("attempts", 1),
                    "reason": metrics.get("reason", "exception"),
                    "quarantined": bool(metrics.get("quarantined")),
                })
                if self.on_error == "raise":
                    # Chain the worker-side failure so the original error
                    # and its remote traceback survive the pool boundary.
                    raise CampaignPointError(
                        self.name, self.experiment, point, metrics
                    ) from PointFailure(metrics)
            fresh[idx] = metrics
            # Failures are never cached, so a fixed experiment re-runs them.
            if ok and self._cache is not None:
                # Self-describing store entries: point and experiment ride
                # along so `repro.explore ls/show` can render a store
                # without the spec that produced it.
                self._cache.put(keys[idx], {
                    "experiment": self.experiment,
                    "point": point.as_dict(),
                    "metrics": metrics,
                })

        records = []
        for idx, (point, key) in enumerate(zip(points, keys)):
            if idx in fresh:
                metrics = fresh[idx]
            else:
                entry = self._cache.get(key)  # type: ignore[union-attr]
                metrics = entry.get("metrics", entry)
            records.append(ResultRecord(
                key=key,
                experiment=self.experiment,
                point=point.as_dict(),
                metrics=metrics,
            ))
        stats = CampaignStats(
            total=len(points),
            evaluated=len(pending),
            cached=cached,
            failed=failed,
            quarantined=quarantined,
        )
        return records, stats

    def _persist_quarantine(
        self, key: str, point: DesignPoint, metrics: Mapping[str, Any]
    ) -> None:
        """Write one structured quarantine record to the sidecar (when a
        store is attached) so exhausted points survive the process."""
        if self.store_dir is None:
            return
        record = {
            "key": key,
            "campaign": self.name,
            "experiment": self.experiment,
            "point": point.as_dict(),
            "error": metrics.get("error"),
            "error_type": metrics.get("error_type"),
            "traceback": metrics.get("traceback"),
            "attempts": metrics.get("attempts"),
            "elapsed_s": metrics.get("elapsed_s"),
            "reason": metrics.get("reason"),
            "time": round(_wallclock(), 3),
        }
        append_quarantine(
            self.quarantine_path(self.store_dir, self.name), record
        )

    def run(self) -> CampaignOutcome:
        """Evaluate all uncached points and return the full result set.

        With telemetry on and a store attached, a
        :class:`repro.obs.TelemetrySummary` is persisted under the
        store's ``.telemetry`` directory — embedding the prior run's
        digest so re-runs can report what changed.
        """
        tele = _telemetry()
        started = _wallclock()
        records, stats = self.serve(self.space.expand())
        outcome = CampaignOutcome(
            name=self.name,
            results=ResultSet(tuple(records)),
            stats=stats,
        )
        if tele is not None and self.store_dir is not None:
            tele.flush()
            summarize_run(
                self.store_dir,
                campaign=self.name,
                experiment=self.experiment,
                stats={
                    "total": stats.total,
                    "evaluated": stats.evaluated,
                    "cached": stats.cached,
                    "failed": stats.failed,
                    "quarantined": stats.quarantined,
                },
                wall_seconds=_wallclock() - started,
                keys=[record.key for record in records],
                started=started,
                failures=self._last_failures,
            )
        return outcome


class PointFailure(RuntimeError):
    """The worker-side failure of one point, reconstructed in the parent.

    Experiment exceptions die with their worker process; this carries
    their identity and formatted remote traceback across the pool
    boundary so :class:`CampaignPointError` can chain from the original
    cause (``raise ... from``) instead of dropping it.
    """

    def __init__(self, details: Mapping[str, Any]):
        self.error = details.get("error", "unknown error")
        self.error_type = details.get("error_type")
        self.remote_traceback = details.get("traceback")
        message = self.error
        if self.remote_traceback:
            message = f"{self.error}\n\nworker traceback:\n" \
                      f"{self.remote_traceback}"
        super().__init__(message)


class CampaignPointError(RuntimeError):
    """One design point failed and the campaign is set to fail fast."""

    def __init__(
        self,
        campaign: str,
        experiment: str,
        point: Mapping[str, Any],
        details: Mapping[str, Any],
    ):
        self.point = dict(point)
        self.details = dict(details)
        message = details.get("error", "unknown error")
        super().__init__(
            f"campaign {campaign!r}: experiment {experiment!r} failed on "
            f"point {dict(point)!r}: {message}"
        )


def run_campaign(
    name: str,
    space: DesignSpace | Mapping[str, Any],
    experiment: str,
    store_dir: str | os.PathLike | None = None,
    executor: str | Any | None = None,
    workers: int | None = None,
    on_error: str = "raise",
    durable: bool = False,
    policy: RetryPolicy | None = None,
    degrade: bool = False,
) -> CampaignOutcome:
    """One-call convenience wrapper: accepts a spec dict or a DesignSpace."""
    if not isinstance(space, DesignSpace):
        space = DesignSpace.from_dict(space)
    return Campaign(
        name,
        space,
        experiment,
        store_dir=store_dir,
        executor=executor,
        workers=workers,
        on_error=on_error,
        durable=durable,
        policy=policy,
        degrade=degrade,
    ).run()
