"""Campaign runner: design space × experiment → cached, ordered results.

A :class:`Campaign` materialises every point of a :class:`DesignSpace`,
evaluates the points not already present in its result cache through a
pluggable executor (in-process serial, or a ``multiprocessing`` pool), and
returns a :class:`ResultSet` in deterministic expansion order together
with run statistics.  Because every record is keyed by content hash and
persisted as it is produced, campaigns are resumable: interrupting a run
loses at most the in-flight points, and re-running is a pure cache read.

Executor equivalence is a design invariant, not an accident: workers are
handed ``(experiment name, point dict)`` — plain picklable data — and the
runner reassembles records in point order, so the serial and parallel
executors produce bit-identical result sets.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.explore.cache import ResultCache, record_key
from repro.explore.experiments import run_point
from repro.explore.results import ResultRecord, ResultSet
from repro.explore.space import DesignPoint, DesignSpace, jsonable
from repro.obs import current as _telemetry
from repro.obs import summarize_run, telemetry_dir_for


def _jsonify_metrics(value: Any) -> dict:
    """Coerce experiment output to a plain JSON dict so fresh records are
    bit-identical to their cached round-trip."""
    if not isinstance(value, dict):
        raise TypeError(
            f"experiment must return a metrics dict, got {type(value).__name__}"
        )
    return json.loads(json.dumps(jsonable(value, "experiment metrics")))


def _evaluate_point(experiment: str, params: dict) -> tuple[bool, dict]:
    try:
        return True, _jsonify_metrics(run_point(experiment, params))
    except Exception as exc:  # noqa: BLE001 — reported, never swallowed
        return False, {
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def _evaluate(task: tuple[str, dict]) -> tuple[bool, dict]:
    """Worker entry point: evaluate one (experiment, point) task.

    Returns ``(ok, metrics-or-error)`` rather than raising, so one failed
    point cannot poison a whole pool map.  Module-level by necessity: the
    parallel executor pickles it by reference.

    With telemetry on, each task records a ``campaign.point`` span keyed
    like the result cache and flushes its own event file plus the profile
    cache's per-run stats — so pool workers stream their spans before the
    pool tears them down, and the parent merges afterwards.
    """
    experiment, params = task
    tele = _telemetry()
    if tele is None:
        return _evaluate_point(experiment, params)
    from repro.bench.profile_cache import PROFILE_CACHE

    with tele.span(
        "campaign.point",
        experiment=experiment,
        key=record_key(experiment, params),
        point=params,
    ) as span:
        ok, metrics = _evaluate_point(experiment, params)
        span.set("ok", ok)
    tele.flush()
    PROFILE_CACHE.flush_run_stats()
    return ok, metrics


def _evaluate_chunk(chunk: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
    """Worker entry point of the chunked executor: one task per point is
    replaced by one task per *chunk*, amortising pickle/dispatch overhead
    over many cheap points."""
    return [_evaluate(task) for task in chunk]


def _pool_context():
    """The multiprocessing context both pool executors share: fork where
    available so experiments registered at runtime (e.g. in tests) exist
    in the workers; falls back to spawn, under which only importable
    experiments resolve."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _worker_count(tasks: list, workers: int | None) -> int:
    return workers or min(len(tasks), os.cpu_count() or 1)


class SerialExecutor:
    """In-process, in-order evaluation."""

    name = "serial"

    def map(self, tasks: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
        tele = _telemetry()
        if tele is None:
            return [_evaluate(task) for task in tasks]
        tele.gauge("executor.workers", 1)
        with tele.span(
            "executor.map", executor=self.name, tasks=len(tasks), workers=1
        ):
            return [_evaluate(task) for task in tasks]


class ProcessPoolExecutor:
    """``multiprocessing.Pool`` evaluation, order-preserving, one point
    per pool task — right for few expensive points."""

    name = "process"

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map(self, tasks: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
        if not tasks:
            return []
        workers = _worker_count(tasks, self.workers)
        tele = _telemetry()
        if tele is None:
            with _pool_context().Pool(processes=workers) as pool:
                return pool.map(_evaluate, tasks)
        tele.gauge("executor.workers", workers)
        # Flush before forking: the workers reset their inherited buffers,
        # so anything unflushed would otherwise sit in the parent until
        # the map returns.
        tele.flush()
        with tele.span(
            "executor.map", executor=self.name, tasks=len(tasks),
            workers=workers,
        ):
            with _pool_context().Pool(processes=workers) as pool:
                return pool.map(_evaluate, tasks)


class ChunkedProcessPoolExecutor:
    """Batched ``multiprocessing.Pool`` evaluation, order-preserving.

    The plain process executor ships one point per pool task, so on sweeps
    of hundreds of sub-millisecond points the pickle/dispatch round trip
    dominates wall time.  This executor slices the task list into
    contiguous chunks — default: enough chunks to give every worker a few
    slices for load balancing — evaluates each chunk in one task, and
    flattens the per-chunk outputs back into task order, so its result is
    bit-identical to the serial executor's.

    When the task list fits in a single chunk it is evaluated directly in
    the calling process: there is no parallelism to win, so the pool is
    skipped.  That fast path trades the crash isolation of the multi-chunk
    and ``process`` paths for startup cost — a crashing experiment takes
    the campaign process with it, and experiment side effects land in the
    parent.  Use :class:`ProcessPoolExecutor` when isolation must hold for
    every run regardless of sweep size.
    """

    name = "chunked"

    #: Target chunks handed to each worker when no chunk size is forced;
    #: > 1 so one straggler chunk cannot serialise the tail of a sweep.
    SLICES_PER_WORKER = 4

    def __init__(self, workers: int | None = None, chunk_size: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size

    def _chunks(self, tasks: list, workers: int) -> list[list]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(tasks) // (workers * self.SLICES_PER_WORKER)))
        return [tasks[i:i + size] for i in range(0, len(tasks), size)]

    def map(self, tasks: list[tuple[str, dict]]) -> list[tuple[bool, dict]]:
        if not tasks:
            return []
        workers = _worker_count(tasks, self.workers)
        chunks = self._chunks(tasks, workers)
        tele = _telemetry()
        if len(chunks) == 1:
            # One chunk means no parallelism to win; skip the pool.
            if tele is None:
                return _evaluate_chunk(chunks[0])
            tele.gauge("executor.workers", 1)
            with tele.span(
                "executor.map", executor=self.name, tasks=len(tasks),
                workers=1, chunks=1,
            ):
                return _evaluate_chunk(chunks[0])
        processes = min(workers, len(chunks))
        if tele is None:
            with _pool_context().Pool(processes=processes) as pool:
                outputs = pool.map(_evaluate_chunk, chunks)
            return [result for chunk_out in outputs for result in chunk_out]
        tele.gauge("executor.workers", processes)
        tele.flush()  # forked workers reset inherited buffers; see above
        with tele.span(
            "executor.map", executor=self.name, tasks=len(tasks),
            workers=processes, chunks=len(chunks),
        ):
            with _pool_context().Pool(processes=processes) as pool:
                outputs = pool.map(_evaluate_chunk, chunks)
        return [result for chunk_out in outputs for result in chunk_out]


EXECUTORS = {
    "serial": SerialExecutor,
    "process": ProcessPoolExecutor,
    "chunked": ChunkedProcessPoolExecutor,
}


def make_executor(spec: str | None, workers: int | None = None):
    """Resolve an executor spec: an instance, a name, or None (serial)."""
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        try:
            cls = EXECUTORS[spec]
        except KeyError:
            known = ", ".join(sorted(EXECUTORS))
            raise ValueError(
                f"unknown executor {spec!r} (known: {known})"
            ) from None
        return cls() if cls is SerialExecutor else cls(workers)
    return spec


@dataclass(frozen=True)
class CampaignStats:
    """How a campaign run was served.

    ``cached`` counts points *served from cache this run* (no work done);
    ``evaluated`` counts points *computed this run* (fresh executor work,
    failures included).  The two are disjoint and sum to ``total`` — the
    rates below keep that distinction instead of conflating "cache was
    useful" with "cache did everything".
    """

    total: int
    evaluated: int
    cached: int
    failed: int

    @property
    def served_from_cache(self) -> int:
        """Alias for ``cached``, named for what it means."""
        return self.cached

    @property
    def computed(self) -> int:
        """Alias for ``evaluated``: fresh work done this run."""
        return self.evaluated

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this run's points served from cache."""
        return self.cached / self.total if self.total else 0.0

    @property
    def computed_rate(self) -> float:
        """Fraction of this run's points computed fresh."""
        return self.evaluated / self.total if self.total else 0.0


@dataclass(frozen=True)
class CampaignOutcome:
    """A completed run: ordered results plus serving statistics."""

    name: str
    results: ResultSet
    stats: CampaignStats


class Campaign:
    """A named (design space, experiment) pair bound to a result store."""

    def __init__(
        self,
        name: str,
        space: DesignSpace,
        experiment: str,
        store_dir: str | os.PathLike | None = None,
        executor: str | Any | None = None,
        workers: int | None = None,
        on_error: str = "raise",
        durable: bool = False,
    ):
        if on_error not in ("raise", "store"):
            raise ValueError("on_error must be 'raise' or 'store'")
        self.name = name
        self.space = space
        self.experiment = experiment
        self.store_dir = os.fspath(store_dir) if store_dir is not None else None
        self.executor = make_executor(executor, workers)
        self.on_error = on_error
        self._cache: ResultCache | None = None
        if self.store_dir is not None:
            self._cache = ResultCache(
                self.results_path(self.store_dir, name), durable=durable
            )

    @staticmethod
    def results_path(store_dir: str | os.PathLike, name: str) -> str:
        return os.path.join(os.fspath(store_dir), f"{name}.jsonl")

    @property
    def cache(self) -> ResultCache | None:
        return self._cache

    # ------------------------------------------------------------------ run

    def serve(
        self, points: Sequence[DesignPoint]
    ) -> tuple[list[ResultRecord], CampaignStats]:
        """Serve an explicit point list: cache reads for known points, one
        executor ``map`` for the rest, records back in point order.

        This is the evaluation core both entry points share —
        :meth:`run` serves the space's full expansion, the adaptive driver
        (:mod:`repro.explore.adaptive`) serves each batch of sampler
        proposals — so adaptive and exhaustive campaigns populate and
        re-use the *same* JSONL store entries.

        With telemetry on, the batch records a ``campaign.serve`` span,
        binds the context's sink next to this campaign's store (mirroring
        the profile-cache binding below), and counts served-from-cache vs
        computed vs failed points.  None of it touches evaluation —
        results are bit-identical either way.
        """
        tele = _telemetry()
        if tele is None:
            return self._serve(points)
        if self.store_dir is not None:
            tele.attach_sink(
                telemetry_dir_for(self.store_dir), export_env=True
            )
        try:
            with tele.span(
                "campaign.serve",
                campaign=self.name,
                experiment=self.experiment,
            ) as span:
                records, stats = self._serve(points)
                span.set("total", stats.total)
                span.set("cached", stats.cached)
                span.set("computed", stats.evaluated)
                span.set("failed", stats.failed)
        except BaseException:
            tele.flush()  # keep the error-stamped span on disk
            raise
        if stats.cached:
            tele.count("campaign.points.served_from_cache", stats.cached)
        if stats.evaluated:
            tele.count("campaign.points.computed", stats.evaluated)
        if stats.failed:
            tele.count("campaign.points.failed", stats.failed)
        tele.flush()
        from repro.bench.profile_cache import PROFILE_CACHE

        PROFILE_CACHE.flush_run_stats()
        return records, stats

    def _serve(
        self, points: Sequence[DesignPoint]
    ) -> tuple[list[ResultRecord], CampaignStats]:
        # Persist memoized comm profiles alongside the result store so
        # every campaign (and executor worker — via fork inheritance or
        # the exported env var under spawn) sharing this store also shares
        # benchmark profiles.  Rebinding per batch keeps the singleton
        # pointed at the *active* campaign's store when several stores are
        # used in one process, and a store-less campaign detaches it so
        # profiles never land in a stale (possibly deleted) directory.
        # Values are bit-identical with and without the cache, so executor
        # equivalence is unaffected.
        from repro.bench.profile_cache import PROFILE_CACHE, store_path_for

        if self.store_dir is not None:
            PROFILE_CACHE.configure(
                store_path_for(self.store_dir), export_env=True
            )
        else:
            PROFILE_CACHE.configure(None)
        points = list(points)
        keys = [record_key(self.experiment, p) for p in points]

        pending: list[tuple[int, DesignPoint]] = []
        cached = 0
        for idx, key in enumerate(keys):
            if self._cache is not None and key in self._cache:
                cached += 1
            else:
                pending.append((idx, points[idx]))

        tele = _telemetry()
        if tele is not None:
            tele.gauge("executor.queued", len(pending))

        outputs = self.executor.map(
            [(self.experiment, p.as_dict()) for _, p in pending]
        )

        fresh: dict[int, dict] = {}
        failed = 0
        # strict: a custom executor returning a short/long mapping is a
        # bug that must surface, not silently drop points.
        for (idx, point), (ok, metrics) in zip(pending, outputs, strict=True):
            if not ok:
                failed += 1
                if self.on_error == "raise":
                    raise CampaignPointError(
                        self.name, self.experiment, point, metrics
                    )
            fresh[idx] = metrics
            # Failures are never cached, so a fixed experiment re-runs them.
            if ok and self._cache is not None:
                # Self-describing store entries: point and experiment ride
                # along so `repro.explore ls/show` can render a store
                # without the spec that produced it.
                self._cache.put(keys[idx], {
                    "experiment": self.experiment,
                    "point": point.as_dict(),
                    "metrics": metrics,
                })

        records = []
        for idx, (point, key) in enumerate(zip(points, keys)):
            if idx in fresh:
                metrics = fresh[idx]
            else:
                entry = self._cache.get(key)  # type: ignore[union-attr]
                metrics = entry.get("metrics", entry)
            records.append(ResultRecord(
                key=key,
                experiment=self.experiment,
                point=point.as_dict(),
                metrics=metrics,
            ))
        stats = CampaignStats(
            total=len(points),
            evaluated=len(pending),
            cached=cached,
            failed=failed,
        )
        return records, stats

    def run(self) -> CampaignOutcome:
        """Evaluate all uncached points and return the full result set.

        With telemetry on and a store attached, a
        :class:`repro.obs.TelemetrySummary` is persisted under the
        store's ``.telemetry`` directory — embedding the prior run's
        digest so re-runs can report what changed.
        """
        tele = _telemetry()
        started = time.time()
        records, stats = self.serve(self.space.expand())
        outcome = CampaignOutcome(
            name=self.name,
            results=ResultSet(tuple(records)),
            stats=stats,
        )
        if tele is not None and self.store_dir is not None:
            tele.flush()
            summarize_run(
                self.store_dir,
                campaign=self.name,
                experiment=self.experiment,
                stats={
                    "total": stats.total,
                    "evaluated": stats.evaluated,
                    "cached": stats.cached,
                    "failed": stats.failed,
                },
                wall_seconds=time.time() - started,
                keys=[record.key for record in records],
                started=started,
            )
        return outcome


class CampaignPointError(RuntimeError):
    """One design point failed and the campaign is set to fail fast."""

    def __init__(
        self,
        campaign: str,
        experiment: str,
        point: Mapping[str, Any],
        details: Mapping[str, Any],
    ):
        self.point = dict(point)
        self.details = dict(details)
        message = details.get("error", "unknown error")
        super().__init__(
            f"campaign {campaign!r}: experiment {experiment!r} failed on "
            f"point {dict(point)!r}: {message}"
        )


def run_campaign(
    name: str,
    space: DesignSpace | Mapping[str, Any],
    experiment: str,
    store_dir: str | os.PathLike | None = None,
    executor: str | Any | None = None,
    workers: int | None = None,
    on_error: str = "raise",
    durable: bool = False,
) -> CampaignOutcome:
    """One-call convenience wrapper: accepts a spec dict or a DesignSpace."""
    if not isinstance(space, DesignSpace):
        space = DesignSpace.from_dict(space)
    return Campaign(
        name,
        space,
        experiment,
        store_dir=store_dir,
        executor=executor,
        workers=workers,
        on_error=on_error,
        durable=durable,
    ).run()
