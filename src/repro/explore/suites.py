"""Declarative figure/table suites over the campaign engine.

A *suite* is one thesis artifact — a figure or a table — written as data:
the design space that generates its points, the experiment that evaluates
them, the derived series its plot would draw, and the shape claims the
thesis makes about it.  Running a suite is exactly running a campaign, so
suites inherit everything campaigns have — content-hash caching,
resumability, executor choice — and add two things on top:

* an **artifact**: a canonical JSON rendering (columns × rows plus named
  series) suitable for the golden store in :mod:`repro.explore.golden`;
* **claims**: named predicates over the result, so "the linear barrier is
  worst at scale" is a machine-checked regression property instead of a
  sentence in a benchmark docstring.

The bench modules under ``benchmarks/`` are thin wrappers: load a spec by
name, :func:`run_suite`, assert its claims.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.explore.campaign import CampaignOutcome, run_campaign
from repro.explore.golden import ARTIFACT_FORMAT_VERSION, Tolerance
from repro.explore.results import ResultSet
from repro.explore.space import DesignSpace, jsonable

def _benchmarks_root() -> str:
    """The ``benchmarks/`` tree the defaults below live under: the nearest
    ancestor of this package containing one alongside an ``src/repro``
    layout (i.e. this repository's root, as seen by the usual editable
    install — the layout sentinel keeps the walk from adopting an
    unrelated project's ``benchmarks/`` when installed into
    site-packages).  Falls back to CWD-relative ``benchmarks`` when no
    such tree exists, so the ``suite`` CLI behaves identically from any
    working directory whenever the tree is findable."""
    root = os.path.dirname(os.path.abspath(__file__))
    while True:
        candidate = os.path.join(root, "benchmarks")
        if os.path.isdir(candidate) and os.path.isdir(
            os.path.join(root, "src", "repro")
        ):
            return candidate
        parent = os.path.dirname(root)
        if parent == root:
            return "benchmarks"
        root = parent


_BENCHMARKS_ROOT = _benchmarks_root()

#: Default on-disk store shared by all suite campaigns; one JSONL file per
#: suite, so re-running any suite is a cache read.
DEFAULT_SUITE_STORE = os.path.join(_BENCHMARKS_ROOT, ".suite-store")

#: Default golden directory — the checked-in regression fixtures.
DEFAULT_GOLDENS_DIR = os.path.join(_BENCHMARKS_ROOT, "goldens")


@dataclass(frozen=True)
class SeriesSpec:
    """One derived series: ``y`` over ``x`` for the records matching
    ``where`` — the declarative form of "the measured D curve"."""

    name: str
    y: str
    x: str
    where: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "where", dict(self.where))

    def extract(self, results: ResultSet) -> tuple[list, list]:
        sub = results.filter(**self.where) if self.where else results
        return sub.values(self.x), sub.values(self.y)


@dataclass(frozen=True)
class Claim:
    """A named shape claim: a callable that raises AssertionError on a
    result set violating it."""

    name: str
    check: Callable[["SuiteResult"], None]
    description: str = ""


class ClaimFailure(AssertionError):
    """A suite's shape claim did not hold on the regenerated results."""

    def __init__(self, suite: str, claim: Claim, cause: AssertionError):
        self.suite = suite
        self.claim = claim
        detail = f": {cause}" if str(cause) else ""
        super().__init__(
            f"suite {suite!r}: claim {claim.name!r} failed{detail}"
        )


@dataclass(frozen=True)
class SuiteSpec:
    """One thesis artifact as data: space × experiment × series × claims.

    ``columns`` names the artifact's table columns; names resolve against
    metrics first, then point parameters (empty means every point
    parameter followed by every metric).  ``tolerance`` bounds the golden
    comparison for this artifact's floats.

    ``sampling`` (an :class:`repro.explore.adaptive.AdaptivePlan`) makes
    the suite *adaptive*: instead of exhaustively expanding the space,
    :func:`run_suite` evaluates only the points the plan's strategy
    proposes — for suites whose space is a large screening sweep rather
    than a fixed thesis figure.  The plan is seeded, so an adaptive
    suite's artifact is as deterministic as an exhaustive one's.
    """

    name: str
    title: str
    experiment: str
    space: DesignSpace
    columns: tuple[str, ...] = ()
    series: tuple[SeriesSpec, ...] = ()
    claims: tuple[Claim, ...] = ()
    tolerance: Tolerance = field(default_factory=Tolerance)
    description: str = ""
    sampling: Any | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("suite name must be non-empty")
        names = [s.name for s in self.series]
        if len(set(names)) != len(names):
            raise ValueError(f"suite {self.name!r} repeats series names")
        claim_names = [c.name for c in self.claims]
        if len(set(claim_names)) != len(claim_names):
            raise ValueError(f"suite {self.name!r} repeats claim names")


@dataclass(frozen=True)
class SuiteResult:
    """A regenerated suite: the campaign outcome plus artifact/claim views.

    ``outcome`` is a :class:`CampaignOutcome` for exhaustive suites or an
    :class:`~repro.explore.adaptive.AdaptiveOutcome` for sampled ones;
    both expose ``results`` and render-compatible ``stats``.
    """

    spec: SuiteSpec
    outcome: CampaignOutcome | Any

    @property
    def results(self) -> ResultSet:
        return self.outcome.results

    @property
    def stats(self):
        return self.outcome.stats

    # ------------------------------------------------------------- series

    def series(self, name: str) -> tuple[list, list]:
        """The (x, y) value lists of one declared series."""
        for spec in self.spec.series:
            if spec.name == name:
                return spec.extract(self.results)
        known = ", ".join(s.name for s in self.spec.series)
        raise KeyError(
            f"suite {self.spec.name!r} has no series {name!r} (known: {known})"
        )

    def series_values(self, name: str) -> list:
        """Just the y values of one declared series."""
        return self.series(name)[1]

    # ----------------------------------------------------------- artifact

    def columns(self) -> list[str]:
        if self.spec.columns:
            return list(self.spec.columns)
        return [
            c for c in
            self.results.point_names() + self.results.metric_names()
            if c != "traceback"
        ]

    def artifact(self) -> dict:
        """The canonical JSON artifact this suite regenerates."""
        columns = self.columns()
        artifact = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "suite": self.spec.name,
            "title": self.spec.title,
            "experiment": self.spec.experiment,
            "points": len(self.results),
            "columns": columns,
            "rows": self.results.to_rows(columns),
            "series": {
                s.name: {"x_name": s.x, "y_name": s.y}
                | dict(zip(("x", "y"), s.extract(self.results)))
                for s in self.spec.series
            },
        }
        return jsonable(artifact, f"suite {self.spec.name!r} artifact")

    def render(self) -> str:
        """Human-readable artifact: title, serving stats, aligned table."""
        from repro.util.tables import format_table

        stats = self.stats
        lines = [
            self.spec.title,
            f"[{stats.total} points: {stats.evaluated} evaluated, "
            f"{stats.cached} cached ({stats.cache_hit_rate:.0%} hit), "
            f"{stats.failed} failed]",
        ]
        columns = self.columns()
        lines.append(format_table(columns, self.results.to_rows(columns)))
        return "\n".join(lines)

    # ------------------------------------------------------------- claims

    def check_claims(self) -> list[str]:
        """Run every claim; returns their names, raises on the first
        violation (an ordinary AssertionError subclass, so pytest wrappers
        and the CLI report it identically)."""
        checked = []
        for claim in self.spec.claims:
            try:
                claim.check(self)
            except ClaimFailure:
                raise
            except AssertionError as exc:
                raise ClaimFailure(self.spec.name, claim, exc) from exc
            checked.append(claim.name)
        return checked


# ------------------------------------------------------------------ registry

SUITES: dict[str, SuiteSpec] = {}


def register_suite(spec: SuiteSpec) -> SuiteSpec:
    """Register a suite spec under its name (last registration wins, so
    tests can shadow and restore)."""
    SUITES[spec.name] = spec
    return spec


def get_suite(name: str) -> SuiteSpec:
    _load_catalogue()
    try:
        return SUITES[name]
    except KeyError:
        known = ", ".join(sorted(SUITES))
        raise KeyError(f"unknown suite {name!r} (known: {known})") from None


def suite_names() -> list[str]:
    _load_catalogue()
    return sorted(SUITES)


def _load_catalogue() -> None:
    """Import the thesis catalogue lazily so suites.py itself stays free of
    experiment dependencies (and so the registry exists before the
    catalogue module runs)."""
    from repro.explore import figures  # noqa: F401  — import registers


# --------------------------------------------------------------------- run

def run_suite(
    suite: str | SuiteSpec,
    store_dir: str | os.PathLike | None = DEFAULT_SUITE_STORE,
    executor: str | Any | None = None,
    workers: int | None = None,
    check_claims: bool = False,
    sampling: Any | None = None,
) -> SuiteResult:
    """Regenerate one suite through the campaign engine.

    ``store_dir=None`` disables caching; the default store makes any
    re-run a near-pure cache read.  With ``check_claims`` the suite's
    shape claims run before returning, raising :class:`ClaimFailure` on
    the first violation.

    ``sampling`` controls adaptive suites: ``None`` follows the spec
    (exhaustive unless the spec declares a plan), ``False`` forces the
    exhaustive expansion, and an :class:`~repro.explore.adaptive.
    AdaptivePlan` overrides the spec's plan.  Adaptive and exhaustive
    runs of one suite share the same store file, so forcing
    ``sampling=False`` after an adaptive run only pays for the points the
    strategy skipped.
    """
    spec = suite if isinstance(suite, SuiteSpec) else get_suite(suite)
    plan = spec.sampling if sampling is None else sampling
    if plan:
        from repro.explore.adaptive.driver import run_adaptive

        outcome = run_adaptive(
            spec.name,
            spec.space,
            spec.experiment,
            plan,
            store_dir=store_dir,
            executor=executor,
            workers=workers,
        )
    else:
        outcome = run_campaign(
            spec.name,
            spec.space,
            spec.experiment,
            store_dir=store_dir,
            executor=executor,
            workers=workers,
        )
    result = SuiteResult(spec=spec, outcome=outcome)
    if check_claims:
        result.check_claims()
    return result
