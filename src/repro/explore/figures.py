"""The thesis figure/table catalogue: every artifact as a suite spec.

Each :class:`~repro.explore.suites.SuiteSpec` below regenerates one thesis
figure or table through the campaign engine — the design space produces the
sweep, the experiment adapter evaluates each point, the series name the
curves a plot would draw, and the claims are the shape statements the
figure exists to demonstrate, ported verbatim from the bespoke benchmark
modules this catalogue replaced.

Sampling depth is owned *here*, by the specs, not by test fixtures: the
``COMM_SIZES`` / ``COMM_SAMPLES`` / ``BARRIER_RUNS`` constants are the
single source of truth the bench wrappers and any future spec import.
"""

from __future__ import annotations

import numpy as np

from repro.explore.space import DesignSpace
from repro.explore.suites import (
    Claim,
    SeriesSpec,
    SuiteResult,
    SuiteSpec,
    register_suite,
)

# --------------------------------------------------------------- constants
#
# Suite sweeps trade sampling depth for wall time; these knobs keep every
# suite in the seconds-to-a-minute range while preserving the shapes.

#: Message sizes profiled by ``benchmark_comm`` in suite experiments.
COMM_SIZES = tuple(2**k for k in range(0, 17, 4))

#: Samples per communication measurement.
COMM_SAMPLES = 7

#: Barrier measurement repetitions.
BARRIER_RUNS = 16

#: The goldened artifacts checked on every push (see CI and
#: ``benchmarks/goldens/``).
GOLDEN_SUITES = (
    "fig-4-2",
    "fig-5-6-to-5-9",
    "fig-6-3",
    "table-7-1",
    "table-7-2",
)


def _np(result: SuiteResult, series: str) -> np.ndarray:
    return np.asarray(result.series_values(series), dtype=float)


def _claim(name: str, description: str = ""):
    """Decorator sugar: turn a checker function into a Claim."""

    def deco(fn) -> Claim:
        return Claim(name=name, check=fn, description=description)

    return deco


# ------------------------------------------------------------- Chapter 3


@_claim("strong-scaling-floor", "measured inner product decreases with P")
def _fig32_scaling(result: SuiteResult) -> None:
    measured = _np(result, "measured")
    assert measured[1] < measured[0]


@_claim("classic-model-diverges",
        "the four-scalar estimate mispredicts increasingly with P")
def _fig32_divergence(result: SuiteResult) -> None:
    ratios = _np(result, "ratio")
    assert ratios[-1] > 2.0 * ratios[0] or ratios[-1] < 0.5 * ratios[0], (
        "classic model should mispredict increasingly with P"
    )


register_suite(SuiteSpec(
    name="fig-3-2",
    title="Fig. 3.2: inner product timings vs classic BSP estimates",
    experiment="inner-product",
    space=DesignSpace.from_dict({
        "axes": {"nprocs": [8, 16, 32, 64]},
        "constants": {
            "preset": "xeon-8x2x4", "n_total": 10_000_000, "samples": 5,
        },
    }),
    columns=("nprocs", "measured_s", "estimate_s", "estimate_ratio"),
    series=(
        SeriesSpec("measured", y="measured_s", x="nprocs"),
        SeriesSpec("estimate", y="estimate_s", x="nprocs"),
        SeriesSpec("ratio", y="estimate_ratio", x="nprocs"),
    ),
    claims=(_fig32_scaling, _fig32_divergence),
))


@_claim("rate-roughly-constant", "r stays near 1 Gflop/s for every P")
def _table31_rate(result: SuiteResult) -> None:
    rates = _np(result, "r")
    assert rates.max() / rates.min() < 1.5, "r should be roughly constant"
    assert 0.5e9 < rates[0] < 2.0e9, "r should be ~1 Gflop/s"


@_claim("l-spans-orders-of-magnitude",
        "the intercept l grows by orders of magnitude with scale")
def _table31_l(result: SuiteResult) -> None:
    ls = _np(result, "l")
    assert ls[-1] > 10 * ls[0], (
        "l must span orders of magnitude with scale"
    )


register_suite(SuiteSpec(
    name="table-3-1",
    title="Table 3.1: BSPBench parameter values (8-way 2x4-core cluster)",
    experiment="bspbench-params",
    space=DesignSpace.from_dict({
        "axes": {"nprocs": [8, 16, 24, 32, 40, 48, 56, 64]},
        "constants": {"preset": "xeon-8x2x4", "samples": 5},
    }),
    columns=("nprocs", "r_flops", "g_flop", "l_flop"),
    series=(
        SeriesSpec("r", y="r_flops", x="nprocs"),
        SeriesSpec("g", y="g_flop", x="nprocs"),
        SeriesSpec("l", y="l_flop", x="nprocs"),
    ),
    claims=(_table31_rate, _table31_l),
))


# ------------------------------------------------------------- Chapter 4


@_claim("small-sizes-overhead-bound",
        "the rate at the smallest vector is far below the plateau")
def _fig42_overhead(result: SuiteResult) -> None:
    rates = _np(result, "rate")
    assert rates[0] < 0.8 * rates[-1], "small sizes must be overhead-bound"


@_claim("plateau-near-1gflops", "the largest sizes sustain ~1 Gflop/s")
def _fig42_plateau(result: SuiteResult) -> None:
    rates = _np(result, "rate")
    assert 0.5e9 < rates[-1] < 2.0e9, "plateau near 1 Gflop/s"


register_suite(SuiteSpec(
    name="fig-4-2",
    title="Fig. 4.2: bspbench computation rates (vector size sweep)",
    experiment="bspbench-rate",
    space=DesignSpace.from_dict({
        "axes": {"n": [2**k for k in range(0, 11)]},
        "constants": {"preset": "xeon-8x2x4", "core": 0, "samples": 8},
    }),
    columns=("n", "rate_flops", "mean_s"),
    series=(SeriesSpec("rate", y="rate_flops", x="n"),),
    claims=(_fig42_overhead, _fig42_plateau),
))

_FIG43_COUNTS = (1, 16, 256, 4096, 65536, 1048576)


@_claim("own-profile-beats-mflops",
        "the stencil's own profile outpredicts the DAXPY Mflops line")
def _fig43_profiles(result: SuiteResult) -> None:
    stencil = result.results.filter(kernel="stencil5")
    own = sum(
        abs(r.value("predicted_s") - r.value("measured_s")) for r in stencil
    )
    naive = sum(
        abs(r.value("mflops_predicted_s") - r.value("measured_s"))
        for r in stencil
    )
    assert own < naive


register_suite(SuiteSpec(
    name="fig-4-3",
    title="Fig. 4.3: kernel rates and predictions (DAXPY vs 5-point stencil)",
    experiment="kernel-extrapolation",
    space=DesignSpace.from_dict({
        "axes": {
            "kernel": ["daxpy", "stencil5"],
            "applications": list(_FIG43_COUNTS),
        },
        "constants": {"preset": "xeon-8x2x4", "profile_n": 1024, "samples": 15},
    }),
    columns=("kernel", "applications", "measured_s", "predicted_s",
             "mflops_predicted_s"),
    claims=(_fig43_profiles,),
))


@_claim("misprediction-bounded",
        "relative error stays under ~60% across seven orders of magnitude")
def _fig44_bounded(result: SuiteResult) -> None:
    worst = max(result.results.values("rel_error"))
    assert worst < 0.6, "misprediction must stay bounded (thesis: < ~60%)"


register_suite(SuiteSpec(
    name="fig-4-4",
    title="Fig. 4.4: relative misprediction vs kernel applications",
    experiment="kernel-extrapolation",
    space=DesignSpace.from_dict({
        "axes": {
            "kernel": ["daxpy", "stencil5"],
            "applications": list(_FIG43_COUNTS) + [16777216],
        },
        "constants": {"preset": "xeon-8x2x4", "profile_n": 1024, "samples": 15},
    }),
    columns=("kernel", "applications", "rel_error"),
    claims=(_fig44_bounded,),
))

_L1_BYTES = 64 * 1024
_BLAS_LIMIT = 512 * 1024


def _blas_points(in_cache: bool) -> list[dict]:
    from repro.bench.blas_profile import beyond_cache_sizes, in_cache_sizes
    from repro.kernels import BLAS_L1_KERNELS

    points = []
    for kernel in BLAS_L1_KERNELS:
        sizes = (
            in_cache_sizes(kernel, _L1_BYTES, points=12) if in_cache
            else beyond_cache_sizes(kernel, _BLAS_LIMIT, points=20)
        )
        points.extend({"kernel": kernel.name, "n": int(n)} for n in sizes)
    return points


def _kernel_gradient(records, lo: float, hi: float) -> float:
    """Mean seconds-per-byte over the records inside [lo, hi] bytes —
    the same segment regression ``KernelSweep.gradient_between`` uses."""
    mem = np.asarray([r.value("memory_bytes") for r in records], dtype=float)
    t = np.asarray([r.value("median_s") for r in records], dtype=float)
    mask = (mem >= lo) & (mem <= hi)
    assert mask.sum() >= 2, "need at least two points in the window"
    return float(np.polyfit(mem[mask], t[mask], 1)[0])


@_claim("linear-in-cache", "time is linear in memory use inside L1")
def _fig45_linear(result: SuiteResult) -> None:
    for (kernel,), sub in result.results.group_by("kernel").items():
        mem = np.asarray(sub.values("memory_bytes"), dtype=float)
        t = np.asarray(sub.values("median_s"), dtype=float)
        fit = np.polyfit(mem, t, 1)
        residual = np.abs(t - np.polyval(fit, mem)).max()
        assert residual < 0.15 * t.max(), f"{kernel} nonlinear in-cache"


@_claim("kernel-specific-gradients",
        "saxpy and sdot differ by far more than measurement noise (§4.2)")
def _fig45_gradients(result: SuiteResult) -> None:
    groups = result.results.group_by("kernel")
    g_axpy = _kernel_gradient(groups[("saxpy",)], 0, _L1_BYTES)
    g_dot = _kernel_gradient(groups[("sdot",)], 0, _L1_BYTES)
    assert abs(g_axpy - g_dot) / max(g_axpy, g_dot) > 0.15


register_suite(SuiteSpec(
    name="fig-4-5",
    title="Fig. 4.5: L1 BLAS in-cache sweep (Athlon X2)",
    experiment="blas-sweep",
    space=DesignSpace.from_dict({
        "points": _blas_points(in_cache=True),
        "constants": {"preset": "athlon-x2", "batch": 24},
    }),
    columns=("kernel", "n", "memory_bytes", "median_s"),
    claims=(_fig45_linear, _fig45_gradients),
))


@_claim("l1-gradient-break",
        "every kernel's seconds-per-byte gradient breaks upward past L1")
def _fig46_knees(result: SuiteResult) -> None:
    for (kernel,), sub in result.results.group_by("kernel").items():
        inside = _kernel_gradient(sub.records, 0, _L1_BYTES)
        outside = _kernel_gradient(sub.records, 2 * _L1_BYTES, _BLAS_LIMIT)
        assert outside > 1.15 * inside, (
            f"{kernel} must show the L1 gradient break"
        )


register_suite(SuiteSpec(
    name="fig-4-6",
    title="Fig. 4.6: L1 BLAS sweep past the 64 KB L1 boundary (Athlon X2)",
    experiment="blas-sweep",
    space=DesignSpace.from_dict({
        "points": _blas_points(in_cache=False),
        "constants": {"preset": "athlon-x2", "batch": 24},
    }),
    columns=("kernel", "n", "memory_bytes", "median_s"),
    claims=(_fig46_knees,),
))


# ------------------------------------------------------------- Chapter 5

_BARRIER_PATTERNS = ("dissemination", "tree", "linear")


def _barrier_series() -> tuple[SeriesSpec, ...]:
    series = []
    for key, pattern in (("D", "dissemination"), ("T", "tree"), ("L", "linear")):
        series.append(SeriesSpec(
            f"measured:{key}", y="measured_s", x="nprocs",
            where={"pattern": pattern},
        ))
        series.append(SeriesSpec(
            f"predicted:{key}", y="predicted_s", x="nprocs",
            where={"pattern": pattern},
        ))
        series.append(SeriesSpec(
            f"rel_error:{key}", y="rel_error", x="nprocs",
            where={"pattern": pattern},
        ))
    return tuple(series)


@_claim("linear-worst-at-scale",
        "L is the most expensive family at 64 and grows linearly")
def _fig56_linear_worst(result: SuiteResult) -> None:
    counts = np.asarray(result.series("measured:L")[0])
    l_meas = _np(result, "measured:L")
    at64 = counts == 64
    assert l_meas[at64] > _np(result, "measured:D")[at64]
    assert l_meas[at64] > _np(result, "measured:T")[at64]
    big = counts >= 32
    assert np.polyfit(counts[big], l_meas[big], 1)[0] > 0


@_claim("dissemination-parity-oscillation",
        "D oscillates between odd and even counts in the two-node range, "
        "in both the measured and predicted series")
def _fig56_oscillation(result: SuiteResult) -> None:
    counts = np.asarray(result.series("measured:D")[0])
    for name in ("measured:D", "predicted:D"):
        series = _np(result, name)
        odd = [series[counts == p][0] for p in (9, 11, 13, 15)]
        even = [series[counts == p][0] for p in (10, 12, 14, 16)]
        assert min(odd) > max(even), "D odd/even oscillation missing"


@_claim("dissemination-full-machine-dips",
        "D dips at the full-machine-friendly counts 28 and 32")
def _fig56_dips(result: SuiteResult) -> None:
    counts = np.asarray(result.series("measured:D")[0])
    d_meas = _np(result, "measured:D")
    for dip, ref in ((28, 27), (32, 31)):
        assert d_meas[counts == dip][0] < d_meas[counts == ref][0], (
            f"D dip at {dip} missing"
        )


@_claim("linear-relative-error-improves",
        "relative L error shrinks as the barrier cost itself grows")
def _fig56_rel_error(result: SuiteResult) -> None:
    counts = np.asarray(result.series("rel_error:L")[0])
    l_rel = np.abs(_np(result, "rel_error:L"))
    assert l_rel[counts >= 48].mean() < l_rel[counts <= 16].mean()


register_suite(SuiteSpec(
    name="fig-5-6-to-5-9",
    title="Figs. 5.6-5.9: barrier timings and prediction errors (8x2x4)",
    experiment="barrier-cost",
    space=DesignSpace.from_dict({
        "axes": {
            "pattern": list(_BARRIER_PATTERNS),
            "nprocs": list(range(2, 65)),
        },
        "constants": {
            "preset": "xeon-8x2x4",
            "runs": BARRIER_RUNS,
            "comm_samples": COMM_SAMPLES,
        },
    }),
    columns=("pattern", "nprocs", "measured_s", "predicted_s",
             "abs_error_s", "rel_error"),
    series=_barrier_series(),
    claims=(_fig56_linear_worst, _fig56_oscillation, _fig56_dips,
            _fig56_rel_error),
))

_OPTERON_CORES_PER_NODE = 12


@_claim("tree-wins-multi-node",
        "T outperforms D in every multi-node count whose node allocation "
        "is not a power of two")
def _fig510_tree_wins(result: SuiteResult) -> None:
    counts = np.asarray(result.series("measured:D")[0])
    d_meas = _np(result, "measured:D")
    t_meas = _np(result, "measured:T")
    nodes_used = -(-counts // _OPTERON_CORES_PER_NODE)
    pow2 = (nodes_used & (nodes_used - 1)) == 0
    multi = (counts >= 36) & ~pow2
    assert (t_meas[multi] < d_meas[multi]).all(), "T must win multi-node"
    lucky = (counts >= 36) & pow2
    assert lucky.sum() >= 1  # the explained exception exists


@_claim("linear-worst-and-millisecond-scale",
        "L stays worst at scale and reaches the ~2 ms magnitude window")
def _fig510_linear(result: SuiteResult) -> None:
    counts = np.asarray(result.series("measured:L")[0])
    l_meas = _np(result, "measured:L")
    t_meas = _np(result, "measured:T")
    nodes_used = -(-counts // _OPTERON_CORES_PER_NODE)
    pow2 = (nodes_used & (nodes_used - 1)) == 0
    multi = (counts >= 36) & ~pow2
    assert (l_meas[multi] > t_meas[multi]).all()
    assert 0.5e-3 < l_meas[counts == 144][0] < 5e-3


@_claim("absolute-errors-sub-millisecond",
        "D/T absolute errors stay within fractions of a millisecond")
def _fig510_abs_error(result: SuiteResult) -> None:
    for key in ("D", "T"):
        abs_err = (
            _np(result, f"predicted:{key}") - _np(result, f"measured:{key}")
        )
        assert np.abs(abs_err).max() < 0.5e-3


register_suite(SuiteSpec(
    name="fig-5-10-to-5-13",
    title="Figs. 5.10-5.13: barrier timings and prediction errors (12x2x6)",
    experiment="barrier-cost",
    space=DesignSpace.from_dict({
        "axes": {
            "pattern": list(_BARRIER_PATTERNS),
            "nprocs": list(range(6, 145, 6)),
        },
        "constants": {
            "preset": "opteron-12x2x6",
            "runs": 12,
            "comm_samples": COMM_SAMPLES,
        },
    }),
    columns=("pattern", "nprocs", "measured_s", "predicted_s",
             "abs_error_s", "rel_error"),
    series=_barrier_series(),
    claims=(_fig510_tree_wins, _fig510_linear, _fig510_abs_error),
))


# ------------------------------------------------------------- Chapter 6


def _sync_claims(
    ratio_lo: float, payload_claim: bool, payload_from: int = 24
) -> tuple[Claim, ...]:
    @_claim("payload-costs",
            "the payload raises cost above the bare barrier: point-for-"
            "point once the map is large enough to resolve, and in "
            "aggregate over the sweep")
    def payload_costs(result: SuiteResult) -> None:
        measured = _np(result, "measured")
        bare = _np(result, "bare")
        nprocs = np.asarray(
            [rec.point["nprocs"] for rec in result.results], dtype=int
        )
        # At small P the few-byte message-count map costs less than the
        # per-run jitter of the mean-of-worst statistic (outlier spikes
        # dominate the worst cases), so — like the thesis reading of
        # Fig. 6.3 — the point-for-point ordering is only claimed where
        # the payload is resolvable; the sweep as a whole must still pay.
        resolvable = nprocs >= payload_from
        assert (measured[resolvable] >= bare[resolvable]).all(), (
            "payload must cost at multi-node scale"
        )
        assert measured.sum() >= bare.sum(), "payload must cost in aggregate"

    @_claim("sync-cost-grows", "the P x P map makes the sync grow with P")
    def sync_grows(result: SuiteResult) -> None:
        measured = _np(result, "measured")
        assert measured[-1] > measured[0], "sync cost grows with P"

    @_claim("estimate-tracks-measurement",
            "the Ch. 6 estimate stays within a small factor throughout")
    def estimate_tracks(result: SuiteResult) -> None:
        measured = _np(result, "measured")
        predicted = _np(result, "predicted")
        ratios = predicted / measured
        assert ((ratio_lo < ratios) & (ratios < 2.5)).all(), ratios

    # The payload>=bare comparison is only claimed on the Xeon platform;
    # on the Opteron the two sit within the per-run noise at small P
    # (the thesis, too, only reads the ordering off Fig. 6.3).
    if payload_claim:
        return (payload_costs, sync_grows, estimate_tracks)
    return (sync_grows, estimate_tracks)


def _sync_suite(name: str, title: str, preset: str, counts, ratio_lo: float,
                payload_claim: bool = True):
    register_suite(SuiteSpec(
        name=name,
        title=title,
        experiment="sync-cost",
        space=DesignSpace.from_dict({
            "axes": {"nprocs": list(counts)},
            "constants": {
                "preset": preset,
                "runs": BARRIER_RUNS,
                "comm_samples": COMM_SAMPLES,
            },
        }),
        columns=("nprocs", "bare_s", "measured_s", "predicted_s"),
        series=(
            SeriesSpec("bare", y="bare_s", x="nprocs"),
            SeriesSpec("measured", y="measured_s", x="nprocs"),
            SeriesSpec("predicted", y="predicted_s", x="nprocs"),
        ),
        claims=_sync_claims(ratio_lo, payload_claim),
    ))


_sync_suite(
    "fig-6-3", "Fig. 6.3: BSP sync measured vs estimate (8x2x4)",
    "xeon-8x2x4", (8, 16, 24, 32, 48, 64), ratio_lo=0.2,
)
_sync_suite(
    "fig-6-4", "Fig. 6.4: BSP sync measured vs estimate (12x2x6)",
    "opteron-12x2x6", (24, 48, 72, 96, 120, 144), ratio_lo=0.15,
    payload_claim=False,
)


# ------------------------------------------------------------- Chapter 7


def _cluster_claims(node_sizes: list[int]) -> tuple[Claim, ...]:
    @_claim("node-level-recovers-nodes",
            "the node level's subsets are exactly the physical nodes")
    def recovers_nodes(result: SuiteResult) -> None:
        record = result.results[0]
        assert record.value("node_sizes") == node_sizes, (
            "node level must recover the physical nodes"
        )
        assert record.value("nodes_pure"), (
            "every node-level subset must sit on one physical node"
        )

    @_claim("hierarchy-closes", "the coarsest level is one global subset")
    def closes(result: SuiteResult) -> None:
        assert result.results[0].value("top_subsets") == 1

    return (recovers_nodes, closes)


register_suite(SuiteSpec(
    name="table-7-1",
    title="Table 7.1: 60-process SSS clustering on the 8x2x4 configuration",
    experiment="sss-cluster",
    space=DesignSpace.from_dict({
        "points": [{"nprocs": 60}],
        "constants": {
            "preset": "xeon-8x2x4",
            "gap_ratio": 1.25,  # resolve the socket/node intercept strata
            "samples": 9,
            "comm_sizes": list(COMM_SIZES),
        },
    }),
    columns=("nprocs", "levels", "node_sizes", "nodes_pure", "top_subsets"),
    claims=_cluster_claims([7, 7, 7, 7, 8, 8, 8, 8]),
))

register_suite(SuiteSpec(
    name="table-7-2",
    title="Table 7.2: 115-process SSS clustering on the 10x2x6 configuration",
    experiment="sss-cluster",
    space=DesignSpace.from_dict({
        "points": [{"nprocs": 115}],
        "constants": {
            "preset": "cluster-10x2x6",
            "gap_ratio": 1.25,
            "samples": 9,
            "comm_sizes": list(COMM_SIZES),
        },
    }),
    columns=("nprocs", "levels", "node_sizes", "nodes_pure", "top_subsets"),
    claims=_cluster_claims([11] * 5 + [12] * 5),
))


def _hybrid_claims(min_wins: int) -> tuple[Claim, ...]:
    @_claim("hybrid-beats-defaults",
            "the hybrid equals/outperforms flat defaults at nearly every P")
    def hybrid_wins(result: SuiteResult) -> None:
        wins = sum(1 for r in result.results if r.value("win"))
        assert wins >= min_wins, (
            "hybrid must equal/beat defaults at nearly every scale"
        )

    return (hybrid_wins,)


def _hybrid_suite(name, title, preset, counts, min_wins):
    register_suite(SuiteSpec(
        name=name,
        title=title,
        experiment="hybrid-barrier",
        space=DesignSpace.from_dict({
            "axes": {"nprocs": list(counts)},
            "constants": {
                "preset": preset,
                "runs": BARRIER_RUNS,
                "comm_samples": COMM_SAMPLES,
            },
        }),
        columns=("nprocs", "hybrid_s", "linear_s", "tree_s",
                 "dissemination_s"),
        claims=_hybrid_claims(min_wins),
    ))


_hybrid_suite(
    "fig-7-4", "Fig. 7.4: hybrid vs flat barrier performance (8x2x4)",
    "xeon-8x2x4", (16, 32, 48, 64), min_wins=3,
)
_hybrid_suite(
    "fig-7-5", "Fig. 7.5: hybrid vs flat barrier performance (12x2x6)",
    "opteron-12x2x6", (24, 72, 144), min_wins=2,
)


def _adapt_claims(max_losses: int) -> tuple[Claim, ...]:
    @_claim("adaptation-beats-defaults",
            "the greedy-adapted barrier equals/outperforms the predicted-"
            "best default when measured")
    def adaptation_wins(result: SuiteResult) -> None:
        losses = sum(
            1 for r in result.results
            if r.value("adapted_measured_s")
            > 1.10 * r.value("default_measured_s")
        )
        assert losses <= max_losses, (
            "adapted must equal/outperform defaults"
        )

    return (adaptation_wins,)


def _adapt_suite(name, title, preset, counts):
    register_suite(SuiteSpec(
        name=name,
        title=title,
        experiment="barrier-adapt",
        space=DesignSpace.from_dict({
            "axes": {"nprocs": list(counts)},
            "constants": {
                "preset": preset,
                "runs": BARRIER_RUNS,
                "comm_samples": COMM_SAMPLES,
            },
        }),
        columns=("nprocs", "adapted_pattern", "adapted_predicted_s",
                 "adapted_measured_s", "best_default",
                 "default_measured_s", "measured_speedup"),
        claims=_adapt_claims(max_losses=1),
    ))


_adapt_suite(
    "fig-7-6", "Fig. 7.6: greedy-adapted barrier vs defaults (8x2x4)",
    "xeon-8x2x4", (16, 32, 60, 64),
)
_adapt_suite(
    "fig-7-7", "Fig. 7.7: greedy-adapted barrier vs defaults (12x2x6)",
    "opteron-12x2x6", (24, 72, 144),
)


# ------------------------------------------------------------- Chapter 8

_A_SERIES_COUNTS = (4, 8, 16, 32, 64)
_STENCIL_LARGE, _STENCIL_SMALL = 2048, 512


def _mean_iter(result: SuiteResult, **where) -> dict[int, float]:
    sub = result.results.filter(**where)
    return {
        int(r.value("nprocs")): float(r.value("mean_iteration_s"))
        for r in sub
    }


@_claim("all-implementations-strong-scale",
        "every implementation scales down with P on the large problem")
def _fig84_scales(result: SuiteResult) -> None:
    for impl in ("BSP", "MPI", "MPI+R", "Hybrid"):
        series = _mean_iter(result, impl=impl, n=_STENCIL_LARGE, noisy=True)
        assert series[64] < series[4], f"{impl} must strong-scale"


@_claim("bsp-sync-overhead",
        "noise-free BSP carries a visible overhead over raw MPI at scale")
def _fig84_bsp_overhead(result: SuiteResult) -> None:
    clean = result.results.filter(noisy=False)
    bsp = clean.filter(impl="BSP")[0].value("mean_iteration_s")
    mpi = clean.filter(impl="MPI")[0].value("mean_iteration_s")
    assert bsp > mpi, "BSP carries sync overhead over raw MPI"


@_claim("overlap-pays-at-scale", "MPI+R beats plain MPI at 64 processes")
def _fig84_overlap(result: SuiteResult) -> None:
    # Claimed on the noise-free points: at 64 processes the restructured
    # code's ~20% win sits inside the spread of a 5-iteration noisy mean
    # (outlier spikes dominate per-iteration maxima), so — like the
    # BSP-overhead claim above — the ordering is read off the clean runs.
    clean = result.results.filter(noisy=False)
    mpi_r = clean.filter(impl="MPI+R")[0].value("mean_iteration_s")
    mpi = clean.filter(impl="MPI")[0].value("mean_iteration_s")
    assert mpi_r < mpi, "restructured overlap must pay at scale"


@_claim("small-problem-saturates-earlier",
        "the small problem's relative gain 32->64 trails the large one's")
def _fig85_saturation(result: SuiteResult) -> None:
    large = _mean_iter(result, impl="BSP", n=_STENCIL_LARGE, noisy=True)
    small = _mean_iter(result, impl="BSP", n=_STENCIL_SMALL, noisy=True)
    gain_large = large[32] / large[64]
    gain_small = small[32] / small[64]
    assert gain_large > gain_small, "small problem must saturate earlier"


@_claim("overlap-pair-comparable",
        "the two overlap-capable implementations land within 2x at scale")
def _fig86_overlap_pair(result: SuiteResult) -> None:
    hybrid = _mean_iter(result, impl="Hybrid", n=_STENCIL_LARGE, noisy=True)
    mpi_r = _mean_iter(result, impl="MPI+R", n=_STENCIL_LARGE, noisy=True)
    ratio = hybrid[64] / mpi_r[64]
    assert 0.4 < ratio < 2.0, "the overlap pair must be comparable"


@_claim("bsp-overhead-relatively-larger-when-small",
        "the BSP/MPI overhead ratio grows from P=4 to P=64 at 512^2")
def _fig87_overhead(result: SuiteResult) -> None:
    bsp = _mean_iter(result, impl="BSP", n=_STENCIL_SMALL, noisy=True)
    mpi = _mean_iter(result, impl="MPI", n=_STENCIL_SMALL, noisy=True)
    assert bsp[64] / mpi[64] > bsp[4] / mpi[4]


register_suite(SuiteSpec(
    name="fig-8-4-to-8-7",
    title="Figs. 8.4-8.7 (A1-A4): stencil strong scalability",
    experiment="stencil-run",
    space=DesignSpace.from_dict({
        "axes": {
            "impl": ["BSP", "MPI", "MPI+R", "Hybrid"],
            "n": [_STENCIL_LARGE, _STENCIL_SMALL],
            "nprocs": list(_A_SERIES_COUNTS),
        },
        # Noise-free points: at 2048^2 the BSP-vs-MPI gap and the
        # MPI-vs-MPI+R overlap win are close to the per-iteration noise
        # floor, so both orderings are claimed clean.
        "points": [
            {"impl": "BSP", "n": _STENCIL_LARGE, "nprocs": 64,
             "iterations": 3, "noisy": False},
            {"impl": "MPI", "n": _STENCIL_LARGE, "nprocs": 64,
             "iterations": 3, "noisy": False},
            {"impl": "MPI+R", "n": _STENCIL_LARGE, "nprocs": 64,
             "iterations": 3, "noisy": False},
        ],
        "constants": {"preset": "xeon-8x2x4", "iterations": 5, "noisy": True},
    }),
    columns=("impl", "n", "nprocs", "noisy", "mean_iteration_s"),
    claims=(_fig84_scales, _fig84_bsp_overhead, _fig84_overlap,
            _fig85_saturation, _fig86_overlap_pair, _fig87_overhead),
))


@_claim("every-configuration-runs",
        "each implementation completes a tiny sanity configuration")
def _table81_runs(result: SuiteResult) -> None:
    for record in result.results:
        assert record.value("mean_iteration_s") > 0, record.value("impl")


register_suite(SuiteSpec(
    name="table-8-1",
    title="Table 8.1: experimental configurations (sanity runs)",
    experiment="stencil-run",
    space=DesignSpace.from_dict({
        "axes": {"impl": ["BSP", "MPI", "MPI+R", "Hybrid"]},
        "constants": {
            "preset": "xeon-8x2x4", "n": 256, "nprocs": 8, "iterations": 2,
        },
    }),
    columns=("impl", "n", "nprocs", "mean_iteration_s"),
    claims=(_table81_runs,),
))


@_claim("parity-while-compute-dominates",
        "MPI and MPI+R wall times are near parity at P=4")
def _table82_parity(result: SuiteResult) -> None:
    mpi = _mean_iter(result, impl="MPI")
    mpi_r = _mean_iter(result, impl="MPI+R")
    assert mpi[4] / mpi_r[4] < 1.25


@_claim("restructuring-pays-at-scale",
        "MPI+R wins visibly once communication is a real fraction")
def _table82_wins(result: SuiteResult) -> None:
    mpi = _mean_iter(result, impl="MPI")
    mpi_r = _mean_iter(result, impl="MPI+R")
    assert mpi[64] / mpi_r[64] > 1.2


register_suite(SuiteSpec(
    name="table-8-2",
    title="Table 8.2: MPI and MPI+R wall times (1024^2, 6 iterations)",
    experiment="stencil-run",
    space=DesignSpace.from_dict({
        "axes": {
            "impl": ["MPI", "MPI+R"],
            "nprocs": list(_A_SERIES_COUNTS),
        },
        "constants": {"preset": "xeon-8x2x4", "n": 1024, "iterations": 6},
    }),
    columns=("impl", "nprocs", "mean_iteration_s", "total_s"),
    claims=(_table82_parity, _table82_wins),
))


@_claim("predictions-track-strong-scaling",
        "predicted and measured series both scale down for every case")
def _fig810_tracks(result: SuiteResult) -> None:
    for (impl, n), sub in result.results.group_by("impl", "n").items():
        measured = np.asarray(sub.values("measured_s"), dtype=float)
        predicted = np.asarray(sub.values("predicted_s"), dtype=float)
        assert measured[-1] < measured[0], (impl, n)
        assert predicted[-1] < predicted[0], (impl, n)


@_claim("predictions-within-small-factor",
        "every prediction stays within a small factor of measurement")
def _fig810_factor(result: SuiteResult) -> None:
    ratios = np.asarray(result.results.values("ratio"), dtype=float)
    assert ((0.25 < ratios) & (ratios < 2.5)).all(), ratios


register_suite(SuiteSpec(
    name="fig-8-10-to-8-15",
    title="Figs. 8.10-8.15 (B1-B6): stencil prediction vs measurement",
    experiment="stencil-accuracy",
    space=DesignSpace.from_dict({
        "axes": {
            "impl": ["BSP", "MPI", "MPI+R"],
            "n": [_STENCIL_LARGE, _STENCIL_SMALL],
            "nprocs": list(_A_SERIES_COUNTS),
        },
        "constants": {
            "preset": "xeon-8x2x4",
            "iterations": 5,
            "comm_samples": COMM_SAMPLES,
        },
    }),
    columns=("impl", "n", "nprocs", "predicted_s", "measured_s", "ratio"),
    claims=(_fig810_tracks, _fig810_factor),
))


@_claim("amortising-sync-pays", "depth 1 is never the measured optimum")
def _fig818_depth1(result: SuiteResult) -> None:
    measured = _np(result, "measured")
    depths = np.asarray(result.series("measured")[0])
    assert depths[int(np.argmin(measured))] > 1
    assert measured[depths == 1][0] > 1.5 * measured.min()


@_claim("model-choice-near-optimum",
        "the model's chosen depth lands at or adjacent to the measured one")
def _fig818_choice(result: SuiteResult) -> None:
    depths = np.asarray(result.series("measured")[0])
    measured = _np(result, "measured")
    predicted = _np(result, "predicted")
    chosen = depths[int(np.argmin(predicted))]
    best = depths[int(np.argmin(measured))]
    assert abs(int(chosen) - int(best)) <= 3


register_suite(SuiteSpec(
    name="fig-8-18",
    title="Fig. 8.18 (C1): adapted superstep, halo depth sweep (P=64, 512^2)",
    experiment="halo-depth",
    space=DesignSpace.from_dict({
        "axes": {"depth": list(range(1, 13))},
        "constants": {
            "preset": "xeon-8x2x4",
            "nprocs": 64,
            "n": _STENCIL_SMALL,
            "cycles": 5,
            "comm_samples": COMM_SAMPLES,
        },
    }),
    columns=("depth", "predicted_s", "measured_s"),
    series=(
        SeriesSpec("predicted", y="predicted_s", x="depth"),
        SeriesSpec("measured", y="measured_s", x="depth"),
    ),
    claims=(_fig818_depth1, _fig818_choice),
))


# ------------------------------------------------------------- ablations


@_claim("posted-condition-lowers-tree-predictions",
        "disabling the O_jj substitution raises (never lowers) the tree "
        "prediction, visibly at scale")
def _ablation_posted(result: SuiteResult) -> None:
    trees = result.results.filter(pattern="tree")
    on = np.asarray(trees.values("predicted_s"), dtype=float)
    off = np.asarray(trees.values("predicted_no_posted_s"), dtype=float)
    assert (off >= on).all()
    assert off[-1] > 1.01 * on[-1]


@_claim("posted-condition-inert-for-dissemination",
        "every process acts every stage, so nothing is ever posted")
def _ablation_posted_diss(result: SuiteResult) -> None:
    diss = result.results.filter(pattern="dissemination")[0]
    assert diss.value("predicted_s") == diss.value("predicted_no_posted_s")


@_claim("single-latency-underpredicts",
        "charging latency once systematically underpredicts measurement")
def _ablation_latency(result: SuiteResult) -> None:
    trees = result.results.filter(pattern="tree")
    measured = np.asarray(trees.values("measured_s"), dtype=float)
    single = np.asarray(
        trees.values("predicted_single_latency_s"), dtype=float
    )
    assert (single < 0.85 * measured).all()


register_suite(SuiteSpec(
    name="ablation-model",
    title="Ablations: posted-receive condition and latency doubling "
          "(tree barrier, 8x2x4)",
    experiment="barrier-prediction-variants",
    space=DesignSpace.from_dict({
        "axes": {"nprocs": [16, 32, 64]},
        "points": [{"pattern": "dissemination", "nprocs": 64}],
        "constants": {
            "preset": "xeon-8x2x4",
            "pattern": "tree",
            "runs": BARRIER_RUNS,
            "comm_samples": COMM_SAMPLES,
        },
    }),
    columns=("pattern", "nprocs", "measured_s", "predicted_s",
             "predicted_no_posted_s", "predicted_single_latency_s"),
    claims=(_ablation_posted, _ablation_posted_diss, _ablation_latency),
))


@_claim("payload-term-adds-cost-and-accuracy",
        "dropping the bandwidth term underpredicts the payload sync")
def _ablation_payload(result: SuiteResult) -> None:
    for record in result.results:
        measured = record.value("measured_s")
        pred_with = record.value("predicted_s")
        pred_bare = record.value("predicted_bare_s")
        assert pred_bare < pred_with, "payload term must add cost"
        assert abs(pred_with - measured) <= abs(pred_bare - measured)


register_suite(SuiteSpec(
    name="ablation-payload",
    title="Ablation: the §6.5 payload term in the sync estimate (8x2x4)",
    experiment="sync-cost",
    space=DesignSpace.from_dict({
        "axes": {"nprocs": [16, 32, 64]},
        "constants": {
            "preset": "xeon-8x2x4",
            "runs": BARRIER_RUNS,
            "comm_samples": COMM_SAMPLES,
        },
    }),
    columns=("nprocs", "measured_s", "predicted_s", "predicted_bare_s"),
    claims=(_ablation_payload,),
))


def _fabric(result: SuiteResult, preset: str):
    return result.results.filter(preset=preset)[0]


@_claim("fabric-change-visible",
        "everything gets much cheaper on the InfiniBand-class links")
def _ablation_fabric_cheaper(result: SuiteResult) -> None:
    gig = _fabric(result, "xeon-8x2x4")
    ib = _fabric(result, "xeon-8x2x4-ib")
    assert ib.value("dissemination_s") < 0.4 * gig.value("dissemination_s")
    assert ib.value("linear_s") < 0.4 * gig.value("linear_s")


@_claim("benchmark-sees-the-fabric",
        "profiled remote latencies drop with the interconnect swap")
def _ablation_fabric_profiled(result: SuiteResult) -> None:
    gig = _fabric(result, "xeon-8x2x4")
    ib = _fabric(result, "xeon-8x2x4-ib")
    assert ib.value("max_latency_s") < 0.5 * gig.value("max_latency_s")


@_claim("adaptation-follows-the-fabric",
        "the greedy generator still equals/beats the defaults on both")
def _ablation_fabric_adapts(result: SuiteResult) -> None:
    for record in result.results:
        best_default = min(
            record.value("dissemination_s"),
            record.value("tree_s"),
            record.value("linear_s"),
        )
        assert record.value("adapted_s") <= 1.10 * best_default


register_suite(SuiteSpec(
    name="ablation-interconnect",
    title="Ablation: the same nodes on a different interconnect (P=60)",
    experiment="fabric-study",
    space=DesignSpace.from_dict({
        "axes": {"preset": ["xeon-8x2x4", "xeon-8x2x4-ib"]},
        "constants": {
            "nprocs": 60,
            "runs": BARRIER_RUNS,
            "comm_samples": COMM_SAMPLES,
        },
    }),
    columns=("preset", "dissemination_s", "tree_s", "linear_s",
             "adapted_pattern", "adapted_s", "max_latency_s"),
    claims=(_ablation_fabric_cheaper, _ablation_fabric_profiled,
            _ablation_fabric_adapts),
))


@_claim("early-commit-never-slower",
        "committing puts early never slows the superstep down")
def _ablation_overlap_sign(result: SuiteResult) -> None:
    early = _np(result, "early")
    late = _np(result, "late")
    assert ((late - early) >= -1e-9).all()


@_claim("multi-node-overlap-visible",
        "the multi-node run saves a real fraction by committing early")
def _ablation_overlap_size(result: SuiteResult) -> None:
    early = _np(result, "early")
    late = _np(result, "late")
    savings = (late - early) / late
    assert savings[-1] > 0.02, "multi-node run must show real overlap"


register_suite(SuiteSpec(
    name="ablation-overlap",
    title="Ablation: early vs late communication commit (BSP runtime)",
    experiment="overlap-commit",
    space=DesignSpace.from_dict({
        "axes": {
            "commit": ["early", "late"],
            "nprocs": [8, 16, 32],
        },
        "constants": {"preset": "xeon-8x2x4"},
    }),
    columns=("commit", "nprocs", "total_s"),
    series=(
        SeriesSpec("early", y="total_s", x="nprocs",
                   where={"commit": "early"}),
        SeriesSpec("late", y="total_s", x="nprocs",
                   where={"commit": "late"}),
    ),
    claims=(_ablation_overlap_sign, _ablation_overlap_size),
))


# ------------------------------------------------------------ extensions


@_claim("queue-lock-degrades-gracefully",
        "the test-and-set storm grows much faster than MCS handoff")
def _spinlock_growth(result: SuiteResult) -> None:
    tas = _np(result, "test_and_set")
    mcs = _np(result, "mcs")
    assert tas[-1] / tas[0] > 2.0 * (mcs[-1] / mcs[0])


@_claim("mcs-cheapest-under-contention",
        "at the highest contention MCS hands off cheapest")
def _spinlock_mcs(result: SuiteResult) -> None:
    assert _np(result, "mcs")[-1] < _np(result, "test_and_set")[-1]


@_claim("single-signal-bounds-barriers",
        "the cheapest atomic arrival bounds any measured barrier below")
def _spinlock_bound(result: SuiteResult) -> None:
    record = result.results.filter(lock="bound")[0]
    assert 0 < record.value("bound_s") < record.value("barrier_s")


register_suite(SuiteSpec(
    name="extension-spinlocks",
    title="Extension (§5.1): spinlock handoff cost vs contention",
    experiment="spinlock",
    space=DesignSpace.from_dict({
        "axes": {
            "lock": ["test_and_set", "ticket", "mcs"],
            "nprocs": [2, 4, 8, 16],
        },
        "points": [{"lock": "bound", "nprocs": 16, "runs": BARRIER_RUNS}],
        # runs=8: each handoff cell is an 8-replication batched ensemble
        # (one bulk draw through the spinlock runs axis), so the growth
        # claims rest on ensemble means rather than a single noisy roll.
        "constants": {"preset": "xeon-8x2x4", "acquisitions": 12, "runs": 8},
    }),
    columns=("lock", "nprocs", "mean_handoff_s", "bound_s", "barrier_s"),
    series=(
        SeriesSpec("test_and_set", y="mean_handoff_s", x="nprocs",
                   where={"lock": "test_and_set"}),
        SeriesSpec("ticket", y="mean_handoff_s", x="nprocs",
                   where={"lock": "ticket"}),
        SeriesSpec("mcs", y="mean_handoff_s", x="nprocs",
                   where={"lock": "mcs"}),
    ),
    claims=(_spinlock_growth, _spinlock_mcs, _spinlock_bound),
))


@_claim("weak-mode-at-least-as-accurate",
        "weak-mode predictions keep the rate profile in its regime")
def _weak_accuracy(result: SuiteResult) -> None:
    weak = np.asarray(
        result.results.filter(mode="weak").values("rel_error"), dtype=float
    )
    strong = np.asarray(
        result.results.filter(mode="strong").values("rel_error"), dtype=float
    )
    assert weak.mean() <= strong.mean() + 0.05


@_claim("weak-iteration-roughly-flat",
        "weak-mode iteration time stays near the classic plateau")
def _weak_flat(result: SuiteResult) -> None:
    times = np.asarray(
        result.results.filter(mode="weak").values("measured_s"), dtype=float
    )
    assert times.max() < 3.0 * times.min()


register_suite(SuiteSpec(
    name="extension-weak-scaling",
    title="Extension: weak-mode vs strong-mode prediction accuracy (BSP)",
    experiment="stencil-mode-accuracy",
    space=DesignSpace.from_dict({
        "axes": {
            "mode": ["weak", "strong"],
            "nprocs": [4, 16, 64],
        },
        "constants": {
            "preset": "xeon-8x2x4",
            "local_side": 256,
            "strong_n": 1024,
            "comm_samples": COMM_SAMPLES,
        },
    }),
    columns=("mode", "nprocs", "n", "predicted_s", "measured_s", "rel_error"),
    claims=(_weak_accuracy, _weak_flat),
))


@_claim("per-rank-predictions-track",
        "R/C per-rank predictions match per-rank measured compute")
def _hetero_track(result: SuiteResult) -> None:
    record = result.results[0]
    predicted = np.asarray(record.value("predicted_s"), dtype=float)
    measured = np.asarray(record.value("measured_s"), dtype=float)
    np.testing.assert_allclose(predicted, measured, rtol=0.25)


@_claim("heterogeneity-visible-and-predicted",
        "fast-socket ranks measure clearly faster; imbalance is predicted")
def _hetero_imbalance(result: SuiteResult) -> None:
    record = result.results[0]
    measured = np.asarray(record.value("measured_s"), dtype=float)
    fast = np.asarray(record.value("fast_socket"), dtype=bool)
    assert measured[fast].mean() < 0.8 * measured[~fast].mean()
    imb_pred = record.value("imbalance_predicted_s")
    imb_meas = record.value("imbalance_measured_s")
    assert abs(imb_pred - imb_meas) <= 0.4 * abs(imb_meas)


@_claim("model-driven-rebalance-pays",
        "proportional rebalancing shrinks the predicted superstep")
def _hetero_rebalance(result: SuiteResult) -> None:
    record = result.results[0]
    assert (
        record.value("rebalanced_superstep_s")
        < 0.85 * record.value("superstep_s")
    )


register_suite(SuiteSpec(
    name="extension-heterogeneous",
    title="Extension (§3.3): heterogeneous sockets through the R/C matrices",
    experiment="hetero-compute",
    space=DesignSpace.from_dict({
        "points": [{"nprocs": 16, "n": 1024}],
        "constants": {"preset": "xeon-8x2x4-fma"},
    }),
    columns=("nprocs", "n", "imbalance_predicted_s", "imbalance_measured_s",
             "superstep_s", "rebalanced_superstep_s"),
    claims=(_hetero_track, _hetero_imbalance, _hetero_rebalance),
))
