"""Declarative design spaces: named axes, explicit points, stable hashes.

A :class:`DesignSpace` describes *what to evaluate* without saying how: the
cartesian grid of its axes (cluster presets, barrier patterns, process
counts, problem sizes, ...), optionally unioned with hand-picked explicit
points, all merged over a dictionary of constants.  Expansion is fully
deterministic — axis order times declaration order — and every expanded
point carries a stable content hash, which is what makes campaign results
cacheable, resumable, and comparable across executors and sessions.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any


def canonical_json(value: Any) -> str:
    """Key-sorted, whitespace-free JSON — the hashing wire format."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def jsonable(value: Any, context: str) -> Any:
    """Normalise a value to plain JSON types — tuples become lists, numpy
    scalars become Python scalars, dicts get string keys in sorted order —
    and reject everything else.  The single normaliser shared by design
    points and campaign metrics, so both sides of the cache round-trip
    agree on representation."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(v, context) for v in value]
    if isinstance(value, dict):
        return {
            str(k): jsonable(v, context)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return jsonable(item(), context)
    raise TypeError(
        f"{context}: value {value!r} is not JSON-representable; use plain "
        f"scalars, lists, and dicts"
    )


@dataclass(frozen=True)
class ParamSpec:
    """One named axis: an ordered, non-empty tuple of candidate values."""

    name: str
    values: tuple

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError("axis name must be a non-empty string")
        values = tuple(
            jsonable(v, f"axis {self.name!r}") for v in self.values
        )
        if not values:
            raise ValueError(f"axis {self.name!r} has no values")
        seen = set()
        for v in values:
            marker = canonical_json(v)
            if marker in seen:
                raise ValueError(f"axis {self.name!r} repeats value {v!r}")
            seen.add(marker)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.values)


class DesignPoint(Mapping):
    """One fully-bound parameter assignment with a stable content hash.

    Behaves as an immutable mapping; ``key`` is a SHA-256 prefix of the
    canonical JSON encoding, so two points with equal parameters hash
    identically across processes, sessions, and machines.
    """

    __slots__ = ("_params", "_key")

    def __init__(self, params: Mapping[str, Any]):
        normalized = {
            str(k): jsonable(v, f"parameter {k!r}")
            for k, v in params.items()
        }
        self._params = MappingProxyType(dict(sorted(normalized.items())))
        digest = hashlib.sha256(canonical_json(dict(self._params)).encode())
        self._key = digest.hexdigest()[:16]

    @property
    def key(self) -> str:
        return self._key

    def as_dict(self) -> dict:
        return dict(self._params)

    def get(self, name: str, default=None):
        return self._params.get(name, default)

    def __getitem__(self, name: str):
        return self._params[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __eq__(self, other) -> bool:
        if isinstance(other, DesignPoint):
            return self._key == other._key
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._params.items())
        return f"DesignPoint({inner})"


@dataclass(frozen=True)
class DesignSpace:
    """A grid of axes, optional explicit points, and shared constants.

    Expansion semantics:

    * grid points enumerate ``itertools.product`` over the axes in
      declaration order (last axis fastest);
    * explicit points follow in declaration order, each a dict binding any
      subset of parameters (they need not mention the axes at all);
    * ``constants`` merge under every point (point values win);
    * duplicates (by content hash) collapse to their first occurrence.
    """

    axes: tuple[ParamSpec, ...] = ()
    points: tuple[Mapping[str, Any], ...] = ()
    constants: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        axes = tuple(
            a if isinstance(a, ParamSpec) else ParamSpec(*a) for a in self.axes
        )
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        object.__setattr__(self, "axes", axes)
        object.__setattr__(
            self, "points", tuple(dict(p) for p in self.points)
        )
        object.__setattr__(self, "constants", dict(self.constants))
        if not axes and not self.points:
            raise ValueError("design space needs at least one axis or point")

    # ------------------------------------------------------------ expansion

    def expand(self) -> list[DesignPoint]:
        """Deterministic, duplicate-free list of all design points.

        Memoised: the space is deeply immutable after construction, so the
        product/hash work happens once however often len()/iter() are used.
        """
        cached = getattr(self, "_expanded", None)
        if cached is not None:
            return list(cached)
        expanded: list[DesignPoint] = []
        seen: set[str] = set()

        def emit(bound: Mapping[str, Any]) -> None:
            point = DesignPoint({**self.constants, **bound})
            if point.key not in seen:
                seen.add(point.key)
                expanded.append(point)

        if self.axes:
            names = [a.name for a in self.axes]
            for combo in itertools.product(*(a.values for a in self.axes)):
                emit(dict(zip(names, combo)))
        for explicit in self.points:
            emit(explicit)
        object.__setattr__(self, "_expanded", tuple(expanded))
        return expanded

    def __len__(self) -> int:
        return len(self.expand())

    def __iter__(self) -> Iterator[DesignPoint]:
        return iter(self.expand())

    def __contains__(self, point) -> bool:
        if not isinstance(point, DesignPoint):
            point = DesignPoint(point)
        cached = getattr(self, "_keys", None)
        if cached is None:
            cached = frozenset(p.key for p in self.expand())
            object.__setattr__(self, "_keys", cached)
        return point.key in cached

    # -------------------------------------------------------------- axis views

    def axis_names(self) -> list[str]:
        return [a.name for a in self.axes]

    def axis(self, name: str) -> ParamSpec:
        for spec in self.axes:
            if spec.name == name:
                return spec
        known = ", ".join(self.axis_names())
        raise KeyError(f"no axis {name!r} (known: {known})")

    def restrict(self, **subsets: Sequence) -> "DesignSpace":
        """A sub-space keeping only the named axes' listed values.

        Axis declaration order, parent value order, constants, and the
        explicit points consistent with the restriction are preserved, so
        the sub-space expands to a subsequence of the parent expansion and
        every surviving point keeps its content hash.  A campaign over the
        sub-space therefore re-uses the parent campaign's store entries —
        :meth:`repro.explore.adaptive.DriftRegion.subspace` builds on this
        to re-run a localised drift region as its own focused campaign.
        """
        unknown = set(subsets) - set(self.axis_names())
        if unknown:
            raise KeyError(f"restrict names unknown axes: {sorted(unknown)}")
        axes = []
        for spec in self.axes:
            if spec.name not in subsets:
                axes.append(spec)
                continue
            allowed = {canonical_json(jsonable(v, f"axis {spec.name!r}"))
                       for v in subsets[spec.name]}
            values = tuple(
                v for v in spec.values if canonical_json(v) in allowed
            )
            if not values:
                raise ValueError(
                    f"restriction empties axis {spec.name!r}"
                )
            axes.append(ParamSpec(spec.name, values))
        points = []
        for explicit in self.points:
            merged = {**self.constants, **dict(explicit)}
            keep = True
            for name in subsets:
                if name in merged:
                    marker = canonical_json(
                        jsonable(merged[name], f"axis {name!r}")
                    )
                    allowed = {
                        canonical_json(jsonable(v, f"axis {name!r}"))
                        for v in subsets[name]
                    }
                    if marker not in allowed:
                        keep = False
                        break
            if keep:
                points.append(explicit)
        return DesignSpace(
            axes=tuple(axes),
            points=tuple(points),
            constants=dict(self.constants),
        )

    # ---------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        return {
            "axes": {a.name: list(a.values) for a in self.axes},
            "points": [dict(p) for p in self.points],
            "constants": dict(self.constants),
        }

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "DesignSpace":
        """Build a space from the JSON spec format used by the CLI.

        ``{"axes": {name: [values...]}, "points": [...], "constants": {...}}``
        """
        unknown = set(spec) - {"axes", "points", "constants"}
        if unknown:
            raise ValueError(f"unknown design-space keys: {sorted(unknown)}")
        axes = tuple(
            ParamSpec(name, tuple(values))
            for name, values in dict(spec.get("axes", {})).items()
        )
        return cls(
            axes=axes,
            points=tuple(spec.get("points", ())),
            constants=dict(spec.get("constants", {})),
        )

    @classmethod
    def grid(cls, **axes: Sequence) -> "DesignSpace":
        """Convenience constructor: ``DesignSpace.grid(preset=[...], p=[...])``."""
        return cls(axes=tuple(ParamSpec(n, tuple(v)) for n, v in axes.items()))
