"""Resilient campaign execution: retries, timeouts, quarantine, chaos.

Campaigns promise resumability — interrupting a run loses at most the
in-flight points — but until this module the *execution* layer had no
answer to a misbehaving point: one stuck evaluation wedged a whole pool
``map``, and one dying worker killed the campaign.  This module adds the
robustness substrate:

* :class:`RetryPolicy` — per-point retry/timeout/backoff policy threaded
  through every executor and :meth:`Campaign.serve`.  Backoff jitter is
  *seeded-deterministic*: the delay for (point, attempt) is a pure
  function of ``jitter_seed``, so two runs of the same campaign schedule
  identical waits.
* **Poison-point quarantine** — a point that exhausts its attempts is
  recorded as a structured failure (error, traceback, attempts, elapsed)
  and the campaign finishes; :meth:`Campaign.serve` persists the record
  to a ``<store>.quarantine.jsonl`` sidecar next to the result store.
* **Graceful degradation** — the pool drivers detect worker death
  (``BrokenProcessPool``) and blown point deadlines, rebuild the pool
  once, and — when ``degrade`` is enabled — fall back to in-process
  serial evaluation for the remaining points instead of aborting.
* :class:`FaultPlan` — a deterministic fault-injection harness.  Faults
  (exceptions, hangs, worker kills, torn cache appends) are described as
  data, activated through the env-inherited :data:`ENV_VAR` hook exactly
  like ``REPRO_TELEMETRY``, and fire a *bounded, seeded* number of times
  per targeted point via an on-disk firing ledger shared by every worker
  process.  Because experiments are pure functions of their point, a
  campaign under transient injected faults converges to a ResultSet
  bit-identical to the fault-free run — which is what the chaos tests
  assert.

Determinism contract: retries never re-draw randomness — an experiment
evaluation is a pure function of its point, so attempt N returns exactly
what attempt 1 would have.  The resilience layer therefore changes *when*
a value is computed, never *what* is computed.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import heapq
import json
import multiprocessing
import os
import tempfile
import time
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from fnmatch import fnmatchcase
from typing import Any

from repro.obs import current as _telemetry

#: Environment variable carrying a JSON fault plan into executor workers
#: (fork inheritance or explicit export), mirroring ``REPRO_TELEMETRY``.
ENV_VAR = "REPRO_FAULTS"

#: Exit status used by injected worker kills, distinguishable from
#: ordinary interpreter deaths in pool diagnostics.
KILL_EXIT_CODE = 23

#: Histogram bucket edges for recorded backoff delays [seconds].
BACKOFF_EDGES = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class FaultInjected(RuntimeError):
    """An injected fault fired (exception kind, expired hang, or a kill
    downgraded to an exception outside a disposable worker process)."""


class PoolBrokenError(RuntimeError):
    """The worker pool died repeatedly and degradation is disabled."""

    def __init__(self, remaining: int, message: str):
        self.remaining = remaining
        super().__init__(message)


def _unit_interval(*parts: Any) -> float:
    """Deterministic hash of ``parts`` onto [0, 1) — the seeded source
    for jitter and fault targeting (never the experiment's own RNG)."""
    payload = ":".join(str(p) for p in parts).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


# --------------------------------------------------------------- retry policy

@dataclass(frozen=True)
class RetryPolicy:
    """Per-point retry/timeout/backoff policy.

    ``max_attempts`` counts evaluations, so ``1`` (the default) means no
    retries; ``point_timeout_s`` is enforced as a wall-clock deadline by
    the pool executors (the serial executor cannot preempt an in-process
    call and documents that timeouts there are advisory); the delay
    before attempt ``n+1`` is ``backoff_base_s * 2**(n-1)`` scaled by a
    seeded-deterministic jitter factor in [0.5, 1.5), capped at
    ``backoff_max_s``.
    """

    max_attempts: int = 1
    point_timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter_seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ValueError("point_timeout_s must be positive")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be >= 0")

    @property
    def is_noop(self) -> bool:
        """True when the policy changes nothing about plain execution."""
        return self.max_attempts == 1 and self.point_timeout_s is None

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic delay before retrying ``key`` after ``attempt``
        failed attempts — exponential in ``attempt``, jittered by a pure
        hash of (seed, key, attempt) so schedules are reproducible."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        base = self.backoff_base_s * (2.0 ** (attempt - 1))
        jitter = 0.5 + _unit_interval(self.jitter_seed, key, attempt)
        return min(base * jitter, self.backoff_max_s)


# ------------------------------------------------------------ fault injection

#: Recognised fault kinds.
FAULT_KINDS = ("exception", "hang", "kill", "torn-append")

#: Recognised injection sites.
FAULT_SITES = ("evaluate", "cache.put")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault, described as data.

    ``rate`` selects targeted points by a seeded hash of the point key —
    the same points are targeted in every run of the plan; ``times``
    bounds how often the fault fires per targeted point (``<= 0`` means
    unlimited), counted in the plan's shared on-disk ledger so retries
    and pool rebuilds observe a consistent firing history.  Kinds:

    * ``exception``   — raise :class:`FaultInjected`;
    * ``hang``        — sleep ``hang_s`` then raise :class:`FaultInjected`
      (a pool deadline shorter than ``hang_s`` kills the worker first —
      the hang-past-timeout scenario);
    * ``kill``        — ``os._exit`` inside a disposable pool worker; in
      a non-worker process (serial executor, degraded fallback) it
      downgrades to :class:`FaultInjected` so the campaign process
      survives;
    * ``torn-append`` — truncate one result-cache append mid-line,
      simulating a crash between partial write and completion
      (site ``cache.put``).
    """

    kind: str
    site: str = "evaluate"
    experiment: str = "*"
    rate: float = 1.0
    times: int = 1
    hang_s: float = 0.25

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(known: {known})")
        if self.site not in FAULT_SITES:
            known = ", ".join(FAULT_SITES)
            raise ValueError(f"unknown fault site {self.site!r} "
                             f"(known: {known})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.hang_s < 0:
            raise ValueError("hang_s must be >= 0")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "site": self.site,
            "experiment": self.experiment, "rate": self.rate,
            "times": self.times, "hang_s": self.hang_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            site=data.get("site", "evaluate"),
            experiment=data.get("experiment", "*"),
            rate=float(data.get("rate", 1.0)),
            times=int(data.get("times", 1)),
            hang_s=float(data.get("hang_s", 0.25)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` plus the shared firing ledger.

    ``state_dir`` holds one append-only file per (fault, point) pair;
    its size is the firing count.  :func:`activate` fills it in (a fresh
    temporary directory) when absent and re-exports the completed plan
    to :data:`ENV_VAR`, so forked or spawned workers share one ledger —
    firing budgets are global to the campaign, not per process.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0
    state_dir: str | None = None

    def __post_init__(self):
        object.__setattr__(
            self, "faults",
            tuple(
                f if isinstance(f, FaultSpec) else FaultSpec.from_dict(f)
                for f in self.faults
            ),
        )

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "state_dir": self.state_dir,
            "faults": [f.to_dict() for f in self.faults],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{ENV_VAR} does not hold a valid JSON fault plan: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise ValueError(f"{ENV_VAR} must hold a JSON object")
        return cls(
            faults=tuple(
                FaultSpec.from_dict(f) for f in data.get("faults", ())
            ),
            seed=int(data.get("seed", 0)),
            state_dir=data.get("state_dir"),
        )

    # ---------------------------------------------------------- targeting

    def _targets(self, index: int, spec: FaultSpec, key: str,
                 experiment: str) -> bool:
        if not fnmatchcase(experiment, spec.experiment):
            return False
        if spec.rate >= 1.0:
            return True
        return _unit_interval(self.seed, index, key) < spec.rate

    def _ledger_path(self, index: int, key: str) -> str:
        return os.path.join(self.state_dir, f"f{index}-{key}")

    def _fired(self, index: int, key: str) -> int:
        try:
            return os.path.getsize(self._ledger_path(index, key))
        except OSError:
            return 0

    def _record_firing(self, index: int, key: str) -> None:
        fd = os.open(
            self._ledger_path(index, key),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644,
        )
        try:
            os.write(fd, b"x")
        finally:
            os.close(fd)

    def _next_fault(self, site: str, experiment: str,
                    key: str) -> tuple[int, FaultSpec] | None:
        for index, spec in enumerate(self.faults):
            if spec.site != site:
                continue
            if not self._targets(index, spec, key, experiment):
                continue
            if spec.times > 0 and self._fired(index, key) >= spec.times:
                continue
            return index, spec
        return None

    # ------------------------------------------------------------- firing

    def inject(self, site: str, experiment: str, key: str) -> None:
        """Fire the first matching unexhausted fault for this site/point.

        The firing is recorded in the ledger *before* the fault acts, so
        a kill or a timed-out hang still consumes its budget — which is
        what lets a retried point eventually succeed deterministically.
        """
        found = self._next_fault(site, experiment, key)
        if found is None:
            return
        index, spec = found
        self._record_firing(index, key)
        if spec.kind == "exception":
            raise FaultInjected(
                f"injected exception (fault {index}, point {key})"
            )
        if spec.kind == "hang":
            time.sleep(spec.hang_s)
            raise FaultInjected(
                f"injected hang expired after {spec.hang_s}s "
                f"(fault {index}, point {key})"
            )
        if spec.kind == "kill":
            if multiprocessing.parent_process() is not None:
                os._exit(KILL_EXIT_CODE)
            raise FaultInjected(
                f"injected kill downgraded to exception outside a pool "
                f"worker (fault {index}, point {key})"
            )

    def tear(self, site: str, experiment: str, key: str,
             payload: bytes) -> bytes | None:
        """Return a truncated payload when a torn-append fault fires for
        this write, else ``None`` (write normally)."""
        for index, spec in enumerate(self.faults):
            if spec.kind != "torn-append" or spec.site != site:
                continue
            if not self._targets(index, spec, key, experiment):
                continue
            if spec.times > 0 and self._fired(index, key) >= spec.times:
                continue
            self._record_firing(index, key)
            return payload[: max(1, len(payload) // 2)]
        return None


# Module activation state, mirroring repro.obs.telemetry: one optional
# process-wide plan, lazily picked up from the environment so executor
# workers (fork or spawn) join the parent's plan and ledger.
class _State:
    plan: FaultPlan | None = None
    env_checked = False


_STATE = _State()


def activate(plan: FaultPlan, export_env: bool = True) -> FaultPlan:
    """Activate a fault plan process-wide; returns the completed plan.

    Creates the firing-ledger directory when the plan has none and — by
    default — exports the completed plan to :data:`ENV_VAR` so worker
    processes started later share it.
    """
    if plan.state_dir is None:
        plan = replace(
            plan, state_dir=tempfile.mkdtemp(prefix="repro-faults-")
        )
    else:
        os.makedirs(plan.state_dir, exist_ok=True)
    _STATE.plan = plan
    _STATE.env_checked = True
    if export_env:
        os.environ[ENV_VAR] = plan.to_json()
    return plan


def deactivate() -> None:
    """Drop the active plan and its environment export (idempotent)."""
    _STATE.plan = None
    _STATE.env_checked = True
    os.environ.pop(ENV_VAR, None)


def current_plan() -> FaultPlan | None:
    """The active fault plan, or ``None`` — one attribute read when no
    chaos is configured.  The first call honours :data:`ENV_VAR`; an
    env-built plan missing its ledger directory is re-activated (and
    re-exported) so every later process shares the same ledger."""
    plan = _STATE.plan
    if plan is None and not _STATE.env_checked:
        _STATE.env_checked = True
        value = os.environ.get(ENV_VAR)
        if value:
            return activate(FaultPlan.from_json(value))
    return plan


def maybe_inject(site: str, experiment: str, key: str) -> None:
    """Fire any active matching fault — the hook instrumented call sites
    use; a no-op (one read, one ``if``) when no plan is active."""
    plan = current_plan()
    if plan is not None:
        plan.inject(site, experiment, key)


def maybe_tear(site: str, experiment: str, key: str,
               payload: bytes) -> bytes | None:
    """Torn-append hook for the result cache; ``None`` when inactive."""
    plan = current_plan()
    if plan is None:
        return None
    return plan.tear(site, experiment, key, payload)


# ----------------------------------------------------------- failure records

def failure_details(metrics: Mapping[str, Any], attempts: int,
                    elapsed_s: float, reason: str) -> dict:
    """The structured quarantine payload: the worker's error fields plus
    how execution spent the point's budget."""
    out = dict(metrics)
    out["attempts"] = attempts
    out["elapsed_s"] = round(float(elapsed_s), 6)
    out["reason"] = reason
    out["quarantined"] = True
    return out


def timeout_details(timeout_s: float) -> dict:
    """The synthesized error payload for a blown point deadline (the
    worker was killed; there is no traceback to collect)."""
    return {
        "error": f"TimeoutError: point exceeded {timeout_s}s wall-clock "
                 f"deadline",
        "error_type": "TimeoutError",
        "traceback": None,
    }


def quarantine_path(store_path: str | os.PathLike) -> str:
    """The quarantine sidecar next to a campaign's ``<name>.jsonl``."""
    path = os.fspath(store_path)
    if path.endswith(".jsonl"):
        path = path[: -len(".jsonl")]
    return f"{path}.quarantine.jsonl"


def append_quarantine(path: str | os.PathLike, record: Mapping[str, Any]
                      ) -> None:
    """Append one quarantine record with the store's single-``os.write``
    O_APPEND discipline (crash-safe, concurrency-safe)."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    payload = (json.dumps(dict(record), sort_keys=True) + "\n").encode()
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)


def read_quarantine(path: str | os.PathLike) -> list[dict]:
    """Every parseable quarantine record at ``path`` (append order)."""
    path = os.fspath(path)
    if not os.path.exists(path):
        return []
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


# --------------------------------------------------------- resilient drivers

#: Floor on consecutive worker-death rebuilds tolerated before the
#: driver gives up on the pool.  The per-point driver scales this with
#: the remaining workload (:func:`_barren_limit`): a worker death
#: consumes no attempt by design, so a *converging* fault plan — every
#: point's firing budget below ``max_attempts``, the documented
#: contract — can legitimately kill the pool up to
#: ``incomplete * (max_attempts - 1)`` times in a row before any task
#: completes.  Only past that bound is the pool provably broken rather
#: than unlucky.
MAX_BARREN_REBUILDS = 1


def _barren_limit(incomplete: int, policy: "RetryPolicy") -> int:
    """Consecutive no-progress pool deaths tolerated before degrading."""
    return max(MAX_BARREN_REBUILDS, incomplete * max(policy.max_attempts - 1, 0))

#: Floor for pool wait timeouts so the dispatch loop never busy-spins.
_MIN_WAIT_S = 0.005


class _Unit:
    """One task's lifecycle through the resilient pool driver."""

    __slots__ = ("index", "task", "key", "attempt", "eligible_at",
                 "elapsed_s")

    def __init__(self, index: int, task: Any, key: str):
        self.index = index
        self.task = task
        self.key = key
        self.attempt = 1
        self.eligible_at = 0.0
        self.elapsed_s = 0.0

    def __lt__(self, other: "_Unit") -> bool:
        return (self.eligible_at, self.index) < (
            other.eligible_at, other.index
        )


def _observe_backoff(delay: float) -> None:
    tele = _telemetry()
    if tele is not None:
        tele.count("resilience.retries")
        tele.observe("resilience.backoff_s", delay, edges=BACKOFF_EDGES)


def _count(name: str, value: float = 1.0) -> None:
    tele = _telemetry()
    if tele is not None:
        tele.count(name, value)


def serial_map_with_retry(
    eval_fn: Callable[[Any], tuple[bool, dict]],
    tasks: Sequence[Any],
    policy: RetryPolicy,
    keys: Sequence[str] | None = None,
    start_attempts: Sequence[int] | None = None,
) -> list[tuple[bool, dict]]:
    """In-process evaluation with the policy's retry/backoff schedule.

    No preemptive timeout: a single process cannot interrupt its own
    call, so ``point_timeout_s`` is not enforced here (the pool drivers
    enforce it).  ``start_attempts`` lets the degraded fallback resume
    attempt counting where the pool left off.
    """
    keys = list(keys) if keys is not None else [repr(t) for t in tasks]
    out: list[tuple[bool, dict]] = []
    for position, task in enumerate(tasks):
        attempt = (
            start_attempts[position] if start_attempts is not None else 1
        )
        started = time.monotonic()
        while True:
            ok, metrics = eval_fn(task)
            if ok:
                out.append((True, metrics))
                break
            if attempt >= policy.max_attempts:
                out.append((False, failure_details(
                    metrics,
                    attempts=attempt,
                    elapsed_s=time.monotonic() - started,
                    reason="exception",
                )))
                break
            delay = policy.backoff_s(keys[position], attempt)
            _observe_backoff(delay)
            if delay > 0:
                time.sleep(delay)
            attempt += 1
    return out


def pool_map_resilient(
    context,
    eval_fn: Callable[[Any], tuple[bool, dict]],
    tasks: Sequence[Any],
    keys: Sequence[str],
    workers: int,
    policy: RetryPolicy,
    degrade: bool = False,
    pre_submit: Callable[[], None] | None = None,
) -> list[tuple[bool, dict]]:
    """Order-preserving pool map with per-point deadlines, retries, and
    worker-death recovery.

    Tasks are dispatched through a ``concurrent.futures`` process pool in
    a sliding window of at most ``workers`` in-flight futures, so a
    submitted task is actually *running* and its wall-clock deadline is
    meaningful.  Three failure paths:

    * an evaluation returning ``ok=False`` consumes one attempt and is
      retried after its deterministic backoff delay (quarantined once
      attempts are exhausted);
    * a blown ``point_timeout_s`` deadline kills the whole pool (a hung
      worker cannot be interrupted any other way), consumes one attempt
      of the *timed-out* point only, requeues the innocent in-flight
      points unchanged, and rebuilds;
    * worker death (``BrokenProcessPool``) requeues every in-flight point
      unchanged and rebuilds — once.  A second death with no completed
      task in between means the pool cannot make progress: with
      ``degrade`` the remaining points run serially in this process,
      otherwise :class:`PoolBrokenError` is raised.

    ``pre_submit`` runs before each pool (re)build — the campaign layer
    uses it to flush telemetry ahead of the fork, exactly like the plain
    pool executors.
    """
    if not tasks:
        return []
    results: list[tuple[bool, dict] | None] = [None] * len(tasks)
    queue: list[_Unit] = [
        _Unit(i, task, keys[i]) for i, task in enumerate(tasks)
    ]
    heapq.heapify(queue)

    def make_pool():
        if pre_submit is not None:
            pre_submit()
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )

    def kill_pool(executor) -> None:
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.kill()
            except (OSError, ValueError):
                pass
        for proc in processes:
            try:
                proc.join(timeout=2.0)
            except (OSError, ValueError, AssertionError):
                pass

    def settle(unit: _Unit, metrics: Mapping[str, Any],
               reason: str) -> None:
        """One failed attempt: retry with backoff or quarantine."""
        if unit.attempt >= policy.max_attempts:
            results[unit.index] = (False, failure_details(
                metrics, attempts=unit.attempt,
                elapsed_s=unit.elapsed_s, reason=reason,
            ))
            return
        delay = policy.backoff_s(unit.key, unit.attempt)
        _observe_backoff(delay)
        unit.attempt += 1
        unit.eligible_at = time.monotonic() + delay
        heapq.heappush(queue, unit)

    executor = make_pool()
    inflight: dict = {}  # future -> (unit, deadline | None, started_at)
    barren_rebuilds = 0
    degraded = False
    try:
        while queue or inflight:
            now = time.monotonic()
            while (queue and len(inflight) < workers
                   and queue[0].eligible_at <= now):
                unit = heapq.heappop(queue)
                future = executor.submit(eval_fn, unit.task)
                deadline = (
                    now + policy.point_timeout_s
                    if policy.point_timeout_s is not None else None
                )
                inflight[future] = (unit, deadline, now)
            if not inflight:
                # Everything pending is backing off; sleep to eligibility.
                time.sleep(max(queue[0].eligible_at - now, _MIN_WAIT_S))
                continue

            deadlines = [d for _, d, _ in inflight.values()
                         if d is not None]
            wait_s = None
            if deadlines:
                wait_s = max(min(deadlines) - now, _MIN_WAIT_S)
            if queue:  # wake up for the next backoff expiry too
                until = max(queue[0].eligible_at - now, _MIN_WAIT_S)
                wait_s = until if wait_s is None else min(wait_s, until)
            done, _ = concurrent.futures.wait(
                set(inflight), timeout=wait_s,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )

            crashed = False
            for future in done:
                unit, _, started_at = inflight.pop(future)
                unit.elapsed_s += time.monotonic() - started_at
                try:
                    ok, metrics = future.result()
                except BrokenProcessPool:
                    # Worker death: no attempt consumed — the fault (or
                    # crash) cannot be attributed to this point.
                    crashed = True
                    unit.eligible_at = 0.0
                    heapq.heappush(queue, unit)
                    continue
                except Exception as exc:  # noqa: BLE001 — dispatch-side
                    ok, metrics = False, {
                        "error": f"{type(exc).__name__}: {exc}",
                        "error_type": type(exc).__name__,
                        "traceback": None,
                    }
                if ok:
                    results[unit.index] = (True, metrics)
                    barren_rebuilds = 0  # the pool made progress
                else:
                    settle(unit, metrics, "exception")
                    barren_rebuilds = 0

            if crashed:
                for future, (unit, _, started_at) in inflight.items():
                    unit.elapsed_s += time.monotonic() - started_at
                    unit.eligible_at = 0.0
                    heapq.heappush(queue, unit)
                inflight.clear()
                kill_pool(executor)
                barren_rebuilds += 1
                incomplete = sum(1 for r in results if r is None)
                if barren_rebuilds > _barren_limit(incomplete, policy):
                    _count("resilience.degraded")
                    degraded = True
                    break
                _count("resilience.pool_rebuilds")
                executor = make_pool()
                continue

            # Deadline sweep: anything past its deadline is hung; the
            # only way to reclaim the worker is to kill the pool.
            now = time.monotonic()
            expired = [
                future for future, (_, deadline, _) in inflight.items()
                if deadline is not None and now >= deadline
            ]
            if expired:
                for future in expired:
                    unit, _, started_at = inflight.pop(future)
                    unit.elapsed_s += now - started_at
                    _count("resilience.timeouts")
                    settle(unit, timeout_details(policy.point_timeout_s),
                           "timeout")
                for future, (unit, _, started_at) in inflight.items():
                    unit.elapsed_s += now - started_at
                    unit.eligible_at = 0.0
                    heapq.heappush(queue, unit)
                inflight.clear()
                kill_pool(executor)
                _count("resilience.pool_rebuilds")
                executor = make_pool()
    finally:
        if not degraded:
            executor.shutdown(wait=False, cancel_futures=True)

    if degraded:
        remaining = sorted(queue, key=lambda u: u.index)
        if not degrade:
            raise PoolBrokenError(
                len(remaining),
                f"worker pool died {barren_rebuilds} times without "
                f"completing a task; {len(remaining)} point(s) remain "
                f"(enable degrade=True to finish them serially)",
            )
        serial = serial_map_with_retry(
            eval_fn,
            [unit.task for unit in remaining],
            policy,
            keys=[unit.key for unit in remaining],
            start_attempts=[unit.attempt for unit in remaining],
        )
        for unit, outcome in zip(remaining, serial):
            results[unit.index] = outcome

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def chunked_map_resilient(
    context,
    chunk_fn: Callable[[list], list[tuple[bool, dict]]],
    point_fn: Callable[[Any], tuple[bool, dict]],
    chunks: Sequence[list],
    keys: Sequence[str],
    workers: int,
    policy: RetryPolicy,
    degrade: bool = False,
    pre_submit: Callable[[], None] | None = None,
) -> list[tuple[bool, dict]]:
    """Resilient chunk dispatch: healthy chunks run whole, broken chunks
    split to points.

    Chunks are dispatched like points with a *chunk deadline* of
    ``point_timeout_s * len(chunk)``.  A chunk whose pool crashes or
    whose deadline blows is not retried as a chunk — the failure cannot
    be attributed within it — its tasks are re-run individually through
    :func:`pool_map_resilient`, which owns per-point timeouts, retries,
    quarantine, and degradation.  A second consecutive crash abandons
    chunking entirely and sends every unfinished chunk to the point
    driver.
    """
    if not chunks:
        return []
    # Flatten bookkeeping: chunk i covers global tasks offsets[i]...
    offsets: list[int] = []
    total = 0
    for chunk in chunks:
        offsets.append(total)
        total += len(chunk)
    results: list[tuple[bool, dict] | None] = [None] * total
    suspects: list[int] = []  # chunk indices routed to the point driver

    def make_pool():
        if pre_submit is not None:
            pre_submit()
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )

    def kill_pool(executor) -> None:
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.kill()
            except (OSError, ValueError):
                pass
        for proc in processes:
            try:
                proc.join(timeout=2.0)
            except (OSError, ValueError, AssertionError):
                pass

    pending = list(range(len(chunks)))
    pending.reverse()  # pop() dispatches in order
    executor = make_pool()
    inflight: dict = {}  # future -> (chunk index, deadline | None)
    crashes_without_progress = 0
    abandoned = False
    try:
        while (pending or inflight) and not abandoned:
            now = time.monotonic()
            while pending and len(inflight) < workers:
                index = pending.pop()
                future = executor.submit(chunk_fn, chunks[index])
                deadline = None
                if policy.point_timeout_s is not None:
                    # The chunk worker may retry points internally, so
                    # its deadline budgets every attempt; the per-point
                    # deadline proper is enforced after a split.
                    deadline = now + (
                        policy.point_timeout_s
                        * max(len(chunks[index]), 1)
                        * policy.max_attempts
                    )
                inflight[future] = (index, deadline)

            deadlines = [d for _, d in inflight.values() if d is not None]
            wait_s = None
            if deadlines:
                wait_s = max(min(deadlines) - now, _MIN_WAIT_S)
            done, _ = concurrent.futures.wait(
                set(inflight), timeout=wait_s,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )

            crashed = False
            for future in done:
                index, _ = inflight.pop(future)
                try:
                    outputs = future.result()
                except BrokenProcessPool:
                    crashed = True
                    suspects.append(index)
                    continue
                except Exception:  # noqa: BLE001 — dispatch-side failure
                    suspects.append(index)
                    continue
                for offset, outcome in enumerate(outputs):
                    results[offsets[index] + offset] = outcome
                crashes_without_progress = 0

            if crashed:
                # Innocent in-flight chunks requeue whole; their partial
                # work is lost but their values are unaffected.
                for future, (index, _) in inflight.items():
                    pending.append(index)
                inflight.clear()
                pending.sort(reverse=True)
                kill_pool(executor)
                crashes_without_progress += 1
                if crashes_without_progress > MAX_BARREN_REBUILDS:
                    # The pool cannot hold a chunk: stop chunking and
                    # let the point driver sort the rest out.
                    _count("resilience.degraded")
                    suspects.extend(pending)
                    pending.clear()
                    abandoned = True
                    break
                _count("resilience.pool_rebuilds")
                executor = make_pool()
                continue

            now = time.monotonic()
            expired = [
                future for future, (_, deadline) in inflight.items()
                if deadline is not None and now >= deadline
            ]
            if expired:
                for future in expired:
                    index, _ = inflight.pop(future)
                    _count("resilience.timeouts")
                    suspects.append(index)
                for future, (index, _) in inflight.items():
                    pending.append(index)
                inflight.clear()
                pending.sort(reverse=True)
                kill_pool(executor)
                _count("resilience.pool_rebuilds")
                executor = make_pool()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    if suspects:
        suspects = sorted(set(suspects))
        retry_tasks = [t for i in suspects for t in chunks[i]]
        retry_keys = [
            keys[offsets[i] + offset]
            for i in suspects for offset in range(len(chunks[i]))
        ]
        retried = pool_map_resilient(
            context, point_fn, retry_tasks, retry_keys, workers, policy,
            degrade=degrade, pre_submit=pre_submit,
        )
        cursor = 0
        for i in suspects:
            for offset in range(len(chunks[i])):
                results[offsets[i] + offset] = retried[cursor]
                cursor += 1

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
