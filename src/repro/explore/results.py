"""Campaign result sets: filtering, grouping, ranking, Pareto fronts.

A :class:`ResultSet` is an ordered, immutable collection of
:class:`ResultRecord` — one per evaluated design point — with the query
operations the thesis's cross-configuration questions need: "rank the
barrier patterns per platform", "group the weak-scaling series by preset",
"which configurations are Pareto-optimal in (cost, messages)?".
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ResultRecord:
    """One evaluated design point: inputs, outputs, and provenance."""

    key: str
    experiment: str
    point: Mapping[str, Any]
    metrics: Mapping[str, Any]

    def __post_init__(self):
        object.__setattr__(self, "point", dict(self.point))
        object.__setattr__(self, "metrics", dict(self.metrics))

    def value(self, name: str, default=None):
        """Look up ``name`` as a metric first, then as a point parameter."""
        if name in self.metrics:
            return self.metrics[name]
        return self.point.get(name, default)

    @property
    def failed(self) -> bool:
        return "error" in self.metrics

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "experiment": self.experiment,
            "point": dict(self.point),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultRecord":
        return cls(
            key=data["key"],
            experiment=data["experiment"],
            point=data["point"],
            metrics=data["metrics"],
        )


@dataclass(frozen=True)
class ResultSet:
    """Ordered, immutable collection of result records."""

    records: tuple[ResultRecord, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ResultRecord]:
        return iter(self.records)

    def __getitem__(self, idx: int) -> ResultRecord:
        return self.records[idx]

    # -------------------------------------------------------------- queries

    def ok(self) -> "ResultSet":
        """Only the successfully-evaluated records."""
        return ResultSet(tuple(r for r in self.records if not r.failed))

    def filter(
        self,
        predicate: Callable[[ResultRecord], bool] | None = None,
        **equals: Any,
    ) -> "ResultSet":
        """Records matching the predicate and/or ``name=value`` equalities
        (names resolve against metrics, then point parameters)."""
        kept = []
        for record in self.records:
            if predicate is not None and not predicate(record):
                continue
            if any(record.value(name) != want for name, want in equals.items()):
                continue
            kept.append(record)
        return ResultSet(tuple(kept))

    def group_by(self, *names: str) -> dict[tuple, "ResultSet"]:
        """Partition by the tuple of values under ``names``, preserving
        first-seen group order and in-group record order."""
        groups: dict[tuple, list[ResultRecord]] = {}
        for record in self.records:
            group = tuple(record.value(name) for name in names)
            groups.setdefault(group, []).append(record)
        return {g: ResultSet(tuple(rs)) for g, rs in groups.items()}

    def rank_by(self, metric: str, ascending: bool = True) -> "ResultSet":
        """Stable sort by one metric; records lacking it sort last."""
        missing = [r for r in self.records if r.value(metric) is None]
        present = [r for r in self.records if r.value(metric) is not None]
        ordered = sorted(
            present, key=lambda r: r.value(metric), reverse=not ascending
        )
        return ResultSet(tuple(ordered + missing))

    def best(self, metric: str, ascending: bool = True) -> ResultRecord:
        ranked = self.ok().rank_by(metric, ascending=ascending)
        if not ranked.records or ranked[0].value(metric) is None:
            raise ValueError(f"no successful records carry metric {metric!r}")
        return ranked[0]

    def values(self, name: str) -> list:
        return [r.value(name) for r in self.records]

    # --------------------------------------------------------------- Pareto

    def pareto_front(
        self,
        objectives: Sequence[str],
        maximize: Iterable[str] = (),
    ) -> "ResultSet":
        """Non-dominated records under the named objectives.

        Objectives are minimised unless listed in ``maximize``.  A record
        dominates another when it is no worse in every objective and
        strictly better in at least one; records missing any objective are
        excluded.  Order is preserved and duplicates of identical objective
        vectors all survive (they dominate nobody and nobody dominates
        them strictly in every coordinate).
        """
        maximize = set(maximize)
        unknown = maximize - set(objectives)
        if unknown:
            raise ValueError(f"maximize names not in objectives: {sorted(unknown)}")
        if not objectives:
            raise ValueError("need at least one objective")

        scored: list[tuple[ResultRecord, tuple[float, ...]]] = []
        for record in self.records:
            raw = [record.value(name) for name in objectives]
            if any(v is None or isinstance(v, str) for v in raw):
                continue
            scored.append((
                record,
                tuple(
                    -float(v) if name in maximize else float(v)
                    for name, v in zip(objectives, raw)
                ),
            ))

        front = []
        for record, vec in scored:
            dominated = any(
                all(o <= v for o, v in zip(other, vec))
                and any(o < v for o, v in zip(other, vec))
                for _, other in scored
            )
            if not dominated:
                front.append(record)
        return ResultSet(tuple(front))

    # --------------------------------------------------------- presentation

    def to_rows(self, columns: Sequence[str]) -> list[list]:
        return [[r.value(c) for c in columns] for r in self.records]

    def metric_names(self) -> list[str]:
        names: dict[str, None] = {}
        for record in self.records:
            for name in record.metrics:
                names.setdefault(name)
        return list(names)

    def point_names(self) -> list[str]:
        names: dict[str, None] = {}
        for record in self.records:
            for name in record.point:
                names.setdefault(name)
        return list(names)

    def summary(self) -> dict:
        """A store-inspection digest: record/failure counts, experiments,
        per-parameter distinct value counts, and min/mean/max over every
        numeric metric (bools excluded) — what ``repro.explore results``
        prints so a campaign store is readable without writing Python."""
        experiments: dict[str, None] = {}
        for record in self.records:
            experiments.setdefault(record.experiment)
        parameters = {
            name: len({
                json.dumps(r.point.get(name), sort_keys=True, default=str)
                for r in self.records
            })
            for name in self.point_names()
        }
        metrics: dict[str, dict] = {}
        for name in self.metric_names():
            values = [
                v for r in self.records
                if isinstance(v := r.metrics.get(name), (int, float))
                and not isinstance(v, bool)
            ]
            if not values:
                continue
            metrics[name] = {
                "count": len(values),
                "min": float(min(values)),
                "mean": float(sum(values) / len(values)),
                "max": float(max(values)),
            }
        return {
            "records": len(self.records),
            "failed": sum(1 for r in self.records if r.failed),
            "experiments": list(experiments),
            "parameters": parameters,
            "metrics": metrics,
        }

    # -------------------------------------------------------- serialisation

    def to_csv(
        self, path_or_file, columns: Sequence[str] | None = None
    ) -> list[str]:
        """Write the records as CSV; returns the column list written.

        ``columns`` defaults to every point parameter followed by every
        metric (minus the multiline ``traceback``); names resolve through
        :meth:`ResultRecord.value`.  Non-scalar cells (lists, dicts) are
        serialised as canonical JSON so the file stays one row per record.
        """
        import csv

        if columns is None:
            columns = [
                c for c in self.point_names() + self.metric_names()
                if c != "traceback"
            ]
        columns = list(columns)

        def cell(value):
            if value is None or isinstance(value, (str, int, float, bool)):
                return value
            return json.dumps(value, sort_keys=True)

        def write(fh) -> None:
            writer = csv.writer(fh, lineterminator="\n")
            writer.writerow(columns)
            for record in self.records:
                writer.writerow([cell(record.value(c)) for c in columns])

        if hasattr(path_or_file, "write"):
            write(path_or_file)
        else:
            with open(path_or_file, "w", encoding="utf-8", newline="") as fh:
                write(fh)
        return columns

    def to_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def from_jsonl(cls, path: str) -> "ResultSet":
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(ResultRecord.from_dict(json.loads(line)))
        return cls(tuple(records))
