"""Append-only JSONL result cache keyed by content hash.

The cache is what makes campaigns resumable and cheap to re-run: a record
is stored under ``sha256(experiment, point)`` the first time its point is
evaluated, and every later campaign — same process or a fresh one — is
served from disk.  Appending a line per result keeps writes crash-safe
(a torn final line is detected and ignored on load) and lets several
sequential campaigns share one store directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from collections.abc import Iterator, Mapping
from typing import Any

from repro.explore.space import canonical_json


def record_key(experiment: str, point: Mapping[str, Any]) -> str:
    """Stable cache key for one (experiment, design-point) evaluation."""
    payload = canonical_json({"experiment": experiment, "point": dict(point)})
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


class CorruptStoreWarning(UserWarning):
    """A result store carried unreadable lines; they were skipped (torn
    trailing line) or quarantined to ``<store>.corrupt`` (mid-file), and
    their points will simply be re-evaluated on the next run."""


class ResultCache:
    """A dict-like view over one append-only JSONL file.

    ``durable=True`` adds an ``fsync`` after every append, trading write
    throughput for the guarantee that an acknowledged record survives a
    machine crash, not just a process crash.
    """

    def __init__(self, path: str | os.PathLike, durable: bool = False):
        self.path = os.fspath(path)
        self.durable = durable
        self._records: dict[str, dict] = {}
        self._load()

    @property
    def corrupt_path(self) -> str:
        """Where unreadable mid-file lines are quarantined on load."""
        return f"{self.path}.corrupt"

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            raw_lines = fh.read().splitlines(keepends=True)
        corrupt: list[tuple[int, str]] = []  # (1-based line number, text)
        for number, raw in enumerate(raw_lines, start=1):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                self._records[entry["key"]] = entry["record"]
            except (json.JSONDecodeError, KeyError, TypeError):
                corrupt.append((number, line))
        if not corrupt:
            return
        # A torn *trailing* line is the expected residue of a killed
        # writer (single O_APPEND write, so only the tail can tear):
        # truncate it away — leaving it would splice the next append
        # onto the garbage — and warn.  Unreadable lines *before* the
        # tail mean something worse happened to the file; quarantine
        # them to the .corrupt sidecar so they stay inspectable, and
        # carry on — their points just look uncached and will be
        # re-evaluated.
        if corrupt[-1][0] == len(raw_lines):
            repaired = "truncated"
            try:
                good = sum(len(r) for r in raw_lines[:-1])
                with open(self.path, "r+b") as fh:
                    fh.truncate(good)
            except OSError:
                repaired = "skipped (store not writable)"
            warnings.warn(
                f"result store {self.path!r}: {repaired} torn trailing "
                f"line {corrupt[-1][0]} (interrupted writer); the record "
                f"will be re-evaluated",
                CorruptStoreWarning,
                stacklevel=3,
            )
            corrupt.pop()
        if corrupt:
            self._quarantine_corrupt([line for _, line in corrupt])
            numbers = ", ".join(str(n) for n, _ in corrupt)
            warnings.warn(
                f"result store {self.path!r}: quarantined "
                f"{len(corrupt)} corrupt line(s) ({numbers}) to "
                f"{self.corrupt_path!r}; their records will be "
                f"re-evaluated",
                CorruptStoreWarning,
                stacklevel=3,
            )

    def _quarantine_corrupt(self, lines: list[str]) -> None:
        seen: set[str] = set()
        if os.path.exists(self.corrupt_path):
            with open(self.corrupt_path, "r", encoding="utf-8") as fh:
                seen = {line.strip() for line in fh if line.strip()}
        fresh = [line for line in lines if line not in seen]
        if not fresh:
            return
        payload = ("\n".join(fresh) + "\n").encode("utf-8")
        fd = os.open(
            self.corrupt_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)

    # ------------------------------------------------------------- queries

    def get(self, key: str) -> dict | None:
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    # ------------------------------------------------------------- updates

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Store one record, appending it atomically to the backing file.

        The full line — record plus trailing newline — goes to the file in
        a single ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
        campaign processes sharing a store can never interleave bytes
        within each other's records, and a killed writer leaves at most
        one torn *trailing* line (which :meth:`_load` skips) rather than a
        corrupt record in the middle of the file.
        """
        entry = {"key": key, "record": dict(record)}
        # Round-trip through JSON so the in-memory record is bit-identical
        # to what a later session will load from disk.
        line = json.dumps(entry, sort_keys=True)
        self._records[key] = json.loads(line)["record"]
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        payload = (line + "\n").encode("utf-8")
        # Chaos hook: an active torn-append fault truncates this write,
        # simulating a writer killed between partial append and
        # completion (the in-memory record stays intact, exactly as a
        # crashed process's results would have before it died).
        from repro.explore.resilience import maybe_tear

        torn = maybe_tear(
            "cache.put", str(dict(record).get("experiment", "")), key, payload
        )
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if torn is not None:
                os.write(fd, torn)
                return
            written = os.write(fd, payload)
            if written != len(payload):
                # Short write (disk full, quota): the tail is torn and the
                # atomicity promise no longer holds for this record — fail
                # loudly so the campaign aborts instead of acknowledging a
                # record the file does not carry.
                raise OSError(
                    f"short append to {self.path!r}: wrote {written} of "
                    f"{len(payload)} bytes"
                )
            if self.durable:
                os.fsync(fd)
        finally:
            os.close(fd)

    def clear(self) -> None:
        self._records.clear()
        if os.path.exists(self.path):
            os.remove(self.path)
