"""Append-only JSONL result cache keyed by content hash.

The cache is what makes campaigns resumable and cheap to re-run: a record
is stored under ``sha256(experiment, point)`` the first time its point is
evaluated, and every later campaign — same process or a fresh one — is
served from disk.  Appending a line per result keeps writes crash-safe
(a torn final line is detected and ignored on load) and lets several
sequential campaigns share one store directory.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Iterator, Mapping

from repro.explore.space import canonical_json


def record_key(experiment: str, point: Mapping[str, Any]) -> str:
    """Stable cache key for one (experiment, design-point) evaluation."""
    payload = canonical_json({"experiment": experiment, "point": dict(point)})
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


class ResultCache:
    """A dict-like view over one append-only JSONL file."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._records: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    self._records[entry["key"]] = entry["record"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # A torn tail line from an interrupted run is expected;
                    # everything before it is still valid.
                    continue

    # ------------------------------------------------------------- queries

    def get(self, key: str) -> dict | None:
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    # ------------------------------------------------------------- updates

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Store one record, appending it durably to the backing file."""
        entry = {"key": key, "record": dict(record)}
        # Round-trip through JSON so the in-memory record is bit-identical
        # to what a later session will load from disk.
        line = json.dumps(entry, sort_keys=True)
        self._records[key] = json.loads(line)["record"]
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def clear(self) -> None:
        self._records.clear()
        if os.path.exists(self.path):
            os.remove(self.path)
