"""Golden-artifact store: versioned JSON snapshots with tolerant diffing.

Every suite regeneration produces an *artifact* — the JSON rendering of a
thesis figure or table.  Checking an artifact into the golden store turns
the figure into a regression test: a later regeneration must reproduce the
stored numbers within tolerance, or the check names every path that
drifted.  Comparison is structural (missing keys, length changes, and type
changes are always errors) and tolerance-aware only for floats, so a
refactor that perturbs the last bits of a simulated timing passes while a
changed pattern name or a dropped row fails loudly.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any

#: Bumped when the artifact JSON layout changes incompatibly; goldens
#: written under another version fail the check with a regeneration hint.
ARTIFACT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Tolerance:
    """Float comparison bounds: equal when within ``rel`` *or* ``abs``.

    The defaults are tight on purpose: suite experiments build their
    machines from (preset, seed) per point, so regenerated artifacts are
    deterministic and the tolerance only needs to absorb cross-platform
    floating-point and library-version drift.
    """

    rel: float = 1e-6
    abs: float = 1e-12

    def close(self, golden: float, fresh: float) -> bool:
        if math.isnan(golden) and math.isnan(fresh):
            return True
        return math.isclose(golden, fresh, rel_tol=self.rel, abs_tol=self.abs)


@dataclass(frozen=True)
class GoldenReport:
    """Outcome of one artifact-vs-golden comparison."""

    suite: str
    path: str
    diffs: tuple[str, ...] = ()
    missing: bool = False

    @property
    def ok(self) -> bool:
        return not self.diffs and not self.missing

    def summary(self) -> str:
        if self.missing:
            return (
                f"{self.suite}: no golden at {self.path} "
                f"(run with --update-goldens to create it)"
            )
        if self.ok:
            return f"{self.suite}: matches golden ({self.path})"
        shown = "\n  ".join(self.diffs[:20])
        extra = len(self.diffs) - 20
        tail = f"\n  ... and {extra} more" if extra > 0 else ""
        return (
            f"{self.suite}: {len(self.diffs)} difference(s) against "
            f"{self.path}:\n  {shown}{tail}"
        )


def _diff_values(path: str, golden: Any, fresh: Any, tol: Tolerance,
                 out: list[str]) -> None:
    """Append a human-readable line per mismatch under JSON path ``path``."""
    # bool is an int subclass; compare it exactly and before numbers.
    if isinstance(golden, bool) or isinstance(fresh, bool):
        if golden is not fresh:
            out.append(f"{path}: golden {golden!r} != fresh {fresh!r}")
        return
    if isinstance(golden, (int, float)) and isinstance(fresh, (int, float)):
        if isinstance(golden, float) or isinstance(fresh, float):
            if not tol.close(float(golden), float(fresh)):
                out.append(
                    f"{path}: golden {golden!r} vs fresh {fresh!r} "
                    f"(|Δ| {abs(float(fresh) - float(golden)):.3e} exceeds "
                    f"rel {tol.rel:g} / abs {tol.abs:g})"
                )
        elif golden != fresh:
            out.append(f"{path}: golden {golden!r} != fresh {fresh!r}")
        return
    if type(golden) is not type(fresh):
        out.append(
            f"{path}: type changed from {type(golden).__name__} "
            f"to {type(fresh).__name__}"
        )
        return
    if isinstance(golden, dict):
        for key in golden:
            if key not in fresh:
                out.append(f"{path}.{key}: missing from fresh artifact")
        for key in fresh:
            if key not in golden:
                out.append(f"{path}.{key}: not present in golden")
        for key in golden:
            if key in fresh:
                _diff_values(f"{path}.{key}", golden[key], fresh[key], tol, out)
        return
    if isinstance(golden, list):
        if len(golden) != len(fresh):
            out.append(
                f"{path}: length changed from {len(golden)} to {len(fresh)}"
            )
            return
        for idx, (g, f) in enumerate(zip(golden, fresh)):
            _diff_values(f"{path}[{idx}]", g, f, tol, out)
        return
    if golden != fresh:
        out.append(f"{path}: golden {golden!r} != fresh {fresh!r}")


def compare_artifacts(golden: dict, fresh: dict,
                      tolerance: Tolerance | None = None) -> list[str]:
    """All differences between two artifacts, as ``path: detail`` lines."""
    diffs: list[str] = []
    _diff_values("$", golden, fresh, tolerance or Tolerance(), diffs)
    return diffs


def diff_rows(
    columns: Any,
    golden_row: Any,
    fresh_row: Any,
    tolerance: Tolerance | None = None,
) -> list[str]:
    """Differences between one golden artifact row and its regenerated
    counterpart, labelled by column name — the point-level comparison
    drift localisation (:func:`repro.explore.adaptive.localize_drift`)
    runs so it can classify a *single* design point as drifted without
    regenerating the whole artifact."""
    tol = tolerance or Tolerance()
    diffs: list[str] = []
    golden_row = list(golden_row)
    fresh_row = list(fresh_row)
    if len(golden_row) != len(fresh_row):
        return [
            f"row: length changed from {len(golden_row)} to {len(fresh_row)}"
        ]
    for name, golden, fresh in zip(columns, golden_row, fresh_row):
        _diff_values(str(name), golden, fresh, tol, diffs)
    return diffs


def golden_path(goldens_dir: str | os.PathLike, suite: str) -> str:
    return os.path.join(os.fspath(goldens_dir), f"{suite}.json")


def load_golden(path: str | os.PathLike) -> dict:
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_golden(path: str | os.PathLike, artifact: dict) -> None:
    """Write an artifact as an indented, key-sorted, diff-friendly file."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_golden(
    goldens_dir: str | os.PathLike,
    suite: str,
    artifact: dict,
    tolerance: Tolerance | None = None,
) -> GoldenReport:
    """Compare a fresh artifact against the stored golden for ``suite``."""
    path = golden_path(goldens_dir, suite)
    if not os.path.exists(path):
        return GoldenReport(suite=suite, path=path, missing=True)
    golden = load_golden(path)
    stored_version = golden.get("format_version")
    if stored_version != ARTIFACT_FORMAT_VERSION:
        return GoldenReport(
            suite=suite,
            path=path,
            diffs=(
                f"$.format_version: golden written as version "
                f"{stored_version!r}, current is {ARTIFACT_FORMAT_VERSION} "
                f"— regenerate with --update-goldens",
            ),
        )
    return GoldenReport(
        suite=suite,
        path=path,
        diffs=tuple(compare_artifacts(golden, artifact, tolerance)),
    )


def update_golden(
    goldens_dir: str | os.PathLike, suite: str, artifact: dict
) -> str:
    """Store ``artifact`` as the new golden; returns the written path."""
    path = golden_path(goldens_dir, suite)
    save_golden(path, artifact)
    return path
