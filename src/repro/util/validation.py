"""Argument validation helpers.

All validators raise ``ValueError``/``TypeError`` with the offending name in
the message so call sites can stay one-liners.
"""

from __future__ import annotations

import numbers

import numpy as np


def require_int(value, name: str) -> int:
    """Return ``value`` as ``int``; reject bools and non-integral numbers."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    return int(value)


def require_positive(value, name: str) -> float:
    """Require a strictly positive finite number."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(value, name: str) -> float:
    """Require a finite number >= 0."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(value, name: str, low, high) -> float:
    """Require ``low <= value <= high``."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_matrix(array, name: str, shape: tuple | None = None) -> np.ndarray:
    """Return ``array`` as a 2-D float ndarray, optionally of a given shape."""
    out = np.asarray(array, dtype=float)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got ndim={out.ndim}")
    if shape is not None and out.shape != tuple(shape):
        raise ValueError(f"{name} must have shape {shape}, got {out.shape}")
    return out
