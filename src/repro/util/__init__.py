"""Small shared utilities: argument validation and plain-text tables."""

from repro.util.validation import (
    require_positive,
    require_nonnegative,
    require_int,
    require_in_range,
    require_matrix,
)
from repro.util.tables import format_table, format_series

__all__ = [
    "require_positive",
    "require_nonnegative",
    "require_int",
    "require_in_range",
    "require_matrix",
    "format_table",
    "format_series",
]
