"""Plain-text table/series formatting for benchmark harness output.

The benchmark harness prints the same rows/series the thesis tables and
figures report; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned, pipe-free text table with a dashed header rule."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence) -> str:
    """Render one named (x, y) series, one point per line."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = [f"# series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"{_cell(x)}\t{_cell(y)}")
    return "\n".join(lines)
