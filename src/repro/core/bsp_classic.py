"""The original BSP performance model (§3.1, Bisseling's notation).

Four scalars describe the machine: parallelism ``p``, computation rate
``r`` (flop/s), router throughput ``g`` (flop per word of an h-relation),
and synchronisation cost ``l`` (flop).  Program costs are written in flop
equivalents:

    h            = max(h_send, h_recv)                       (Eq. 3.1)
    T_comm(h)    = h * g + l                                 (Eq. 3.2)
    T_comp(w)    = w + l                                     (Eq. 3.3)

and the two-superstep inner product of §3.1 costs

    T_total = (2N/p + l + g + l + p) / r                     (Eq. 3.7)

This model is implemented exactly so Chapter 3's misprediction experiment
(Fig. 3.2) can be replayed against the revised framework.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_int, require_nonnegative, require_positive


@dataclass(frozen=True)
class ClassicBSPParams:
    """bspbench's machine characterisation for one process count."""

    p: int  # parallelism
    r: float  # computation rate [flop/s]
    g: float  # throughput cost [flop/word]
    l: float  # noqa: E741 -- synchronisation cost [flop]; the BSP literature name

    def __post_init__(self):
        require_int(self.p, "p")
        if self.p < 1:
            raise ValueError("p must be >= 1")
        require_positive(self.r, "r")
        require_nonnegative(self.g, "g")
        require_nonnegative(self.l, "l")


def h_relation(h_send: int, h_recv: int) -> int:
    """Eq. 3.1: the h of an h-relation is the larger word count."""
    h_send = require_int(h_send, "h_send")
    h_recv = require_int(h_recv, "h_recv")
    if min(h_send, h_recv) < 0:
        raise ValueError("word counts must be >= 0")
    return max(h_send, h_recv)


def comm_cost_flops(params: ClassicBSPParams, h: int) -> float:
    """Eq. 3.2 in flop equivalents."""
    h = require_int(h, "h")
    if h < 0:
        raise ValueError("h must be >= 0")
    return h * params.g + params.l


def comp_cost_flops(params: ClassicBSPParams, w: float) -> float:
    """Eq. 3.3 in flop equivalents."""
    require_nonnegative(w, "w")
    return w + params.l


def superstep_seconds(params: ClassicBSPParams, w: float, h: int) -> float:
    """One full superstep (compute + communicate) in seconds."""
    return (comp_cost_flops(params, w) + comm_cost_flops(params, h)) / params.r


def inner_product_cost_seconds(params: ClassicBSPParams, n_total: int) -> float:
    """Eq. 3.7: bspinprod's predicted strong-scaling cost in seconds.

    Two computation steps (local products, global accumulation) around a
    1-relation scatter of the local sums.
    """
    n_total = require_int(n_total, "n_total")
    if n_total < 1:
        raise ValueError("n_total must be >= 1")
    comp1 = (n_total / params.p) * 2.0  # Eq. 3.4
    comm = 1.0 * params.g + params.l  # Eq. 3.5 (1-relation)
    comp2 = float(params.p)  # Eq. 3.6
    total_flops = comp1 + params.l + comm + comp2
    return total_flops / params.r


def inner_product_sweep(
    params_by_p: dict[int, ClassicBSPParams], n_total: int
) -> list[tuple[int, float]]:
    """Predicted cost for each benchmarked parallelism — the estimate
    series of Fig. 3.2."""
    return [
        (p, inner_product_cost_seconds(params, n_total))
        for p, params in sorted(params_by_p.items())
    ]
