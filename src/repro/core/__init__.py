"""Core modeling framework: fundamental equation, classic BSP, matrix models."""

from repro.core.fundamental import (
    SuperstepTerms,
    total_time,
    overlap_saving,
    derived_overlap,
    perfect_overlap_bound,
)
from repro.core.bsp_classic import (
    ClassicBSPParams,
    h_relation,
    comm_cost_flops,
    comp_cost_flops,
    superstep_seconds,
    inner_product_cost_seconds,
    inner_product_sweep,
)
from repro.core.matrix_model import (
    ComputationModel,
    CommunicationModel,
    SuperstepModel,
)
from repro.core.program import ProgramModel, ProgramStep, iterate

__all__ = [
    "SuperstepTerms",
    "total_time",
    "overlap_saving",
    "derived_overlap",
    "perfect_overlap_bound",
    "ClassicBSPParams",
    "h_relation",
    "comm_cost_flops",
    "comp_cost_flops",
    "superstep_seconds",
    "inner_product_cost_seconds",
    "inner_product_sweep",
    "ComputationModel",
    "CommunicationModel",
    "SuperstepModel",
    "ProgramModel",
    "ProgramStep",
    "iterate",
]
