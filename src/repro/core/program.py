"""Multi-superstep program models (Ch. 3 composed over a whole program).

A bulk-synchronous program is a sequence of supersteps, each with its own
requirement matrices; the program model aggregates per-superstep Eq. 1.4
predictions into whole-program estimates and exposes the overlap and
imbalance structure step by step.  This is the level at which the Chapter 8
predictor reasons about iterative applications: one modelled superstep,
repeated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.matrix_model import SuperstepModel
from repro.util.validation import require_int


@dataclass(frozen=True)
class ProgramStep:
    """One superstep plus its repetition count (e.g. solver iterations)."""

    model: SuperstepModel
    repetitions: int = 1
    label: str = ""

    def __post_init__(self):
        require_int(self.repetitions, "repetitions")
        if self.repetitions < 0:
            raise ValueError("repetitions must be >= 0")


@dataclass(frozen=True)
class ProgramModel:
    """An ordered collection of modelled supersteps."""

    steps: tuple[ProgramStep, ...] = field(default=())

    def __post_init__(self):
        if not self.steps:
            raise ValueError("a program needs at least one step")
        nprocs = {step.model.nprocs for step in self.steps}
        if len(nprocs) != 1:
            raise ValueError("all supersteps must share the process count")

    @property
    def nprocs(self) -> int:
        return self.steps[0].model.nprocs

    @property
    def total_supersteps(self) -> int:
        return sum(step.repetitions for step in self.steps)

    def predict_total(self, comm_maskable_fraction: float = 1.0) -> float:
        """Whole-program wall-time estimate: per-step Eq. 1.4 totals summed
        over repetitions."""
        return float(
            sum(
                step.repetitions
                * step.model.predict_total(comm_maskable_fraction)
                for step in self.steps
            )
        )

    def predicted_overlap_saving(self) -> float:
        """Program-level gain of perfect background communication vs fully
        exposed communication — the budget the Fig. 1.2 revision plays for."""
        return self.predict_total(0.0) - self.predict_total(1.0)

    def step_breakdown(self, comm_maskable_fraction: float = 1.0) -> list[dict]:
        """Per-step report rows: label, repetitions, one-step cost, share."""
        total = self.predict_total(comm_maskable_fraction)
        rows = []
        for idx, step in enumerate(self.steps):
            once = step.model.predict_total(comm_maskable_fraction)
            cost = once * step.repetitions
            rows.append(
                {
                    "index": idx,
                    "label": step.label or f"step-{idx}",
                    "repetitions": step.repetitions,
                    "per_step_seconds": once,
                    "total_seconds": cost,
                    "share": cost / total if total > 0 else 0.0,
                }
            )
        return rows

    def bottleneck_step(self) -> ProgramStep:
        """The step contributing the most predicted time."""
        return max(
            self.steps,
            key=lambda s: s.repetitions * s.model.predict_total(),
        )

    def imbalance_profile(self) -> np.ndarray:
        """Per-step compute imbalance (max - min of the t vector) — where
        the synchronisation fence exposes waiting (§3.3)."""
        return np.array(
            [step.model.computation.load_imbalance() for step in self.steps]
        )


def iterate(model: SuperstepModel, iterations: int, label: str = "iteration") -> ProgramModel:
    """Shortcut for the common iterative-application shape."""
    return ProgramModel(steps=(ProgramStep(model, iterations, label),))
