"""The matrix modeling framework (§3.3-§3.5).

The thesis replaces classic BSP's scalar parameters with matrices:

* **Computation** (§3.3): a ``P x K`` requirement matrix ``R`` (how much of
  each kernel every process runs) and a ``P x K`` cost matrix ``C``
  (benchmarked seconds per requirement unit per process).  Superstep times
  are the row sums of the element-wise product:

      t = (R ⊗ C) · 1                                        (Eq. 3.13)

* **Communication** (§3.4): pairwise requirement matrices (message counts
  and data volumes) against pairwise cost matrices (latencies and inverse
  bandwidths) — the heterogeneous Hockney model of Eq. 3.15's second term.

* **Overlap** (§3.5): combining both and comparing against totals yields
  the collective overlap property (Eq. 3.16).

Keeping requirements and costs in separate matrices is the point: a program
model (R) can be evaluated against any platform profile (C) and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import require_matrix


@dataclass(frozen=True)
class ComputationModel:
    """R/C matrices for the computation side of a superstep.

    ``requirements[p, k]`` — units of kernel ``k`` process ``p`` must run
    (elements, bytes, or applications; any unit, as long as ``costs`` is
    seconds per that unit).
    ``costs[p, k]`` — benchmarked seconds per unit for kernel ``k`` on the
    processor hosting ``p``.
    """

    requirements: np.ndarray
    costs: np.ndarray
    kernel_names: tuple[str, ...] = field(default=())

    def __post_init__(self):
        req = require_matrix(self.requirements, "requirements")
        cost = require_matrix(self.costs, "costs", req.shape)
        if np.any(req < 0) or np.any(cost < 0):
            raise ValueError("requirements and costs must be non-negative")
        object.__setattr__(self, "requirements", req)
        object.__setattr__(self, "costs", cost)
        if self.kernel_names and len(self.kernel_names) != req.shape[1]:
            raise ValueError("kernel_names length must match matrix columns")

    @property
    def nprocs(self) -> int:
        return self.requirements.shape[0]

    def superstep_times(self) -> np.ndarray:
        """Eq. 3.13: per-process compute time, t = (R ⊗ C) · 1."""
        return (self.requirements * self.costs).sum(axis=1)

    def load_imbalance(self) -> float:
        """Spread of the superstep time vector (§3.3's imbalance measure):
        max(t) - min(t), the exposed wait at the closing synchronisation."""
        t = self.superstep_times()
        return float(t.max() - t.min()) if t.size else 0.0

    def cross_mapping_costs(self) -> np.ndarray:
        """The §3.3 remark: ``R @ C.T`` evaluates every process's
        requirement on every processor's capability; the diagonal is the
        actual assignment, off-diagonal entries price alternative task
        mappings."""
        return self.requirements @ self.costs.T


@dataclass(frozen=True)
class CommunicationModel:
    """Pairwise requirement/cost matrices for superstep communication.

    Requirements: ``message_counts[i, j]`` point-to-point messages and
    ``volumes[i, j]`` payload bytes committed from i to j.
    Costs: ``latencies[i, j]`` seconds per message and
    ``inv_bandwidths[i, j]`` seconds per byte (the heterogeneous Hockney
    matrices of §3.4).
    """

    message_counts: np.ndarray
    volumes: np.ndarray
    latencies: np.ndarray
    inv_bandwidths: np.ndarray

    def __post_init__(self):
        counts = require_matrix(self.message_counts, "message_counts")
        p = counts.shape[0]
        if counts.shape != (p, p):
            raise ValueError("message_counts must be square")
        volumes = require_matrix(self.volumes, "volumes", (p, p))
        lat = require_matrix(self.latencies, "latencies", (p, p))
        beta = require_matrix(self.inv_bandwidths, "inv_bandwidths", (p, p))
        for name, arr in (
            ("message_counts", counts),
            ("volumes", volumes),
            ("latencies", lat),
            ("inv_bandwidths", beta),
        ):
            if np.any(arr < 0):
                raise ValueError(f"{name} must be non-negative")
        object.__setattr__(self, "message_counts", counts)
        object.__setattr__(self, "volumes", volumes)
        object.__setattr__(self, "latencies", lat)
        object.__setattr__(self, "inv_bandwidths", beta)

    @property
    def nprocs(self) -> int:
        return self.message_counts.shape[0]

    def superstep_times(self) -> np.ndarray:
        """Eq. 3.15 communication term: per-process send-side time,
        ``(R_messages ⊗ C_latency + R_data ⊗ C_beta) · 1``."""
        latency_part = self.message_counts * self.latencies
        volume_part = self.volumes * self.inv_bandwidths
        return (latency_part + volume_part).sum(axis=1)


@dataclass(frozen=True)
class SuperstepModel:
    """One superstep's combined computation + communication model (§3.5)."""

    computation: ComputationModel
    communication: CommunicationModel
    sync_cost: float = 0.0

    def __post_init__(self):
        if self.computation.nprocs != self.communication.nprocs:
            raise ValueError("computation and communication sizes differ")
        if self.sync_cost < 0:
            raise ValueError("sync_cost must be >= 0")

    @property
    def nprocs(self) -> int:
        return self.computation.nprocs

    def compute_times(self) -> np.ndarray:
        return self.computation.superstep_times()

    def comm_times(self) -> np.ndarray:
        return self.communication.superstep_times()

    def combined_times(self) -> np.ndarray:
        """Eq. 3.15: t_compute + t_communicate per process."""
        return self.compute_times() + self.comm_times()

    def overlap(self, total_times) -> np.ndarray:
        """Eq. 3.16: t_overlap = t_compute + t_communicate - t_total,
        evaluated against measured (or simulated) per-process totals."""
        total_times = np.asarray(total_times, dtype=float)
        if total_times.shape != (self.nprocs,):
            raise ValueError("total_times must be a P-vector")
        return self.combined_times() - total_times

    def predict_total(self, comm_maskable_fraction: float = 1.0) -> float:
        """Superstep wall time assuming a fraction of communication can run
        in the background (Fig. 1.2's early-commit processing model): the
        slowest process bounds the step, plus the synchronisation fence."""
        if not 0.0 <= comm_maskable_fraction <= 1.0:
            raise ValueError("comm_maskable_fraction must be in [0, 1]")
        comp = self.compute_times()
        comm = self.comm_times()
        masked = comm * comm_maskable_fraction
        exposed = comm - masked
        per_proc = np.maximum(comp, masked) + exposed
        return float(per_proc.max()) + self.sync_cost
