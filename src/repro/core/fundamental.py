"""The fundamental equation of modeling (§1.2, Eqs. 1.1-1.4).

Barker et al.'s decomposition

    T_total = T_compute + T_communicate - T_overlap            (Eq. 1.1)

is specialised to bulk-synchronous supersteps by splitting both compute and
communication into maskable and non-maskable parts:

    T_total = (T_comp - T'_comp) + (T_comm - T'_comm)
              + max(T'_comp, T'_comm) + T_sync                 (Eq. 1.4)

All helpers are vectorised: scalars model one process, arrays model the
per-process superstep vectors of the matrix framework.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SuperstepTerms:
    """The Eq. 1.4 ingredients for one superstep (scalars or P-vectors)."""

    t_comp: np.ndarray
    t_comm: np.ndarray
    t_comp_maskable: np.ndarray
    t_comm_maskable: np.ndarray
    t_sync: np.ndarray

    def __post_init__(self):
        for name in ("t_comp", "t_comm", "t_comp_maskable", "t_comm_maskable", "t_sync"):
            value = np.asarray(getattr(self, name), dtype=float)
            if np.any(value < 0):
                raise ValueError(f"{name} must be non-negative")
            object.__setattr__(self, name, value)
        if np.any(self.t_comp_maskable > self.t_comp + 1e-15):
            raise ValueError("maskable compute exceeds total compute")
        if np.any(self.t_comm_maskable > self.t_comm + 1e-15):
            raise ValueError("maskable communication exceeds total communication")


def total_time(terms: SuperstepTerms) -> np.ndarray:
    """Eq. 1.4: sequential parts, overlapped region, and the sync fence."""
    nonmask_comp = terms.t_comp - terms.t_comp_maskable  # Eq. 1.3
    nonmask_comm = terms.t_comm - terms.t_comm_maskable  # Eq. 1.2
    overlapped = np.maximum(terms.t_comp_maskable, terms.t_comm_maskable)
    return nonmask_comp + nonmask_comm + overlapped + terms.t_sync


def overlap_saving(terms: SuperstepTerms) -> np.ndarray:
    """T_overlap of Eq. 1.1: time hidden by running compute and
    communication concurrently, ``min`` of the two maskable parts."""
    return np.minimum(terms.t_comp_maskable, terms.t_comm_maskable)


def derived_overlap(t_comp, t_comm, t_total, t_sync=0.0) -> np.ndarray:
    """Eq. 3.16 read experimentally: given measured totals, estimate the
    workload successfully carried out in the background."""
    t_comp = np.asarray(t_comp, dtype=float)
    t_comm = np.asarray(t_comm, dtype=float)
    t_total = np.asarray(t_total, dtype=float)
    return t_comp + t_comm + np.asarray(t_sync, dtype=float) - t_total


def perfect_overlap_bound(t_comp, t_comm) -> np.ndarray:
    """Lower bound on superstep body time with perfect overlap: the larger
    of the two requirements (Bisseling's observation that overlap buys at
    most a factor of two)."""
    return np.maximum(np.asarray(t_comp, dtype=float), np.asarray(t_comm, dtype=float))
