"""Roofline-flavoured kernel execution-time model (Ch. 4 ground truth).

A kernel application over ``n`` elements on one core costs

    invocation_overhead + n * (flop_time_per_element + memory_time_per_element)

where the memory term picks the bandwidth of the cache level that holds the
working set.  This makes the *sustained* per-element time a step function of
the footprint — the piecewise-linear behaviour the thesis measures in
Figs. 4.5/4.6 — while staying linear in iteration count for a fixed
footprint, which is the property Chapter 4 needs for its regression-based
rate extraction.

Cores flagged ``multiply_accumulate`` execute FMA-eligible kernels at half
flop cost, reproducing the §3.3 worked example of processor-design
heterogeneity.
"""

from __future__ import annotations

from repro.cluster.params import CoreParams
from repro.kernels.base import Kernel
from repro.util.validation import require_int, require_nonnegative, require_positive


def time_per_element(
    kernel: Kernel,
    core: CoreParams,
    footprint_bytes: float,
    rate_scale: float = 1.0,
) -> float:
    """Steady-state seconds per element for a given working-set size."""
    require_nonnegative(footprint_bytes, "footprint_bytes")
    require_positive(rate_scale, "rate_scale")
    flop_rate = core.flop_rate * rate_scale
    flops = kernel.flops_per_element
    if core.multiply_accumulate and kernel.fma_eligible:
        flops *= 0.5
    flop_time = flops / flop_rate
    effective_bytes = (
        kernel.read_bytes_per_element
        + core.write_allocate_factor * kernel.write_bytes_per_element
    )
    mem_time = effective_bytes / core.bandwidth_for_footprint(footprint_bytes)
    return flop_time + mem_time


def application_time(
    kernel: Kernel,
    core: CoreParams,
    n: int,
    reps: int = 1,
    rate_scale: float = 1.0,
    footprint_bytes: float | None = None,
) -> float:
    """Clean (noise-free) seconds for ``reps`` applications on ``n`` elements.

    ``footprint_bytes`` defaults to the kernel's own memory-use metric; the
    caller may override it, e.g. when a kernel touches a window of a larger
    resident data set.
    """
    n = require_int(n, "n")
    reps = require_int(reps, "reps")
    if n < 0 or reps < 0:
        raise ValueError("n and reps must be >= 0")
    if footprint_bytes is None:
        footprint_bytes = kernel.memory_use(n)
    per_elem = time_per_element(kernel, core, footprint_bytes, rate_scale)
    return core.invocation_overhead * reps + reps * n * per_elem


def steady_rate_flops(
    kernel: Kernel,
    core: CoreParams,
    footprint_bytes: float,
    rate_scale: float = 1.0,
) -> float:
    """Sustained flop/s at a given footprint (0 for zero-flop kernels)."""
    if kernel.flops_per_element == 0.0:
        return 0.0
    per_elem = time_per_element(kernel, core, footprint_bytes, rate_scale)
    return kernel.flops_per_element / per_elem


def footprint_knees(core: CoreParams) -> list[int]:
    """Footprints (bytes) where the rate model changes gradient: the cache
    level capacities.  Useful for piecewise-linear model segmentation (§4.3).
    """
    return [level.size_bytes for level in core.cache_levels]


def piecewise_linear_segments(
    kernel: Kernel,
    core: CoreParams,
    max_footprint: int,
    rate_scale: float = 1.0,
) -> list[tuple[int, int, float]]:
    """Describe time-vs-footprint as ``(lo_bytes, hi_bytes, sec_per_byte)``
    segments up to ``max_footprint`` — the §4.3 piecewise-linear reading of
    the compute-rate surface."""
    require_int(max_footprint, "max_footprint")
    if max_footprint <= 0:
        raise ValueError("max_footprint must be > 0")
    bytes_per_elem = kernel.memory_use(1)
    edges = [0] + [k for k in footprint_knees(core) if k < max_footprint]
    edges.append(max_footprint)
    segments = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        probe = max(hi, 1)
        per_elem = time_per_element(kernel, core, probe, rate_scale)
        segments.append((lo, hi, per_elem / bytes_per_elem))
    return segments
