"""Machine layer: the SimMachine facade, compute-time model, virtual clocks."""

from repro.machine.simmachine import SimMachine, CommTruth, make_machine
from repro.machine.clock import VirtualClock
from repro.machine import compute

__all__ = ["SimMachine", "CommTruth", "make_machine", "VirtualClock", "compute"]
