"""SimMachine: the facade bundling topology, ground truth and noise.

Everything in the repository that "runs on hardware" runs on a SimMachine:
benchmarks sample noisy durations from it, the event engine schedules
messages over it, and the BSPlib runtime charges virtual time against it.
All randomness flows through :meth:`SimMachine.rng` so that every experiment
is reproducible from one machine seed plus a stream label.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.cluster.noise import NoiseModel
from repro.cluster.params import ClusterParams
from repro.cluster.topology import Placement, Relation, Topology
from repro.kernels.base import Kernel
from repro.machine import compute
from repro.util.validation import require_int


@dataclass(frozen=True)
class CommTruth:
    """Ground-truth pairwise communication matrices for one placement.

    Indexed ``[source, destination]`` by rank.  The analytic model never sees
    these; it sees benchmark estimates of them (repro.bench.comm_bench).
    """

    placement: Placement
    latency: np.ndarray  # one-way wire latency [s]
    start_overhead: np.ndarray  # marginal per-request start cost [s]
    inv_bandwidth: np.ndarray  # [s/byte]
    nic_gap: float
    recv_overhead: float
    invocation_overhead: float

    @property
    def nprocs(self) -> int:
        return self.placement.nprocs


class SimMachine:
    """A simulated SMP cluster with a stable noise stream."""

    def __init__(
        self,
        topology: Topology,
        params: ClusterParams,
        noise: NoiseModel | None = None,
        seed: int = 2012,
    ):
        self.topology = topology
        self.params = params
        self.noise = noise if noise is not None else NoiseModel()
        self.seed = require_int(seed, "seed")

    # ------------------------------------------------------------------ rng

    def rng(self, *stream_key) -> np.random.Generator:
        """Deterministic generator for a named stream of this machine."""
        tokens = [self.seed & 0xFFFFFFFF]
        for part in stream_key:
            if isinstance(part, (int, np.integer)):
                tokens.append(int(part) & 0xFFFFFFFF)
            else:
                tokens.append(zlib.crc32(str(part).encode()) & 0xFFFFFFFF)
        return np.random.default_rng(np.random.SeedSequence(tokens))

    # ------------------------------------------------------------ placement

    def placement(self, nprocs: int, policy: str = "round_robin") -> Placement:
        if policy == "round_robin":
            return Placement.round_robin(self.topology, nprocs)
        if policy == "block":
            return Placement.block(self.topology, nprocs)
        raise ValueError(f"unknown placement policy {policy!r}")

    # -------------------------------------------------------- communication

    def comm_truth(self, placement: Placement) -> CommTruth:
        """Build the ground-truth pairwise matrices for a placement."""
        if placement.topology is not self.topology:
            # Accept structurally equal topologies (e.g. rebuilt presets).
            if placement.topology != self.topology:
                raise ValueError("placement belongs to a different topology")
        rel = placement.relation_matrix()
        p = placement.nprocs
        latency = np.zeros((p, p))
        start = np.zeros((p, p))
        inv_bw = np.zeros((p, p))
        for relation in Relation:
            mask = rel == int(relation)
            if not np.any(mask):
                continue
            link = self.params.link(relation)
            latency[mask] = link.latency
            start[mask] = link.start_overhead
            inv_bw[mask] = link.inv_bandwidth
        return CommTruth(
            placement=placement,
            latency=latency,
            start_overhead=start,
            inv_bandwidth=inv_bw,
            nic_gap=self.params.nic_gap,
            recv_overhead=self.params.recv_overhead,
            invocation_overhead=self.params.invocation_overhead,
        )

    # -------------------------------------------------------------- compute

    def rate_scale(self, core: int) -> float:
        """Per-core flop-rate multiplier from the heterogeneity map (§3.3)."""
        socket = self.topology.socket_of(core)
        return float(self.params.socket_rate_scale.get(socket, 1.0))

    def kernel_time_clean(
        self,
        core: int,
        kernel: Kernel,
        n: int,
        reps: int = 1,
        footprint_bytes: float | None = None,
    ) -> float:
        """Noise-free execution time of ``reps`` kernel applications."""
        return compute.application_time(
            kernel,
            self.params.core,
            n,
            reps=reps,
            rate_scale=self.rate_scale(core),
            footprint_bytes=footprint_bytes,
        )

    def kernel_time(
        self,
        core: int,
        kernel: Kernel,
        n: int,
        reps: int = 1,
        rng: np.random.Generator | None = None,
        footprint_bytes: float | None = None,
    ) -> float:
        """Sampled (noisy) execution time, as a timer would observe it.

        Delegates to :meth:`kernel_time_batch` on a length-1 vector so the
        scalar and batch noise paths cannot drift apart: a shape-``(1,)``
        draw consumes the RNG stream exactly as the old per-scalar draw
        did, so existing noisy streams are bit-identical.
        """
        return float(
            self.kernel_time_batch(
                core, kernel, [n], reps=reps, rng=rng,
                footprint_bytes=footprint_bytes,
            )[0]
        )

    def kernel_time_batch(
        self,
        cores,
        kernel: Kernel,
        sizes,
        reps: int = 1,
        rng: np.random.Generator | None = None,
        footprint_bytes=None,
    ) -> np.ndarray:
        """Noisy kernel times for a vector of (core, size[, footprint]).

        The clean times are assembled per entry and the noise applied in
        one :meth:`NoiseModel.sample` call on the whole vector — one bulk
        draw instead of ``len(sizes)`` scalar draws, which both removes
        the per-rank Python/RNG overhead and defines a stable draw order
        for charge models that price many ranks per step.  ``cores`` may
        be a scalar (applied to every entry); ``footprint_bytes`` may be
        ``None``, a scalar, or a per-entry sequence.
        """
        sizes = np.asarray(sizes)
        count = sizes.shape[0]
        cores_arr = np.broadcast_to(np.asarray(cores), (count,))
        if footprint_bytes is None or np.isscalar(footprint_bytes):
            footprints = [footprint_bytes] * count
        else:
            footprints = list(footprint_bytes)
            if len(footprints) != count:
                raise ValueError("footprint_bytes length must match sizes")
        base = np.array([
            self.kernel_time_clean(
                int(cores_arr[k]), kernel, int(sizes[k]), reps=reps,
                footprint_bytes=footprints[k],
            )
            for k in range(count)
        ])
        if rng is None:
            return base
        return self.noise.sample(rng, base)

    def kernel_time_runs(
        self,
        core: int,
        kernel: Kernel,
        n: int,
        runs: int,
        reps: int = 1,
        rng: np.random.Generator | None = None,
        footprint_bytes: float | None = None,
    ) -> np.ndarray:
        """``runs`` independent noisy timings of one kernel application.

        The replication axis of the batched BSP runtime: one
        :meth:`NoiseModel.sample_matrix` draw replaces ``runs`` scalar
        round trips, filling the replication axis in the engine's
        documented replication-major order.  ``rng=None`` broadcasts the
        clean time to every replication.
        """
        base = self.kernel_time_clean(core, kernel, n, reps, footprint_bytes)
        if rng is None:
            return np.full(runs, base)
        return self.noise.sample_matrix(rng, base, runs)

    def describe(self) -> str:
        return self.topology.describe()


def make_machine(
    topology: Topology,
    params: ClusterParams,
    noise: NoiseModel | None = None,
    seed: int = 2012,
) -> SimMachine:
    """Convenience constructor mirroring the preset functions."""
    return SimMachine(topology, params, noise=noise, seed=seed)
