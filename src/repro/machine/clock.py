"""Per-process virtual clocks for the BSPlib runtime (Ch. 6).

BSP processes accumulate *virtual* seconds: computation advances a clock by
the machine's kernel-time model; the superstep scheduler aligns clocks at
synchronization.  ``bsp_time`` reads this clock, so application timings in
examples and experiments are simulated-platform seconds, not wall time.
"""

from __future__ import annotations

from repro.util.validation import require_nonnegative


class VirtualClock:
    """Monotonically advancing virtual time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = require_nonnegative(start, "start")

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` seconds; returns the new time."""
        dt = require_nonnegative(dt, "dt")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time ``t`` (no-op if already past)."""
        require_nonnegative(t, "t")
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.9f})"
