"""Per-process virtual clocks for the BSPlib runtime (Ch. 6).

BSP processes accumulate *virtual* seconds: computation advances a clock by
the machine's kernel-time model; the superstep scheduler aligns clocks at
synchronization.  ``bsp_time`` reads this clock, so application timings in
examples and experiments are simulated-platform seconds, not wall time.

:class:`VirtualClock` is the scalar clock of a single run;
:class:`BatchClock` carries one clock value per replication of a
replication-batched run (``bsp_run(..., runs=R)``) as an ``(R,)`` vector.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_int, require_nonnegative


class VirtualClock:
    """Monotonically advancing virtual time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = require_nonnegative(start, "start")

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` seconds; returns the new time."""
        dt = require_nonnegative(dt, "dt")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time ``t`` (no-op if already past)."""
        require_nonnegative(t, "t")
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.9f})"


class BatchClock:
    """An ``(R,)`` vector of virtual clocks advancing in lockstep structure.

    Every replication of a batched BSP run executes the same superstep
    schedule, but noisy charges advance each replication's clock by its own
    sampled duration.  ``advance``/``advance_to`` accept a scalar (applied
    to every replication) or an ``(R,)`` vector.

    Returned and exposed arrays are never mutated afterwards — each advance
    rebinds a fresh array — so callers may keep references (e.g. as commit
    times) without copying, but must treat them as immutable.
    """

    __slots__ = ("_now",)

    def __init__(self, runs: int):
        runs = require_int(runs, "runs")
        if runs < 1:
            raise ValueError("runs must be >= 1")
        self._now = np.zeros(runs)

    @property
    def runs(self) -> int:
        return self._now.shape[0]

    @property
    def now(self) -> np.ndarray:
        """Current ``(R,)`` clock values (treat as read-only)."""
        return self._now

    def advance(self, dt) -> np.ndarray:
        """Move forward by ``dt`` seconds (scalar or per-replication);
        returns the new ``(R,)`` times."""
        dt = np.asarray(dt, dtype=float)
        if np.any(dt < 0.0):
            raise ValueError("dt must be non-negative")
        self._now = self._now + dt
        return self._now

    def advance_to(self, t) -> np.ndarray:
        """Move each replication forward to absolute time ``t`` (no-op for
        replications already past it)."""
        t = np.asarray(t, dtype=float)
        if np.any(t < 0.0):
            raise ValueError("t must be non-negative")
        self._now = np.maximum(self._now, t)
        return self._now

    def __repr__(self) -> str:
        return f"BatchClock(runs={self.runs}, max={self._now.max():.9f})"
