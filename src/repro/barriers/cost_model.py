"""Analytic barrier cost model (§5.6.5, Fig. 6.2).

Given benchmark-extracted parameter matrices, the cost a sending process
``i`` adds to every path through its stage ``s`` is Eq. 5.4:

    cost(s, i) = 2 * sum_j L_ij * S_s[i, j]  +  max_j (O_ij * S_s[i, j])

extended here with the Chapter 6 payload term ``sum_j M_s * B_ij * S_s[i,j]``
for synchronisations that carry data.  Two side conditions apply (§5.6.5):

1. the minimal stage cost is the invocation overhead ``O_ii``, and
2. if the receiver ``j`` is known to be awaiting the signal — its last
   action was a send to ``i`` followed by at least one idle stage — its
   term in the maximisation is replaced by ``O_jj``.

The predicted barrier time is the maximal accumulated cost over every path
through the layered stage graph.  ``predict_barrier_cost`` computes it by
stage-wise dynamic programming; ``critical_path_recursive`` is the thesis's
recursive search (Fig. 6.2), kept as an independently coded cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.barriers.patterns import BarrierPattern
from repro.simmpi.engine import stage_payload_matrix
from repro.util.validation import require_matrix


@dataclass(frozen=True)
class CommParameters:
    """Pairwise communication parameters as seen by the model.

    ``overhead[i, j]`` is the marginal request-start cost O_ij with the
    invocation cost O_ii on the diagonal; ``latency[i, j]`` the one-way
    latency estimate L_ij; ``inv_bandwidth`` the per-byte cost used only by
    payload-carrying synchronisation.  In the reproduction pipeline these
    come from ``repro.bench.comm_bench``, never from ground truth.
    """

    overhead: np.ndarray
    latency: np.ndarray
    inv_bandwidth: np.ndarray | None = None

    def __post_init__(self):
        p = self.overhead.shape[0] if self.overhead.ndim == 2 else -1
        object.__setattr__(self, "overhead", require_matrix(self.overhead, "overhead"))
        object.__setattr__(
            self, "latency", require_matrix(self.latency, "latency", (p, p))
        )
        if self.inv_bandwidth is not None:
            object.__setattr__(
                self,
                "inv_bandwidth",
                require_matrix(self.inv_bandwidth, "inv_bandwidth", (p, p)),
            )

    @property
    def nprocs(self) -> int:
        return self.overhead.shape[0]


def posted_receive_pairs(pattern: BarrierPattern) -> list[set[tuple[int, int]]]:
    """Per stage, the signals ``(i, j)`` whose receiver is very probably
    already waiting (§5.6.5 condition 2): process j's last action was a
    send to i, with at least one fully idle stage in between."""
    p = pattern.nprocs
    last_send_stage = np.full(p, -1)
    last_send_target = np.full(p, -1)
    last_activity = np.full(p, -1)
    posted: list[set[tuple[int, int]]] = []
    for s, stage in enumerate(pattern.stages):
        stage_posted: set[tuple[int, int]] = set()
        srcs, dsts = np.nonzero(stage)
        for i, j in zip(srcs, dsts):
            if (
                last_send_target[j] == i
                and last_send_stage[j] == last_activity[j]
                and last_send_stage[j] <= s - 2
            ):
                stage_posted.add((int(i), int(j)))
        posted.append(stage_posted)
        for i, j in zip(srcs, dsts):
            last_send_stage[i] = s
            last_send_target[i] = j
            last_activity[i] = s
            last_activity[j] = s
    return posted


def stage_costs(
    pattern: BarrierPattern,
    params: CommParameters,
    payload_bytes=None,
    use_posted_condition: bool = True,
) -> list[np.ndarray]:
    """Per-stage vector of each process's Eq. 5.4 path contribution.

    Pure receivers and senders alike pay at least the invocation floor;
    non-participants contribute zero.  ``use_posted_condition=False``
    disables §5.6.5's condition 2 (for ablation studies of the model).
    """
    p = pattern.nprocs
    if params.nprocs != p:
        raise ValueError("parameter matrices do not match the pattern size")
    posted = (
        posted_receive_pairs(pattern)
        if use_posted_condition
        else [set() for _ in pattern.stages]
    )
    overhead = params.overhead
    latency = params.latency
    costs: list[np.ndarray] = []
    for s, stage in enumerate(pattern.stages):
        payload = stage_payload_matrix(payload_bytes, s, p)
        cost = np.zeros(p)
        sends = stage.any(axis=1)
        recvs = stage.any(axis=0)
        for i in range(p):
            if not (sends[i] or recvs[i]):
                continue
            if not sends[i]:
                cost[i] = overhead[i, i]
                continue
            dests = np.flatnonzero(stage[i])
            lat_term = 2.0 * float(latency[i, dests].sum())
            pay_term = 0.0
            if params.inv_bandwidth is not None and payload[i, dests].any():
                pay_term = float(
                    (payload[i, dests] * params.inv_bandwidth[i, dests]).sum()
                )
            ov_candidates = [
                overhead[j, j] if (i, int(j)) in posted[s] else overhead[i, j]
                for j in dests
            ]
            ov_term = max(ov_candidates)
            cost[i] = max(lat_term + pay_term + ov_term, overhead[i, i])
        costs.append(cost)
    return costs


def predict_barrier_timeline(
    pattern: BarrierPattern,
    params: CommParameters,
    payload_bytes=None,
    use_posted_condition: bool = True,
) -> np.ndarray:
    """Stage-wise DP over the layered graph: per-process predicted exits."""
    p = pattern.nprocs
    costs = stage_costs(
        pattern, params, payload_bytes, use_posted_condition=use_posted_condition
    )
    t = np.zeros(p)
    for stage, cost in zip(pattern.stages, costs):
        new_t = t.copy()
        participants = stage.any(axis=1) | stage.any(axis=0)
        for i in np.flatnonzero(participants):
            new_t[i] = max(new_t[i], t[i] + cost[i])
        srcs, dsts = np.nonzero(stage)
        for i, j in zip(srcs, dsts):
            new_t[j] = max(new_t[j], t[i] + cost[i])
        t = new_t
    return t


def predict_barrier_cost(
    pattern: BarrierPattern,
    params: CommParameters,
    payload_bytes=None,
    use_posted_condition: bool = True,
) -> float:
    """Worst-case path prediction — the §5.6.6 reported value."""
    if pattern.nprocs == 1 or not pattern.stages:
        return 0.0
    return float(
        predict_barrier_timeline(
            pattern, params, payload_bytes,
            use_posted_condition=use_posted_condition,
        ).max()
    )


def critical_path_recursive(
    pattern: BarrierPattern,
    params: CommParameters,
    payload_bytes=None,
) -> float:
    """Fig. 6.2's recursive path search; exponential, for small-P checks."""
    p = pattern.nprocs
    if p == 1 or not pattern.stages:
        return 0.0
    costs = stage_costs(pattern, params, payload_bytes)
    stages = pattern.stages
    num_stages = len(stages)
    best = 0.0

    def walk(stage_idx: int, proc: int, acc: float) -> None:
        nonlocal best
        if stage_idx == num_stages:
            best = max(best, acc)
            return
        stage = stages[stage_idx]
        participates = stage[proc].any() or stage[:, proc].any()
        own = costs[stage_idx][proc] if participates else 0.0
        walk(stage_idx + 1, proc, acc + own)
        if stage[proc].any():
            for j in np.flatnonzero(stage[proc]):
                walk(stage_idx + 1, int(j), acc + costs[stage_idx][proc])

    for start in range(p):
        walk(0, start, 0.0)
    return best
