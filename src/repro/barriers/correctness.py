"""Knowledge-matrix correctness test for barrier patterns (§5.5).

The thesis maps a barrier's information flow onto linear algebra: let
``K[a, b]`` count the messages by which process *b* has evidence of process
*a*'s arrival.  Before any communication each process knows only itself
(``K = I``); executing stage ``S`` lets every receiver inherit its senders'
accumulated knowledge:

    K_0 = I + S_0                      (Eq. 5.1)
    K_i = K_{i-1} + K_{i-1} x S_i      (Eq. 5.2)

The pattern is a correct barrier iff the final ``K`` has no zero entry:
every process has evidence of every other's arrival.  The thesis highlights
this as a debugging tool for automatically generated patterns — exactly how
Chapter 7's greedy generator uses it here.
"""

from __future__ import annotations

import numpy as np

from repro.barriers.patterns import BarrierPattern


def knowledge_trace(pattern: BarrierPattern) -> list[np.ndarray]:
    """Per-stage knowledge matrices ``[K_0, K_1, ...]`` (Eq. 5.1-5.2).

    Counts can grow combinatorially with stages, so the recursion runs in
    float and the test below only uses positivity.
    """
    p = pattern.nprocs
    knowledge = np.eye(p)
    trace = []
    for stage in pattern.stages:
        knowledge = knowledge + knowledge @ stage.astype(float)
        trace.append(knowledge.copy())
    return trace


def is_correct_barrier(pattern: BarrierPattern) -> bool:
    """True iff every process ends with evidence of every arrival."""
    if pattern.nprocs == 1:
        return True
    if not pattern.stages:
        return False
    final = knowledge_trace(pattern)[-1]
    return bool(np.all(final > 0))


def uninformed_pairs(pattern: BarrierPattern) -> list[tuple[int, int]]:
    """Pairs ``(a, b)`` where b lacks evidence of a's arrival at the end —
    the "exact trace of the failure" the thesis extracts for debugging."""
    if pattern.nprocs == 1:
        return []
    if not pattern.stages:
        p = pattern.nprocs
        return [(a, b) for a in range(p) for b in range(p) if a != b]
    final = knowledge_trace(pattern)[-1]
    rows, cols = np.nonzero(final == 0)
    return [(int(a), int(b)) for a, b in zip(rows, cols)]


def stages_to_completion(pattern: BarrierPattern) -> int | None:
    """Index of the first stage after which the barrier condition holds, or
    ``None`` if it never does.  Extra stages beyond this point are pure
    overhead — useful when evaluating generated patterns."""
    if pattern.nprocs == 1:
        return 0
    for idx, knowledge in enumerate(knowledge_trace(pattern)):
        if np.all(knowledge > 0):
            return idx
    return None


def assert_correct(pattern: BarrierPattern) -> None:
    """Raise ``ValueError`` with the uninformed pairs if the pattern is not
    a correct barrier."""
    if is_correct_barrier(pattern):
        return
    missing = uninformed_pairs(pattern)
    preview = ", ".join(f"{a}->{b}" for a, b in missing[:8])
    more = "" if len(missing) <= 8 else f" (+{len(missing) - 8} more)"
    raise ValueError(
        f"pattern {pattern.name!r} is not a correct barrier; "
        f"processes lacking arrival evidence: {preview}{more}"
    )
