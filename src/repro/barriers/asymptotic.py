"""Textbook asymptotic barrier analysis (§5.4).

Closed-form uniform-cost sums for the three running examples, plus a
generic per-stage summation that splits message costs into local and remote
classes — the refinement the thesis sketches before replacing the whole
approach with the matrix representation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.barriers.patterns import BarrierPattern
from repro.cluster.topology import Placement, Relation
from repro.util.validation import require_int, require_nonnegative


def linear_barrier_cost(nprocs: int, c: float) -> float:
    """T = 2cP for the 2-stage linear barrier under uniform message cost."""
    p = require_int(nprocs, "nprocs")
    require_nonnegative(c, "c")
    return 2.0 * c * p


def tree_barrier_cost(nprocs: int, c: float) -> float:
    """T = 2c log2 P for the binary combining tree."""
    p = require_int(nprocs, "nprocs")
    require_nonnegative(c, "c")
    if p == 1:
        return 0.0
    return 2.0 * c * math.log2(p)


def dissemination_barrier_cost(nprocs: int, c: float) -> float:
    """T = c log2 P for the dissemination barrier."""
    p = require_int(nprocs, "nprocs")
    require_nonnegative(c, "c")
    if p == 1:
        return 0.0
    return c * math.log2(p)


def stage_wise_cost(pattern: BarrierPattern, c: float) -> float:
    """Generic uniform-cost sum: each stage costs one message time (signals
    within a stage are concurrent), i.e. ``c * num_stages`` for non-empty
    stages."""
    require_nonnegative(c, "c")
    return c * sum(1 for stage in pattern.stages if stage.any())


def local_remote_split(
    pattern: BarrierPattern, placement: Placement
) -> list[dict[str, int]]:
    """Per-stage message counts split into locality classes — the §5.4
    refinement showing dissemination's stages are dominated by remote
    traffic on hierarchical interconnects."""
    rel = placement.relation_matrix()
    out = []
    for stage in pattern.stages:
        counts = {"local": 0, "remote": 0}
        srcs, dsts = np.nonzero(stage)
        for i, j in zip(srcs, dsts):
            if rel[i, j] == int(Relation.REMOTE):
                counts["remote"] += 1
            else:
                counts["local"] += 1
        out.append(counts)
    return out


def dominant_term(pattern: BarrierPattern, placement: Placement,
                  c_local: float, c_remote: float) -> float:
    """Two-class uniform cost: each stage is bounded by its most expensive
    signal class; stages sum sequentially."""
    require_nonnegative(c_local, "c_local")
    require_nonnegative(c_remote, "c_remote")
    total = 0.0
    for counts in local_remote_split(pattern, placement):
        if counts["remote"]:
            total += c_remote
        elif counts["local"]:
            total += c_local
    return total
