"""One-call measured-vs-predicted barrier evaluation.

The Chapter 5 experiment — benchmark the platform, predict a pattern's
cost from the extracted matrices, and measure the same pattern on the
event engine — used to live as a copy-pasted loop in every benchmark
script.  :func:`evaluate_barrier` is the thin API the exploration layer
(and any future sweep) calls per design point; :func:`profile_placement`
exposes the benchmark step separately so callers evaluating several
patterns on one placement can reuse a single profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.barriers.cost_model import CommParameters, predict_barrier_cost
from repro.barriers.patterns import BarrierPattern
from repro.barriers.simulate import measure_barrier
from repro.cluster.topology import Placement
from repro.machine.simmachine import SimMachine

FAST_COMM_SIZES = tuple(2**k for k in range(0, 17, 4))


@dataclass(frozen=True)
class BarrierEvaluation:
    """Measured and predicted cost of one (pattern, placement) point."""

    pattern_name: str
    nprocs: int
    runs: int
    measured: float  # mean of per-run worst cases [s]
    predicted: float  # Eq. 5.4 critical-path prediction [s]
    num_stages: int
    total_messages: int

    @property
    def absolute_error(self) -> float:
        return self.predicted - self.measured

    @property
    def relative_error(self) -> float:
        return self.absolute_error / self.measured if self.measured else 0.0


def profile_placement(
    machine: SimMachine,
    placement: Placement,
    comm_samples: int = 5,
    comm_sizes: tuple[int, ...] = FAST_COMM_SIZES,
    cache: bool = True,
) -> CommParameters:
    """Benchmark-extracted model parameters for one placement (§5.6.3).

    Profiles are served through :mod:`repro.bench.profile_cache`: the
    benchmark is deterministic in (machine, placement, arguments), so a
    campaign evaluating many patterns on one placement pays for it once.
    Pass ``cache=False`` to force a fresh benchmark (the result is
    bit-identical either way; the escape hatch exists for benchmarking
    the benchmark).
    """
    if not cache:
        from repro.bench.comm_bench import benchmark_comm

        return benchmark_comm(
            machine, placement, samples=comm_samples, sizes=comm_sizes
        ).params
    from repro.bench.profile_cache import PROFILE_CACHE

    return PROFILE_CACHE.get_or_benchmark(
        machine, placement, samples=comm_samples, sizes=comm_sizes
    )


def evaluate_barrier(
    machine: SimMachine,
    pattern: BarrierPattern,
    placement: Placement | None = None,
    params: CommParameters | None = None,
    runs: int = 16,
    comm_samples: int = 5,
    comm_sizes: tuple[int, ...] = FAST_COMM_SIZES,
    payload_bytes=None,
) -> BarrierEvaluation:
    """Measure and predict one barrier pattern on one machine.

    ``placement`` defaults to the round-robin placement for the pattern's
    process count; ``params`` defaults to a fresh benchmark profile of that
    placement (pass a profile to amortise benchmarking across patterns).
    """
    if placement is None:
        placement = machine.placement(pattern.nprocs)
    if params is None:
        params = profile_placement(
            machine, placement, comm_samples=comm_samples, comm_sizes=comm_sizes
        )
    timing = measure_barrier(
        machine, pattern, placement, runs=runs, payload_bytes=payload_bytes
    )
    predicted = predict_barrier_cost(pattern, params, payload_bytes=payload_bytes)
    return BarrierEvaluation(
        pattern_name=pattern.name,
        nprocs=pattern.nprocs,
        runs=runs,
        measured=timing.mean_worst,
        predicted=predicted,
        num_stages=pattern.num_stages,
        total_messages=pattern.total_messages,
    )
